//! qgpu-load — chaos/load harness for the `qgpu-serve` job server.
//!
//! Drives hundreds of concurrent jobs through seeded fault injection
//! (engine-level transfer/codec/worker faults, serve-level worker
//! panics, a timed device kill), tight deadlines, and caller
//! cancellations, then **asserts** the serving contract:
//!
//! * every submitted job reaches a terminal state (no hangs);
//! * every *completed* job is bit-identical (state and shot samples)
//!   to a fault-free reference run of the same spec;
//! * decisions are visible: shed/retry/cancel/deadline counters match
//!   what the run provoked.
//!
//! Exit code 0 = contract held; 1 = violation; 2 = bad usage.
//!
//! ```text
//! usage: qgpu-load [--jobs N] [--tenants N] [--workers N] [--devices N]
//!   [--qubits N] [--shots N] [--seed N] [--queue-cap N] [--mem-budget BYTES]
//!   [--retries N] [--deadline-ms MS] [--tight-frac F] [--cancel-frac F]
//!   [--inject-transfer P] [--inject-codec P] [--inject-worker P]
//!   [--chaos-worker-panic P] [--chaos-fail-first N] [--chaos-device-loss D:MS]
//!   [--timeout-s S] [--label NAME] [--metrics-out PATH] [--bench-out PATH]
//! ```
//!
//! `--metrics-out` writes the same `{meta, counters, histograms,
//! registry}` document shape as `qgpu-sim --metrics-out`; `--bench-out`
//! writes a `qgpu-bench/v1` document with one scenario carrying the
//! serving percentiles (p50/p90/p99/p999 latency) and throughput.

use std::process::ExitCode;
use std::time::{Duration, Instant};

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_obs::{Json, RunMeta};
use qgpu_serve::{ChaosConfig, JobSpec, JobStatus, Priority, ServeConfig, Server, ShutdownMode};

struct Opts {
    jobs: usize,
    tenants: usize,
    workers: usize,
    devices: usize,
    qubits: usize,
    shots: u64,
    seed: u64,
    queue_cap: usize,
    mem_budget: Option<u64>,
    retries: Option<u32>,
    deadline_ms: Option<u64>,
    tight_frac: f64,
    cancel_frac: f64,
    inject_transfer: f64,
    inject_codec: f64,
    inject_worker: f64,
    chaos_worker_panic: f64,
    chaos_fail_first: u32,
    chaos_device_loss: Option<(usize, u64)>,
    chaos_kernel_flip: f64,
    timeout_s: u64,
    label: String,
    metrics_out: Option<String>,
    bench_out: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            jobs: 200,
            tenants: 4,
            workers: 4,
            devices: 2,
            qubits: 10,
            shots: 16,
            seed: 1,
            queue_cap: usize::MAX,
            mem_budget: None,
            retries: None,
            deadline_ms: None,
            tight_frac: 0.0,
            cancel_frac: 0.0,
            inject_transfer: 0.0,
            inject_codec: 0.0,
            inject_worker: 0.0,
            chaos_worker_panic: 0.0,
            chaos_fail_first: 0,
            chaos_device_loss: None,
            chaos_kernel_flip: 0.0,
            timeout_s: 600,
            label: "serve_load".to_string(),
            metrics_out: None,
            bench_out: None,
        }
    }
}

const USAGE: &str = "usage: qgpu-load [--jobs N] [--tenants N] [--workers N] [--devices N]\n  [--qubits N] [--shots N] [--seed N] [--queue-cap N] [--mem-budget BYTES]\n  [--retries N] [--deadline-ms MS] [--tight-frac F] [--cancel-frac F]\n  [--inject-transfer P] [--inject-codec P] [--inject-worker P]\n  [--chaos-worker-panic P] [--chaos-fail-first N] [--chaos-device-loss D:MS]\n  [--chaos-kernel-flip P] [--timeout-s S] [--label NAME]\n  [--metrics-out PATH] [--bench-out PATH]";

fn parse_args() -> Result<Opts, String> {
    let mut o = Opts::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |flag: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--jobs" => {
                o.jobs = take("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?
            }
            "--tenants" => {
                o.tenants = take("--tenants")?
                    .parse()
                    .map_err(|e| format!("--tenants: {e}"))?;
            }
            "--workers" => {
                o.workers = take("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--devices" => {
                o.devices = take("--devices")?
                    .parse()
                    .map_err(|e| format!("--devices: {e}"))?;
            }
            "--qubits" => {
                o.qubits = take("--qubits")?
                    .parse()
                    .map_err(|e| format!("--qubits: {e}"))?;
            }
            "--shots" => {
                o.shots = take("--shots")?
                    .parse()
                    .map_err(|e| format!("--shots: {e}"))?;
            }
            "--seed" => {
                o.seed = take("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--queue-cap" => {
                o.queue_cap = take("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?;
            }
            "--mem-budget" => {
                o.mem_budget = Some(
                    take("--mem-budget")?
                        .parse()
                        .map_err(|e| format!("--mem-budget: {e}"))?,
                );
            }
            "--retries" => {
                o.retries = Some(
                    take("--retries")?
                        .parse()
                        .map_err(|e| format!("--retries: {e}"))?,
                );
            }
            "--deadline-ms" => {
                o.deadline_ms = Some(
                    take("--deadline-ms")?
                        .parse()
                        .map_err(|e| format!("--deadline-ms: {e}"))?,
                );
            }
            "--tight-frac" => {
                o.tight_frac = take("--tight-frac")?
                    .parse()
                    .map_err(|e| format!("--tight-frac: {e}"))?;
            }
            "--cancel-frac" => {
                o.cancel_frac = take("--cancel-frac")?
                    .parse()
                    .map_err(|e| format!("--cancel-frac: {e}"))?;
            }
            "--inject-transfer" => {
                o.inject_transfer = take("--inject-transfer")?
                    .parse()
                    .map_err(|e| format!("--inject-transfer: {e}"))?;
            }
            "--inject-codec" => {
                o.inject_codec = take("--inject-codec")?
                    .parse()
                    .map_err(|e| format!("--inject-codec: {e}"))?;
            }
            "--inject-worker" => {
                o.inject_worker = take("--inject-worker")?
                    .parse()
                    .map_err(|e| format!("--inject-worker: {e}"))?;
            }
            "--chaos-worker-panic" => {
                o.chaos_worker_panic = take("--chaos-worker-panic")?
                    .parse()
                    .map_err(|e| format!("--chaos-worker-panic: {e}"))?;
            }
            "--chaos-fail-first" => {
                o.chaos_fail_first = take("--chaos-fail-first")?
                    .parse()
                    .map_err(|e| format!("--chaos-fail-first: {e}"))?;
            }
            "--chaos-device-loss" => {
                let v = take("--chaos-device-loss")?;
                let (d, ms) = v
                    .split_once(':')
                    .ok_or_else(|| format!("--chaos-device-loss wants D:MS, got {v}"))?;
                o.chaos_device_loss = Some((
                    d.parse().map_err(|e| format!("--chaos-device-loss: {e}"))?,
                    ms.parse()
                        .map_err(|e| format!("--chaos-device-loss: {e}"))?,
                ));
            }
            "--chaos-kernel-flip" => {
                o.chaos_kernel_flip = take("--chaos-kernel-flip")?
                    .parse()
                    .map_err(|e| format!("--chaos-kernel-flip: {e}"))?;
            }
            "--timeout-s" => {
                o.timeout_s = take("--timeout-s")?
                    .parse()
                    .map_err(|e| format!("--timeout-s: {e}"))?;
            }
            "--label" => o.label = take("--label")?,
            "--metrics-out" => o.metrics_out = Some(take("--metrics-out")?),
            "--bench-out" => o.bench_out = Some(take("--bench-out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(o)
}

/// Keep intentional chaos panics (serve-level worker deaths) from
/// flooding stderr; real panics still print.
fn quiet_chaos_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let is_chaos = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("chaos:"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("chaos:"));
        if !is_chaos {
            default(info);
        }
    }));
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    quiet_chaos_panics();

    let base_cfg = || {
        let mut cfg = SimConfig::scaled_paper(opts.qubits).with_version(Version::QGpu);
        cfg.faults.p_transfer_corrupt = opts.inject_transfer;
        cfg.faults.p_codec_fail = opts.inject_codec;
        cfg.faults.p_worker_death = opts.inject_worker;
        // Kernel bit-flips force the ABFT invariant layer on: every
        // completed job must still be bit-identical to the reference,
        // proving detection + repair end to end under load.
        cfg.faults.p_kernel_flip = opts.chaos_kernel_flip;
        cfg
    };

    // Fault-free reference for the bit-identity assertion: same circuit,
    // same physics seed, zero injection.
    let circuit = Benchmark::Qft.generate(opts.qubits);
    let reference = {
        let mut cfg = SimConfig::scaled_paper(opts.qubits).with_version(Version::QGpu);
        cfg.shots = opts.shots;
        match Simulator::new(cfg).try_run(&circuit) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("[qgpu-load] fault-free reference run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    };

    let mut serve_cfg = ServeConfig::default()
        .with_workers(opts.workers)
        .with_devices(opts.devices)
        .with_chaos(ChaosConfig {
            seed: opts.seed,
            p_worker_panic: opts.chaos_worker_panic,
            fail_first_attempts: opts.chaos_fail_first,
        });
    if opts.queue_cap != usize::MAX {
        serve_cfg = serve_cfg.with_queue_cap(opts.queue_cap);
    }
    if let Some(budget) = opts.mem_budget {
        serve_cfg = serve_cfg.with_mem_budget(budget);
    }
    if let Some(n) = opts.retries {
        let mut retry = serve_cfg.retry;
        retry.max_retries = n;
        serve_cfg = serve_cfg.with_retry(retry);
    }
    if let Some(ms) = opts.deadline_ms {
        serve_cfg = serve_cfg.with_default_deadline(Duration::from_millis(ms));
    }
    let server = Server::new(serve_cfg);
    let tenants: Vec<String> = (0..opts.tenants.max(1)).map(|i| format!("t{i}")).collect();
    for (i, t) in tenants.iter().enumerate() {
        server.set_tenant_quota(t, (i + 1) as f64);
    }

    let start = Instant::now();
    let mut handles = Vec::new();
    let mut submit_times = Vec::new();
    let mut shed_client = 0usize;
    let mut cancelled_client = 0usize;
    let mut tight_jobs = 0usize;
    for i in 0..opts.jobs as u64 {
        let mut cfg = base_cfg();
        // Distinct machine-fault seed per job; physics seed stays the
        // class default so one reference covers every job.
        cfg.faults.seed = opts.seed ^ (i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut spec = JobSpec::new(circuit.clone(), cfg)
            .with_shots(opts.shots)
            .with_tenant(tenants[(i as usize) % tenants.len()].clone())
            .with_priority(match i % 3 {
                0 => Priority::Low,
                1 => Priority::Normal,
                _ => Priority::High,
            });
        let tight = opts.tight_frac > 0.0
            && (i as f64 + 0.5) / opts.jobs as f64 * opts.tight_frac.recip() < 1.0;
        if tight {
            spec = spec.with_deadline(Duration::from_micros(50));
            tight_jobs += 1;
        }
        match server.submit(spec) {
            Ok(handle) => {
                let cancel = opts.cancel_frac > 0.0
                    && !tight
                    && (i % (1.0 / opts.cancel_frac).max(1.0) as u64) == 1;
                if cancel {
                    handle.cancel();
                    cancelled_client += 1;
                }
                submit_times.push(Instant::now());
                handles.push(handle);
            }
            Err(reason) => {
                shed_client += 1;
                eprintln!("[qgpu-load] job {i} rejected: {reason}");
            }
        }
        // Fire the timed device kill once its moment arrives
        // (kill_device is idempotent, so re-hitting it is harmless).
        if let Some((device, ms)) = opts.chaos_device_loss {
            if start.elapsed() >= Duration::from_millis(ms) {
                server.kill_device(device);
            }
        }
    }
    // If submission outran the kill timer, wait for it and fire while
    // jobs are still in flight.
    if let Some((device, ms)) = opts.chaos_device_loss {
        let at = Duration::from_millis(ms);
        if start.elapsed() < at {
            std::thread::sleep(at - start.elapsed());
        }
        server.kill_device(device);
    }

    // Wait for every job; collect terminal states and latencies.
    let timeout = Duration::from_secs(opts.timeout_s);
    let mut violations = 0usize;
    let mut latencies_ms = Vec::new();
    let mut by_label: std::collections::BTreeMap<&'static str, usize> =
        std::collections::BTreeMap::new();
    let mut engine_codec_fallbacks = 0u64;
    let mut engine_chunk_retries = 0u64;
    let mut integrity_flips = 0u64;
    let mut integrity_violations = 0u64;
    let mut integrity_repairs = 0u64;
    let mut bit_mismatches = 0usize;
    for (handle, submitted) in handles.iter().zip(&submit_times) {
        let Some(status) = handle.wait_timeout(timeout) else {
            eprintln!(
                "[qgpu-load] VIOLATION: job {} non-terminal after {}s ({:?})",
                handle.id(),
                opts.timeout_s,
                handle.status()
            );
            violations += 1;
            continue;
        };
        *by_label.entry(status.label()).or_insert(0) += 1;
        if status == JobStatus::Completed {
            latencies_ms.push(submitted.elapsed().as_secs_f64() * 1e3);
            let result = handle.result().expect("completed job has a result");
            engine_codec_fallbacks += result.report.codec_fallbacks;
            engine_chunk_retries += result.report.chunk_retries;
            if let Some(s) = result.integrity {
                integrity_flips += s.flips_injected;
                integrity_violations += s.violations;
                integrity_repairs += s.repairs;
            }
            let state_ok = match (&result.state, &reference.state) {
                (Some(a), Some(b)) => a.max_deviation(b) == 0.0,
                _ => false,
            };
            if !state_ok || result.samples != reference.samples {
                eprintln!(
                    "[qgpu-load] VIOLATION: job {} completed but is not \
                     bit-identical to the fault-free reference",
                    handle.id()
                );
                bit_mismatches += 1;
                violations += 1;
            }
        }
    }
    let wall_s = start.elapsed().as_secs_f64();

    // Fold the engine-side recovery counters the completed jobs carried
    // into the serve recorder so --metrics-out is one document.
    let rec = server.metrics().recorder().clone();
    rec.add("engine.codec_fallbacks", engine_codec_fallbacks);
    rec.add("engine.chunk_retries", engine_chunk_retries);
    rec.add("engine.integrity_flips", integrity_flips);
    rec.add("engine.integrity_violations", integrity_violations);
    rec.add("engine.integrity_repairs", integrity_repairs);

    let metrics = server.metrics().clone();
    server.shutdown(ShutdownMode::Drain);

    let flat = metrics.recorder().metrics();
    let counter = |n: &str| {
        flat.counters
            .iter()
            .find(|(k, _)| k == n)
            .map_or(0, |(_, v)| *v)
    };
    latencies_ms.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let completed = latencies_ms.len();
    let throughput = completed as f64 / wall_s.max(1e-9);
    let (p50, p90, p99, p999) = (
        percentile(&latencies_ms, 50.0),
        percentile(&latencies_ms, 90.0),
        percentile(&latencies_ms, 99.0),
        percentile(&latencies_ms, 99.9),
    );

    println!("qgpu-load: {} jobs in {wall_s:.2}s", opts.jobs);
    for (label, n) in &by_label {
        println!("  {label:>18}: {n}");
    }
    println!("  client-side sheds: {shed_client}");
    println!("  client cancels: {cancelled_client}, tight deadlines: {tight_jobs}");
    println!(
        "  serve.retries: {}, serve.shed: {}, serve.worker_panics: {}, serve.devices_lost: {}",
        counter("serve.retries"),
        counter("serve.shed"),
        counter("serve.worker_panics"),
        counter("serve.devices_lost"),
    );
    println!(
        "  engine recovery on completed jobs: {engine_codec_fallbacks} codec fallback(s), \
         {engine_chunk_retries} chunk retry(ies)"
    );
    if opts.chaos_kernel_flip > 0.0 || integrity_flips > 0 {
        println!(
            "  integrity on completed jobs: {integrity_flips} flip(s) injected, \
             {integrity_violations} violation(s) detected, {integrity_repairs} repaired; \
             serve quarantines: {}",
            counter("serve.quarantines"),
        );
    }
    println!(
        "  completed: {completed} ({throughput:.1} jobs/s), latency ms \
         p50={p50:.1} p90={p90:.1} p99={p99:.1} p999={p999:.1}"
    );
    println!(
        "  bit-identity: {} checked, {} mismatched",
        completed, bit_mismatches
    );

    let meta = RunMeta::collect(
        &opts.label,
        opts.seed,
        &format!(
            "jobs={} tenants={} workers={} devices={} qubits={} shots={} \
             inject=({},{},{}) chaos_panic={} queue_cap={:?} mem_budget={:?}",
            opts.jobs,
            opts.tenants,
            opts.workers,
            opts.devices,
            opts.qubits,
            opts.shots,
            opts.inject_transfer,
            opts.inject_codec,
            opts.inject_worker,
            opts.chaos_worker_panic,
            opts.queue_cap,
            opts.mem_budget,
        ),
        env!("CARGO_PKG_VERSION"),
    );

    if let Some(path) = &opts.metrics_out {
        let mut doc = match flat.to_json() {
            Json::Obj(pairs) => pairs,
            other => vec![("metrics".to_string(), other)],
        };
        doc.insert(0, ("meta".to_string(), meta.to_json()));
        doc.push((
            "registry".to_string(),
            metrics.recorder().registry().snapshot().to_json(),
        ));
        if let Err(e) = std::fs::write(path, Json::Obj(doc).to_string()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[qgpu-load] metrics written to {path}");
    }

    if let Some(path) = &opts.bench_out {
        let pctl = |v: f64| Json::Num(v);
        let scenario = Json::Obj(vec![
            ("id".into(), Json::Str(opts.label.clone())),
            ("circuit".into(), Json::Str(format!("qft_{}", opts.qubits))),
            ("qubits".into(), Json::Num(opts.qubits as f64)),
            ("jobs".into(), Json::Num(opts.jobs as f64)),
            ("completed".into(), Json::Num(completed as f64)),
            ("wall_s".into(), Json::Num(wall_s)),
            ("throughput_jobs_per_s".into(), Json::Num(throughput)),
            (
                "percentiles".into(),
                Json::Obj(vec![(
                    "latency_ms".into(),
                    Json::Obj(vec![
                        ("p50".into(), pctl(p50)),
                        ("p90".into(), pctl(p90)),
                        ("p99".into(), pctl(p99)),
                        ("p999".into(), pctl(p999)),
                    ]),
                )]),
            ),
            (
                "counters".into(),
                Json::Obj(vec![
                    ("retries".into(), Json::Num(counter("serve.retries") as f64)),
                    ("shed".into(), Json::Num(counter("serve.shed") as f64)),
                    (
                        "cancelled".into(),
                        Json::Num(counter("serve.cancelled") as f64),
                    ),
                    (
                        "deadline_exceeded".into(),
                        Json::Num(counter("serve.deadline_exceeded") as f64),
                    ),
                ]),
            ),
        ]);
        let doc = Json::Obj(vec![
            ("schema".into(), Json::Str("qgpu-bench/v1".into())),
            ("meta".into(), meta.to_json()),
            ("scenarios".into(), Json::Arr(vec![scenario])),
        ]);
        if let Err(e) = std::fs::write(path, doc.to_string()) {
            eprintln!("error: {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[qgpu-load] bench document written to {path}");
    }

    if violations > 0 {
        eprintln!("[qgpu-load] FAILED: {violations} contract violation(s)");
        return ExitCode::FAILURE;
    }
    println!("[qgpu-load] OK: all jobs terminal, completions bit-identical");
    ExitCode::SUCCESS
}
