//! Serving-decision telemetry: `serve.*` registry metrics and flight
//! events from every admission, shed, retry, cancel, deadline, and
//! shutdown decision.
//!
//! All counters also land as flat recorder counters (the same shape
//! `qgpu-sim --metrics-out` emits), so `jq '.counters["serve.shed"]'`
//! works on a `qgpu-load --metrics-out` document without unpacking
//! label sets; the labeled registry versions carry the per-tenant
//! breakdown.

use std::sync::Arc;

use qgpu_obs::Recorder;

/// The server's shared recorder: counters, labeled registry metrics,
/// per-tenant latency histograms, and the flight-event ring.
#[derive(Clone)]
pub struct ServeMetrics {
    rec: Arc<Recorder>,
}

impl ServeMetrics {
    /// A metrics hub whose flight ring keeps `flight_events` events.
    pub fn new(flight_events: usize) -> Self {
        ServeMetrics {
            rec: Arc::new(Recorder::new().with_flight(flight_events).without_spans()),
        }
    }

    /// The underlying recorder (flight ring + registry + counters).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.rec
    }

    fn count(&self, name: &'static str, labels: &[(&'static str, &str)]) {
        self.rec.add(name, 1);
        self.rec.registry().add(name, labels, 1);
    }

    /// A job passed admission control.
    pub fn admitted(&self, tenant: &str) {
        self.count("serve.admitted", &[("tenant", tenant)]);
    }

    /// A job was refused; `reason` is the [`crate::RejectReason`] label.
    /// Queue-full and memory-pressure rejections also count as sheds.
    pub fn rejected(&self, tenant: &str, reason: &str, shed: bool) {
        self.count("serve.rejected", &[("tenant", tenant), ("reason", reason)]);
        if shed {
            self.rec.add("serve.shed", 1);
            self.rec
                .registry()
                .add("serve.shed", &[("tenant", tenant)], 1);
            self.rec
                .flight("shed", || format!("tenant '{tenant}' load-shed: {reason}"));
        }
    }

    /// Admission degraded a job's config instead of shedding it.
    pub fn degraded(&self, tenant: &str, action: &str) {
        self.count("serve.degraded", &[("tenant", tenant), ("action", action)]);
        self.rec.flight("downshift", || {
            format!("admission degraded tenant '{tenant}' job: {action}")
        });
    }

    /// A recoverable failure triggered a re-execution.
    pub fn retried(&self, tenant: &str, job: u64, attempt: u32, err: &str) {
        self.count("serve.retries", &[("tenant", tenant)]);
        self.rec.flight("retry", || {
            format!("job {job} attempt {attempt} retrying after: {err}")
        });
    }

    /// A serve-level worker thread died mid-job.
    pub fn worker_panic(&self, job: u64, attempt: u32) {
        self.count("serve.worker_panics", &[]);
        self.rec.flight("worker_restart", || {
            format!("worker died running job {job} attempt {attempt}")
        });
    }

    /// A fleet device was killed; `evicted` jobs were re-queued.
    pub fn device_lost(&self, device: usize, evicted: usize) {
        self.count("serve.devices_lost", &[]);
        self.rec.flight("device_loss", || {
            format!("device {device} lost; {evicted} running job(s) evicted")
        });
    }

    /// A job reached a terminal state; `label` is
    /// [`crate::JobStatus::label`].
    pub fn terminal(&self, tenant: &str, label: &'static str) {
        match label {
            "completed" => self.count("serve.completed", &[("tenant", tenant)]),
            "failed" => self.count("serve.failed", &[("tenant", tenant)]),
            "cancelled" => self.count("serve.cancelled", &[("tenant", tenant)]),
            "deadline_exceeded" => {
                self.count("serve.deadline_exceeded", &[("tenant", tenant)]);
                self.rec
                    .flight("deadline", || format!("tenant '{tenant}' job deadlined"));
            }
            _ => self.count("serve.terminal_other", &[("tenant", tenant)]),
        }
    }

    /// Tenant queue depth after an enqueue/dequeue.
    pub fn queue_depth(&self, tenant: &str, depth: usize) {
        self.rec
            .registry()
            .set_gauge("serve.queue_depth", &[("tenant", tenant)], depth as f64);
    }

    /// End-to-end latency of a completed job (submit → terminal).
    pub fn latency_ms(&self, tenant: &str, ms: u64) {
        self.rec
            .registry()
            .observe("serve.latency_ms", &[("tenant", tenant)], ms);
    }

    /// Queue wait of a job's first attempt (submit → first run).
    pub fn queue_wait_ms(&self, tenant: &str, ms: u64) {
        self.rec
            .registry()
            .observe("serve.queue_wait_ms", &[("tenant", tenant)], ms);
    }

    /// A completed job reported ABFT invariant violations that were
    /// detected and repaired on `device`.
    pub fn integrity_violations(&self, device: usize, count: u64) {
        self.rec.add("serve.integrity_violations", count);
        let dev = device.to_string();
        self.rec
            .registry()
            .add("serve.integrity_violations", &[("device", &dev)], count);
    }

    /// A health-board transition for a fleet device; `state` is
    /// [`qgpu_sched::HealthState::label`]. Quarantines and
    /// reinstatements are fault-class flight events; the gauge tracks
    /// how many devices remain schedulable without probing.
    pub fn health_transition(
        &self,
        device: usize,
        transition: &'static str,
        state: &'static str,
        healthy: usize,
    ) {
        self.count(
            "serve.health_transitions",
            &[("transition", transition), ("state", state)],
        );
        match transition {
            "quarantined" => {
                self.rec.add("serve.quarantines", 1);
                self.rec.flight("quarantine", || {
                    format!("fleet device {device} quarantined; {healthy} device(s) still healthy")
                });
            }
            "reinstated" => {
                self.rec.add("serve.reinstatements", 1);
                self.rec.flight("quarantine", || {
                    format!("fleet device {device} reinstated; {healthy} device(s) healthy")
                });
            }
            _ => {}
        }
        self.rec
            .registry()
            .set_gauge("serve.fleet_healthy", &[], healthy as f64);
    }

    /// A placement probe was routed to a quarantined device.
    pub fn probe(&self, device: usize) {
        let dev = device.to_string();
        self.rec.add("serve.probes", 1);
        self.rec
            .registry()
            .add("serve.probes", &[("device", &dev)], 1);
    }

    /// Shutdown decision and what it affected.
    pub fn shutdown(&self, mode: &'static str, drained: usize, aborted: usize) {
        self.rec.add("serve.shutdowns", 1);
        self.rec.flight("shutdown", || {
            format!("{mode} shutdown: {drained} job(s) drained, {aborted} aborted")
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_flat_and_labeled() {
        let m = ServeMetrics::new(64);
        m.admitted("acme");
        m.admitted("acme");
        m.rejected("acme", "queue_full", true);
        let flat = m.recorder().metrics().counters;
        assert!(flat.iter().any(|(n, v)| n == "serve.admitted" && *v == 2));
        assert!(flat.iter().any(|(n, v)| n == "serve.shed" && *v == 1));
        let snap = m.recorder().registry().snapshot();
        assert_eq!(snap.counter("serve.admitted{tenant=acme}"), Some(2));
        assert!(
            m.recorder().flight_triggered(),
            "a shed is a fault-class flight event"
        );
    }
}
