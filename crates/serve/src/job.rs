//! Job specifications, lifecycle states, and the caller's handle.
//!
//! A job's status walks a small state machine (DESIGN.md §12):
//!
//! ```text
//! submit ──► Queued ──► Running{attempt} ──► Completed
//!    │          │            │  ▲               Failed
//!    ▼          │            ▼  │ retry         Cancelled
//! Rejected      └──────► Cancelled / DeadlineExceeded
//! ```
//!
//! Every job reaches exactly one *terminal* state — `Completed`,
//! `Failed`, `Rejected`, `Cancelled`, or `DeadlineExceeded` — and the
//! transition into it happens exactly once (first writer wins, under
//! the record's mutex), no matter how reaper, canceller, and worker
//! race.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use qgpu::{RunResult, SimConfig};
use qgpu_circuit::Circuit;
use qgpu_faults::CancelToken;
use std::sync::Arc;

/// Server-assigned job identifier, unique per server instance.
pub type JobId = u64;

/// Scheduling priority. Higher priority makes a job *cheaper* in the
/// fair scheduler's virtual time, so its tenant is served sooner and
/// more often — it never reorders a tenant's own FIFO (which is what
/// keeps the scheduler starvation-proof by construction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum Priority {
    /// Background work.
    Low,
    /// The default.
    #[default]
    Normal,
    /// Latency-sensitive work.
    High,
}

impl Priority {
    /// The priority's weight multiplier in the fair scheduler.
    pub fn weight(self) -> f64 {
        match self {
            Priority::Low => 0.5,
            Priority::Normal => 1.0,
            Priority::High => 2.0,
        }
    }
}

/// Everything a caller submits: the circuit, how to run it, and the
/// serving contract (tenant, deadline, priority).
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// The circuit to simulate.
    pub circuit: Circuit,
    /// End-of-circuit measurement shots (overrides `config.shots`).
    pub shots: u64,
    /// Engine configuration. One engine pass serves all shots — the
    /// plan/reorder/prune work is amortized across the whole batch.
    pub config: SimConfig,
    /// Tenant the job is billed to (per-tenant queue + quota weight).
    pub tenant: String,
    /// Wall-clock budget from submission; `None` uses the server
    /// default (which may also be `None` — no deadline).
    pub deadline: Option<Duration>,
    /// Scheduling priority.
    pub priority: Priority,
}

impl JobSpec {
    /// A spec with the default serving contract: tenant `"default"`,
    /// normal priority, server-default deadline.
    pub fn new(circuit: Circuit, config: SimConfig) -> Self {
        let shots = config.shots;
        JobSpec {
            circuit,
            shots,
            config,
            tenant: "default".to_string(),
            deadline: None,
            priority: Priority::Normal,
        }
    }

    /// Sets the tenant.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = tenant.into();
        self
    }

    /// Sets the shot count.
    pub fn with_shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the wall-clock deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the priority.
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Why admission control refused a job. Load shedding is always
/// explicit — a refused job gets a reason, never a silent drop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RejectReason {
    /// The tenant's bounded queue is full (backpressure).
    QueueFull {
        /// The tenant whose queue overflowed.
        tenant: String,
    },
    /// Admitting the job would exceed the memory budget and the
    /// pressure governor had no degradation rung left to offer.
    MemoryPressure,
    /// The server is shutting down and accepts no new work.
    ShuttingDown,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RejectReason::QueueFull { tenant } => {
                write!(f, "tenant '{tenant}' queue is full")
            }
            RejectReason::MemoryPressure => f.write_str("memory admission control refused"),
            RejectReason::ShuttingDown => f.write_str("server is shutting down"),
        }
    }
}

/// A job's lifecycle state.
#[derive(Debug, Clone, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting in its tenant's queue.
    Queued,
    /// Executing on a device slot.
    Running {
        /// The fleet slot the attempt runs on.
        device: usize,
        /// 0-based attempt number (> 0 after a retry).
        attempt: u32,
    },
    /// Finished; the result is available. Terminal.
    Completed,
    /// Every attempt failed; the *last* underlying error is carried
    /// verbatim. Terminal.
    Failed {
        /// Display rendering of the final [`qgpu::SimError`].
        error: String,
    },
    /// Admission control refused the job. Terminal.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// The caller cancelled it (queued or mid-run). Terminal.
    Cancelled,
    /// The wall-clock deadline passed before completion. Terminal.
    DeadlineExceeded,
}

impl JobStatus {
    /// Whether this state is final — the chaos harness's core
    /// assertion is that every job reaches one of these.
    pub fn is_terminal(&self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Running { .. })
    }

    /// Short label for metrics and summaries.
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running { .. } => "running",
            JobStatus::Completed => "completed",
            JobStatus::Failed { .. } => "failed",
            JobStatus::Rejected { .. } => "rejected",
            JobStatus::Cancelled => "cancelled",
            JobStatus::DeadlineExceeded => "deadline_exceeded",
        }
    }
}

struct JobState {
    status: JobStatus,
    result: Option<Arc<RunResult>>,
    attempts: u32,
}

/// The server-side record of one job, shared between the caller's
/// [`JobHandle`], the scheduler, the reaper, and the worker running it.
pub(crate) struct JobRecord {
    pub(crate) id: JobId,
    pub(crate) tenant: String,
    pub(crate) submitted: Instant,
    pub(crate) deadline_at: Option<Instant>,
    /// The caller asked for cancellation (sticky across retries).
    pub(crate) cancel_requested: AtomicBool,
    /// The reaper saw the deadline pass (sticky across retries).
    pub(crate) deadline_hit: AtomicBool,
    /// The *current attempt's* engine token; replaced on retry so a
    /// reaper/cancel/evict trip always reaches the run in flight.
    pub(crate) token: Mutex<CancelToken>,
    state: Mutex<JobState>,
    cv: Condvar,
}

impl JobRecord {
    pub(crate) fn new(id: JobId, tenant: String, deadline_at: Option<Instant>) -> Self {
        JobRecord {
            id,
            tenant,
            submitted: Instant::now(),
            deadline_at,
            cancel_requested: AtomicBool::new(false),
            deadline_hit: AtomicBool::new(false),
            token: Mutex::new(CancelToken::new()),
            state: Mutex::new(JobState {
                status: JobStatus::Queued,
                result: None,
                attempts: 0,
            }),
            cv: Condvar::new(),
        }
    }

    pub(crate) fn status(&self) -> JobStatus {
        self.state.lock().unwrap().status.clone()
    }

    pub(crate) fn attempts(&self) -> u32 {
        self.state.lock().unwrap().attempts
    }

    /// Marks an attempt as running (non-terminal transition).
    pub(crate) fn set_running(&self, device: usize, attempt: u32) -> bool {
        let mut st = self.state.lock().unwrap();
        if st.status.is_terminal() {
            return false;
        }
        st.status = JobStatus::Running { device, attempt };
        st.attempts = attempt + 1;
        drop(st);
        self.cv.notify_all();
        true
    }

    /// Transitions into a terminal state; the first writer wins. Every
    /// waiter is woken. Returns whether this call performed the
    /// transition.
    pub(crate) fn finish(&self, status: JobStatus, result: Option<RunResult>) -> bool {
        debug_assert!(status.is_terminal());
        let mut st = self.state.lock().unwrap();
        if st.status.is_terminal() {
            return false;
        }
        st.status = status;
        st.result = result.map(Arc::new);
        drop(st);
        self.cv.notify_all();
        true
    }

    pub(crate) fn result(&self) -> Option<Arc<RunResult>> {
        self.state.lock().unwrap().result.clone()
    }

    /// The device this job is currently running on, if any.
    pub(crate) fn running_device(&self) -> Option<usize> {
        match self.state.lock().unwrap().status {
            JobStatus::Running { device, .. } => Some(device),
            _ => None,
        }
    }

    /// Installs a fresh token for the next attempt and returns it.
    pub(crate) fn arm_token(&self) -> CancelToken {
        let fresh = CancelToken::new();
        *self.token.lock().unwrap() = fresh.clone();
        fresh
    }

    /// Applies `f` to the current attempt's token.
    pub(crate) fn with_token(&self, f: impl FnOnce(&CancelToken)) {
        f(&self.token.lock().unwrap());
    }

    /// Blocks until the job is terminal, or `timeout` elapses.
    pub(crate) fn wait_timeout(&self, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        while !st.status.is_terminal() {
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self.cv.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
        Some(st.status.clone())
    }
}

/// The caller's handle to a submitted job: poll status, wait, fetch
/// the result, or cancel.
#[derive(Clone)]
pub struct JobHandle {
    pub(crate) rec: Arc<JobRecord>,
}

impl JobHandle {
    /// The server-assigned job id.
    pub fn id(&self) -> JobId {
        self.rec.id
    }

    /// The tenant the job was billed to.
    pub fn tenant(&self) -> &str {
        &self.rec.tenant
    }

    /// The job's current lifecycle state.
    pub fn status(&self) -> JobStatus {
        self.rec.status()
    }

    /// How many attempts have started (1 for a clean first run).
    pub fn attempts(&self) -> u32 {
        self.rec.attempts()
    }

    /// Blocks until the job reaches a terminal state, or `timeout`
    /// elapses (`None` = timed out, the job is still in flight).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobStatus> {
        self.rec.wait_timeout(timeout)
    }

    /// The completed run's result, once `status()` is
    /// [`JobStatus::Completed`].
    pub fn result(&self) -> Option<Arc<RunResult>> {
        self.rec.result()
    }

    /// Requests cancellation: trips the in-flight attempt's token (the
    /// engine stops at its next gate boundary) and marks the request
    /// sticky so a pending retry cannot resurrect the job. Queued jobs
    /// are discarded by the scheduler when they surface.
    pub fn cancel(&self) {
        self.rec.cancel_requested.store(true, Ordering::Release);
        self.rec.with_token(|t| {
            t.cancel();
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_transition_is_exactly_once() {
        let rec = JobRecord::new(1, "t".into(), None);
        assert!(!rec.status().is_terminal());
        assert!(rec.finish(JobStatus::Cancelled, None));
        assert!(
            !rec.finish(JobStatus::Completed, None),
            "second terminal write must lose"
        );
        assert_eq!(rec.status(), JobStatus::Cancelled);
    }

    #[test]
    fn wait_timeout_observes_finish() {
        let rec = Arc::new(JobRecord::new(2, "t".into(), None));
        let waiter = {
            let rec = Arc::clone(&rec);
            std::thread::spawn(move || rec.wait_timeout(Duration::from_secs(5)))
        };
        rec.finish(JobStatus::Completed, None);
        assert_eq!(waiter.join().unwrap(), Some(JobStatus::Completed));
    }

    #[test]
    fn priority_weights_are_ordered() {
        assert!(Priority::High.weight() > Priority::Normal.weight());
        assert!(Priority::Normal.weight() > Priority::Low.weight());
    }
}
