//! Starvation-proof weighted fair queuing across tenants.
//!
//! Classic WFQ / start-time fair queuing: each tenant is a *flow* with
//! a quota weight; every enqueued item is stamped with a virtual finish
//! time `vft = max(flow.vt, global_vt) + cost / (quota × priority)`,
//! and dequeue always picks the flow whose head has the smallest
//! stamp. Two properties fall out:
//!
//! * **Starvation-proof**: stamps are finite and strictly increasing
//!   within a flow, and the global virtual clock only advances to the
//!   stamp of dequeued work — so any queued item's stamp is eventually
//!   the minimum. Every admitted item is dequeued in bounded turns.
//! * **Quota tracking**: with all flows backlogged, flow `i` receives
//!   a share of dequeues proportional to its weight (the fairness
//!   proptest pins this within tolerance).
//!
//! The scheduler is deliberately pure (no threads, no clocks) so its
//! fairness properties are testable in isolation; the server wraps it
//! in a mutex and drives it from the scheduler thread.

use std::collections::{HashMap, VecDeque};

/// Default quota weight for tenants never configured explicitly.
pub const DEFAULT_WEIGHT: f64 = 1.0;

struct Entry<T> {
    vft: f64,
    item: T,
}

struct Flow<T> {
    weight: f64,
    /// The flow's virtual time: the stamp of its most recent enqueue.
    vt: f64,
    queue: VecDeque<Entry<T>>,
}

/// A pure weighted-fair-queuing scheduler over named flows (tenants).
pub struct FairScheduler<T> {
    flows: HashMap<String, Flow<T>>,
    global_vt: f64,
    depth: usize,
}

impl<T> FairScheduler<T> {
    /// An empty scheduler.
    pub fn new() -> Self {
        FairScheduler {
            flows: HashMap::new(),
            global_vt: 0.0,
            depth: 0,
        }
    }

    /// Sets a tenant's quota weight (clamped to a small positive floor
    /// so a zero/negative quota cannot produce infinite stamps).
    pub fn set_weight(&mut self, tenant: &str, weight: f64) {
        let w = if weight.is_finite() && weight > 0.0 {
            weight
        } else {
            DEFAULT_WEIGHT
        };
        self.flow_mut(tenant).weight = w;
    }

    fn flow_mut(&mut self, tenant: &str) -> &mut Flow<T> {
        if !self.flows.contains_key(tenant) {
            self.flows.insert(
                tenant.to_string(),
                Flow {
                    weight: DEFAULT_WEIGHT,
                    vt: 0.0,
                    queue: VecDeque::new(),
                },
            );
        }
        self.flows.get_mut(tenant).expect("just inserted")
    }

    /// Queued items for one tenant.
    pub fn depth(&self, tenant: &str) -> usize {
        self.flows.get(tenant).map_or(0, |f| f.queue.len())
    }

    /// Queued items across all tenants.
    pub fn total_depth(&self) -> usize {
        self.depth
    }

    /// Enqueues an item for `tenant` with the given virtual `cost` and
    /// priority weight; returns the tenant's queue depth afterwards.
    pub fn enqueue(&mut self, tenant: &str, priority_weight: f64, cost: f64, item: T) -> usize {
        let global_vt = self.global_vt;
        let flow = self.flow_mut(tenant);
        let rate = (flow.weight * priority_weight.max(1e-9)).max(1e-9);
        let start = flow.vt.max(global_vt);
        let vft = start + cost.max(0.0) / rate;
        flow.vt = vft;
        flow.queue.push_back(Entry { vft, item });
        let depth = flow.queue.len();
        self.depth += 1;
        depth
    }

    /// Dequeues the item with the smallest virtual finish time across
    /// all flows, advancing the global virtual clock to its stamp.
    pub fn dequeue(&mut self) -> Option<T> {
        let tenant = self
            .flows
            .iter()
            .filter_map(|(name, f)| f.queue.front().map(|e| (name, e.vft)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(b.0)))
            .map(|(name, _)| name.clone())?;
        let flow = self.flows.get_mut(&tenant).expect("selected flow exists");
        let entry = flow.queue.pop_front().expect("selected head exists");
        self.global_vt = self.global_vt.max(entry.vft);
        self.depth -= 1;
        Some(entry.item)
    }
}

impl<T> Default for FairScheduler<T> {
    fn default() -> Self {
        FairScheduler::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn within_flow_order_is_fifo() {
        let mut s = FairScheduler::new();
        // High priority enqueued later must not overtake the same
        // tenant's earlier item — that is the starvation guarantee.
        s.enqueue("a", 1.0, 1.0, 1);
        s.enqueue("a", 8.0, 1.0, 2);
        assert_eq!(s.dequeue(), Some(1));
        assert_eq!(s.dequeue(), Some(2));
        assert_eq!(s.dequeue(), None);
    }

    #[test]
    fn weights_shape_interleaving() {
        let mut s = FairScheduler::new();
        s.set_weight("heavy", 3.0);
        s.set_weight("light", 1.0);
        for i in 0..12 {
            s.enqueue("heavy", 1.0, 1.0, ("heavy", i));
            s.enqueue("light", 1.0, 1.0, ("light", i));
        }
        let first_eight: Vec<_> = (0..8).map(|_| s.dequeue().unwrap().0).collect();
        let heavy = first_eight.iter().filter(|&&t| t == "heavy").count();
        assert!(
            heavy >= 5,
            "3:1 weights must skew early service: {first_eight:?}"
        );
        // Everything still drains.
        while s.dequeue().is_some() {}
        assert_eq!(s.total_depth(), 0);
    }

    #[test]
    fn idle_flow_rejoins_at_the_global_clock() {
        let mut s = FairScheduler::new();
        for i in 0..100 {
            s.enqueue("busy", 1.0, 1.0, ("busy", i));
        }
        for _ in 0..50 {
            s.dequeue();
        }
        // A newcomer does not get 50 units of banked credit — it joins
        // at the current virtual time and interleaves, rather than
        // monopolizing the scheduler.
        s.enqueue("new", 1.0, 1.0, ("new", 0));
        let next_two: Vec<_> = (0..2).map(|_| s.dequeue().unwrap().0).collect();
        assert!(next_two.contains(&"new"));
        assert!(next_two.contains(&"busy"));
    }
}
