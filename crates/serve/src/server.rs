//! The job server: admission control, fair scheduling, worker pool,
//! deadline reaper, retries, and graceful shutdown.
//!
//! Thread layout (all plain `std::thread` over a shared `Inner`):
//!
//! * **scheduler** — owns the [`FairScheduler`], purges jobs whose
//!   cancellation/deadline fired while queued, picks the least-loaded
//!   surviving device, and feeds a bounded crossbeam channel (capacity
//!   1, so queued work stays in the *fair* queue, not the channel).
//! * **workers** (N) — pull dispatches, run the engine with a
//!   per-attempt [`CancelToken`], convert worker panics into
//!   [`SimError::WorkerLost`], and drive `RetryPolicy`-bounded
//!   re-execution with a fresh fault seed per attempt (same physics
//!   seed — replay is bit-exact).
//! * **reaper** — ticks every `reaper_interval`, trips the token of any
//!   job whose wall-clock deadline passed (queued jobs are discarded by
//!   the scheduler when they surface; running jobs abort at the next
//!   gate boundary), and prunes terminal jobs from the registry.
//!
//! Admission control consults the shared [`PressureGovernor`]: a job
//! that would exceed the memory budget is shed (`Rejected`, never a
//! silent drop) until sustained pressure unlocks a standing degradation
//! rung — smaller chunks, then forced compression — after which
//! over-budget jobs are admitted in degraded-but-bit-exact form.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel;
use qgpu::config::OptFlags;
use qgpu::{RunResult, SimError, Simulator};
use qgpu_faults::{CancelReason, RetryPolicy};
use qgpu_sched::devicegroup::{PressureAction, PressureGovernor};
use qgpu_sched::health::HealthSnapshot;
use qgpu_sched::{DeviceHealthBoard, HealthState, HealthTransition};

use crate::job::{JobHandle, JobId, JobRecord, JobSpec, JobStatus, RejectReason};
use crate::metrics::ServeMetrics;
use crate::sched::FairScheduler;

/// Seeded serve-level fault injection for the chaos harness. Worker
/// deaths are *real* panics unwound out of the engine call and caught
/// at the worker boundary — the recovery path under test is the same
/// one a genuine bug would take.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaosConfig {
    /// Seed for the per-(job, attempt) panic draw.
    pub seed: u64,
    /// Probability that a given (job, attempt) pair dies mid-run.
    pub p_worker_panic: f64,
    /// Deterministic variant: every job's first N attempts die. Useful
    /// for exact retry-count assertions.
    pub fail_first_attempts: u32,
}

impl ChaosConfig {
    /// Pure decision: does this (job, attempt) die? Same seed ⇒ same
    /// deaths, independent of worker interleaving.
    fn panics(&self, job: JobId, attempt: u32) -> bool {
        if attempt < self.fail_first_attempts {
            return true;
        }
        if self.p_worker_panic <= 0.0 {
            return false;
        }
        let draw = splitmix64(
            self.seed
                ^ job.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ u64::from(attempt).wrapping_mul(0xD134_2543_DE82_EF95),
        );
        ((draw >> 11) as f64 / (1u64 << 53) as f64) < self.p_worker_panic
    }
}

/// Server configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing jobs.
    pub workers: usize,
    /// Fleet device slots jobs are dealt across.
    pub devices: usize,
    /// Bound on each tenant's queue; admission sheds beyond it.
    pub max_queue_per_tenant: usize,
    /// Memory admission budget over the committed state bytes of
    /// queued + running jobs (`None` = unlimited).
    pub mem_budget_bytes: Option<u64>,
    /// Job-level re-execution policy for recoverable failures.
    pub retry: RetryPolicy,
    /// Deadline applied to jobs that do not bring their own.
    pub default_deadline: Option<Duration>,
    /// Reaper tick.
    pub reaper_interval: Duration,
    /// Flight-recorder ring capacity.
    pub flight_events: usize,
    /// Serve-level fault injection.
    pub chaos: ChaosConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            devices: 1,
            max_queue_per_tenant: 64,
            mem_budget_bytes: None,
            retry: RetryPolicy::default(),
            default_deadline: None,
            reaper_interval: Duration::from_millis(1),
            flight_events: qgpu_obs::DEFAULT_FLIGHT_EVENTS,
            chaos: ChaosConfig::default(),
        }
    }
}

impl ServeConfig {
    /// Sets the worker-thread count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the fleet device-slot count.
    pub fn with_devices(mut self, devices: usize) -> Self {
        self.devices = devices.max(1);
        self
    }

    /// Sets the per-tenant queue bound.
    pub fn with_queue_cap(mut self, cap: usize) -> Self {
        self.max_queue_per_tenant = cap.max(1);
        self
    }

    /// Sets the memory admission budget.
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        self.mem_budget_bytes = Some(bytes);
        self
    }

    /// Sets the job-level retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Sets the default deadline.
    pub fn with_default_deadline(mut self, deadline: Duration) -> Self {
        self.default_deadline = Some(deadline);
        self
    }

    /// Sets the chaos configuration.
    pub fn with_chaos(mut self, chaos: ChaosConfig) -> Self {
        self.chaos = chaos;
        self
    }
}

/// How [`Server::shutdown`] treats in-flight work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShutdownMode {
    /// Stop admissions, run every queued and in-flight job to a
    /// natural terminal state, then exit.
    Drain,
    /// Stop admissions and cancel everything still queued or running
    /// (each lands in `Cancelled`, never a silent drop).
    Abort,
}

struct PendingJob {
    rec: Arc<JobRecord>,
    spec: JobSpec,
    /// Bytes charged against the admission budget, released at
    /// terminal transition.
    charged: u64,
}

struct Dispatch {
    job: PendingJob,
    device: usize,
}

struct DeviceSlot {
    alive: bool,
    running: usize,
}

struct ServeState {
    sched: FairScheduler<PendingJob>,
    jobs: Vec<Arc<JobRecord>>,
    devices: Vec<DeviceSlot>,
    /// Per-device fault scoreboard: jobs whose results carried repaired
    /// invariant violations (or that needed recoverable retries) raise
    /// a device's score; quarantined devices are skipped by
    /// [`pick_device`] except for periodic probe placements.
    board: DeviceHealthBoard,
    governor: Option<PressureGovernor>,
    committed_bytes: u64,
    /// Admitted-but-not-terminal jobs per tenant. This (not the raw
    /// scheduler depth) backs the queue bound, so jobs the scheduler
    /// has pre-pulled toward the worker channel still count.
    active: std::collections::HashMap<String, usize>,
    /// Standing degradation rungs unlocked by sustained pressure.
    degrade_shrink: bool,
    degrade_compress: bool,
    next_id: JobId,
}

struct Inner {
    cfg: ServeConfig,
    metrics: ServeMetrics,
    state: Mutex<ServeState>,
    wake: Condvar,
    /// No new admissions.
    closed: AtomicBool,
    /// Scheduler discards queued work; workers stop retrying.
    abort: AtomicBool,
    reaper_stop: AtomicBool,
}

/// A running job server. Dropping it without calling
/// [`Server::shutdown`] performs an abort shutdown (nothing hangs,
/// every job still reaches a terminal state).
pub struct Server {
    inner: Arc<Inner>,
    threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the scheduler, worker pool, and reaper.
    pub fn new(cfg: ServeConfig) -> Self {
        let cfg = ServeConfig {
            workers: cfg.workers.max(1),
            devices: cfg.devices.max(1),
            max_queue_per_tenant: cfg.max_queue_per_tenant.max(1),
            ..cfg
        };
        let metrics = ServeMetrics::new(cfg.flight_events);
        let governor = cfg.mem_budget_bytes.map(PressureGovernor::new);
        let devices = (0..cfg.devices)
            .map(|_| DeviceSlot {
                alive: true,
                running: 0,
            })
            .collect();
        let inner = Arc::new(Inner {
            cfg: cfg.clone(),
            metrics,
            state: Mutex::new(ServeState {
                sched: FairScheduler::new(),
                jobs: Vec::new(),
                devices,
                board: DeviceHealthBoard::new(cfg.devices),
                governor,
                committed_bytes: 0,
                active: std::collections::HashMap::new(),
                degrade_shrink: false,
                degrade_compress: false,
                next_id: 0,
            }),
            wake: Condvar::new(),
            closed: AtomicBool::new(false),
            abort: AtomicBool::new(false),
            reaper_stop: AtomicBool::new(false),
        });

        let (tx, rx) = channel::bounded::<Dispatch>(1);
        let mut threads = Vec::new();
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || scheduler_loop(&inner, tx)));
        }
        for _ in 0..cfg.workers {
            let inner = Arc::clone(&inner);
            let rx = rx.clone();
            threads.push(std::thread::spawn(move || worker_loop(&inner, rx)));
        }
        drop(rx);
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || reaper_loop(&inner)));
        }
        Server { inner, threads }
    }

    /// The server's metrics hub (registry, counters, flight ring).
    pub fn metrics(&self) -> &ServeMetrics {
        &self.inner.metrics
    }

    /// Health-board snapshot for a fleet device slot (EMA score, state,
    /// and event tallies). Load harnesses and tests use this to assert
    /// quarantine decisions.
    pub fn device_health(&self, device: usize) -> HealthSnapshot {
        self.inner.state.lock().unwrap().board.snapshot(device)
    }

    /// Sets a tenant's quota weight in the fair scheduler.
    pub fn set_tenant_quota(&self, tenant: &str, weight: f64) {
        self.inner
            .state
            .lock()
            .unwrap()
            .sched
            .set_weight(tenant, weight);
    }

    /// Submits a job through admission control. Refusals are explicit:
    /// the error names why, and the same decision lands in metrics and
    /// the flight ring.
    pub fn submit(&self, spec: JobSpec) -> Result<JobHandle, RejectReason> {
        let inner = &self.inner;
        if inner.closed.load(Ordering::Acquire) {
            inner.metrics.rejected(&spec.tenant, "shutting_down", false);
            return Err(RejectReason::ShuttingDown);
        }
        let mut spec = spec;
        let mut st = inner.state.lock().unwrap();

        // Backpressure: bounded per-tenant queues (admitted and not yet
        // terminal — queued, dispatched, or running).
        if st.active.get(&spec.tenant).copied().unwrap_or(0) >= inner.cfg.max_queue_per_tenant {
            inner.metrics.rejected(&spec.tenant, "queue_full", true);
            return Err(RejectReason::QueueFull {
                tenant: spec.tenant.clone(),
            });
        }

        // Memory admission control under the pressure governor.
        let mut charged = 16u64 << spec.circuit.num_qubits().min(58);
        if let Some(budget) = inner.cfg.mem_budget_bytes {
            if st.committed_bytes + charged <= budget {
                if let Some(g) = st.governor.as_mut() {
                    g.on_relief();
                }
            }
            while st.committed_bytes + charged > budget {
                let qubits = spec.circuit.num_qubits() as u32;
                let flags = spec
                    .config
                    .opts
                    .unwrap_or_else(|| spec.config.version.opt_flags());
                let can_shrink = spec.config.chunk_count_log2 + 1 < qubits;
                let can_compress = !flags.compression;
                let action = if st.degrade_shrink && can_shrink {
                    Some(PressureAction::ShrinkChunks)
                } else if st.degrade_compress && can_compress {
                    Some(PressureAction::ForceCompress)
                } else {
                    st.governor
                        .as_mut()
                        .expect("budget implies governor")
                        .on_pressure(can_shrink, can_compress)
                };
                match action {
                    Some(PressureAction::ShrinkChunks) if can_shrink => {
                        // Finer chunks shrink the in-flight window
                        // footprint; results stay bit-identical at any
                        // chunk size.
                        st.degrade_shrink = true;
                        spec.config.chunk_count_log2 += 1;
                        charged = charged / 4 * 3;
                        inner.metrics.degraded(&spec.tenant, "shrink_chunks");
                    }
                    Some(PressureAction::ForceCompress) if can_compress => {
                        st.degrade_compress = true;
                        spec.config.opts = Some(OptFlags {
                            compression: true,
                            ..flags
                        });
                        charged /= 2;
                        inner.metrics.degraded(&spec.tenant, "force_compress");
                    }
                    _ => {
                        inner
                            .metrics
                            .rejected(&spec.tenant, "memory_pressure", true);
                        return Err(RejectReason::MemoryPressure);
                    }
                }
            }
        }

        st.committed_bytes += charged;
        *st.active.entry(spec.tenant.clone()).or_insert(0) += 1;
        st.next_id += 1;
        let id = st.next_id;
        let deadline_at = spec
            .deadline
            .or(inner.cfg.default_deadline)
            .map(|d| Instant::now() + d);
        let rec = Arc::new(JobRecord::new(id, spec.tenant.clone(), deadline_at));
        st.jobs.push(Arc::clone(&rec));
        let cost = spec.circuit.len().max(1) as f64;
        let prio = spec.priority.weight();
        let tenant = spec.tenant.clone();
        let depth = st.sched.enqueue(
            &tenant,
            prio,
            cost,
            PendingJob {
                rec: Arc::clone(&rec),
                spec,
                charged,
            },
        );
        drop(st);
        inner.metrics.admitted(&tenant);
        inner.metrics.queue_depth(&tenant, depth);
        inner.wake.notify_all();
        Ok(JobHandle { rec })
    }

    /// Kills a fleet device: running jobs on it are evicted (their
    /// attempt aborts with a *recoverable* error, so the retry policy
    /// re-places them on a surviving device).
    pub fn kill_device(&self, device: usize) {
        let evicted = {
            let mut st = self.inner.state.lock().unwrap();
            if device >= st.devices.len() || !st.devices[device].alive {
                return;
            }
            st.devices[device].alive = false;
            let mut evicted = 0usize;
            for job in &st.jobs {
                if job.running_device() == Some(device) {
                    job.with_token(|t| {
                        t.evict();
                    });
                    evicted += 1;
                }
            }
            evicted
        };
        self.inner.metrics.device_lost(device, evicted);
        self.inner.wake.notify_all();
    }

    /// Stops admissions without shutting down: subsequent submits are
    /// refused with [`RejectReason::ShuttingDown`] while queued and
    /// in-flight work keeps running.
    pub fn close(&self) {
        self.inner.closed.store(true, Ordering::Release);
    }

    /// Gracefully shuts down: stops admissions, then drains or aborts
    /// in-flight work, joins every thread, and records the decision.
    /// Returns once every job is terminal.
    pub fn shutdown(mut self, mode: ShutdownMode) {
        self.stop(mode);
    }

    fn stop(&mut self, mode: ShutdownMode) {
        if self.threads.is_empty() {
            return;
        }
        self.inner.closed.store(true, Ordering::Release);
        if mode == ShutdownMode::Abort {
            self.inner.abort.store(true, Ordering::Release);
            let jobs = self.inner.state.lock().unwrap().jobs.clone();
            for j in jobs {
                if !j.status().is_terminal() {
                    j.cancel_requested.store(true, Ordering::Release);
                    j.with_token(|t| {
                        t.cancel();
                    });
                }
            }
        }
        self.inner.wake.notify_all();
        // Scheduler exits once its queues are empty (drain) or on the
        // abort flag, dropping the channel sender; workers drain the
        // channel and exit on disconnect; the reaper stops last so
        // deadlines stay enforced while draining.
        let reaper = self.threads.pop();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.inner.reaper_stop.store(true, Ordering::Release);
        if let Some(t) = reaper {
            let _ = t.join();
        }
        let (drained, aborted) = {
            let st = self.inner.state.lock().unwrap();
            let done = st
                .jobs
                .iter()
                .filter(|j| matches!(j.status(), JobStatus::Completed))
                .count();
            let gone = st
                .jobs
                .iter()
                .filter(|j| matches!(j.status(), JobStatus::Cancelled))
                .count();
            (done, gone)
        };
        self.inner.metrics.shutdown(
            match mode {
                ShutdownMode::Drain => "drain",
                ShutdownMode::Abort => "abort",
            },
            drained,
            aborted,
        );
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop(ShutdownMode::Abort);
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A fresh *machine* for a retry: perturbs the fault seed as a pure
/// function of (seed, attempt), while the physics seed stays fixed —
/// so the replay is bit-exact and the original transient cannot
/// deterministically recur.
fn reseed(seed: u64, attempt: u32) -> u64 {
    splitmix64(seed ^ u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Least-loaded alive device that the health board will accept.
/// Quarantined devices only surface when their probe window opens; if
/// the board refuses every alive device (all quarantined, probes
/// closed), placement falls back to the least-loaded alive device so
/// quarantine can never strand a job — the forced placement doubles as
/// a probe. Callers can tell a probe landed by checking the picked
/// device's state.
fn pick_device(st: &mut ServeState) -> Option<usize> {
    let preferred = st
        .devices
        .iter()
        .enumerate()
        .filter(|(_, d)| d.alive)
        .map(|(i, d)| (i, d.running))
        .collect::<Vec<_>>()
        .into_iter()
        .filter(|&(i, _)| st.board.schedulable(i))
        .min_by_key(|&(_, running)| running)
        .map(|(i, _)| i);
    preferred.or_else(|| {
        st.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.alive)
            .min_by_key(|(_, d)| d.running)
            .map(|(i, _)| i)
    })
}

/// Translates a health-board transition into `serve.*` metrics and
/// flight events (no-op for [`HealthTransition::None`]).
fn emit_health_transition(inner: &Inner, st: &ServeState, device: usize, tr: HealthTransition) {
    let (name, state) = match tr {
        HealthTransition::None => return,
        HealthTransition::Demoted => ("demoted", HealthState::Probation),
        HealthTransition::Quarantined => ("quarantined", HealthState::Quarantined),
        HealthTransition::Reinstated => ("reinstated", HealthState::Healthy),
    };
    inner
        .metrics
        .health_transition(device, name, state.label(), st.board.healthy_count());
}

/// Releases a job's admission charge and its tenant's queue-bound slot.
fn release_job(st: &mut ServeState, tenant: &str, charged: u64) {
    st.committed_bytes = st.committed_bytes.saturating_sub(charged);
    if let Some(n) = st.active.get_mut(tenant) {
        *n = n.saturating_sub(1);
    }
}

/// Terminal transition for a job that never ran (discarded while
/// queued): release its charge and record the decision.
fn finalize_queued(inner: &Inner, st: &mut ServeState, p: PendingJob, status: JobStatus) {
    release_job(st, &p.rec.tenant, p.charged);
    let label = status.label();
    if p.rec.finish(status, None) {
        inner.metrics.terminal(&p.rec.tenant, label);
    }
}

fn scheduler_loop(inner: &Arc<Inner>, tx: channel::Sender<Dispatch>) {
    loop {
        let dispatch = {
            let mut st = inner.state.lock().unwrap();
            loop {
                if inner.abort.load(Ordering::Acquire) {
                    while let Some(p) = st.sched.dequeue() {
                        finalize_queued(inner, &mut st, p, JobStatus::Cancelled);
                    }
                    return;
                }
                let mut picked = None;
                while let Some(p) = st.sched.dequeue() {
                    inner
                        .metrics
                        .queue_depth(&p.rec.tenant, st.sched.depth(&p.rec.tenant));
                    if p.rec.cancel_requested.load(Ordering::Acquire) {
                        finalize_queued(inner, &mut st, p, JobStatus::Cancelled);
                        continue;
                    }
                    let expired = p.rec.deadline_hit.load(Ordering::Acquire)
                        || p.rec.deadline_at.is_some_and(|d| Instant::now() >= d);
                    if expired {
                        finalize_queued(inner, &mut st, p, JobStatus::DeadlineExceeded);
                        continue;
                    }
                    match pick_device(&mut st) {
                        Some(d) => {
                            if st.board.state(d) == HealthState::Quarantined {
                                inner.metrics.probe(d);
                            }
                            st.devices[d].running += 1;
                            picked = Some(Dispatch { job: p, device: d });
                        }
                        None => {
                            let error = SimError::AllDevicesLost { device: 0 }.to_string();
                            finalize_queued(inner, &mut st, p, JobStatus::Failed { error });
                        }
                    }
                    if picked.is_some() {
                        break;
                    }
                }
                if let Some(d) = picked {
                    break d;
                }
                if inner.closed.load(Ordering::Acquire) && st.sched.total_depth() == 0 {
                    return;
                }
                let (guard, _) = inner
                    .wake
                    .wait_timeout(st, Duration::from_millis(10))
                    .unwrap();
                st = guard;
            }
        };
        if tx.send(dispatch).is_err() {
            return;
        }
    }
}

fn worker_loop(inner: &Arc<Inner>, rx: channel::Receiver<Dispatch>) {
    while let Ok(d) = rx.recv() {
        run_job(inner, d);
    }
}

#[allow(clippy::cognitive_complexity)]
fn run_job(inner: &Arc<Inner>, d: Dispatch) {
    let Dispatch { job: p, mut device } = d;
    let rec = &p.rec;
    let mut attempt: u32 = 0;
    let mut first_run = true;
    let outcome: (JobStatus, Option<RunResult>) = loop {
        if rec.cancel_requested.load(Ordering::Acquire) {
            break (JobStatus::Cancelled, None);
        }
        if rec.deadline_hit.load(Ordering::Acquire)
            || rec.deadline_at.is_some_and(|dl| Instant::now() >= dl)
        {
            break (JobStatus::DeadlineExceeded, None);
        }
        let token = rec.arm_token();
        // Re-check after installing the fresh token: a cancel or
        // deadline that tripped the *previous* token in the gap must
        // not be lost across the retry boundary.
        if rec.cancel_requested.load(Ordering::Acquire) {
            break (JobStatus::Cancelled, None);
        }
        if rec.deadline_hit.load(Ordering::Acquire) {
            break (JobStatus::DeadlineExceeded, None);
        }
        rec.set_running(device, attempt);
        if first_run {
            first_run = false;
            inner
                .metrics
                .queue_wait_ms(&rec.tenant, rec.submitted.elapsed().as_millis() as u64);
        }

        let mut cfg = p.spec.config.clone();
        cfg.shots = p.spec.shots;
        cfg.cancel = Some(token.clone());
        if attempt > 0 {
            cfg.faults.seed = reseed(cfg.faults.seed, attempt);
        }
        let chaos_panic = inner.cfg.chaos.panics(rec.id, attempt);
        let run = catch_unwind(AssertUnwindSafe(|| {
            if chaos_panic {
                panic!("chaos: injected worker death");
            }
            Simulator::new(cfg).try_run(&p.spec.circuit)
        }));
        let err = match run {
            Ok(Ok(result)) => break (JobStatus::Completed, Some(result)),
            Ok(Err(e)) => e,
            Err(_) => {
                inner.metrics.worker_panic(rec.id, attempt);
                SimError::WorkerLost {
                    dispatch: "serve-worker",
                }
            }
        };
        // Caller/reaper decisions surface through the token first.
        match rec.token.lock().unwrap().reason() {
            Some(CancelReason::Cancelled) => break (JobStatus::Cancelled, None),
            Some(CancelReason::Deadline) => break (JobStatus::DeadlineExceeded, None),
            _ => {}
        }
        match &err {
            SimError::JobAborted { .. } => break (JobStatus::Cancelled, None),
            SimError::DeadlineExceeded { .. } => break (JobStatus::DeadlineExceeded, None),
            _ => {}
        }
        let retry_ok = err.is_recoverable()
            && attempt < inner.cfg.retry.max_retries
            && !inner.abort.load(Ordering::Acquire);
        if !retry_ok {
            break (
                JobStatus::Failed {
                    error: err.to_string(),
                },
                None,
            );
        }
        inner
            .metrics
            .retried(&rec.tenant, rec.id, attempt, &err.to_string());
        attempt += 1;
        // Re-place on the least-loaded surviving device. The retry is
        // attributed to the device the failed attempt ran on — enough
        // of them tip it into probation/quarantine.
        let mut st = inner.state.lock().unwrap();
        let tr = st.board.record_retry(device);
        emit_health_transition(inner, &st, device, tr);
        match pick_device(&mut st) {
            Some(nd) if nd != device => {
                st.devices[device].running -= 1;
                st.devices[nd].running += 1;
                device = nd;
            }
            Some(_) => {}
            None => {
                drop(st);
                break (
                    JobStatus::Failed {
                        error: SimError::AllDevicesLost { device }.to_string(),
                    },
                    None,
                );
            }
        }
    };

    let (status, result) = outcome;
    {
        let mut st = inner.state.lock().unwrap();
        st.devices[device].running -= 1;
        release_job(&mut st, &rec.tenant, p.charged);
        // Feed the health board: repaired invariant violations inside a
        // completed result still indict the device that produced them
        // (the answer is bit-exact, the silicon is suspect); a clean
        // completion decays the score back toward reinstatement.
        if matches!(status, JobStatus::Completed) {
            let violations = result
                .as_ref()
                .and_then(|r| r.integrity)
                .map_or(0, |s| s.violations);
            if violations > 0 {
                inner.metrics.integrity_violations(device, violations);
                for _ in 0..violations {
                    let tr = st.board.record_violation(device);
                    emit_health_transition(inner, &st, device, tr);
                }
            } else {
                let tr = st.board.record_success(device);
                emit_health_transition(inner, &st, device, tr);
            }
        }
    }
    let label = status.label();
    if rec.finish(status, result) {
        inner.metrics.terminal(&rec.tenant, label);
        if label == "completed" {
            inner
                .metrics
                .latency_ms(&rec.tenant, rec.submitted.elapsed().as_millis() as u64);
        }
    }
    inner.wake.notify_all();
}

fn reaper_loop(inner: &Arc<Inner>) {
    while !inner.reaper_stop.load(Ordering::Acquire) {
        std::thread::sleep(inner.cfg.reaper_interval);
        let now = Instant::now();
        let jobs: Vec<Arc<JobRecord>> = {
            let mut st = inner.state.lock().unwrap();
            // The registry only needs live jobs; terminal ones are
            // reachable through their handles.
            if st.sched.total_depth() == 0 {
                st.jobs.retain(|j| !j.status().is_terminal());
            }
            st.jobs.clone()
        };
        let mut tripped = false;
        for job in jobs {
            let Some(dl) = job.deadline_at else { continue };
            if now < dl || job.status().is_terminal() {
                continue;
            }
            if !job.deadline_hit.swap(true, Ordering::AcqRel) {
                job.with_token(|t| {
                    t.expire();
                });
                tripped = true;
            }
        }
        if tripped {
            inner.wake.notify_all();
        }
    }
}
