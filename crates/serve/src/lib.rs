//! # qgpu-serve — fault-hardened multi-tenant job serving
//!
//! A concurrent job server over the Q-GPU engine. Callers submit
//! [`JobSpec`]s — circuit, shot count, [`qgpu::SimConfig`], tenant,
//! deadline, priority — and get back a [`JobHandle`] for status
//! polling, result retrieval, and cancellation. The server provides:
//!
//! * **Bounded per-tenant queues** with explicit load shedding: a
//!   refused job carries a [`RejectReason`], never a silent drop.
//! * **Memory admission control** backed by the engine's
//!   `PressureGovernor`: under sustained pressure, jobs are admitted in
//!   degraded-but-bit-exact form (finer chunks, forced compression)
//!   before any shedding — degradation changes *footprint*, never
//!   *results* (the engine's bit-identity invariant).
//! * **Wall-clock deadlines** enforced by a reaper thread that cancels
//!   in-flight runs cooperatively at gate boundaries.
//! * **Retry with bit-exact replay**: recoverable engine faults
//!   (`WorkerLost`, `ChunkCorrupt`, `StageTimeout`, device loss)
//!   re-execute under the job's `RetryPolicy` with a fresh *machine*
//!   fault seed and the *same* physics seed — a completed retry is
//!   bit-identical to a fault-free run.
//! * **Starvation-proof weighted fair scheduling** ([`FairScheduler`]):
//!   tenant quota × job priority shapes service order; within a tenant,
//!   order stays FIFO.
//! * **Graceful shutdown** ([`ShutdownMode::Drain`] /
//!   [`ShutdownMode::Abort`]) that leaves every job in a terminal
//!   state.
//! * **Full observability**: every serving decision lands in `serve.*`
//!   registry metrics and the flight-event ring ([`ServeMetrics`]).
//! * **Fleet health quarantine**: a [`qgpu_sched::DeviceHealthBoard`]
//!   scores each device slot on the invariant violations, CRC retries,
//!   and recoverable failures its jobs report; quarantined slots are
//!   skipped by placement (except periodic probes) until clean
//!   completions earn reinstatement.
//!
//! The `qgpu-load` binary (in this crate) is the chaos/load harness:
//! it drives hundreds of concurrent jobs through seeded faults and
//! asserts that all jobs reach terminal states and that completed jobs
//! are bit-identical to fault-free references.
//!
//! ```no_run
//! use qgpu::{SimConfig, Version};
//! use qgpu_circuit::generators::quantum_fourier_transform;
//! use qgpu_serve::{JobSpec, ServeConfig, Server, ShutdownMode};
//!
//! let server = Server::new(ServeConfig::default().with_workers(2));
//! let cfg = SimConfig::scaled_paper(10).with_version(Version::QGpu);
//! let spec = JobSpec::new(quantum_fourier_transform(10), cfg)
//!     .with_tenant("acme")
//!     .with_shots(256);
//! let handle = server.submit(spec).expect("admitted");
//! let status = handle.wait_timeout(std::time::Duration::from_secs(30));
//! println!("job {} -> {:?}", handle.id(), status);
//! server.shutdown(ShutdownMode::Drain);
//! ```

mod job;
mod metrics;
mod sched;
mod server;

pub use job::{JobHandle, JobId, JobSpec, JobStatus, Priority, RejectReason};
pub use metrics::ServeMetrics;
pub use sched::FairScheduler;
pub use server::{ChaosConfig, ServeConfig, Server, ShutdownMode};

pub use qgpu_sched::health::HealthSnapshot;
pub use qgpu_sched::HealthState;
