//! Mini chaos soak: dozens of concurrent jobs through engine-level
//! fault injection, serve-level worker deaths, a mid-soak device kill,
//! tight deadlines, and caller cancellations — every job must reach a
//! terminal state, and every *completed* job must be bit-identical to
//! its fault-free reference. (The full-size soak lives in the
//! `qgpu-load` binary; this is the always-on `cargo test` version.)

use std::time::Duration;

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_serve::{ChaosConfig, JobSpec, JobStatus, ServeConfig, Server, ShutdownMode};

/// Keep panics from chaos-injected worker deaths out of test output.
fn quiet_chaos_panics() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let is_chaos = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("chaos:"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("chaos:"));
        if !is_chaos {
            default(info);
        }
    }));
}

fn faulty_cfg(qubits: usize, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::scaled_paper(qubits).with_version(Version::QGpu);
    cfg.faults.seed = seed;
    cfg.faults.p_transfer_corrupt = 0.02;
    cfg.faults.p_codec_fail = 0.05;
    cfg.faults.p_worker_death = 0.002;
    cfg
}

#[test]
fn chaos_soak_all_jobs_terminal_and_completions_bit_exact() {
    quiet_chaos_panics();
    let server = Server::new(
        ServeConfig::default()
            .with_workers(4)
            .with_devices(2)
            .with_chaos(ChaosConfig {
                seed: 0xC0FFEE,
                p_worker_panic: 0.08,
                fail_first_attempts: 0,
            }),
    );

    // Fault-free references, one per (circuit, shots) class.
    let reference = |qubits: usize, shots: u64| {
        let mut cfg = SimConfig::scaled_paper(qubits).with_version(Version::QGpu);
        cfg.shots = shots;
        Simulator::new(cfg)
            .try_run(&Benchmark::Qft.generate(qubits))
            .expect("fault-free reference")
    };
    let ref10 = reference(10, 16);
    let ref12 = reference(12, 16);

    let tenants = ["alpha", "beta", "gamma", "delta"];
    let mut handles = Vec::new();
    let mut cancelled_ids = Vec::new();
    let mut deadlined_ids = Vec::new();
    for i in 0..48u64 {
        let qubits = if i % 3 == 0 { 12 } else { 10 };
        let mut spec = JobSpec::new(
            Benchmark::Qft.generate(qubits),
            faulty_cfg(qubits, 1000 + i),
        )
        .with_tenant(tenants[(i % 4) as usize])
        .with_shots(16);
        if i % 11 == 5 {
            // Deliberately unmeetable deadline.
            spec = spec.with_deadline(Duration::from_micros(50));
        }
        let handle = server.submit(spec).expect("admitted (no budget/cap set)");
        if i % 11 == 5 {
            deadlined_ids.push(handle.id());
        }
        if i % 8 == 2 {
            handle.cancel();
            cancelled_ids.push(handle.id());
        }
        handles.push((qubits, handle));
    }
    // Kill a device mid-soak: running jobs get evicted and must retry
    // onto the survivor.
    std::thread::sleep(Duration::from_millis(20));
    server.kill_device(0);

    let mut completed = 0usize;
    for (qubits, handle) in &handles {
        let status = handle
            .wait_timeout(Duration::from_secs(300))
            .expect("every job must reach a terminal state (no hangs)");
        assert!(status.is_terminal());
        if status == JobStatus::Completed {
            completed += 1;
            let result = handle.result().expect("completed job has a result");
            let reference = if *qubits == 12 { &ref12 } else { &ref10 };
            assert_eq!(
                result
                    .state
                    .as_ref()
                    .expect("state collected")
                    .max_deviation(reference.state.as_ref().unwrap()),
                0.0,
                "job {} completed through faults but is not bit-identical",
                handle.id()
            );
            assert_eq!(
                result.samples,
                reference.samples,
                "job {} shot samples must replay bit-exactly",
                handle.id()
            );
        }
    }
    assert!(
        completed >= handles.len() / 2,
        "most jobs should survive this fault mix: {completed}/{}",
        handles.len()
    );
    for (_, h) in &handles {
        if cancelled_ids.contains(&h.id()) {
            assert!(
                matches!(
                    h.status(),
                    JobStatus::Cancelled | JobStatus::Completed | JobStatus::Failed { .. }
                ),
                "early-cancelled job ended {:?}",
                h.status()
            );
        }
    }
    assert!(
        handles
            .iter()
            .filter(|(_, h)| deadlined_ids.contains(&h.id()))
            .all(|(_, h)| h.status() == JobStatus::DeadlineExceeded),
        "50µs deadlines must expire"
    );

    let metrics = server.metrics().clone();
    server.shutdown(ShutdownMode::Drain);
    let flat = metrics.recorder().metrics().counters;
    let get = |n: &str| flat.iter().find(|(k, _)| k == n).map_or(0, |(_, v)| *v);
    assert_eq!(get("serve.admitted"), 48);
    assert_eq!(get("serve.devices_lost"), 1);
    assert!(get("serve.deadline_exceeded") >= deadlined_ids.len() as u64);
    let terminal = get("serve.completed")
        + get("serve.failed")
        + get("serve.cancelled")
        + get("serve.deadline_exceeded");
    assert_eq!(
        terminal, 48,
        "every admitted job accounted for exactly once"
    );
}

/// Jobs whose kernels keep flipping bits (detected and repaired by the
/// engine's ABFT layer) must still complete bit-exact — and the fleet
/// health board must quarantine the slot that kept producing them, so
/// new placements avoid it.
#[test]
fn kernel_flip_jobs_quarantine_their_device_and_stay_bit_exact() {
    let qubits = 8;
    let circuit = Benchmark::Qft.generate(qubits);
    let reference = {
        let mut cfg = SimConfig::scaled_paper(qubits).with_version(Version::QGpu);
        cfg.shots = 16;
        Simulator::new(cfg)
            .try_run(&circuit)
            .expect("fault-free reference")
    };

    // One worker serializes execution, so the least-loaded pick keeps
    // landing jobs on slot 0 until the board pulls it out of rotation.
    let server = Server::new(ServeConfig::default().with_workers(1).with_devices(2));
    let mut handles = Vec::new();
    for i in 0..8u64 {
        let mut cfg = SimConfig::scaled_paper(qubits).with_version(Version::QGpu);
        cfg.faults.seed = 0x5DC + i;
        // Deterministic single flip per job; the engine detects it via
        // the chunk-norm invariant and repairs it by re-execution.
        cfg.faults.kernel_flip_at = 5;
        let spec = JobSpec::new(circuit.clone(), cfg)
            .with_tenant("sdc")
            .with_shots(16);
        handles.push(server.submit(spec).expect("admitted"));
    }
    for h in &handles {
        let status = h
            .wait_timeout(Duration::from_secs(120))
            .expect("job must reach a terminal state");
        assert_eq!(status, JobStatus::Completed, "repaired job completes");
        let result = h.result().expect("completed job has a result");
        let summary = result.integrity.expect("integrity summary attached");
        assert!(summary.violations >= 1, "the injected flip was detected");
        assert!(summary.fully_repaired(), "every violation was repaired");
        let (state, ref_state) = (
            result.state.as_ref().expect("state kept"),
            reference.state.as_ref().expect("reference state kept"),
        );
        assert_eq!(
            state.max_deviation(ref_state),
            0.0,
            "repaired state is bit-identical to the fault-free reference"
        );
        assert_eq!(result.samples, reference.samples, "samples bit-identical");
    }

    let quarantined: Vec<usize> = (0..2)
        .filter(|&d| server.device_health(d).state == qgpu_serve::HealthState::Quarantined)
        .collect();
    assert!(
        !quarantined.is_empty(),
        "repeated violations on one slot must quarantine it"
    );
    let metrics = server.metrics().clone();
    server.shutdown(ShutdownMode::Drain);
    let flat = metrics.recorder().metrics().counters;
    let get = |n: &str| flat.iter().find(|(k, _)| k == n).map_or(0, |(_, v)| *v);
    assert!(get("serve.quarantines") >= 1, "quarantine decision counted");
    assert!(
        get("serve.integrity_violations") >= handles.len() as u64,
        "each job's repaired violations surfaced in serve metrics"
    );
    assert!(
        metrics.recorder().flight_triggered(),
        "quarantine is a fault-class flight event"
    );
}
