//! End-to-end serving behaviour: bit-exact round trips, backpressure,
//! memory admission, cancellation, deadlines, retries, device loss,
//! and shutdown.

use std::time::Duration;

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_serve::{
    ChaosConfig, JobSpec, JobStatus, RejectReason, ServeConfig, Server, ShutdownMode,
};
use qgpu_statevec::StateVector;

const WAIT: Duration = Duration::from_secs(120);

fn cfg(qubits: usize) -> SimConfig {
    SimConfig::scaled_paper(qubits).with_version(Version::QGpu)
}

fn assert_bit_identical(a: &StateVector, b: &StateVector) {
    assert_eq!(
        a.max_deviation(b),
        0.0,
        "served result must be bit-identical to the direct run"
    );
}

#[test]
fn served_job_is_bit_identical_to_direct_invocation() {
    let server = Server::new(ServeConfig::default().with_workers(2));
    let spec = JobSpec::new(Benchmark::Qft.generate(10), cfg(10)).with_shots(64);
    let handle = server.submit(spec).expect("admitted");
    assert_eq!(handle.wait_timeout(WAIT), Some(JobStatus::Completed));
    let served = handle.result().expect("completed job has a result");

    let mut direct_cfg = cfg(10);
    direct_cfg.shots = 64;
    let direct = Simulator::new(direct_cfg)
        .try_run(&Benchmark::Qft.generate(10))
        .expect("clean run");
    assert_bit_identical(
        served.state.as_ref().expect("state collected"),
        direct.state.as_ref().expect("state collected"),
    );
    assert_eq!(
        served.samples, direct.samples,
        "seeded shot sampling must replay identically through the server"
    );
    assert_eq!(handle.attempts(), 1);
    server.shutdown(ShutdownMode::Drain);
}

#[test]
fn full_tenant_queue_sheds_with_an_explicit_reason() {
    // One worker, per-tenant bound of 2 in-flight jobs: the third
    // submit must be refused, not silently dropped — and a different
    // tenant's queue is unaffected.
    let server = Server::new(ServeConfig::default().with_workers(1).with_queue_cap(2));
    let long = || JobSpec::new(Benchmark::Qft.generate(14), cfg(14)).with_tenant("acme");
    let a = server.submit(long()).expect("slot 1");
    let b = server.submit(long()).expect("slot 2");
    let refused = server.submit(long());
    assert_eq!(
        refused.err(),
        Some(RejectReason::QueueFull {
            tenant: "acme".into()
        })
    );
    let other = server
        .submit(JobSpec::new(Benchmark::Qft.generate(10), cfg(10)).with_tenant("beta"))
        .expect("other tenant unaffected by acme's full queue");
    let snap = server.metrics().recorder().registry().snapshot();
    assert_eq!(snap.counter("serve.shed{tenant=acme}"), Some(1));
    for h in [&a, &b, &other] {
        h.cancel();
    }
    server.shutdown(ShutdownMode::Abort);
}

#[test]
fn sustained_memory_pressure_degrades_then_admits_bit_exactly() {
    // Budget below one job's footprint: the governor sheds while it
    // accumulates strikes, then unlocks the shrink-chunks rung, after
    // which the job is admitted with finer chunks — and finer chunks
    // are bit-identical by the engine's core invariant.
    let footprint = 16u64 << 10;
    let server = Server::new(
        ServeConfig::default()
            .with_workers(1)
            .with_mem_budget(footprint - 1),
    );
    let spec = || JobSpec::new(Benchmark::Qft.generate(10), cfg(10));
    let mut sheds = 0;
    let admitted = loop {
        match server.submit(spec()) {
            Ok(h) => break h,
            Err(RejectReason::MemoryPressure) => sheds += 1,
            Err(other) => panic!("unexpected rejection: {other}"),
        }
        assert!(sheds < 64, "governor never unlocked a degradation rung");
    };
    assert!(
        sheds > 0,
        "shedding must precede degradation (strikes accumulate first)"
    );
    assert_eq!(admitted.wait_timeout(WAIT), Some(JobStatus::Completed));

    let flat = server.metrics().recorder().metrics().counters;
    let get = |n: &str| flat.iter().find(|(k, _)| k == n).map_or(0, |(_, v)| *v);
    assert_eq!(get("serve.shed"), sheds);
    assert!(get("serve.degraded") >= 1, "shrink rung must be recorded");

    // Degraded (finer-chunked) result vs the undegraded direct run.
    let direct = Simulator::new(cfg(10))
        .try_run(&Benchmark::Qft.generate(10))
        .expect("clean run");
    assert_bit_identical(
        admitted.result().expect("result").state.as_ref().unwrap(),
        direct.state.as_ref().unwrap(),
    );
    server.shutdown(ShutdownMode::Drain);
}

#[test]
fn cancelling_a_queued_job_never_runs_it() {
    let server = Server::new(ServeConfig::default().with_workers(1));
    let blocker = server
        .submit(JobSpec::new(Benchmark::Qft.generate(14), cfg(14)))
        .expect("blocker admitted");
    while matches!(blocker.status(), JobStatus::Queued) {
        std::thread::yield_now();
    }
    let queued = server
        .submit(JobSpec::new(Benchmark::Qft.generate(10), cfg(10)))
        .expect("queued admitted");
    queued.cancel();
    assert_eq!(queued.wait_timeout(WAIT), Some(JobStatus::Cancelled));
    assert_eq!(queued.attempts(), 0, "cancelled while queued: never ran");
    blocker.cancel();
    server.shutdown(ShutdownMode::Abort);
}

#[test]
fn cancelling_a_running_job_stops_it_at_a_gate_boundary() {
    let server = Server::new(ServeConfig::default().with_workers(1));
    let handle = server
        .submit(JobSpec::new(Benchmark::Qft.generate(14), cfg(14)))
        .expect("admitted");
    while !matches!(handle.status(), JobStatus::Running { .. }) {
        assert!(!handle.status().is_terminal(), "job must reach Running");
        std::thread::yield_now();
    }
    handle.cancel();
    assert_eq!(handle.wait_timeout(WAIT), Some(JobStatus::Cancelled));
    assert!(handle.result().is_none());
    let metrics = server.metrics().clone();
    server.shutdown(ShutdownMode::Drain);
    let flat = metrics.recorder().metrics().counters;
    assert!(
        flat.iter().any(|(n, v)| n == "serve.cancelled" && *v == 1),
        "cancel decision must land in metrics"
    );
}

#[test]
fn expired_deadline_is_a_terminal_state_not_a_hang() {
    let server = Server::new(ServeConfig::default().with_workers(1));
    // Already-expired deadline: discarded by the scheduler, never run.
    let dead = server
        .submit(JobSpec::new(Benchmark::Qft.generate(10), cfg(10)).with_deadline(Duration::ZERO))
        .expect("admitted");
    assert_eq!(dead.wait_timeout(WAIT), Some(JobStatus::DeadlineExceeded));
    assert_eq!(dead.attempts(), 0);

    // Deadline shorter than the run: the reaper trips the token and the
    // engine aborts at a gate boundary mid-run.
    let tight = server
        .submit(
            JobSpec::new(Benchmark::Qft.generate(14), cfg(14))
                .with_deadline(Duration::from_millis(10)),
        )
        .expect("admitted");
    assert_eq!(tight.wait_timeout(WAIT), Some(JobStatus::DeadlineExceeded));
    let metrics = server.metrics().clone();
    server.shutdown(ShutdownMode::Drain);
    let flat = metrics.recorder().metrics().counters;
    assert!(
        flat.iter()
            .any(|(n, v)| n == "serve.deadline_exceeded" && *v == 2),
        "both deadline decisions must land in metrics"
    );
}

#[test]
fn recoverable_worker_deaths_retry_to_a_bit_exact_completion() {
    // Chaos kills every job's first two attempts; the retry policy
    // (4 retries) must carry the job to a clean third attempt whose
    // result is bit-identical to a fault-free run.
    let server = Server::new(
        ServeConfig::default()
            .with_workers(1)
            .with_chaos(ChaosConfig {
                fail_first_attempts: 2,
                ..ChaosConfig::default()
            }),
    );
    let handle = server
        .submit(JobSpec::new(Benchmark::Qft.generate(10), cfg(10)).with_shots(32))
        .expect("admitted");
    assert_eq!(handle.wait_timeout(WAIT), Some(JobStatus::Completed));
    assert_eq!(handle.attempts(), 3, "two deaths then a clean attempt");

    let flat = server.metrics().recorder().metrics().counters;
    let get = |n: &str| flat.iter().find(|(k, _)| k == n).map_or(0, |(_, v)| *v);
    assert_eq!(get("serve.retries"), 2);
    assert_eq!(get("serve.worker_panics"), 2);
    assert!(server.metrics().recorder().flight_triggered());

    let mut direct_cfg = cfg(10);
    direct_cfg.shots = 32;
    let direct = Simulator::new(direct_cfg)
        .try_run(&Benchmark::Qft.generate(10))
        .expect("clean run");
    assert_bit_identical(
        handle.result().expect("result").state.as_ref().unwrap(),
        direct.state.as_ref().unwrap(),
    );
    assert_eq!(handle.result().unwrap().samples, direct.samples);
    server.shutdown(ShutdownMode::Drain);
}

#[test]
fn device_loss_evicts_and_the_job_completes_on_a_survivor() {
    let server = Server::new(ServeConfig::default().with_workers(2).with_devices(2));
    let handle = server
        .submit(JobSpec::new(Benchmark::Qft.generate(14), cfg(14)))
        .expect("admitted");
    let device = loop {
        match handle.status() {
            JobStatus::Running { device, .. } => break device,
            s => assert!(!s.is_terminal(), "job must reach Running, got {s:?}"),
        }
    };
    server.kill_device(device);
    assert_eq!(handle.wait_timeout(WAIT), Some(JobStatus::Completed));

    let flat = server.metrics().recorder().metrics().counters;
    let get = |n: &str| flat.iter().find(|(k, _)| k == n).map_or(0, |(_, v)| *v);
    assert_eq!(get("serve.devices_lost"), 1);

    let direct = Simulator::new(cfg(14))
        .try_run(&Benchmark::Qft.generate(14))
        .expect("clean run");
    assert_bit_identical(
        handle.result().expect("result").state.as_ref().unwrap(),
        direct.state.as_ref().unwrap(),
    );
    server.shutdown(ShutdownMode::Drain);
}

#[test]
fn drain_shutdown_finishes_queued_work_and_refuses_new_work() {
    let server = Server::new(ServeConfig::default().with_workers(2));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            server
                .submit(JobSpec::new(Benchmark::Qft.generate(10), cfg(10)))
                .expect("admitted")
        })
        .collect();
    server.shutdown(ShutdownMode::Drain);
    for h in &handles {
        assert_eq!(h.status(), JobStatus::Completed, "drain runs queued work");
        assert!(h.result().is_some());
    }
}

#[test]
fn abort_shutdown_cancels_everything_but_leaves_no_job_non_terminal() {
    let server = Server::new(ServeConfig::default().with_workers(1));
    let handles: Vec<_> = (0..4)
        .map(|_| {
            server
                .submit(JobSpec::new(Benchmark::Qft.generate(12), cfg(12)))
                .expect("admitted")
        })
        .collect();
    server.shutdown(ShutdownMode::Abort);
    for h in &handles {
        let status = h.status();
        assert!(
            status.is_terminal(),
            "abort must leave every job terminal, got {status:?}"
        );
    }
    assert!(
        handles.iter().any(|h| h.status() == JobStatus::Cancelled),
        "with one worker and four jobs, some must be cancelled"
    );
}

#[test]
fn submit_after_close_is_rejected() {
    let server = Server::new(ServeConfig::default().with_workers(1));
    server.close();
    let refused = server.submit(JobSpec::new(Benchmark::Qft.generate(10), cfg(10)));
    assert_eq!(refused.err(), Some(RejectReason::ShuttingDown));
    let flat = server.metrics().recorder().metrics().counters;
    assert!(
        flat.iter().any(|(n, v)| n == "serve.rejected" && *v == 1),
        "refusal must land in metrics"
    );
    server.shutdown(ShutdownMode::Drain);
}
