//! Fairness properties of the WFQ scheduler, over random mixes of
//! tenants, priorities, and quota weights.
//!
//! Two contracts:
//!
//! 1. **No starvation** — every admitted job is eventually scheduled:
//!    the queue drains completely, and within each tenant jobs come out
//!    in submission order (priority shapes *cross-tenant* pacing, never
//!    a tenant's own FIFO).
//! 2. **Quota tracking** — with every flow continuously backlogged and
//!    uniform costs, each tenant's share of early dequeues tracks its
//!    quota weight within tolerance.

use proptest::prelude::*;
use qgpu_serve::{FairScheduler, Priority};

fn priorities() -> impl Strategy<Value = Priority> {
    prop_oneof![
        Just(Priority::Low),
        Just(Priority::Normal),
        Just(Priority::High),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn every_admitted_job_is_eventually_scheduled_in_tenant_fifo_order(
        // (tenant index, priority, cost) per job, over up to 6 tenants
        // with random quota weights.
        jobs in proptest::collection::vec(
            (0usize..6, priorities(), 1u32..50),
            1..300,
        ),
        weights in proptest::collection::vec(0.1f64..16.0, 6),
    ) {
        let mut s = FairScheduler::new();
        let names = ["t0", "t1", "t2", "t3", "t4", "t5"];
        for (name, w) in names.iter().zip(&weights) {
            s.set_weight(name, *w);
        }
        for (seq, (tenant, prio, cost)) in jobs.iter().enumerate() {
            s.enqueue(
                names[*tenant],
                prio.weight(),
                f64::from(*cost),
                (*tenant, seq),
            );
        }

        let mut served = Vec::new();
        let mut turns = 0usize;
        while let Some(item) = s.dequeue() {
            served.push(item);
            turns += 1;
            prop_assert!(turns <= jobs.len(), "dequeue must terminate");
        }
        // Starvation-proof: everything admitted got served.
        prop_assert_eq!(served.len(), jobs.len());
        prop_assert_eq!(s.total_depth(), 0);

        // FIFO within each tenant: sequence numbers per tenant ascend.
        for t in 0..names.len() {
            let seqs: Vec<_> =
                served.iter().filter(|(tt, _)| *tt == t).map(|(_, s)| *s).collect();
            prop_assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "tenant {} served out of submission order: {:?}", t, seqs
            );
        }
    }

    #[test]
    fn backlogged_tenant_throughput_tracks_quota_weights(
        weights in proptest::collection::vec(0.25f64..8.0, 2..5),
        per_tenant in 40usize..80,
    ) {
        let mut s = FairScheduler::new();
        let names = ["t0", "t1", "t2", "t3", "t4"];
        for (i, w) in weights.iter().enumerate() {
            s.set_weight(names[i], *w);
        }
        // Uniform cost, all flows backlogged from the start, all-Normal
        // priority so quota weights alone shape the interleaving.
        for seq in 0..per_tenant {
            for (i, _) in weights.iter().enumerate() {
                s.enqueue(names[i], Priority::Normal.weight(), 1.0, (i, seq));
            }
        }

        // Observe a window in which every flow is still backlogged: the
        // fastest (max-weight) flow drains quickest, so the window is
        // sized to consume only half its supply.
        let total_w: f64 = weights.iter().sum();
        let max_w = weights.iter().cloned().fold(0.0f64, f64::max);
        let window = ((per_tenant as f64 * 0.5 * total_w / max_w) as usize).max(weights.len());
        let mut counts = vec![0usize; weights.len()];
        for _ in 0..window {
            let (tenant, _) = s.dequeue().expect("backlogged");
            counts[tenant] += 1;
        }

        // Each tenant's share of the window tracks its quota share.
        // WFQ's service discrepancy for uniform unit costs is O(1) per
        // flow, so a small constant plus 10% relative slack is safe at
        // these window sizes.
        for (i, w) in weights.iter().enumerate() {
            let expected = window as f64 * w / total_w;
            let tolerance = 2.0 + weights.len() as f64 + 0.10 * expected;
            prop_assert!(
                (counts[i] as f64 - expected).abs() <= tolerance,
                "tenant {} served {} of {}, expected {:.1}±{:.1} (weights {:?})",
                i, counts[i], window, expected, tolerance, weights
            );
        }
    }
}
