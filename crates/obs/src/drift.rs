//! Modeled-vs-measured drift: does the device model predict where the
//! time goes?
//!
//! The device timeline predicts how a real GPU platform would spend its
//! time; the functional engines spend real wall-clock time on the host.
//! Absolute times are incomparable (a modeled A100 is not this host),
//! but the *shape* of the run — the share of time each phase claims —
//! should agree. The drift report aligns the two per phase and flags
//! phases whose share is mispredicted by more than a tolerance, in
//! percentage points.
//!
//! Phase mapping:
//!
//! | phase        | modeled (from [`ExecutionReport`])                  | measured (Main-track [`WallSpan`]s)   |
//! |--------------|-----------------------------------------------------|---------------------------------------|
//! | `update`     | `host_time` − collapse/sampling passes + kernel-only GPU busy | [`Stage::Update`] spans     |
//! | `compress`   | `compress_time`                                     | [`Stage::Compress`] spans             |
//! | `decompress` | `decompress_time`                                   | [`Stage::Decompress`] spans           |
//! | `measure`    | `measure_time` (collapse reduce + renormalize)      | [`Stage::Measure`] spans              |
//! | `sample`     | `sample_time` (readout CDF sweep)                   | [`Stage::Sample`] spans               |
//! | `sync`       | `sync_time`                                         | wall residual outside the above       |
//!
//! Worker-track spans are excluded: they overlap the orchestrator span
//! that dispatched them and would double-count. A phase with no measured
//! samples at all renders as `—` and is never flagged — e.g. the
//! functional engines model decompression but never execute it, so a
//! measured decompress column is absent by design.

use serde::{Deserialize, Serialize};

use qgpu_device::ExecutionReport;

use crate::span::{Stage, Track, WallSpan};

/// Default tolerance before a phase is flagged, in percentage points.
pub const DEFAULT_TOLERANCE_PP: f64 = 10.0;

/// One aligned phase row.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftPhase {
    /// Phase name (`update`, `compress`, `decompress`, `sync`).
    pub name: &'static str,
    /// Modeled seconds charged to this phase.
    pub modeled_s: f64,
    /// Modeled share of the phase-time total, in percent.
    pub modeled_share_pct: f64,
    /// Measured seconds (`None` when the phase was never measured).
    pub measured_s: Option<f64>,
    /// Measured share of wall time, in percent.
    pub measured_share_pct: Option<f64>,
    /// `measured_share − modeled_share`, in percentage points.
    pub drift_pp: Option<f64>,
    /// Whether `|drift_pp|` exceeds the tolerance.
    pub flagged: bool,
}

/// The aligned modeled-vs-measured comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DriftReport {
    /// Per-phase rows, in fixed order.
    pub phases: Vec<DriftPhase>,
    /// Flagging tolerance in percentage points.
    pub tolerance_pp: f64,
    /// Sum of modeled phase times in seconds (the share denominator;
    /// engine overlap makes this differ from the modeled makespan).
    pub modeled_total_s: f64,
    /// Measured wall-clock seconds of the whole run.
    pub wall_s: f64,
}

impl DriftReport {
    /// Aligns a finished run's modeled report against its measured
    /// spans. `wall_s` is the run's total wall-clock time and
    /// `tolerance_pp` the flagging threshold in percentage points
    /// ([`DEFAULT_TOLERANCE_PP`] is a reasonable default).
    pub fn new(
        report: &ExecutionReport,
        spans: &[WallSpan],
        wall_s: f64,
        tolerance_pp: f64,
    ) -> Self {
        // Kernel-only GPU busy: the compute engines also run the modeled
        // (de)compression kernels, which have their own phases.
        let kernel_s = (report.gpu_time - report.compress_time - report.decompress_time).max(0.0);
        // Collapse and sampling run as host passes, so their modeled
        // time sits inside host_time; carve it out into its own phases.
        let update_host = (report.host_time - report.measure_time - report.sample_time).max(0.0);
        let modeled = [
            ("update", update_host + kernel_s),
            ("compress", report.compress_time),
            ("decompress", report.decompress_time),
            ("measure", report.measure_time),
            ("sample", report.sample_time),
            ("sync", report.sync_time),
        ];
        let modeled_total_s: f64 = modeled.iter().map(|&(_, s)| s).sum();

        let stage_measured = |stage: Stage| -> Option<f64> {
            let mut total = 0.0;
            let mut samples = 0u64;
            for s in spans {
                if s.track == Track::Main && s.stage == stage {
                    total += s.dur_us / 1e6;
                    samples += 1;
                }
            }
            (samples > 0).then_some(total)
        };
        let upd = stage_measured(Stage::Update);
        let cmp = stage_measured(Stage::Compress);
        let dec = stage_measured(Stage::Decompress);
        let meas = stage_measured(Stage::Measure);
        let samp = stage_measured(Stage::Sample);
        // Everything not measured under a named phase — planning,
        // dispatch, allocation — is the measured counterpart of the
        // model's sync/driver overhead.
        let sync = (wall_s > 0.0).then(|| {
            (wall_s
                - upd.unwrap_or(0.0)
                - cmp.unwrap_or(0.0)
                - dec.unwrap_or(0.0)
                - meas.unwrap_or(0.0)
                - samp.unwrap_or(0.0))
            .max(0.0)
        });
        let measured = [upd, cmp, dec, meas, samp, sync];

        let phases = modeled
            .iter()
            .zip(measured)
            .map(|(&(name, modeled_s), measured_s)| {
                let modeled_share_pct = share_pct(modeled_s, modeled_total_s);
                let measured_share_pct = measured_s.map(|m| share_pct(m, wall_s));
                let drift_pp = measured_share_pct.map(|m| m - modeled_share_pct);
                DriftPhase {
                    name,
                    modeled_s,
                    modeled_share_pct,
                    measured_s,
                    measured_share_pct,
                    drift_pp,
                    flagged: drift_pp.is_some_and(|d| d.abs() > tolerance_pp),
                }
            })
            .collect();

        DriftReport {
            phases,
            tolerance_pp,
            modeled_total_s,
            wall_s,
        }
    }

    /// Phases whose drift exceeds the tolerance.
    pub fn flagged(&self) -> Vec<&DriftPhase> {
        self.phases.iter().filter(|p| p.flagged).collect()
    }

    /// Renders the aligned table. Example:
    ///
    /// ```text
    /// modeled vs measured phase drift (tolerance 10.0 pp)
    ///   phase        modeled s  share%   measured s  share%  drift pp
    ///   update        1.424e-2    92.1     8.113e-3    74.8     -17.3  <- DRIFT
    ///   compress      8.000e-4     5.2     1.920e-3    17.7     +12.5  <- DRIFT
    ///   decompress    2.000e-4     1.3            —       —         —
    ///   sync          2.200e-4     1.4     8.150e-4     7.5      +6.1
    ///   total         1.546e-2   100.0     1.085e-2
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "modeled vs measured phase drift (tolerance {:.1} pp)\n",
            self.tolerance_pp
        ));
        out.push_str("  phase        modeled s  share%   measured s  share%  drift pp\n");
        for p in &self.phases {
            let measured = match p.measured_s {
                Some(m) => format!("{m:>12.3e}"),
                None => format!("{:>12}", "—"),
            };
            let mshare = match p.measured_share_pct {
                Some(s) => format!("{s:>7.1}"),
                None => format!("{:>7}", "—"),
            };
            let drift = match p.drift_pp {
                Some(d) => format!("{d:>+9.1}"),
                None => format!("{:>9}", "—"),
            };
            let flag = if p.flagged { "  <- DRIFT" } else { "" };
            out.push_str(&format!(
                "  {:<10} {:>11.3e} {:>7.1} {measured} {mshare} {drift}{flag}\n",
                p.name, p.modeled_s, p.modeled_share_pct
            ));
        }
        out.push_str(&format!(
            "  {:<10} {:>11.3e} {:>7.1} {:>12.3e}\n",
            "total", self.modeled_total_s, 100.0, self.wall_s
        ));
        out
    }
}

fn share_pct(part: f64, total: f64) -> f64 {
    if total == 0.0 {
        0.0
    } else {
        100.0 * part / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(track: Track, stage: Stage, dur_us: f64) -> WallSpan {
        WallSpan {
            track,
            stage,
            name: "t",
            start_us: 0.0,
            dur_us,
        }
    }

    fn report() -> ExecutionReport {
        ExecutionReport {
            host_time: 6.0,
            gpu_time: 3.0,
            compress_time: 0.5,
            decompress_time: 0.5,
            sync_time: 1.0,
            ..ExecutionReport::default()
        }
        // Phases: update 6 + (3 − 1) = 8, compress 0.5, decompress 0.5,
        // sync 1.0; total 10 → shares 80 / 5 / 5 / 10 %.
    }

    #[test]
    fn matching_shares_are_not_flagged() {
        // Measured mirrors the modeled shares on a 1 s wall clock.
        let spans = [
            span(Track::Main, Stage::Update, 0.80e6),
            span(Track::Main, Stage::Compress, 0.05e6),
            span(Track::Main, Stage::Decompress, 0.05e6),
        ];
        let d = DriftReport::new(&report(), &spans, 1.0, 5.0);
        assert!(d.flagged().is_empty(), "{}", d.render());
        let sync = &d.phases[5];
        assert!((sync.measured_s.unwrap() - 0.10).abs() < 1e-9);
    }

    #[test]
    fn mispredicted_share_is_flagged() {
        // Measured update takes only 40% of the wall instead of 80%.
        let spans = [
            span(Track::Main, Stage::Update, 0.40e6),
            span(Track::Main, Stage::Compress, 0.05e6),
        ];
        let d = DriftReport::new(&report(), &spans, 1.0, 10.0);
        let flagged: Vec<&str> = d.flagged().iter().map(|p| p.name).collect();
        assert!(flagged.contains(&"update"), "{}", d.render());
        // Sync absorbs the residual (55%) and drifts +45 pp.
        assert!(flagged.contains(&"sync"));
    }

    #[test]
    fn unmeasured_phases_render_dash_and_never_flag() {
        let spans = [span(Track::Main, Stage::Update, 0.9e6)];
        let d = DriftReport::new(&report(), &spans, 1.0, 0.1);
        let dec = &d.phases[2];
        assert_eq!(dec.name, "decompress");
        assert_eq!(dec.measured_s, None);
        assert!(!dec.flagged);
        assert!(d.render().contains('—'));
    }

    #[test]
    fn worker_spans_do_not_double_count() {
        let spans = [
            span(Track::Main, Stage::Update, 0.5e6),
            span(Track::Worker(0), Stage::Update, 0.5e6),
            span(Track::Worker(1), Stage::Update, 0.5e6),
        ];
        let d = DriftReport::new(&report(), &spans, 1.0, 50.0);
        assert!((d.phases[0].measured_s.unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_measurement_side_is_safe() {
        let d = DriftReport::new(&report(), &[], 0.0, 5.0);
        assert!(d.flagged().is_empty());
        assert!(d.render().contains("total"));
    }

    #[test]
    fn measure_and_sample_are_phases_not_sync_residual() {
        // 2 s of modeled collapse and 1 s of modeled sampling sit inside
        // host_time (the engines run them as host passes); the report
        // must carve them out of `update` into their own rows.
        let r = ExecutionReport {
            host_time: 6.0,
            gpu_time: 1.0,
            measure_time: 2.0,
            sample_time: 1.0,
            sync_time: 1.0,
            ..ExecutionReport::default()
        };
        // Modeled: update (6−2−1)+1 = 4, measure 2, sample 1, sync 1;
        // total 8 → shares 50 / 25 / 12.5 / 12.5 %.
        let spans = [
            span(Track::Main, Stage::Update, 0.50e6),
            span(Track::Main, Stage::Measure, 0.25e6),
            span(Track::Main, Stage::Sample, 0.125e6),
        ];
        let d = DriftReport::new(&r, &spans, 1.0, 5.0);
        assert_eq!(d.phases[3].name, "measure");
        assert_eq!(d.phases[4].name, "sample");
        assert!((d.phases[3].measured_share_pct.unwrap() - 25.0).abs() < 1e-9);
        assert!((d.phases[4].measured_share_pct.unwrap() - 12.5).abs() < 1e-9);
        // The sync residual no longer swallows the measured collapse
        // and sampling time: wall 1 − 0.875 accounted = 0.125.
        let sync = &d.phases[5];
        assert!((sync.measured_s.unwrap() - 0.125).abs() < 1e-9);
        assert!(d.flagged().is_empty(), "{}", d.render());
    }
}
