//! A minimal JSON value, writer and parser.
//!
//! The workspace deliberately has no networked dependencies and its
//! vendored `serde` is a marker-trait stub (see `vendor/README.md`), so
//! the trace and metrics exporters carry their own tiny JSON layer. The
//! writer emits canonical, ordered output (objects keep insertion order)
//! so golden-file tests are byte-stable; the parser accepts anything the
//! writer emits plus ordinary whitespace — enough for round-trip tests
//! and for reading traces back.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order for stable output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for other variants).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The numeric value (`None` for other variants).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value (`None` for other variants).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first syntax error,
    /// or of trailing garbage after a complete value.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

/// Rust's shortest-roundtrip float formatting, except that integral
/// values print without a fractional part and non-finite values (which
/// JSON cannot represent) degrade to `null`.
fn write_number(n: f64, out: &mut String) {
    use fmt::Write as _;
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Num)
            .ok_or(format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogates are not emitted by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-borrow the full UTF-8 character starting here.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_parses_every_variant() {
        let doc = Json::Obj(vec![
            ("null".into(), Json::Null),
            ("flag".into(), Json::Bool(true)),
            ("int".into(), Json::Num(42.0)),
            ("float".into(), Json::Num(1.5)),
            ("neg".into(), Json::Num(-3.25e-4)),
            (
                "text".into(),
                Json::Str("a \"quote\"\\ and\nnewline\ttab \u{1}".into()),
            ),
            (
                "arr".into(),
                Json::Arr(vec![Json::Num(1.0), Json::Bool(false), Json::Null]),
            ),
            ("empty_obj".into(), Json::Obj(vec![])),
            ("empty_arr".into(), Json::Arr(vec![])),
        ]);
        let text = doc.to_string();
        let parsed = Json::parse(&text).expect("round trip");
        assert_eq!(parsed, doc);
        // Writer output is stable: write(parse(write(x))) == write(x).
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn integral_floats_print_without_fraction() {
        assert_eq!(Json::Num(1048576.0).to_string(), "1048576");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parses_whitespace_and_unicode_escapes() {
        let parsed = Json::parse(" { \"k\" : [ 1 , \"\\u00e9\" ] }\n").expect("parse");
        assert_eq!(
            parsed.get("k").and_then(|a| a.as_arr()).map(|a| a.len()),
            Some(2)
        );
        assert_eq!(
            parsed
                .get("k")
                .and_then(|a| a.as_arr())
                .and_then(|a| a[1].as_str()),
            Some("é")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
    }
}
