//! Chrome trace-event / Perfetto JSON export.
//!
//! Emits the [trace-event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! that both `chrome://tracing` and <https://ui.perfetto.dev> load
//! natively: a top-level object with a `traceEvents` array of complete
//! (`"ph": "X"`) events plus metadata (`"ph": "M"`) events naming
//! processes and threads.
//!
//! Two process tracks are emitted so model and reality sit side by side
//! in one trace:
//!
//! * **pid 1 — `modeled (device timeline)`**: the discrete-event
//!   [`Timeline`](qgpu_device::Timeline) trace, one thread per
//!   [`Engine`] (host, per-GPU compute and copy engines, DMA staging).
//!   Modeled seconds map directly to trace microseconds.
//! * **pid 2 — `measured (wall clock)`**: the [`WallSpan`]s recorded by
//!   a [`Recorder`](crate::Recorder), one thread for the orchestrator
//!   ([`Track::Main`]) plus one per executor worker.

use serde::{Deserialize, Serialize};

use qgpu_device::timeline::{Engine, TaskKind, TraceEvent};

use crate::json::Json;
use crate::span::{Track, WallSpan};

/// Process id of the modeled-timeline track.
pub const PID_MODELED: u64 = 1;
/// Process id of the measured wall-clock track.
pub const PID_MEASURED: u64 = 2;

/// One trace-event-format entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Phase: `"X"` (complete event) or `"M"` (metadata).
    pub ph: String,
    /// Process id (track group).
    pub pid: u64,
    /// Thread id (row within the track).
    pub tid: u64,
    /// Event name (task kind / span site / metadata key).
    pub name: String,
    /// Category: `"modeled"` or `"measured"` (empty for metadata).
    pub cat: String,
    /// Start timestamp in microseconds.
    pub ts: f64,
    /// Duration in microseconds (`None` for metadata events).
    pub dur: Option<f64>,
    /// Extra key/value payload.
    pub args: Vec<(String, Json)>,
}

impl ChromeEvent {
    fn meta(pid: u64, tid: u64, key: &str, value: &str) -> Self {
        ChromeEvent {
            ph: "M".into(),
            pid,
            tid,
            name: key.into(),
            cat: String::new(),
            ts: 0.0,
            dur: None,
            args: vec![("name".into(), Json::Str(value.into()))],
        }
    }
}

/// A full trace document: build with [`ChromeTrace::two_track`], write
/// with [`ChromeTrace::to_json_string`], read back with
/// [`ChromeTrace::from_json_str`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ChromeTrace {
    /// All events, metadata first.
    pub events: Vec<ChromeEvent>,
}

/// Stable thread id for a modeled engine: host rows first, then three
/// rows per GPU in compute / H2D / D2H order.
pub fn engine_tid(engine: Engine) -> u64 {
    match engine {
        Engine::Host => 0,
        Engine::HostDmaOut => 1,
        Engine::HostDmaIn => 2,
        Engine::GpuCompute(g) => 10 + 3 * g as u64,
        Engine::H2d(g) => 11 + 3 * g as u64,
        Engine::D2h(g) => 12 + 3 * g as u64,
    }
}

fn engine_name(engine: Engine) -> String {
    match engine {
        Engine::Host => "host".to_string(),
        Engine::HostDmaOut => "dma-out".to_string(),
        Engine::HostDmaIn => "dma-in".to_string(),
        Engine::GpuCompute(g) => format!("gpu{g} compute"),
        Engine::H2d(g) => format!("gpu{g} h2d"),
        Engine::D2h(g) => format!("gpu{g} d2h"),
    }
}

fn kind_name(kind: TaskKind) -> &'static str {
    match kind {
        TaskKind::HostUpdate => "host-update",
        TaskKind::Kernel => "kernel",
        TaskKind::H2dCopy => "h2d-copy",
        TaskKind::D2hCopy => "d2h-copy",
        TaskKind::Compress => "compress",
        TaskKind::Decompress => "decompress",
        TaskKind::Sync => "sync",
        TaskKind::HostDma => "host-dma",
        TaskKind::Backoff => "retry-backoff",
    }
}

fn track_tid(track: Track) -> u64 {
    match track {
        Track::Main => 0,
        Track::Worker(w) => 1 + w as u64,
    }
}

fn track_name(track: Track) -> String {
    match track {
        Track::Main => "orchestrator".to_string(),
        Track::Worker(w) => format!("worker {w}"),
    }
}

impl ChromeTrace {
    /// Builds the two-track trace: the modeled device timeline (pid 1)
    /// and the measured wall-clock spans (pid 2). Either side may be
    /// empty; both time axes start at 0 µs.
    pub fn two_track(modeled: &[TraceEvent], measured: &[WallSpan]) -> Self {
        let mut events = Vec::new();

        if !modeled.is_empty() {
            events.push(ChromeEvent::meta(
                PID_MODELED,
                0,
                "process_name",
                "modeled (device timeline)",
            ));
            let mut engines: Vec<Engine> = modeled.iter().map(|e| e.engine).collect();
            engines.sort();
            engines.dedup();
            for e in &engines {
                events.push(ChromeEvent::meta(
                    PID_MODELED,
                    engine_tid(*e),
                    "thread_name",
                    &engine_name(*e),
                ));
            }
            for ev in modeled {
                events.push(ChromeEvent {
                    ph: "X".into(),
                    pid: PID_MODELED,
                    tid: engine_tid(ev.engine),
                    name: kind_name(ev.kind).into(),
                    cat: "modeled".into(),
                    ts: ev.span.start * 1e6,
                    dur: Some(ev.span.duration() * 1e6),
                    args: vec![("bytes".into(), Json::Num(ev.bytes as f64))],
                });
            }
        }

        if !measured.is_empty() {
            events.push(ChromeEvent::meta(
                PID_MEASURED,
                0,
                "process_name",
                "measured (wall clock)",
            ));
            let mut tracks: Vec<Track> = measured.iter().map(|s| s.track).collect();
            tracks.sort();
            tracks.dedup();
            for t in &tracks {
                events.push(ChromeEvent::meta(
                    PID_MEASURED,
                    track_tid(*t),
                    "thread_name",
                    &track_name(*t),
                ));
            }
            for s in measured {
                events.push(ChromeEvent {
                    ph: "X".into(),
                    pid: PID_MEASURED,
                    tid: track_tid(s.track),
                    name: s.name.into(),
                    cat: "measured".into(),
                    ts: s.start_us,
                    dur: Some(s.dur_us),
                    args: vec![("stage".into(), Json::Str(s.stage.label().into()))],
                });
            }
        }

        ChromeTrace { events }
    }

    /// Threads present under a pid (distinct tids of `"X"` events).
    pub fn threads_of(&self, pid: u64) -> Vec<u64> {
        let mut tids: Vec<u64> = self
            .events
            .iter()
            .filter(|e| e.pid == pid && e.ph == "X")
            .map(|e| e.tid)
            .collect();
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// Serializes as a trace-event document.
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .iter()
            .map(|e| {
                let mut pairs = vec![
                    ("ph".to_string(), Json::Str(e.ph.clone())),
                    ("pid".to_string(), Json::Num(e.pid as f64)),
                    ("tid".to_string(), Json::Num(e.tid as f64)),
                    ("name".to_string(), Json::Str(e.name.clone())),
                    ("cat".to_string(), Json::Str(e.cat.clone())),
                    ("ts".to_string(), Json::Num(e.ts)),
                ];
                if let Some(dur) = e.dur {
                    pairs.push(("dur".to_string(), Json::Num(dur)));
                }
                pairs.push((
                    "args".to_string(),
                    Json::Obj(e.args.iter().map(|(k, v)| (k.clone(), v.clone())).collect()),
                ));
                Json::Obj(pairs)
            })
            .collect();
        Json::Obj(vec![
            ("displayTimeUnit".into(), Json::Str("ms".into())),
            ("traceEvents".into(), Json::Arr(events)),
        ])
    }

    /// [`ChromeTrace::to_json`] rendered as a string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }

    /// Parses a trace-event document emitted by
    /// [`ChromeTrace::to_json_string`].
    ///
    /// # Errors
    ///
    /// Returns a message if the text is not valid JSON or lacks the
    /// trace-event structure (a `traceEvents` array of objects with
    /// `ph`/`pid`/`tid`/`name`/`ts` members).
    pub fn from_json_str(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let events = doc
            .get("traceEvents")
            .and_then(|e| e.as_arr())
            .ok_or("missing traceEvents array")?;
        let mut out = Vec::with_capacity(events.len());
        for (i, ev) in events.iter().enumerate() {
            let str_member = |key: &str| -> Result<String, String> {
                ev.get(key)
                    .and_then(|v| v.as_str())
                    .map(str::to_string)
                    .ok_or(format!("event {i}: missing string '{key}'"))
            };
            let num_member = |key: &str| -> Result<f64, String> {
                ev.get(key)
                    .and_then(|v| v.as_f64())
                    .ok_or(format!("event {i}: missing number '{key}'"))
            };
            let args = match ev.get("args") {
                Some(Json::Obj(pairs)) => pairs.clone(),
                _ => Vec::new(),
            };
            out.push(ChromeEvent {
                ph: str_member("ph")?,
                pid: num_member("pid")? as u64,
                tid: num_member("tid")? as u64,
                name: str_member("name")?,
                cat: str_member("cat")?,
                ts: num_member("ts")?,
                dur: ev.get("dur").and_then(|d| d.as_f64()),
                args,
            });
        }
        Ok(ChromeTrace { events: out })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Stage;
    use qgpu_device::timeline::Timeline;

    fn sample() -> ChromeTrace {
        let mut tl = Timeline::with_trace(100);
        let h2d = tl.schedule(Engine::H2d(0), 0.0, 1e-3, TaskKind::H2dCopy, 4096);
        tl.schedule(Engine::GpuCompute(0), h2d.end, 5e-4, TaskKind::Kernel, 4096);
        tl.schedule(Engine::Host, 0.0, 2e-3, TaskKind::HostUpdate, 8192);
        let measured = [
            WallSpan {
                track: Track::Main,
                stage: Stage::Update,
                name: "update.local",
                start_us: 0.0,
                dur_us: 120.5,
            },
            WallSpan {
                track: Track::Worker(2),
                stage: Stage::Update,
                name: "worker.local_run",
                start_us: 10.0,
                dur_us: 100.0,
            },
        ];
        ChromeTrace::two_track(tl.trace(), &measured)
    }

    #[test]
    fn both_process_tracks_are_present() {
        let trace = sample();
        assert!(!trace.threads_of(PID_MODELED).is_empty());
        assert!(!trace.threads_of(PID_MEASURED).is_empty());
        // Worker 2 maps to tid 3 on the measured track.
        assert!(trace.threads_of(PID_MEASURED).contains(&3));
        // Engines get stable tids: host 0, gpu0 compute 10, gpu0 h2d 11.
        let modeled = trace.threads_of(PID_MODELED);
        assert_eq!(modeled, vec![0, 10, 11]);
    }

    #[test]
    fn modeled_seconds_become_microseconds() {
        let trace = sample();
        let kernel = trace
            .events
            .iter()
            .find(|e| e.name == "kernel")
            .expect("kernel event");
        assert!((kernel.ts - 1000.0).abs() < 1e-9);
        assert!((kernel.dur.expect("dur") - 500.0).abs() < 1e-9);
    }

    #[test]
    fn json_round_trips_exactly() {
        let trace = sample();
        let text = trace.to_json_string();
        let back = ChromeTrace::from_json_str(&text).expect("parse back");
        assert_eq!(back, trace);
        assert_eq!(back.to_json_string(), text);
    }

    #[test]
    fn empty_sides_are_omitted() {
        let trace = ChromeTrace::two_track(&[], &[]);
        assert!(trace.events.is_empty());
        let parsed = ChromeTrace::from_json_str(&trace.to_json_string()).expect("parse");
        assert_eq!(parsed, trace);
    }
}
