//! HDR-style log-linear histogram for latency percentiles.
//!
//! The PR-2 [`crate::metrics::LogHistogram`] keeps one bucket per power
//! of two — fine for order-of-magnitude shapes, useless for p99 of a
//! latency distribution (a 2x-wide bucket means up to 100% rank error at
//! the tail). This histogram subdivides every octave into
//! 2^[`PRECISION`] linear sub-buckets, which bounds the *relative* error
//! of any reported quantile by `1/2^PRECISION` regardless of the value's
//! magnitude — the same scheme as Gil Tene's HdrHistogram, sized here
//! for `u64` nanosecond samples.
//!
//! Histograms are plain count arrays, so [`HdrHistogram::merge`] is an
//! element-wise add: associative and commutative, which is what lets
//! per-thread and per-device recorders combine into one fleet view
//! without coordination (property-tested in `tests/hdr_props.rs`).

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^PRECISION` linear buckets, bounding relative quantile error at
/// `1 / 2^PRECISION` (~3.1%).
pub const PRECISION: u32 = 5;

const SUB: usize = 1 << PRECISION; // sub-buckets per octave
const OCTAVES: usize = 64 - PRECISION as usize; // 6..=63 exponent groups + low range
const NUM_BUCKETS: usize = (OCTAVES + 1) * SUB; // 1920 for PRECISION = 5

/// A mergeable log-linear histogram of `u64` samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HdrHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HdrHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl HdrHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        HdrHistogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Bucket index for a value. Values below `2^PRECISION` get exact
    /// single-value buckets; above that, `SUB` linear buckets per octave.
    fn index(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let e = 63 - value.leading_zeros();
        let sub = ((value >> (e - PRECISION)) as usize) - SUB;
        (e - PRECISION + 1) as usize * SUB + sub
    }

    /// Lowest value mapping to bucket `idx`.
    fn bucket_lo(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let group = idx / SUB;
        let sub = (idx % SUB) as u64;
        let e = group as u32 + PRECISION - 1;
        (1u64 << e) + (sub << (e - PRECISION))
    }

    /// Width of bucket `idx` (1 for the exact low range).
    fn bucket_width(idx: usize) -> u64 {
        if idx < SUB {
            1
        } else {
            1u64 << (idx / SUB - 1)
        }
    }

    /// Representative value reported for bucket `idx`: the exact value
    /// in the low range, the bucket midpoint above it.
    fn representative(idx: usize) -> u64 {
        Self::bucket_lo(idx) + Self::bucket_width(idx) / 2
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::index(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Element-wise merge of another histogram into this one.
    /// Associative and commutative, so any merge tree over per-thread /
    /// per-device shards yields identical totals.
    pub fn merge(&mut self, other: &HdrHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at quantile `q` (0..=100): the representative of the bucket
    /// holding the `ceil(q/100 * count)`-th smallest sample. Relative
    /// error is bounded by the bucket width, i.e. `value / 2^PRECISION`
    /// (exact below `2^PRECISION`).
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(self.count);
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                // Clamp to the observed range so a single-sample bucket
                // never reports a midpoint outside [min, max].
                return Self::representative(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fixed percentile summary for snapshots and JSON.
    pub fn snapshot(&self) -> HdrSnapshot {
        HdrSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
        }
    }
}

/// Frozen summary of an [`HdrHistogram`]: counts plus the standard
/// latency quantiles, cheap to clone into run results and JSON.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HdrSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_range_is_exact() {
        let mut h = HdrHistogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 32);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        // Exact single-value buckets: every quantile lands on a real value.
        assert_eq!(h.percentile(50.0), 15);
        assert_eq!(h.percentile(100.0), 31);
    }

    #[test]
    fn index_and_bounds_are_consistent() {
        for v in [0, 1, 31, 32, 33, 63, 64, 100, 1 << 20, u64::MAX] {
            let idx = HdrHistogram::index(v);
            assert!(idx < NUM_BUCKETS, "index {idx} out of range for {v}");
            let lo = HdrHistogram::bucket_lo(idx);
            let w = HdrHistogram::bucket_width(idx);
            assert!(lo <= v, "lo {lo} > v {v}");
            assert!(v - lo < w, "v {v} beyond bucket [{lo}, {lo}+{w})");
        }
        // Buckets tile the space: each bucket's end is the next one's start.
        for idx in 0..NUM_BUCKETS - 1 {
            assert_eq!(
                HdrHistogram::bucket_lo(idx) + HdrHistogram::bucket_width(idx),
                HdrHistogram::bucket_lo(idx + 1)
            );
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        let mut h = HdrHistogram::new();
        for v in [1_000u64, 10_000, 100_000, 1_000_000, 55_555_555] {
            h = HdrHistogram::new();
            h.record(v);
            let got = h.percentile(50.0);
            let err = got.abs_diff(v);
            assert!(
                err <= v / (1 << PRECISION) + 1,
                "value {v}: got {got}, err {err}"
            );
        }
        let _ = h;
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = HdrHistogram::new();
        let mut b = HdrHistogram::new();
        let mut both = HdrHistogram::new();
        for i in 0..1000u64 {
            let v = i * i % 7919;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = HdrHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(99.0), 0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn snapshot_quantiles_are_ordered() {
        let mut h = HdrHistogram::new();
        for i in 1..=10_000u64 {
            h.record(i * 37);
        }
        let s = h.snapshot();
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.p999);
        assert!(s.p999 <= s.max);
        assert!(s.min <= s.p50);
    }
}
