//! Typed, labeled metrics registry.
//!
//! The PR-2 [`crate::span::Recorder`] keeps flat `&'static str` counters
//! and log2 histograms — enough for "how many retries", not for "p99
//! kernel-stage latency on device 1 under the Overlap version". This
//! registry adds the missing dimensions: every metric is a *name* plus
//! an ordered list of *labels* (`stage`, `version`, `device`, ...), and
//! histograms are percentile-accurate [`HdrHistogram`]s.
//!
//! Three metric kinds, mirroring the usual time-series vocabulary:
//!
//! * **counters** — monotone `u64` sums ([`Registry::add`]);
//! * **gauges** — last-write-wins `f64` levels ([`Registry::set_gauge`]);
//! * **histograms** — HDR latency distributions ([`Registry::observe`]).
//!
//! Registries are [mergeable](Registry::merge) (counters add, gauges
//! take the other side's writes, histograms merge element-wise), so
//! per-thread or per-device shards combine into one fleet view. A
//! [`RegistrySnapshot`] freezes everything into plain sorted data for
//! run results and JSON.

use std::fmt::Write as _;

use parking_lot::Mutex;

use crate::hdr::{HdrHistogram, HdrSnapshot};
use crate::json::Json;

/// Metric identity: a static name plus ordered `(key, value)` labels.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Key {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

impl Key {
    fn matches(&self, name: &str, labels: &[(&'static str, &str)]) -> bool {
        self.name == name
            && self.labels.len() == labels.len()
            && self
                .labels
                .iter()
                .zip(labels)
                .all(|((ak, av), (bk, bv))| ak == bk && av == bv)
    }

    fn owned(name: &'static str, labels: &[(&'static str, &str)]) -> Key {
        Key {
            name,
            labels: labels.iter().map(|&(k, v)| (k, v.to_string())).collect(),
        }
    }

    /// Prometheus-flavoured rendering: `name{k=v,k=v}` (bare name when
    /// unlabeled). Used as the stable sort key in snapshots.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let mut s = String::from(self.name);
        s.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{k}={v}");
        }
        s.push('}');
        s
    }
}

#[derive(Default)]
struct Inner {
    counters: Vec<(Key, u64)>,
    gauges: Vec<(Key, f64)>,
    hists: Vec<(Key, HdrHistogram)>,
}

/// Thread-safe labeled metrics store. Lookup is a linear scan with a
/// no-allocation key compare — metric cardinality is tens of series, and
/// the hot engine path batches its observations per gate, so a lock +
/// scan is far below measurement noise (see the `obs_overhead` bench).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter `name{labels}`, creating it at zero first.
    pub fn add(&self, name: &'static str, labels: &[(&'static str, &str)], n: u64) {
        let mut inner = self.inner.lock();
        if let Some((_, v)) = inner
            .counters
            .iter_mut()
            .find(|(k, _)| k.matches(name, labels))
        {
            *v += n;
            return;
        }
        inner.counters.push((Key::owned(name, labels), n));
    }

    /// Sets the gauge `name{labels}` to `v` (last write wins).
    pub fn set_gauge(&self, name: &'static str, labels: &[(&'static str, &str)], v: f64) {
        let mut inner = self.inner.lock();
        if let Some((_, g)) = inner
            .gauges
            .iter_mut()
            .find(|(k, _)| k.matches(name, labels))
        {
            *g = v;
            return;
        }
        inner.gauges.push((Key::owned(name, labels), v));
    }

    /// Records one sample into the HDR histogram `name{labels}`.
    pub fn observe(&self, name: &'static str, labels: &[(&'static str, &str)], value: u64) {
        self.observe_n(name, labels, value, 1);
    }

    /// Records `n` identical samples into the histogram `name{labels}`.
    pub fn observe_n(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        value: u64,
        n: u64,
    ) {
        let mut inner = self.inner.lock();
        if let Some((_, h)) = inner
            .hists
            .iter_mut()
            .find(|(k, _)| k.matches(name, labels))
        {
            h.record_n(value, n);
            return;
        }
        let mut h = HdrHistogram::new();
        h.record_n(value, n);
        inner.hists.push((Key::owned(name, labels), h));
    }

    /// Merges another registry into this one: counters add, gauges take
    /// `other`'s value, histograms merge element-wise. This is how
    /// per-thread / per-device shards collapse into a fleet view.
    pub fn merge(&self, other: &Registry) {
        let other = other.inner.lock();
        let mut inner = self.inner.lock();
        for (k, n) in &other.counters {
            if let Some((_, v)) = inner.counters.iter_mut().find(|(ik, _)| ik == &*k) {
                *v += n;
            } else {
                inner.counters.push((k.clone(), *n));
            }
        }
        for (k, g) in &other.gauges {
            if let Some((_, v)) = inner.gauges.iter_mut().find(|(ik, _)| ik == &*k) {
                *v = *g;
            } else {
                inner.gauges.push((k.clone(), *g));
            }
        }
        for (k, h) in &other.hists {
            if let Some((_, v)) = inner.hists.iter_mut().find(|(ik, _)| ik == &*k) {
                v.merge(h);
            } else {
                inner.hists.push((k.clone(), h.clone()));
            }
        }
    }

    /// Freezes the registry into plain sorted data.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.inner.lock();
        let entry = |k: &Key| {
            (
                k.name.to_string(),
                k.labels
                    .iter()
                    .map(|(lk, lv)| (lk.to_string(), lv.clone()))
                    .collect::<Vec<_>>(),
            )
        };
        let mut counters: Vec<MetricEntry<u64>> = inner
            .counters
            .iter()
            .map(|(k, v)| {
                let (name, labels) = entry(k);
                MetricEntry {
                    rendered: k.render(),
                    name,
                    labels,
                    value: *v,
                }
            })
            .collect();
        let mut gauges: Vec<MetricEntry<f64>> = inner
            .gauges
            .iter()
            .map(|(k, v)| {
                let (name, labels) = entry(k);
                MetricEntry {
                    rendered: k.render(),
                    name,
                    labels,
                    value: *v,
                }
            })
            .collect();
        let mut histograms: Vec<MetricEntry<HdrSnapshot>> = inner
            .hists
            .iter()
            .map(|(k, h)| {
                let (name, labels) = entry(k);
                MetricEntry {
                    rendered: k.render(),
                    name,
                    labels,
                    value: h.snapshot(),
                }
            })
            .collect();
        counters.sort_by(|a, b| a.rendered.cmp(&b.rendered));
        gauges.sort_by(|a, b| a.rendered.cmp(&b.rendered));
        histograms.sort_by(|a, b| a.rendered.cmp(&b.rendered));
        RegistrySnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// One frozen metric series: its name, labels, the Prometheus-style
/// rendered key, and the value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricEntry<T> {
    /// `name{k=v,...}` rendering — the stable sort / JSON key.
    pub rendered: String,
    /// Bare metric name.
    pub name: String,
    /// Ordered `(key, value)` labels.
    pub labels: Vec<(String, String)>,
    /// The frozen value.
    pub value: T,
}

impl<T> MetricEntry<T> {
    /// The value of label `key`, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Frozen view of a [`Registry`], sorted by rendered key so every
/// serialization of the same state is byte-identical.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// Monotone counters.
    pub counters: Vec<MetricEntry<u64>>,
    /// Last-write-wins gauges.
    pub gauges: Vec<MetricEntry<f64>>,
    /// HDR histogram summaries.
    pub histograms: Vec<MetricEntry<HdrSnapshot>>,
}

impl RegistrySnapshot {
    /// Histogram entries with the given metric name.
    pub fn histograms_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = &'a MetricEntry<HdrSnapshot>> {
        self.histograms.iter().filter(move |e| e.name == name)
    }

    /// The counter `name` with exactly the given labels, if recorded.
    pub fn counter(&self, rendered: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|e| e.rendered == rendered)
            .map(|e| e.value)
    }

    /// JSON rendering:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {key: {count,...,p999}}}`.
    pub fn to_json(&self) -> Json {
        let counters = self
            .counters
            .iter()
            .map(|e| (e.rendered.clone(), Json::Num(e.value as f64)))
            .collect();
        let gauges = self
            .gauges
            .iter()
            .map(|e| (e.rendered.clone(), Json::Num(e.value)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|e| {
                let h = &e.value;
                let fields = vec![
                    ("count".to_string(), Json::Num(h.count as f64)),
                    ("sum".to_string(), Json::Num(h.sum as f64)),
                    ("min".to_string(), Json::Num(h.min as f64)),
                    ("max".to_string(), Json::Num(h.max as f64)),
                    ("p50".to_string(), Json::Num(h.p50 as f64)),
                    ("p90".to_string(), Json::Num(h.p90 as f64)),
                    ("p99".to_string(), Json::Num(h.p99 as f64)),
                    ("p999".to_string(), Json::Num(h.p999 as f64)),
                ];
                (e.rendered.clone(), Json::Obj(fields))
            })
            .collect();
        Json::Obj(vec![
            ("counters".to_string(), Json::Obj(counters)),
            ("gauges".to_string(), Json::Obj(gauges)),
            ("histograms".to_string(), Json::Obj(histograms)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_per_label_set() {
        let r = Registry::new();
        r.add("tasks", &[("device", "0")], 3);
        r.add("tasks", &[("device", "1")], 5);
        r.add("tasks", &[("device", "0")], 4);
        let s = r.snapshot();
        assert_eq!(s.counter("tasks{device=0}"), Some(7));
        assert_eq!(s.counter("tasks{device=1}"), Some(5));
        assert_eq!(s.counter("tasks{device=2}"), None);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::new();
        r.set_gauge("window", &[], 4.0);
        r.set_gauge("window", &[], 2.0);
        let s = r.snapshot();
        assert_eq!(s.gauges.len(), 1);
        assert_eq!(s.gauges[0].value, 2.0);
    }

    #[test]
    fn histograms_track_labeled_distributions() {
        let r = Registry::new();
        for i in 1..=100u64 {
            r.observe("lat", &[("stage", "kernel")], i * 1000);
        }
        let s = r.snapshot();
        let e = s.histograms_named("lat").next().expect("recorded");
        assert_eq!(e.label("stage"), Some("kernel"));
        assert_eq!(e.value.count, 100);
        assert!(
            e.value.p50 >= 45_000 && e.value.p50 <= 55_000,
            "{}",
            e.value.p50
        );
        assert!(e.value.p99 >= 95_000, "{}", e.value.p99);
    }

    #[test]
    fn merge_combines_shards() {
        let a = Registry::new();
        let b = Registry::new();
        a.add("n", &[("device", "0")], 1);
        b.add("n", &[("device", "0")], 2);
        b.add("n", &[("device", "1")], 8);
        a.observe("lat", &[], 10);
        b.observe("lat", &[], 30);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.counter("n{device=0}"), Some(3));
        assert_eq!(s.counter("n{device=1}"), Some(8));
        let lat = s.histograms_named("lat").next().unwrap();
        assert_eq!(lat.value.count, 2);
        assert_eq!(lat.value.min, 10);
        assert_eq!(lat.value.max, 30);
    }

    #[test]
    fn snapshot_is_sorted_and_json_renders() {
        let r = Registry::new();
        r.add("z", &[], 1);
        r.add("a", &[], 1);
        let s = r.snapshot();
        assert_eq!(s.counters[0].rendered, "a");
        assert_eq!(s.counters[1].rendered, "z");
        let text = s.to_json().to_string();
        assert!(text.contains("\"counters\""));
        assert!(text.contains("\"histograms\""));
    }
}
