//! Counters and log₂-bucketed histograms, serializable to JSON.

use serde::{Deserialize, Serialize};

use crate::json::Json;

/// A histogram over `u64` values with logarithmic (power-of-two)
/// buckets: bucket 0 holds zeros, bucket `b ≥ 1` holds values in
/// `[2^(b-1), 2^b)`. Log scaling fits the quantities the engines record
/// — chunk bytes, compressed sizes, queue occupancies — whose dynamic
/// range spans many octaves.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    counts: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        LogHistogram::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records the same value `n` times in one update — the bulk form
    /// the engines use for per-gate aggregates (e.g. "`k` chunks of
    /// `chunk_bytes` each") so hot loops pay one histogram touch per
    /// gate instead of one per chunk.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let bucket = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.counts[bucket] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value (0 for an empty histogram).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Non-empty buckets as `(lower_bound, count)` pairs; bucket
    /// `[2^(b-1), 2^b)` reports `2^(b-1)` (and the zero bucket, 0).
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(b, &c)| (if b == 0 { 0 } else { 1u64 << (b - 1) }, c))
            .collect()
    }
}

/// A point-in-time copy of a recorder's counters and histograms.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// `(name, value)` counters, in first-touch order.
    pub counters: Vec<(String, u64)>,
    /// `(name, histogram)` pairs, in first-touch order.
    pub histograms: Vec<(String, LogHistogram)>,
}

impl MetricsSnapshot {
    pub(crate) fn collect(
        counters: &[(&'static str, u64)],
        hists: &[(&'static str, LogHistogram)],
    ) -> Self {
        MetricsSnapshot {
            counters: counters.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
            histograms: hists
                .iter()
                .map(|(k, h)| (k.to_string(), h.clone()))
                .collect(),
        }
    }

    /// The named counter's value, if it was ever touched.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|&(_, v)| v)
    }

    /// The named histogram, if it was ever touched.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, h)| h)
    }

    /// Serializes to a JSON document:
    /// `{"counters": {...}, "histograms": {name: {count, sum, min, max,
    /// mean, buckets: [[lo, n], ...]}, ...}}`.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v as f64)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Json::Arr(
                        h.buckets()
                            .into_iter()
                            .map(|(lo, n)| {
                                Json::Arr(vec![Json::Num(lo as f64), Json::Num(n as f64)])
                            })
                            .collect(),
                    );
                    let obj = Json::Obj(vec![
                        ("count".into(), Json::Num(h.count() as f64)),
                        ("sum".into(), Json::Num(h.sum() as f64)),
                        ("min".into(), Json::Num(h.min() as f64)),
                        ("max".into(), Json::Num(h.max() as f64)),
                        ("mean".into(), Json::Num(h.mean())),
                        ("buckets".into(), buckets),
                    ]);
                    (k.clone(), obj)
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".into(), counters),
            ("histograms".into(), histograms),
        ])
    }

    /// [`MetricsSnapshot::to_json`] rendered as a string.
    pub fn to_json_string(&self) -> String {
        self.to_json().to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_powers_of_two() {
        let mut h = LogHistogram::new();
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1024, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.count(), 9);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1 << 40);
        let buckets = h.buckets();
        // 0 → bucket 0; 1 → [1,2); 2,3 → [2,4); 4,7 → [4,8); 8 → [8,16);
        // 1024 → [1024,2048); 2^40 → [2^40, 2^41).
        assert_eq!(
            buckets,
            vec![
                (0, 1),
                (1, 1),
                (2, 2),
                (4, 2),
                (8, 1),
                (1024, 1),
                (1 << 40, 1)
            ]
        );
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn snapshot_serializes_and_parses_back() {
        let mut h = LogHistogram::new();
        h.record(5);
        h.record(4096);
        let snap = MetricsSnapshot {
            counters: vec![("chunks.processed".into(), 42)],
            histograms: vec![("chunk.bytes".into(), h)],
        };
        let text = snap.to_json_string();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("chunks.processed")),
            Some(&Json::Num(42.0))
        );
        let hist = parsed
            .get("histograms")
            .and_then(|h| h.get("chunk.bytes"))
            .expect("histogram present");
        assert_eq!(hist.get("count"), Some(&Json::Num(2.0)));
        assert_eq!(hist.get("max"), Some(&Json::Num(4096.0)));
    }
}
