//! Wall-clock spans: the measured counterpart of the modeled timeline.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

use crate::flightrec::{FlightEvent, FlightRecorder};
use crate::json::Json;
use crate::metrics::{LogHistogram, MetricsSnapshot};
use crate::registry::Registry;

/// Default bound on the number of retained spans (see
/// [`Recorder::with_span_cap`]).
pub const DEFAULT_SPAN_CAP: usize = 1 << 20;

/// What a measured span was doing — the axis the drift report aligns
/// against the modeled [`qgpu_device::TaskKind`] categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Stage {
    /// Functional amplitude update (the host stand-in for both the
    /// modeled host update and the modeled GPU kernel).
    Update,
    /// GFC compression.
    Compress,
    /// GFC decompression.
    Decompress,
    /// Scheduling, planning, reordering, fusion — orchestration work the
    /// model charges as sync/driver overhead.
    Plan,
    /// Mid-circuit measurement/reset collapse (marginal reduction plus
    /// elementwise renormalization).
    Measure,
    /// End-of-circuit seeded shot sampling.
    Sample,
    /// Anything else.
    Other,
}

impl Stage {
    /// All stages (for report iteration).
    pub const ALL: [Stage; 7] = [
        Stage::Update,
        Stage::Compress,
        Stage::Decompress,
        Stage::Plan,
        Stage::Measure,
        Stage::Sample,
        Stage::Other,
    ];

    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Update => "update",
            Stage::Compress => "compress",
            Stage::Decompress => "decompress",
            Stage::Plan => "plan",
            Stage::Measure => "measure",
            Stage::Sample => "sample",
            Stage::Other => "other",
        }
    }

    /// Maps an engine pipeline-stage name (`plan`, `prune`, `deal`,
    /// `fetch`, `decompress`, `kernel`, `compress`, `writeback`, `sync`,
    /// `measure`, `sample`) to the measured span category its work is
    /// charged under, so span attribution follows the stage graph instead
    /// of ad-hoc literals.
    pub fn for_pipeline(name: &str) -> Stage {
        match name {
            "plan" | "prune" | "deal" => Stage::Plan,
            "kernel" => Stage::Update,
            "compress" => Stage::Compress,
            "decompress" => Stage::Decompress,
            "measure" => Stage::Measure,
            "sample" => Stage::Sample,
            _ => Stage::Other,
        }
    }
}

/// Which measured thread a span belongs to: the engine's orchestrator
/// loop, or one of the [`ChunkExecutor`](../../qgpu_statevec/executor/struct.ChunkExecutor.html)
/// workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Track {
    /// The engine's single-threaded orchestration loop. Only `Main`
    /// spans enter per-phase totals (worker spans overlap them).
    Main,
    /// Worker `i` of the chunk-executor pool.
    Worker(usize),
}

/// One measured wall-clock interval, in microseconds since the
/// recorder's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WallSpan {
    /// Thread the span ran on.
    pub track: Track,
    /// Phase category.
    pub stage: Stage,
    /// Site label (e.g. `"update.local"`, `"gfc.compress"`).
    pub name: &'static str,
    /// Start, µs since the recorder was created.
    pub start_us: f64,
    /// Duration in µs.
    pub dur_us: f64,
}

/// A thread-safe span/counter/histogram sink.
///
/// A `Recorder` is created per observed run and handed down the stack as
/// `Option<&Recorder>` (or `Option<Arc<Recorder>>` across the executor's
/// worker threads). All methods are `&self`; recording takes one clock
/// read per span edge and one short mutex hold.
///
/// The retained span list is bounded ([`DEFAULT_SPAN_CAP`] by default):
/// past the cap, spans still flow into the exact per-stage totals
/// ([`Recorder::stage_total_s`]) but are dropped from the list, and the
/// drop count surfaces as the `spans.dropped` counter in
/// [`Recorder::metrics`]. This keeps memory and trace size bounded on
/// per-chunk hot paths without silently losing time accounting.
pub struct Recorder {
    t0: Option<Instant>,
    span_cap: usize,
    /// When false (a flight-only recorder), [`span_opt`] short-circuits:
    /// no clock reads and no span storage, only counters, the registry
    /// and the flight ring stay live.
    spans_enabled: bool,
    spans: Mutex<Vec<WallSpan>>,
    dropped: AtomicU64,
    /// Exact Main-track per-stage totals in µs, indexed by
    /// [`Stage::ALL`] order — kept even for spans the cap drops.
    main_totals_us: Mutex<[f64; 7]>,
    counters: Mutex<Vec<(&'static str, u64)>>,
    hists: Mutex<Vec<(&'static str, LogHistogram)>>,
    registry: Registry,
    flight: Option<FlightRecorder>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder {
            t0: None,
            span_cap: DEFAULT_SPAN_CAP,
            spans_enabled: true,
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
            main_totals_us: Mutex::new([0.0; 7]),
            counters: Mutex::new(Vec::new()),
            hists: Mutex::new(Vec::new()),
            registry: Registry::new(),
            flight: None,
        }
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("spans", &self.spans.lock().len())
            .field("counters", &self.counters.lock().len())
            .field("hists", &self.hists.lock().len())
            .finish()
    }
}

impl Recorder {
    /// Creates an empty recorder anchored at the current instant.
    pub fn new() -> Self {
        Recorder {
            t0: Some(Instant::now()),
            ..Recorder::default()
        }
    }

    /// Bounds the retained span list to `cap` entries (totals stay
    /// exact; excess spans count into `spans.dropped`).
    pub fn with_span_cap(mut self, cap: usize) -> Self {
        self.span_cap = cap;
        self
    }

    /// Attaches a flight recorder keeping at most `events` entries.
    pub fn with_flight(mut self, events: usize) -> Self {
        self.flight = Some(FlightRecorder::new(events));
        self
    }

    /// Disables span recording (used for flight-only runs, where the
    /// per-span clock reads would be pure overhead). Counters, the
    /// registry and the flight ring stay live.
    pub fn without_spans(mut self) -> Self {
        self.spans_enabled = false;
        self
    }

    /// Whether [`span_opt`] records spans through this recorder.
    pub fn spans_enabled(&self) -> bool {
        self.spans_enabled
    }

    /// The labeled metrics registry this recorder carries.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Records a flight event when a flight recorder is attached. The
    /// detail closure only runs in that case, so disabled runs pay one
    /// branch and format nothing.
    pub fn flight<F: FnOnce() -> String>(&self, kind: &'static str, detail: F) {
        if let Some(fr) = &self.flight {
            fr.record(self.now_us(), kind, detail());
        }
    }

    /// Whether any fault-class flight event was recorded.
    pub fn flight_triggered(&self) -> bool {
        self.flight.as_ref().is_some_and(FlightRecorder::triggered)
    }

    /// The retained flight events, oldest first (empty when no flight
    /// recorder is attached).
    pub fn flight_events(&self) -> Vec<FlightEvent> {
        self.flight
            .as_ref()
            .map(FlightRecorder::events)
            .unwrap_or_default()
    }

    /// The flight dump document, when a flight recorder is attached.
    pub fn flight_json(&self) -> Option<Json> {
        self.flight.as_ref().map(FlightRecorder::to_json)
    }

    fn now_us(&self) -> f64 {
        self.t0.map_or(0.0, |t0| t0.elapsed().as_secs_f64() * 1e6)
    }

    /// Wall-clock seconds since the recorder was created.
    pub fn elapsed_s(&self) -> f64 {
        self.now_us() / 1e6
    }

    /// Opens a span; it is recorded when the returned guard drops.
    pub fn span(&self, track: Track, stage: Stage, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            rec: self,
            track,
            stage,
            name,
            start_us: self.now_us(),
        }
    }

    /// Adds `n` to the named counter.
    pub fn add(&self, name: &'static str, n: u64) {
        let mut counters = self.counters.lock();
        match counters.iter_mut().find(|(k, _)| *k == name) {
            Some((_, v)) => *v += n,
            None => counters.push((name, n)),
        }
    }

    /// Records one value into the named log₂-bucketed histogram.
    pub fn observe(&self, name: &'static str, value: u64) {
        self.observe_n(name, value, 1);
    }

    /// Records the same value `n` times into the named histogram in one
    /// touch (see [`LogHistogram::record_n`]).
    pub fn observe_n(&self, name: &'static str, value: u64, n: u64) {
        let mut hists = self.hists.lock();
        match hists.iter_mut().find(|(k, _)| *k == name) {
            Some((_, h)) => h.record_n(value, n),
            None => {
                let mut h = LogHistogram::new();
                h.record_n(value, n);
                hists.push((name, h));
            }
        }
    }

    fn push(&self, span: WallSpan) {
        if span.track == Track::Main {
            let idx = Stage::ALL
                .iter()
                .position(|&s| s == span.stage)
                .expect("stage in Stage::ALL");
            self.main_totals_us.lock()[idx] += span.dur_us;
        }
        let mut spans = self.spans.lock();
        if spans.len() < self.span_cap {
            spans.push(span);
        } else if self.dropped.fetch_add(1, Ordering::Relaxed) == 0 {
            // Warn exactly once per recorder: the trace is truncated from
            // here on (totals stay exact, and the final count surfaces as
            // the `spans.dropped` counter).
            eprintln!(
                "[qgpu-obs] span cap ({}) reached; further spans are dropped \
                 from the trace (stage totals stay exact, see the \
                 spans.dropped counter)",
                self.span_cap
            );
        }
    }

    /// A copy of every recorded span, in recording order.
    pub fn spans(&self) -> Vec<WallSpan> {
        self.spans.lock().clone()
    }

    /// A snapshot of every counter and histogram. Spans dropped by the
    /// cap appear as the `spans.dropped` counter.
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::collect(&self.counters.lock(), &self.hists.lock());
        let dropped = self.dropped.load(Ordering::Relaxed);
        if dropped > 0 {
            snap.counters.push(("spans.dropped".to_string(), dropped));
        }
        snap
    }

    /// Number of spans the cap dropped from the retained list.
    pub fn spans_dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total `Main`-track time spent in a stage, in seconds — exact
    /// even when the span cap dropped spans from the list. Worker
    /// spans are excluded: they overlap the orchestrator span that
    /// dispatched them, and double-counting would inflate phase totals.
    pub fn stage_total_s(&self, stage: Stage) -> f64 {
        let idx = Stage::ALL
            .iter()
            .position(|&s| s == stage)
            .expect("stage in Stage::ALL");
        self.main_totals_us.lock()[idx] / 1e6
    }
}

/// Records its span on drop (RAII, so early returns are covered).
#[must_use = "the span is recorded when the guard drops"]
pub struct SpanGuard<'a> {
    rec: &'a Recorder,
    track: Track,
    stage: Stage,
    name: &'static str,
    start_us: f64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let end = self.rec.now_us();
        self.rec.push(WallSpan {
            track: self.track,
            stage: self.stage,
            name: self.name,
            start_us: self.start_us,
            dur_us: end - self.start_us,
        });
    }
}

/// Opens a span only when a recorder is present — the instrumentation
/// idiom for hot paths:
///
/// ```
/// use qgpu_obs::{span_opt, Recorder, Stage, Track};
///
/// fn hot_path(rec: Option<&Recorder>) {
///     let _g = span_opt(rec, Track::Main, Stage::Update, "hot");
///     // ... work ...
/// }
/// hot_path(None); // no clock reads, no allocation
/// let rec = Recorder::new();
/// hot_path(Some(&rec));
/// assert_eq!(rec.spans().len(), 1);
/// ```
pub fn span_opt<'a>(
    rec: Option<&'a Recorder>,
    track: Track,
    stage: Stage,
    name: &'static str,
) -> Option<SpanGuard<'a>> {
    rec.filter(|r| r.spans_enabled)
        .map(|r| r.span(track, stage, name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_stage_names_map_to_span_categories() {
        assert_eq!(Stage::for_pipeline("plan"), Stage::Plan);
        assert_eq!(Stage::for_pipeline("prune"), Stage::Plan);
        assert_eq!(Stage::for_pipeline("deal"), Stage::Plan);
        assert_eq!(Stage::for_pipeline("kernel"), Stage::Update);
        assert_eq!(Stage::for_pipeline("compress"), Stage::Compress);
        assert_eq!(Stage::for_pipeline("decompress"), Stage::Decompress);
        assert_eq!(Stage::for_pipeline("measure"), Stage::Measure);
        assert_eq!(Stage::for_pipeline("sample"), Stage::Sample);
        assert_eq!(Stage::for_pipeline("fetch"), Stage::Other);
        assert_eq!(Stage::for_pipeline("writeback"), Stage::Other);
        assert_eq!(Stage::for_pipeline("sync"), Stage::Other);
    }

    #[test]
    fn spans_record_on_drop_with_monotonic_times() {
        let rec = Recorder::new();
        {
            let _outer = rec.span(Track::Main, Stage::Update, "outer");
            let _inner = rec.span(Track::Worker(1), Stage::Update, "inner");
        }
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        // Inner guard drops first.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[1].name, "outer");
        for s in &spans {
            assert!(s.dur_us >= 0.0 && s.start_us >= 0.0);
        }
    }

    #[test]
    fn counters_accumulate() {
        let rec = Recorder::new();
        rec.add("a", 2);
        rec.add("a", 3);
        rec.add("b", 1);
        let m = rec.metrics();
        assert_eq!(m.counter("a"), Some(5));
        assert_eq!(m.counter("b"), Some(1));
        assert_eq!(m.counter("missing"), None);
    }

    #[test]
    fn stage_totals_exclude_worker_tracks() {
        let rec = Recorder::new();
        drop(rec.span(Track::Main, Stage::Compress, "c"));
        drop(rec.span(Track::Worker(0), Stage::Compress, "w"));
        let all: f64 = rec.spans().iter().map(|s| s.dur_us).sum();
        assert!(rec.stage_total_s(Stage::Compress) * 1e6 <= all);
        assert_eq!(rec.stage_total_s(Stage::Update), 0.0);
    }

    #[test]
    fn span_cap_bounds_the_list_but_totals_stay_exact() {
        let rec = Recorder::new().with_span_cap(3);
        for _ in 0..5 {
            drop(rec.span(Track::Main, Stage::Update, "u"));
        }
        assert_eq!(rec.spans().len(), 3);
        assert_eq!(rec.spans_dropped(), 2);
        assert_eq!(rec.metrics().counter("spans.dropped"), Some(2));
        // The stage total still covers all five spans.
        let listed: f64 = rec.spans().iter().map(|s| s.dur_us).sum();
        assert!(rec.stage_total_s(Stage::Update) * 1e6 >= listed);
    }

    #[test]
    fn bulk_observe_matches_repeated_observe() {
        let rec = Recorder::new();
        rec.observe_n("bytes", 4096, 3);
        rec.observe("bytes", 16);
        let m = rec.metrics();
        let h = m.histogram("bytes").expect("recorded");
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 3 * 4096 + 16);
        assert_eq!(h.max(), 4096);
        assert_eq!(h.min(), 16);
    }

    #[test]
    fn flight_only_recorder_skips_spans_but_keeps_events() {
        let rec = Recorder::new().with_flight(16).without_spans();
        assert!(span_opt(Some(&rec), Track::Main, Stage::Update, "u").is_none());
        assert!(rec.spans().is_empty());
        rec.flight("retry", || "chunk 0 attempt 1".to_string());
        rec.flight("collapse", || "qubit 2 -> 1".to_string());
        assert!(rec.flight_triggered());
        assert_eq!(rec.flight_events().len(), 2);
        assert!(rec.flight_json().is_some());
        // Registry stays live regardless of the span switch.
        rec.registry().add("n", &[], 1);
        assert_eq!(rec.registry().snapshot().counter("n"), Some(1));
    }

    #[test]
    fn flight_detail_closure_is_lazy_without_a_ring() {
        let rec = Recorder::new();
        rec.flight("retry", || unreachable!("no flight ring attached"));
        assert!(!rec.flight_triggered());
        assert!(rec.flight_events().is_empty());
        assert!(rec.flight_json().is_none());
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let rec = std::sync::Arc::new(Recorder::new());
        crossbeam_scope(&rec);
        assert_eq!(rec.spans().len(), 4);

        fn crossbeam_scope(rec: &std::sync::Arc<Recorder>) {
            let handles: Vec<_> = (0..4)
                .map(|w| {
                    let rec = std::sync::Arc::clone(rec);
                    std::thread::spawn(move || {
                        let _g = rec.span(Track::Worker(w), Stage::Update, "worker");
                    })
                })
                .collect();
            for h in handles {
                h.join().expect("worker");
            }
        }
    }
}
