//! Self-describing run metadata.
//!
//! Every telemetry artifact this workspace writes — `--metrics-out`
//! snapshots, flight-recorder dumps, `BENCH_*.json` perf trajectories —
//! should identify *what produced it* without out-of-band context: the
//! git revision, the execution version / `OptFlags` label, the
//! stochastic seed, a hash of the full config, the crate version and
//! the host. [`RunMeta`] collects exactly that block once and renders
//! it the same way everywhere.

use std::process::Command;

use crate::json::Json;

/// 64-bit FNV-1a — the same fingerprint the golden-report harness uses,
/// here to give configs a compact stable identity.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The short git SHA of the working tree, or `"unknown"` outside a
/// repository (e.g. an unpacked source tarball).
pub fn git_sha() -> String {
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The metadata block stamped onto telemetry artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMeta {
    /// Short git SHA of the producing tree (`"unknown"` outside git).
    pub git_sha: String,
    /// Execution version or `OptFlags` label, e.g. `"Q-GPU"` or
    /// `"overlap+pruning"`.
    pub label: String,
    /// Stochastic seed the run was keyed by.
    pub seed: u64,
    /// FNV-1a hash of the full rendered config, as `%016x`.
    pub config_hash: String,
    /// Version of the producing crate.
    pub crate_version: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available hardware parallelism.
    pub cores: u64,
}

impl RunMeta {
    /// Collects the block: `label`/`seed` describe the run,
    /// `config_text` is any stable rendering of the full config (its
    /// FNV-1a hash becomes `config_hash`), `crate_version` is the
    /// caller's `env!("CARGO_PKG_VERSION")`.
    pub fn collect(label: &str, seed: u64, config_text: &str, crate_version: &str) -> Self {
        RunMeta {
            git_sha: git_sha(),
            label: label.to_string(),
            seed,
            config_hash: format!("{:016x}", fnv1a(config_text.as_bytes())),
            crate_version: crate_version.to_string(),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
            cores: std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1),
        }
    }

    /// The `meta` JSON block.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("git_sha".to_string(), Json::Str(self.git_sha.clone())),
            ("label".to_string(), Json::Str(self.label.clone())),
            ("seed".to_string(), Json::Num(self.seed as f64)),
            (
                "config_hash".to_string(),
                Json::Str(self.config_hash.clone()),
            ),
            (
                "crate_version".to_string(),
                Json::Str(self.crate_version.clone()),
            ),
            (
                "host".to_string(),
                Json::Obj(vec![
                    ("os".to_string(), Json::Str(self.os.clone())),
                    ("arch".to_string(), Json::Str(self.arch.clone())),
                    ("cores".to_string(), Json::Num(self.cores as f64)),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"config a"), fnv1a(b"config b"));
    }

    #[test]
    fn meta_block_renders_all_fields() {
        let m = RunMeta::collect("Q-GPU", 7, "cfg{qubits:10}", "0.1.0");
        let j = m.to_json();
        assert_eq!(j.get("label").and_then(Json::as_str), Some("Q-GPU"));
        assert_eq!(j.get("seed").and_then(Json::as_f64), Some(7.0));
        assert_eq!(
            j.get("config_hash").and_then(Json::as_str).map(str::len),
            Some(16)
        );
        assert!(j.get("host").and_then(|h| h.get("cores")).is_some());
        // Same config text, same hash; different text, different hash.
        let m2 = RunMeta::collect("Q-GPU", 7, "cfg{qubits:10}", "0.1.0");
        assert_eq!(m.config_hash, m2.config_hash);
        let m3 = RunMeta::collect("Q-GPU", 7, "cfg{qubits:12}", "0.1.0");
        assert_ne!(m.config_hash, m3.config_hash);
    }
}
