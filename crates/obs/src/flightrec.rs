//! Flight recorder: a bounded ring of structured engine events.
//!
//! Spans and counters say *how much*; when a resilience path fires you
//! also need *what happened, in order* — which chunk retried, what the
//! governor downshifted to, which device was lost, how a collapse came
//! out. The flight recorder keeps the last N such events in a fixed-size
//! ring (old events fall off the front, post-mortems care about the
//! tail) and marks itself **triggered** when any event of a fault class
//! arrives. The engine dumps the ring to JSON automatically on any
//! `SimError`, raw-codec fallback, worker loss or governor downshift —
//! and on demand via `qgpu-sim --flight-out`.
//!
//! Event payloads are built lazily: callers pass a closure, so a run
//! with the recorder disabled never formats a string (see
//! [`crate::span::Recorder::flight`]).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::json::Json;

/// Schema tag written into every flight dump.
pub const FLIGHT_SCHEMA: &str = "qgpu-flight/v1";

/// Default ring capacity (events).
pub const DEFAULT_FLIGHT_EVENTS: usize = 4096;

/// Event kinds that mark the recording as triggered — the fault classes
/// whose occurrence should leave a post-mortem on disk.
pub const TRIGGER_KINDS: &[&str] = &[
    "error",
    "retry",
    "codec_fallback",
    "prune_fallback",
    "worker_restart",
    "device_loss",
    "downshift",
    "link_degraded",
    "abort",
    "shed",
    "deadline",
    "integrity",
    "quarantine",
    "resume",
];

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Monotone sequence number over the whole run (survives ring wrap).
    pub seq: u64,
    /// Microseconds since the recorder started.
    pub t_us: f64,
    /// Event class, e.g. `"retry"` or `"collapse"`.
    pub kind: &'static str,
    /// Human-readable payload.
    pub detail: String,
}

/// Bounded ring buffer of [`FlightEvent`]s.
pub struct FlightRecorder {
    cap: usize,
    recorded: AtomicU64,
    triggered: AtomicBool,
    events: Mutex<VecDeque<FlightEvent>>,
}

impl FlightRecorder {
    /// A recorder keeping at most `cap` events (clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        FlightRecorder {
            cap: cap.max(1),
            recorded: AtomicU64::new(0),
            triggered: AtomicBool::new(false),
            events: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends an event, evicting the oldest once the ring is full.
    /// Fault-class kinds (see [`TRIGGER_KINDS`]) trip the trigger latch.
    pub fn record(&self, t_us: f64, kind: &'static str, detail: String) {
        let seq = self.recorded.fetch_add(1, Ordering::Relaxed);
        if TRIGGER_KINDS.contains(&kind) {
            self.triggered.store(true, Ordering::Relaxed);
        }
        let mut events = self.events.lock();
        if events.len() == self.cap {
            events.pop_front();
        }
        events.push_back(FlightEvent {
            seq,
            t_us,
            kind,
            detail,
        });
    }

    /// Whether any fault-class event has been recorded.
    pub fn triggered(&self) -> bool {
        self.triggered.load(Ordering::Relaxed)
    }

    /// Total events ever recorded (≥ the ring's current length).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<FlightEvent> {
        self.events.lock().iter().cloned().collect()
    }

    /// Full dump document:
    /// `{"schema": "qgpu-flight/v1", "triggered": .., "recorded": .., "events": [..]}`.
    pub fn to_json(&self) -> Json {
        let events = self
            .events
            .lock()
            .iter()
            .map(|e| {
                Json::Obj(vec![
                    ("seq".to_string(), Json::Num(e.seq as f64)),
                    ("t_us".to_string(), Json::Num(e.t_us)),
                    ("kind".to_string(), Json::Str(e.kind.to_string())),
                    ("detail".to_string(), Json::Str(e.detail.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema".to_string(), Json::Str(FLIGHT_SCHEMA.to_string())),
            ("triggered".to_string(), Json::Bool(self.triggered())),
            ("recorded".to_string(), Json::Num(self.recorded() as f64)),
            ("events".to_string(), Json::Arr(events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_tail() {
        let fr = FlightRecorder::new(4);
        for i in 0..10u64 {
            fr.record(i as f64, "collapse", format!("event {i}"));
        }
        let events = fr.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].seq, 6);
        assert_eq!(events[3].seq, 9);
        assert_eq!(fr.recorded(), 10);
        // "collapse" is informational, not a fault class.
        assert!(!fr.triggered());
    }

    #[test]
    fn fault_kinds_trip_the_trigger() {
        for &kind in TRIGGER_KINDS {
            let fr = FlightRecorder::new(8);
            assert!(!fr.triggered());
            fr.record(0.0, kind, String::new());
            assert!(fr.triggered(), "{kind} must trigger");
        }
    }

    #[test]
    fn dump_is_schema_tagged_and_parses_back() {
        let fr = FlightRecorder::new(8);
        fr.record(1.5, "retry", "chunk 3 attempt 1".to_string());
        let text = fr.to_json().to_string();
        let parsed = Json::parse(&text).expect("dump parses");
        assert_eq!(parsed.to_string(), text, "round trip is byte-stable");
        assert!(text.contains("\"schema\":\"qgpu-flight/v1\""));
        assert!(text.contains("\"triggered\":true"));
    }
}
