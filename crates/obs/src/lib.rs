//! Unified tracing & metrics for the Q-GPU reproduction.
//!
//! The paper reads its entire evaluation off `nvprof` traces; the
//! reproduction models that with `qgpu_device::Timeline`. This crate adds
//! the *other* half of the instrument panel — what the host engines
//! actually do, in wall-clock time — and the glue that puts both in one
//! picture:
//!
//! * [`Recorder`] — a lightweight span/counter/histogram sink. Every
//!   operation takes `Option<&Recorder>`; passing `None` compiles to a
//!   no-op (no clock reads, no locks), so instrumented hot paths cost
//!   nothing when observability is off.
//! * [`export::ChromeTrace`] — a Chrome trace-event / Perfetto JSON
//!   exporter that emits **two process tracks**: the modeled device
//!   timeline (one thread per [`qgpu_device::Engine`]) and the measured
//!   wall-clock spans (one thread per worker), so a single trace file
//!   shows model and reality side by side. Open with
//!   <https://ui.perfetto.dev> or `chrome://tracing`.
//! * [`metrics::MetricsSnapshot`] — counters plus log₂-bucketed
//!   histograms (chunk bytes, prune decisions, per-chunk compression
//!   ratio, worker queue occupancy), serialized to JSON.
//! * [`drift::DriftReport`] — aligns modeled per-phase totals against
//!   measured wall-clock totals and flags phases where the device model
//!   mispredicts the phase *share* by more than a configurable
//!   tolerance.
//! * [`registry::Registry`] — typed, labeled metrics (counters, gauges
//!   and [`hdr::HdrHistogram`] percentile histograms keyed by
//!   stage × version × device), mergeable across threads and devices,
//!   frozen into a [`registry::RegistrySnapshot`].
//! * [`flightrec::FlightRecorder`] — a bounded ring of structured
//!   events (retries, fallbacks, device loss, downshifts, collapse
//!   outcomes) dumped to JSON for post-mortems when a fault path fires.
//! * [`meta::RunMeta`] — the self-describing metadata block (git SHA,
//!   seed, config hash, host) stamped onto every telemetry artifact.
//!
//! No JSON dependency exists in this workspace (the vendored `serde` is a
//! marker-trait stub), so [`json`] provides the minimal writer/parser the
//! exporters need.
//!
//! # Examples
//!
//! ```
//! use qgpu_obs::{Recorder, Stage, Track};
//!
//! let rec = Recorder::new();
//! {
//!     let _g = rec.span(Track::Main, Stage::Update, "update.local");
//!     // ... the instrumented work ...
//! }
//! rec.add("chunks.processed", 3);
//! rec.observe("chunk.bytes", 4096);
//! let spans = rec.spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].stage, Stage::Update);
//! assert_eq!(rec.metrics().counter("chunks.processed"), Some(3));
//! ```

pub mod drift;
pub mod export;
pub mod flightrec;
pub mod hdr;
pub mod json;
pub mod meta;
pub mod metrics;
pub mod registry;
pub mod span;

pub use drift::DriftReport;
pub use export::ChromeTrace;
pub use flightrec::{FlightEvent, FlightRecorder, DEFAULT_FLIGHT_EVENTS, FLIGHT_SCHEMA};
pub use hdr::{HdrHistogram, HdrSnapshot};
pub use json::Json;
pub use meta::RunMeta;
pub use metrics::{LogHistogram, MetricsSnapshot};
pub use registry::{MetricEntry, Registry, RegistrySnapshot};
pub use span::{span_opt, Recorder, SpanGuard, Stage, Track, WallSpan};
