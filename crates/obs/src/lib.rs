//! Unified tracing & metrics for the Q-GPU reproduction.
//!
//! The paper reads its entire evaluation off `nvprof` traces; the
//! reproduction models that with `qgpu_device::Timeline`. This crate adds
//! the *other* half of the instrument panel — what the host engines
//! actually do, in wall-clock time — and the glue that puts both in one
//! picture:
//!
//! * [`Recorder`] — a lightweight span/counter/histogram sink. Every
//!   operation takes `Option<&Recorder>`; passing `None` compiles to a
//!   no-op (no clock reads, no locks), so instrumented hot paths cost
//!   nothing when observability is off.
//! * [`export::ChromeTrace`] — a Chrome trace-event / Perfetto JSON
//!   exporter that emits **two process tracks**: the modeled device
//!   timeline (one thread per [`qgpu_device::Engine`]) and the measured
//!   wall-clock spans (one thread per worker), so a single trace file
//!   shows model and reality side by side. Open with
//!   <https://ui.perfetto.dev> or `chrome://tracing`.
//! * [`metrics::MetricsSnapshot`] — counters plus log₂-bucketed
//!   histograms (chunk bytes, prune decisions, per-chunk compression
//!   ratio, worker queue occupancy), serialized to JSON.
//! * [`drift::DriftReport`] — aligns modeled per-phase totals against
//!   measured wall-clock totals and flags phases where the device model
//!   mispredicts the phase *share* by more than a configurable
//!   tolerance.
//!
//! No JSON dependency exists in this workspace (the vendored `serde` is a
//! marker-trait stub), so [`json`] provides the minimal writer/parser the
//! exporters need.
//!
//! # Examples
//!
//! ```
//! use qgpu_obs::{Recorder, Stage, Track};
//!
//! let rec = Recorder::new();
//! {
//!     let _g = rec.span(Track::Main, Stage::Update, "update.local");
//!     // ... the instrumented work ...
//! }
//! rec.add("chunks.processed", 3);
//! rec.observe("chunk.bytes", 4096);
//! let spans = rec.spans();
//! assert_eq!(spans.len(), 1);
//! assert_eq!(spans[0].stage, Stage::Update);
//! assert_eq!(rec.metrics().counter("chunks.processed"), Some(3));
//! ```

pub mod drift;
pub mod export;
pub mod json;
pub mod metrics;
pub mod span;

pub use drift::DriftReport;
pub use export::ChromeTrace;
pub use json::Json;
pub use metrics::{LogHistogram, MetricsSnapshot};
pub use span::{span_opt, Recorder, SpanGuard, Stage, Track, WallSpan};
