//! Golden-file coverage for the Perfetto exporter: the emitted JSON is
//! byte-stable, structurally valid Chrome trace-event format, and
//! round-trips through the serializer.
//!
//! Regenerate the golden file after an intentional format change with
//! `BLESS=1 cargo test -p qgpu-obs --test golden_trace`.

use std::path::Path;

use qgpu_device::timeline::{Engine, TaskKind, Timeline};
use qgpu_obs::{ChromeTrace, Json, Stage, Track, WallSpan};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/two_track_trace.json"
);

/// A small deterministic two-track trace: a 2-GPU modeled pipeline step
/// plus a measured orchestrator/worker pair.
fn sample_trace() -> ChromeTrace {
    let mut tl = Timeline::with_trace(64);
    let h2d = tl.schedule(Engine::H2d(0), 0.0, 2.0e-3, TaskKind::H2dCopy, 1 << 20);
    let k0 = tl.schedule(
        Engine::GpuCompute(0),
        h2d.end,
        1.0e-3,
        TaskKind::Kernel,
        1 << 20,
    );
    tl.schedule(
        Engine::GpuCompute(0),
        k0.end,
        2.5e-4,
        TaskKind::Compress,
        1 << 20,
    );
    tl.schedule(
        Engine::GpuCompute(1),
        0.0,
        1.0e-3,
        TaskKind::Kernel,
        1 << 20,
    );
    tl.schedule(Engine::D2h(1), 1.0e-3, 2.0e-3, TaskKind::D2hCopy, 1 << 18);
    tl.schedule(Engine::Host, 0.0, 4.0e-3, TaskKind::HostUpdate, 1 << 21);
    tl.schedule(Engine::Host, 4.0e-3, 1.0e-4, TaskKind::Sync, 0);

    let measured = [
        WallSpan {
            track: Track::Main,
            stage: Stage::Plan,
            name: "sched.plan",
            start_us: 0.0,
            dur_us: 35.5,
        },
        WallSpan {
            track: Track::Main,
            stage: Stage::Update,
            name: "update.chunk",
            start_us: 35.5,
            dur_us: 800.25,
        },
        WallSpan {
            track: Track::Worker(0),
            stage: Stage::Update,
            name: "worker.apply",
            start_us: 40.0,
            dur_us: 750.0,
        },
        WallSpan {
            track: Track::Main,
            stage: Stage::Compress,
            name: "gfc.compress",
            start_us: 835.75,
            dur_us: 120.0,
        },
    ];
    ChromeTrace::two_track(tl.trace(), &measured)
}

#[test]
fn trace_json_matches_golden_file() {
    let text = sample_trace().to_json_string();
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(GOLDEN, format!("{text}\n")).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .unwrap_or_else(|e| panic!("missing golden file {GOLDEN} ({e}); regenerate with BLESS=1"));
    assert_eq!(
        text,
        golden.trim_end(),
        "trace JSON drifted from {}",
        Path::new(GOLDEN).display()
    );
}

#[test]
fn golden_is_valid_chrome_trace_event_format() {
    let doc = Json::parse(&sample_trace().to_json_string()).expect("valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(|v| v.as_str()),
        Some("ms")
    );
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    for ev in events {
        let ph = ev.get("ph").and_then(|v| v.as_str()).expect("ph");
        assert!(ph == "X" || ph == "M", "unexpected phase {ph}");
        for key in ["pid", "tid", "ts"] {
            assert!(ev.get(key).and_then(|v| v.as_f64()).is_some(), "no {key}");
        }
        assert!(ev.get("name").and_then(|v| v.as_str()).is_some());
        match ph {
            // Complete events carry a duration.
            "X" => assert!(ev.get("dur").and_then(|v| v.as_f64()).is_some()),
            // Metadata events carry the display name in args.name.
            _ => assert!(ev
                .get("args")
                .and_then(|a| a.get("name"))
                .and_then(|v| v.as_str())
                .is_some()),
        }
    }
}

#[test]
fn golden_trace_round_trips_through_serde() {
    let trace = sample_trace();
    let text = trace.to_json_string();
    let back = ChromeTrace::from_json_str(&text).expect("parse");
    assert_eq!(back, trace);
    assert_eq!(back.to_json_string(), text);
}

#[test]
fn golden_trace_has_both_process_tracks() {
    use qgpu_obs::export::{PID_MEASURED, PID_MODELED};
    let trace = sample_trace();
    // Modeled rows: host + gpu0 compute/h2d + gpu1 compute/d2h.
    assert_eq!(trace.threads_of(PID_MODELED).len(), 5);
    // Measured rows: orchestrator + worker 0.
    assert_eq!(trace.threads_of(PID_MEASURED), vec![0, 1]);
}
