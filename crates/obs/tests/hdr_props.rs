//! Property tests for the HDR histogram's percentile math.
//!
//! Two contracts matter for telemetry built on merged shards:
//!
//! 1. **Merge associativity/commutativity** — per-thread and per-device
//!    histograms must combine into the same fleet view regardless of
//!    merge order, or cross-device aggregation would depend on thread
//!    scheduling.
//! 2. **Rank error bound** — any reported quantile must sit in the same
//!    log-linear bucket as the exact order-statistic, i.e. within
//!    `value / 2^PRECISION` (+1 for integer midpoint rounding) of the
//!    value an exact sort would return.

use proptest::prelude::*;
use qgpu_obs::hdr::PRECISION;
use qgpu_obs::HdrHistogram;

fn hist_of(values: &[u64]) -> HdrHistogram {
    let mut h = HdrHistogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

/// Exact order statistic matching the histogram's rank definition:
/// the `ceil(q/100 * n)`-th smallest value (1-based, clamped).
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000_000, 0..200),
        c in proptest::collection::vec(0u64..1_000_000_000, 0..200),
    ) {
        let (ha, hb, hc) = (hist_of(&a), hist_of(&b), hist_of(&c));

        // (a ⊕ b) ⊕ c
        let mut left = ha.clone();
        left.merge(&hb);
        left.merge(&hc);
        // a ⊕ (b ⊕ c)
        let mut bc = hb.clone();
        bc.merge(&hc);
        let mut right = ha.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right, "merge must be associative");

        // b ⊕ a == a ⊕ b
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(&ab, &ba, "merge must be commutative");

        // Merging shards equals recording the concatenation.
        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &hist_of(&all));
    }

    #[test]
    fn percentiles_stay_within_the_rank_error_bound(
        mut values in proptest::collection::vec(0u64..10_000_000_000, 1..400),
        q in 0.1f64..100.0,
    ) {
        let h = hist_of(&values);
        values.sort_unstable();
        let exact = exact_percentile(&values, q);
        let approx = h.percentile(q);
        // Same log-linear bucket as the exact order statistic: relative
        // error bounded by the bucket width, +1 for midpoint rounding.
        let bound = exact / (1u64 << PRECISION) + 1;
        prop_assert!(
            approx.abs_diff(exact) <= bound,
            "q={q}: approx {approx} vs exact {exact} (bound {bound})"
        );
    }

    #[test]
    fn standard_quantiles_hold_the_bound_too(
        mut values in proptest::collection::vec(0u64..1_000_000_000_000, 1..300),
    ) {
        let h = hist_of(&values);
        values.sort_unstable();
        for q in [50.0, 90.0, 99.0, 99.9] {
            let exact = exact_percentile(&values, q);
            let approx = h.percentile(q);
            let bound = exact / (1u64 << PRECISION) + 1;
            prop_assert!(
                approx.abs_diff(exact) <= bound,
                "q={q}: approx {approx} vs exact {exact} (bound {bound})"
            );
        }
        // Aggregates agree with the exact data.
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), values[0]);
        prop_assert_eq!(h.max(), *values.last().unwrap());
        prop_assert_eq!(h.sum(), values.iter().sum::<u64>());
    }
}
