//! The involvement tracker and zero-chunk pruning test (Algorithm 1).
//!
//! A chunk of the state vector is guaranteed all-zero exactly when its
//! chunk-index selects a `1` for some qubit that no gate has touched yet
//! (the initial state is |0…0⟩, and linear gate application keeps
//! untouched subspaces zero). Algorithm 1 of the paper evaluates this with
//! two bit tricks over the involvement mask; both are implemented here
//! verbatim, plus the dynamic chunk-size selection.

use qgpu_circuit::{Circuit, Operation};
use serde::{Deserialize, Serialize};

/// Tracks which qubits have been involved by the gates applied so far.
///
/// # Examples
///
/// ```
/// use qgpu_sched::InvolvementTracker;
/// use qgpu_circuit::{Gate, Operation};
///
/// let mut t = InvolvementTracker::new(8);
/// t.involve(&Operation::new(Gate::H, vec![0]));
/// t.involve(&Operation::new(Gate::Cx, vec![0, 1]));
/// assert_eq!(t.mask(), 0b11);
/// // With 1-qubit chunks, chunks with any bit ≥ 1 set beyond the mask
/// // are prunable.
/// assert!(!t.chunk_is_zero(0, 1));
/// assert!(t.chunk_is_zero(2, 1)); // index bit for qubit 2 set
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InvolvementTracker {
    mask: u64,
    num_qubits: usize,
}

impl InvolvementTracker {
    /// A tracker with no qubits involved.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0 or greater than 64.
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits > 0 && num_qubits <= 64);
        InvolvementTracker {
            mask: 0,
            num_qubits,
        }
    }

    /// The involvement bitmask (`involvement` in Algorithm 1).
    pub fn mask(&self) -> u64 {
        self.mask
    }

    /// Number of involved qubits.
    pub fn involved_count(&self) -> u32 {
        self.mask.count_ones()
    }

    /// Returns `true` once every qubit has been involved (pruning can no
    /// longer help).
    pub fn is_fully_involved(&self) -> bool {
        self.mask == qgpu_circuit::involvement::full_mask(self.num_qubits)
    }

    /// Marks the operation's qubits involved (Algorithm 1's
    /// `updateInvolvement`).
    pub fn involve(&mut self, op: &Operation) {
        self.mask |= op.qubit_mask();
    }

    /// Marks an explicit qubit set involved.
    pub fn involve_mask(&mut self, mask: u64) {
        self.mask |= mask;
    }

    /// Algorithm 1's pruning test: is the chunk with index `chunk` (under
    /// `chunk_bits`-qubit chunks) guaranteed all-zero?
    ///
    /// The chunk's high index bits occupy global bit positions
    /// `chunk_bits..`; the chunk is non-zero only if every set bit maps to
    /// an involved qubit (`iChunk' & involvement == iChunk'`).
    pub fn chunk_is_zero(&self, chunk: usize, chunk_bits: u32) -> bool {
        let shifted = (chunk as u64) << chunk_bits;
        shifted & self.mask != shifted
    }

    /// Algorithm 1's early-exit test (line 5): once `iChunk'` exceeds the
    /// involvement mask, this and *all following* chunks are zero, so the
    /// scan can stop.
    pub fn chunks_exhausted(&self, chunk: usize, chunk_bits: u32) -> bool {
        (chunk as u64) << chunk_bits > self.mask
    }

    /// Dynamic chunk size (Algorithm 1's `getChunkSize`): the number of
    /// contiguous low involved qubits, clamped to `[1, max_bits]`.
    ///
    /// Early in a run, when only qubits `0..k` are involved, a `k`-qubit
    /// chunk makes chunk 0 hold every non-zero amplitude and all other
    /// chunks prunable; the clamp keeps chunks within the transfer-buffer
    /// size once involvement has spread.
    pub fn dynamic_chunk_bits(&self, max_bits: u32) -> u32 {
        let trailing = (self.mask.trailing_ones()).max(1);
        trailing.min(max_bits).min(self.num_qubits as u32)
    }

    /// Number of chunks that *survive* pruning under the given chunk
    /// size: one per pattern of involved qubits at positions ≥
    /// `chunk_bits`.
    pub fn surviving_chunks(&self, chunk_bits: u32) -> usize {
        let high_involved = (self.mask >> chunk_bits).count_ones();
        1usize << high_involved.min(usize::BITS - 1)
    }

    /// Cost-model-driven chunk size: picks the `chunk_bits` in
    /// `[1, max_bits]` minimizing the per-gate movement cost
    /// `surviving_chunks(b) × (overhead_bytes + chunk_bytes(b))`, where
    /// `overhead_bytes` is the fixed per-task cost (transfer latency +
    /// kernel launch) expressed in byte-equivalents.
    ///
    /// This generalizes Algorithm 1's `getChunkSize`: when the involved
    /// qubits are the contiguous low block `0..k`, the minimum is the
    /// paper's choice (a chunk exactly covering the block); when
    /// involvement has gaps, tiny chunks would multiply per-task overhead
    /// without pruning more, and the cost model correctly keeps chunks
    /// large.
    pub fn optimal_chunk_bits(&self, max_bits: u32, overhead_bytes: f64) -> u32 {
        let max_bits = max_bits.clamp(1, self.num_qubits as u32);
        // Iterate from large to small so ties keep the larger size
        // (fewer tasks for the same bytes).
        let mut best = (f64::INFINITY, max_bits);
        for b in (1..=max_bits).rev() {
            let surviving = self.surviving_chunks(b) as f64;
            let cost = surviving * (overhead_bytes + (16u64 << b) as f64);
            if cost < best.0 {
                best = (cost, b);
            }
        }
        best.1
    }

    /// Number of prunable chunks under the given chunk size.
    pub fn prunable_chunks(&self, chunk_bits: u32) -> usize {
        let total = 1usize << (self.num_qubits as u32 - chunk_bits);
        (0..total)
            .filter(|&c| self.chunk_is_zero(c, chunk_bits))
            .count()
    }
}

/// Replays a circuit through a tracker, returning the involvement mask
/// before each operation (what pruning sees when scheduling that gate).
pub fn masks_before_each_op(circuit: &Circuit) -> Vec<u64> {
    let mut t = InvolvementTracker::new(circuit.num_qubits());
    circuit
        .iter()
        .map(|op| {
            let before = t.mask();
            t.involve(op);
            before
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_circuit::{Circuit, Gate};

    #[test]
    fn initial_tracker_prunes_everything_but_chunk_zero() {
        let t = InvolvementTracker::new(8);
        assert!(!t.chunk_is_zero(0, 2));
        for c in 1..64 {
            assert!(t.chunk_is_zero(c, 2), "chunk {c}");
        }
    }

    #[test]
    fn fully_involved_prunes_nothing() {
        let mut t = InvolvementTracker::new(6);
        t.involve_mask(0b111111);
        assert!(t.is_fully_involved());
        assert_eq!(t.prunable_chunks(2), 0);
    }

    #[test]
    fn exhaustion_is_monotone() {
        let mut t = InvolvementTracker::new(10);
        t.involve_mask(0b1111); // qubits 0..4
        let chunk_bits = 2;
        let mut seen_exhausted = false;
        for c in 0..(1 << 8) {
            let e = t.chunks_exhausted(c, chunk_bits);
            if seen_exhausted {
                assert!(e, "exhaustion must be a suffix property (chunk {c})");
                // And every exhausted chunk must be zero.
                assert!(t.chunk_is_zero(c, chunk_bits));
            }
            seen_exhausted |= e;
        }
        assert!(seen_exhausted);
    }

    #[test]
    fn dynamic_chunk_bits_follow_involvement() {
        let mut t = InvolvementTracker::new(16);
        assert_eq!(t.dynamic_chunk_bits(8), 1); // nothing involved yet
        t.involve_mask(0b1);
        assert_eq!(t.dynamic_chunk_bits(8), 1);
        t.involve_mask(0b111);
        assert_eq!(t.dynamic_chunk_bits(8), 3);
        t.involve_mask(0xffff);
        assert_eq!(t.dynamic_chunk_bits(8), 8); // clamped to max
    }

    #[test]
    fn gap_in_involvement_stops_trailing_ones() {
        let mut t = InvolvementTracker::new(16);
        t.involve_mask(0b101); // qubit 1 untouched
        assert_eq!(t.dynamic_chunk_bits(8), 1);
    }

    #[test]
    fn prune_test_agrees_with_real_amplitudes() {
        // The key safety property: a chunk reported zero must actually be
        // all-zero in the functional simulation, at every step.
        use qgpu_statevec::StateVector;
        for b in [Benchmark::Iqp, Benchmark::Gs, Benchmark::Hchain] {
            let c = b.generate(8);
            let mut t = InvolvementTracker::new(8);
            let mut s = StateVector::new_zero(8);
            let chunk_bits = 3u32;
            let chunk_len = 1usize << chunk_bits;
            for op in c.iter() {
                t.involve(op);
                s.apply(op);
                for chunk in 0..(1 << (8 - chunk_bits)) {
                    if t.chunk_is_zero(chunk, chunk_bits) {
                        let lo = chunk * chunk_len;
                        assert!(
                            s.amps()[lo..lo + chunk_len].iter().all(|a| a.is_zero()),
                            "{b}: chunk {chunk} claimed zero but is not"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn masks_before_each_op_shape() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).h(2);
        let masks = masks_before_each_op(&c);
        assert_eq!(masks, vec![0b000, 0b001, 0b011]);
    }

    #[test]
    fn optimal_chunk_bits_minimizes_its_cost_model() {
        use proptest::prelude::*;
        let mut runner = proptest::test_runner::TestRunner::default();
        runner
            .run(
                &(any::<u64>(), 1u32..16, 0.0f64..1e6),
                |(mask, max_bits, overhead)| {
                    let mut t = InvolvementTracker::new(16);
                    t.involve_mask(mask & 0xffff);
                    let chosen = t.optimal_chunk_bits(max_bits, overhead);
                    let cost =
                        |b: u32| t.surviving_chunks(b) as f64 * (overhead + (16u64 << b) as f64);
                    for b in 1..=max_bits.min(16) {
                        prop_assert!(
                            cost(chosen) <= cost(b) + 1e-9,
                            "b={b} beats chosen={chosen}"
                        );
                    }
                    Ok(())
                },
            )
            .expect("property holds");
    }

    #[test]
    fn surviving_chunks_matches_direct_count() {
        let mut t = InvolvementTracker::new(10);
        t.involve_mask(0b1010110011);
        for b in 1..=8u32 {
            let direct = (0..(1usize << (10 - b)))
                .filter(|&c| !t.chunk_is_zero(c, b))
                .count();
            assert_eq!(t.surviving_chunks(b), direct, "chunk_bits {b}");
        }
    }

    #[test]
    fn involve_is_idempotent() {
        let mut t = InvolvementTracker::new(4);
        let op = qgpu_circuit::Operation::new(Gate::H, vec![2]);
        t.involve(&op);
        let m = t.mask();
        t.involve(&op);
        assert_eq!(t.mask(), m);
    }
}
