//! Resilient multi-device orchestration: epoch-based sharding, device
//! loss, straggler work-stealing, and memory-pressure degradation.
//!
//! [`DeviceGroup`] generalizes [`crate::residency::RoundRobin`] into a
//! scheduler that survives runtime disruption. Chunk tasks are dealt
//! round-robin over the *alive* device list; when a device drops out the
//! group enters a new epoch, re-shards the dead device's outstanding work
//! onto survivors, and hands the engine a replay log bounded by the last
//! checkpoint barrier. A per-device *pace* comparison (EMA of modeled
//! kernel seconds per byte) with hysteresis steals work from stragglers,
//! and [`PressureGovernor`] ratchets through
//! a degradation ladder (shrink chunks → force compression → spill
//! oldest) when a chunk-residency budget is exceeded.
//!
//! Every decision is a pure function of `(seed, epoch, device, chunk)`:
//! the assignment for task `t` depends only on the alive set, the epoch
//! rotation (seeded), and backlog values derived from the deterministic
//! modeled timeline — never on wall-clock time or thread interleaving —
//! so any fleet size and thread count reproduces identically.
//!
//! # Examples
//!
//! ```
//! use qgpu_sched::devicegroup::{DeviceGroup, OrchestratorConfig};
//!
//! let mut group = DeviceGroup::new(4, OrchestratorConfig::default());
//! // Epoch 0 deals exactly like RoundRobin — fault-free runs are
//! // bit-identical to the unorchestrated scheduler.
//! assert_eq!((0..8).map(|t| group.owner_of(t)).collect::<Vec<_>>(),
//!            vec![0, 1, 2, 3, 0, 1, 2, 3]);
//! let replay = group.lose_device(2).expect("survivors remain");
//! assert!(replay.is_empty()); // nothing recorded since the last barrier
//! assert_eq!(group.alive_devices(), 3);
//! assert!((0..9).all(|t| group.owner_of(t) != 2));
//! ```

use serde::{Deserialize, Serialize};

/// Tuning knobs for the [`DeviceGroup`] orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OrchestratorConfig {
    /// Seed folded into every epoch re-shard rotation. Runs that share a
    /// seed shard identically at every epoch.
    pub seed: u64,
    /// Multiple of the fleet's fastest per-byte pace a device's own pace
    /// may reach before it counts as a straggler. Identical modeled
    /// devices execute at identical pace regardless of how unevenly
    /// their queues drain, so at the default no healthy run ever
    /// migrates work; a device slowed beyond the factor (e.g. an
    /// injected 8x straggler) crosses it as soon as its pace estimate
    /// converges.
    pub steal_hysteresis: f64,
    /// Consecutive straggler observations required before work actually
    /// moves — the temporal half of the hysteresis.
    pub steal_patience: u32,
    /// Per-device chunk-residency budget in bytes. `None` leaves the
    /// device's modeled memory as the only cap.
    pub mem_budget_bytes: Option<u64>,
    /// Program ops between checkpoint barriers. The barrier bounds how
    /// much work replays after a device loss.
    pub barrier_interval: u64,
}

impl Default for OrchestratorConfig {
    fn default() -> Self {
        OrchestratorConfig {
            seed: 0,
            steal_hysteresis: 4.0,
            steal_patience: 3,
            mem_budget_bytes: None,
            barrier_interval: 16,
        }
    }
}

/// One unit of work recorded since the last barrier, replayed on a
/// survivor if the recording device is lost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayTask {
    /// Modeled kernel seconds the task cost.
    pub duration: f64,
    /// Bytes that must re-cross the host link to restore the partition.
    pub bytes: u64,
}

/// `splitmix64`, as used by the fault injector: the epoch rotation must
/// be a pure function of `(seed, epoch)` so every rank recomputes the
/// same re-shard independently.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Every this-many flagged tasks, one is left on the straggler as a
/// probe: without it a flagged device receives no work, its pace EMA
/// freezes, and a transient slowdown would quarantine it forever.
pub const STEAL_PROBE_INTERVAL: u32 = 8;

/// The pace EMA samples every this-many completed tasks per device. A
/// smoothed estimator does not need every observation, and engines
/// complete millions of chunk tasks — sampling keeps the record path to
/// a counter bump and a replay-log push without delaying detection
/// meaningfully (a straggler is flagged within tens of tasks either
/// way).
pub const PACE_SAMPLE_INTERVAL: u32 = 8;

/// The resilient multi-device scheduler.
#[derive(Debug, Clone)]
pub struct DeviceGroup {
    cfg: OrchestratorConfig,
    alive: Vec<bool>,
    alive_list: Vec<usize>,
    epoch: u64,
    rotation: usize,
    /// Consecutive times each device looked like a straggler.
    over_count: Vec<u32>,
    /// Per-device exponential moving average of modeled kernel seconds
    /// per byte — the pace the steal hysteresis compares. Pace is a
    /// property of the device, not of its queue, so it is immune to the
    /// backlog spread that round-robin dealing of heterogeneous task
    /// sizes produces on a perfectly healthy fleet.
    pace: Vec<f64>,
    /// Cached fleet-level verdict of the pace comparison, recomputed
    /// only when a pace EMA moves ([`DeviceGroup::record_task`]). While
    /// false — every healthy run — [`DeviceGroup::assign`] is a pure
    /// round-robin lookup and callers may skip gathering backlogs, so
    /// orchestration stays off the per-task hot path.
    steal_armed: bool,
    /// Per-device completed-task counts driving the pace sampling.
    records: Vec<u32>,
    /// Whether [`DeviceGroup::record_task`] appends to the replay logs.
    /// The logs exist solely so [`DeviceGroup::lose_device`] can hand
    /// back since-barrier work; when device loss is impossible (no
    /// device faults configured) the millions of per-task pushes are
    /// pure overhead and callers disable them.
    track_replay: bool,
    since_barrier: Vec<Vec<ReplayTask>>,
    devices_lost: u64,
    chunks_migrated: u64,
    steals: u64,
}

impl DeviceGroup {
    /// Creates a group over `num_devices` modeled devices, all alive.
    ///
    /// # Panics
    ///
    /// Panics if `num_devices == 0`.
    pub fn new(num_devices: usize, cfg: OrchestratorConfig) -> Self {
        assert!(num_devices > 0, "need at least one device");
        DeviceGroup {
            cfg,
            alive: vec![true; num_devices],
            alive_list: (0..num_devices).collect(),
            epoch: 0,
            rotation: 0,
            over_count: vec![0; num_devices],
            pace: vec![0.0; num_devices],
            steal_armed: false,
            records: vec![0; num_devices],
            track_replay: true,
            since_barrier: vec![Vec::new(); num_devices],
            devices_lost: 0,
            chunks_migrated: 0,
            steals: 0,
        }
    }

    /// The orchestrator configuration.
    pub fn config(&self) -> &OrchestratorConfig {
        &self.cfg
    }

    /// Devices still alive.
    pub fn alive_devices(&self) -> usize {
        self.alive_list.len()
    }

    /// Whether `device` is still alive.
    pub fn is_alive(&self, device: usize) -> bool {
        self.alive[device]
    }

    /// The current re-shard epoch (bumps on every device loss).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Devices lost so far.
    pub fn devices_lost(&self) -> u64 {
        self.devices_lost
    }

    /// Chunk tasks migrated off lost devices (replayed on survivors).
    pub fn chunks_migrated(&self) -> u64 {
        self.chunks_migrated
    }

    /// Chunk tasks stolen from stragglers.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// The epoch-rotated round-robin owner of `task_index`. At epoch 0
    /// this is exactly `task_index % num_devices` — the same dealing as
    /// [`crate::residency::RoundRobin`] — so a fault-free run pays no
    /// placement difference for being orchestrated.
    pub fn owner_of(&self, task_index: usize) -> usize {
        self.alive_list[(task_index + self.rotation) % self.alive_list.len()]
    }

    /// Assigns `task_index` to a device, stealing from the round-robin
    /// owner when it has been a sustained straggler. `backlog[d]` is the
    /// modeled time at which device `d`'s compute engine next frees up —
    /// used only to pick the least-loaded victim (dead entries are
    /// ignored). Returns `(device, stolen)`.
    ///
    /// Straggling is judged by *pace*, not backlog: the owner's EMA of
    /// kernel seconds per byte must exceed the fleet's fastest pace by
    /// more than `steal_hysteresis` for `steal_patience` consecutive
    /// observations. Identical devices run at identical pace however
    /// unevenly heterogeneous (e.g. compressed) task sizes spread their
    /// queues, so healthy runs never cross the threshold; a device whose
    /// kernels are stretched several-fold crosses it as soon as its EMA
    /// converges and sheds work to healthy peers. Every
    /// [`STEAL_PROBE_INTERVAL`]-th flagged task stays with the owner so
    /// a recovered device's pace estimate can converge back down.
    pub fn assign(&mut self, task_index: usize, backlog: &[f64]) -> (usize, bool) {
        let owner = self.owner_of(task_index);
        if !self.steal_armed {
            return (owner, false);
        }
        let fastest = self
            .alive_list
            .iter()
            .map(|&d| self.pace[d])
            .filter(|&p| p > 0.0)
            .fold(f64::INFINITY, f64::min);
        let limit = self.cfg.steal_hysteresis * fastest;
        if self.pace[owner] > limit {
            self.over_count[owner] = self.over_count[owner].saturating_add(1);
            let flagged = self.over_count[owner].saturating_sub(self.cfg.steal_patience);
            if flagged > 0 && !flagged.is_multiple_of(STEAL_PROBE_INTERVAL) {
                // Deterministic victim: least-loaded alive device whose
                // own pace is healthy, lowest index winning ties.
                let mut target = owner;
                for &d in &self.alive_list {
                    if d == owner || self.pace[d] > limit {
                        continue;
                    }
                    if target == owner || backlog[d] < backlog[target] {
                        target = d;
                    }
                }
                if target != owner {
                    self.steals += 1;
                    return (target, true);
                }
            }
        } else {
            self.over_count[owner] = 0;
        }
        (owner, false)
    }

    /// Whether the pace comparison currently flags any device. While
    /// false, [`DeviceGroup::assign`] never steals and ignores `backlog`
    /// entirely, so callers can skip collecting it.
    pub fn steal_armed(&self) -> bool {
        self.steal_armed
    }

    /// Records a completed task: `duration` is the task's pure modeled
    /// service time on the device (queueing excluded — pace must measure
    /// the device, not its backlog), which feeds the per-device pace EMA
    /// (sampled every [`PACE_SAMPLE_INTERVAL`]-th task) and the
    /// since-barrier replay log for `device`.
    pub fn record_task(&mut self, device: usize, duration: f64, bytes: u64) {
        let n = self.records[device];
        self.records[device] = n.wrapping_add(1);
        if duration > 0.0 && bytes > 0 && n.is_multiple_of(PACE_SAMPLE_INTERVAL) {
            let pace = duration / bytes as f64;
            self.pace[device] = if self.pace[device] == 0.0 {
                pace
            } else {
                0.8 * self.pace[device] + 0.2 * pace
            };
            self.rearm();
        }
        if self.track_replay {
            self.since_barrier[device].push(ReplayTask { duration, bytes });
        }
    }

    /// Enables or disables the since-barrier replay logs. Disable only
    /// when device loss cannot occur; a loss with tracking off replays
    /// nothing (the log is empty).
    pub fn set_replay_tracking(&mut self, on: bool) {
        self.track_replay = on;
        if !on {
            for log in &mut self.since_barrier {
                log.clear();
            }
        }
    }

    /// Recomputes the cached [`DeviceGroup::steal_armed`] verdict after a
    /// pace EMA moved or the alive set changed.
    fn rearm(&mut self) {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for &d in &self.alive_list {
            let p = self.pace[d];
            if p > 0.0 {
                min = min.min(p);
                max = max.max(p);
            }
        }
        let armed = self.alive_list.len() >= 2 && max > self.cfg.steal_hysteresis * min;
        if self.steal_armed && !armed {
            // Disarming forgets partial straggler verdicts: patience must
            // restart from zero if the fleet degrades again.
            self.over_count.fill(0);
        }
        self.steal_armed = armed;
    }

    /// Marks a checkpoint barrier: all partitions are durable on the
    /// host, so the replay logs reset and a later loss replays only work
    /// past this point.
    pub fn barrier(&mut self) {
        for log in &mut self.since_barrier {
            log.clear();
        }
    }

    /// Removes `device` from the fleet and starts a new epoch. Returns
    /// the device's since-barrier replay log — the work survivors must
    /// redo — or `None` when no survivor remains (or the device was
    /// already dead, which loses nothing new).
    ///
    /// The new epoch's rotation is `mix(seed ^ epoch) % alive`, a pure
    /// function of `(seed, epoch)`, so every fleet size and thread count
    /// re-shards identically.
    pub fn lose_device(&mut self, device: usize) -> Option<Vec<ReplayTask>> {
        if !self.alive[device] || self.alive_list.len() == 1 {
            return if self.alive[device] {
                None
            } else {
                Some(Vec::new())
            };
        }
        self.alive[device] = false;
        self.alive_list = (0..self.alive.len()).filter(|&d| self.alive[d]).collect();
        self.epoch += 1;
        self.rotation = (mix(self.cfg.seed ^ self.epoch) % self.alive_list.len() as u64) as usize;
        self.devices_lost += 1;
        self.over_count[device] = 0;
        self.rearm();
        let replay = std::mem::take(&mut self.since_barrier[device]);
        self.chunks_migrated += replay.len() as u64;
        Some(replay)
    }
}

/// One rung of the memory-pressure degradation ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PressureAction {
    /// Halve the chunk size so residency quantizes finer and the
    /// minimum working set shrinks.
    ShrinkChunks,
    /// Force GFC compression on (even for versions that would not
    /// compress) so transfers drain faster and buffers turn over sooner.
    ForceCompress,
    /// Steady state: keep spilling the oldest-resident chunks to honor
    /// the budget; no further relief is available.
    SpillOldest,
}

/// The memory-pressure governor: admission control against a per-device
/// residency budget plus the stepwise degradation ladder.
///
/// The budget itself is enforced *immediately* by capping how many
/// chunks may be resident (spilling the oldest first); the ladder is the
/// relief valve for sustained pressure — each escalation trades
/// throughput for headroom instead of failing the run.
#[derive(Debug, Clone)]
pub struct PressureGovernor {
    budget: u64,
    level: u8,
    strikes: u32,
    downshifts: u64,
    spills: u64,
}

/// Consecutive pressured admissions before the ladder escalates a rung.
pub const STRIKES_PER_LEVEL: u32 = 8;

impl PressureGovernor {
    /// Creates a governor enforcing `budget` bytes of chunk residency
    /// per device.
    pub fn new(budget: u64) -> Self {
        PressureGovernor {
            budget,
            level: 0,
            strikes: 0,
            downshifts: 0,
            spills: 0,
        }
    }

    /// The configured budget in bytes.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Ladder escalations taken so far.
    pub fn downshifts(&self) -> u64 {
        self.downshifts
    }

    /// Chunks spilled to honor the budget.
    pub fn spills(&self) -> u64 {
        self.spills
    }

    /// The maximum whole chunks of `chunk_bytes` resident on one device
    /// under the budget, floored at `floor` — one task's working set
    /// must always fit or no forward progress is possible (the
    /// documented budget floor).
    pub fn cap_chunks(&self, chunk_bytes: u64, floor: usize) -> usize {
        ((self.budget / chunk_bytes.max(1)) as usize).max(floor)
    }

    /// Records that admission hit the budget and had to spill. After
    /// [`STRIKES_PER_LEVEL`] consecutive pressured admissions the ladder
    /// escalates one rung and returns the action to take; `can_shrink` /
    /// `can_compress` skip rungs that have no effect left (chunks at
    /// minimum size, compression already on).
    pub fn on_pressure(&mut self, can_shrink: bool, can_compress: bool) -> Option<PressureAction> {
        self.spills += 1;
        self.strikes += 1;
        if self.strikes < STRIKES_PER_LEVEL {
            return None;
        }
        self.strikes = 0;
        loop {
            match self.level {
                0 => {
                    self.level = 1;
                    if can_shrink {
                        self.downshifts += 1;
                        return Some(PressureAction::ShrinkChunks);
                    }
                }
                1 => {
                    self.level = 2;
                    if can_compress {
                        self.downshifts += 1;
                        return Some(PressureAction::ForceCompress);
                    }
                }
                2 => {
                    self.level = 3;
                    self.downshifts += 1;
                    return Some(PressureAction::SpillOldest);
                }
                _ => return None,
            }
        }
    }

    /// Records admissions that fit under the budget; sustained relief
    /// resets the strike counter so brief spikes do not ratchet the
    /// ladder.
    pub fn on_relief(&mut self) {
        self.strikes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_zero_matches_round_robin() {
        let group = DeviceGroup::new(3, OrchestratorConfig::default());
        for t in 0..30 {
            assert_eq!(group.owner_of(t), t % 3);
        }
    }

    #[test]
    fn healthy_fleet_never_steals_even_with_uneven_backlogs() {
        let mut group = DeviceGroup::new(4, OrchestratorConfig::default());
        // Heterogeneous task sizes spread queues arbitrarily on a
        // healthy fleet — every device still runs at the same pace, so
        // assignment must stay pure round-robin.
        let mut backlog = [0.0f64; 4];
        for t in 0..1000 {
            let (d, stolen) = group.assign(t, &backlog);
            assert!(!stolen);
            assert_eq!(d, t % 4, "healthy assignment must stay round-robin");
            // Task sizes vary 1x..8x, but seconds-per-byte is constant.
            let bytes = 64 * (1 + (t % 8) as u64);
            backlog[d] += bytes as f64;
            group.record_task(d, bytes as f64, bytes);
        }
        assert_eq!(group.steals(), 0);
    }

    #[test]
    fn sustained_straggler_sheds_work() {
        let mut group = DeviceGroup::new(4, OrchestratorConfig::default());
        let mut backlog = [0.0f64; 4];
        let mut stolen_any = false;
        let mut probes = 0u32;
        for t in 0..4000 {
            let (d, stolen) = group.assign(t, &backlog);
            stolen_any |= stolen;
            if stolen {
                assert_ne!(d, 1, "steals must land on a non-straggler");
            } else if d == 1 && t >= 4 {
                probes += 1;
            }
            // Device 1 runs 8x slow; record the real service time so the
            // pace EMA sees the slowdown.
            let cost = if d == 1 { 8.0 } else { 1.0 };
            backlog[d] += cost;
            group.record_task(d, cost, 64);
        }
        assert!(stolen_any, "an 8x straggler must shed work");
        assert!(group.steals() > 0);
        assert!(probes > 0, "flagged straggler must still get probe tasks");
        // Mitigation bounds the divergence: unmitigated, device 1 would
        // sit ~7000s behind (1000 tasks x 7s extra); with stealing the
        // spread stays a small fraction of that.
        let max = backlog.iter().cloned().fold(0.0, f64::max);
        let min = backlog.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max - min < 1500.0, "backlog spread {max}-{min} unbounded");
    }

    #[test]
    fn recovered_straggler_rejoins_the_rotation() {
        let mut group = DeviceGroup::new(2, OrchestratorConfig::default());
        let backlog = [0.0f64; 2];
        // Converge both paces, device 1 slow.
        for t in 0..200 {
            let (d, _) = group.assign(t, &backlog);
            group.record_task(d, if d == 1 { 8.0 } else { 1.0 }, 64);
        }
        assert!(group.steals() > 0, "slow phase must steal");
        let steals_after_slow = group.steals();
        // Device 1 recovers: probe tasks pull its EMA back down.
        for t in 200..2000 {
            let (d, _) = group.assign(t, &backlog);
            group.record_task(d, 1.0, 64);
        }
        let late_steals = group.steals();
        for t in 2000..2100 {
            let (d, stolen) = group.assign(t, &backlog);
            assert!(!stolen, "recovered device must not be stolen from");
            assert_eq!(d, t % 2);
            group.record_task(d, 1.0, 64);
        }
        assert_eq!(group.steals(), late_steals);
        assert!(late_steals >= steals_after_slow);
    }

    #[test]
    fn loss_reshards_onto_survivors_deterministically() {
        let cfg = OrchestratorConfig {
            seed: 42,
            ..OrchestratorConfig::default()
        };
        let mut a = DeviceGroup::new(4, cfg);
        let mut b = DeviceGroup::new(4, cfg);
        a.record_task(2, 1.0, 64);
        a.record_task(2, 1.0, 64);
        b.record_task(2, 1.0, 64);
        b.record_task(2, 1.0, 64);
        let ra = a.lose_device(2).expect("survivors");
        let rb = b.lose_device(2).expect("survivors");
        assert_eq!(ra, rb);
        assert_eq!(ra.len(), 2);
        assert_eq!(a.devices_lost(), 1);
        assert_eq!(a.chunks_migrated(), 2);
        assert_eq!(a.epoch(), 1);
        for t in 0..64 {
            let d = a.owner_of(t);
            assert_ne!(d, 2);
            assert_eq!(d, b.owner_of(t), "re-shard must be seed-deterministic");
        }
    }

    #[test]
    fn barrier_bounds_replay() {
        let mut group = DeviceGroup::new(2, OrchestratorConfig::default());
        group.record_task(0, 1.0, 64);
        group.barrier();
        group.record_task(0, 2.0, 64);
        let replay = group.lose_device(0).expect("survivor");
        assert_eq!(replay.len(), 1, "only post-barrier work replays");
        assert_eq!(replay[0].duration, 2.0);
    }

    #[test]
    fn last_device_cannot_be_lost() {
        let mut group = DeviceGroup::new(2, OrchestratorConfig::default());
        assert!(group.lose_device(0).is_some());
        assert!(group.lose_device(1).is_none(), "no survivors remain");
        assert!(group.is_alive(1));
        // Losing an already-dead device is a no-op, not a new epoch.
        assert_eq!(group.lose_device(0), Some(Vec::new()));
        assert_eq!(group.epoch(), 1);
    }

    #[test]
    fn governor_caps_and_floors() {
        let gov = PressureGovernor::new(1024);
        assert_eq!(gov.cap_chunks(256, 1), 4);
        assert_eq!(gov.cap_chunks(4096, 2), 2, "floor keeps one task feasible");
    }

    #[test]
    fn governor_ladder_escalates_in_order() {
        let mut gov = PressureGovernor::new(1024);
        let mut actions = Vec::new();
        for _ in 0..(STRIKES_PER_LEVEL * 4) {
            if let Some(a) = gov.on_pressure(true, true) {
                actions.push(a);
            }
        }
        assert_eq!(
            actions,
            vec![
                PressureAction::ShrinkChunks,
                PressureAction::ForceCompress,
                PressureAction::SpillOldest,
            ]
        );
        assert_eq!(gov.downshifts(), 3);
        assert_eq!(gov.spills(), (STRIKES_PER_LEVEL * 4) as u64);
    }

    #[test]
    fn governor_skips_exhausted_rungs() {
        let mut gov = PressureGovernor::new(1024);
        let mut actions = Vec::new();
        for _ in 0..(STRIKES_PER_LEVEL * 3) {
            if let Some(a) = gov.on_pressure(false, false) {
                actions.push(a);
            }
        }
        assert_eq!(actions, vec![PressureAction::SpillOldest]);
        assert_eq!(gov.downshifts(), 1);
    }

    #[test]
    fn governor_relief_resets_strikes() {
        let mut gov = PressureGovernor::new(1024);
        for _ in 0..(STRIKES_PER_LEVEL - 1) {
            assert_eq!(gov.on_pressure(true, true), None);
        }
        gov.on_relief();
        for _ in 0..(STRIKES_PER_LEVEL - 1) {
            assert_eq!(gov.on_pressure(true, true), None, "spike must not ratchet");
        }
    }
}
