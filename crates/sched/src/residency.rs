//! Chunk residency: where each chunk lives during execution.
//!
//! The baseline (paper §III-B, Step 2) statically pins the first chunks
//! that fit into GPU memory and leaves the rest on the host; the Q-GPU
//! versions stream every chunk through the GPU instead. Multi-GPU
//! execution (paper §V-E, Figure 18) deals chunk groups round-robin
//! across devices.

use serde::{Deserialize, Serialize};

/// Where a chunk resides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Location {
    /// Host memory.
    Host,
    /// Device memory of GPU `i`.
    Gpu(usize),
}

/// The baseline's static allocation: chunks `0..gpu_resident` live on the
/// GPU, the rest on the host.
///
/// # Examples
///
/// ```
/// use qgpu_sched::residency::{Location, StaticAllocation};
///
/// // The paper's P100@34q ratio: 496 of 8192 chunks resident.
/// let alloc = StaticAllocation::new(496, 8192);
/// assert_eq!(alloc.location(0), Location::Gpu(0));
/// assert_eq!(alloc.location(496), Location::Host);
/// assert!((alloc.gpu_fraction() - 0.0605).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StaticAllocation {
    gpu_resident: usize,
    num_chunks: usize,
}

impl StaticAllocation {
    /// Creates an allocation with the first `gpu_resident` chunks on GPU 0.
    ///
    /// `gpu_resident` is clamped to `num_chunks`.
    pub fn new(gpu_resident: usize, num_chunks: usize) -> Self {
        StaticAllocation {
            gpu_resident: gpu_resident.min(num_chunks),
            num_chunks,
        }
    }

    /// Where chunk `i` lives.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn location(&self, chunk: usize) -> Location {
        assert!(chunk < self.num_chunks, "chunk {chunk} out of range");
        if chunk < self.gpu_resident {
            Location::Gpu(0)
        } else {
            Location::Host
        }
    }

    /// Number of GPU-resident chunks.
    pub fn gpu_resident(&self) -> usize {
        self.gpu_resident
    }

    /// Total chunks.
    pub fn num_chunks(&self) -> usize {
        self.num_chunks
    }

    /// Fraction of the state resident on the GPU.
    pub fn gpu_fraction(&self) -> f64 {
        if self.num_chunks == 0 {
            0.0
        } else {
            self.gpu_resident as f64 / self.num_chunks as f64
        }
    }
}

/// Round-robin assignment of chunk tasks to GPUs (the paper's Figure 18:
/// groups dealt to G0, G1, G0, G1, …).
///
/// # Examples
///
/// ```
/// use qgpu_sched::residency::RoundRobin;
///
/// let rr = RoundRobin::new(2);
/// assert_eq!(rr.gpu_for_task(0), 0);
/// assert_eq!(rr.gpu_for_task(1), 1);
/// assert_eq!(rr.gpu_for_task(2), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundRobin {
    num_gpus: usize,
}

impl RoundRobin {
    /// Creates a round-robin dealer over `num_gpus` devices.
    ///
    /// # Panics
    ///
    /// Panics if `num_gpus == 0`.
    pub fn new(num_gpus: usize) -> Self {
        assert!(num_gpus > 0, "need at least one GPU");
        RoundRobin { num_gpus }
    }

    /// The GPU that processes task number `task_index`.
    pub fn gpu_for_task(&self, task_index: usize) -> usize {
        task_index % self.num_gpus
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.num_gpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_allocation_clamps() {
        let a = StaticAllocation::new(100, 10);
        assert_eq!(a.gpu_resident(), 10);
        assert_eq!(a.gpu_fraction(), 1.0);
    }

    #[test]
    fn static_allocation_boundary() {
        let a = StaticAllocation::new(3, 8);
        assert_eq!(a.location(2), Location::Gpu(0));
        assert_eq!(a.location(3), Location::Host);
        assert_eq!(a.location(7), Location::Host);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn static_allocation_checks_range() {
        let a = StaticAllocation::new(3, 8);
        let _ = a.location(8);
    }

    #[test]
    fn round_robin_cycles() {
        let rr = RoundRobin::new(4);
        let gpus: Vec<usize> = (0..8).map(|i| rr.gpu_for_task(i)).collect();
        assert_eq!(gpus, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn round_robin_balances() {
        let rr = RoundRobin::new(3);
        let mut counts = [0usize; 3];
        for i in 0..300 {
            counts[rr.gpu_for_task(i)] += 1;
        }
        assert_eq!(counts, [100, 100, 100]);
    }

    #[test]
    fn empty_allocation_fraction() {
        assert_eq!(StaticAllocation::new(0, 0).gpu_fraction(), 0.0);
    }
}
