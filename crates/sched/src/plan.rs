//! Per-gate chunk plans: which chunks a gate touches, and how.
//!
//! A [`GatePlan`] resolves one gate against a chunked state layout:
//!
//! * diagonal gates and gates whose mixing qubits are all inside a chunk
//!   produce independent [`ChunkTask::Single`] tasks (the paper's Case 1);
//! * a mixing qubit at or above the chunk boundary produces
//!   [`ChunkTask::Group`] tasks of `2^high_mixing` chunks that must be
//!   co-resident (Case 2);
//! * a *control* qubit above the boundary merely filters which chunks
//!   participate — those with the control bit clear are untouched and
//!   never moved.
//!
//! The plan is purely combinatorial; the orchestrator pairs it with an
//! [`crate::InvolvementTracker`] to drop all-zero tasks (pruning) and with
//! the device model to charge transfer and kernel time.

use qgpu_circuit::access::GateAction;

use crate::involvement::InvolvementTracker;

/// One unit of chunk work for a gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChunkTask {
    /// An independently updatable chunk (Case 1).
    Single(usize),
    /// Chunks that must be processed together (Case 2), ordered by
    /// high-mixing bit pattern.
    Group(Vec<usize>),
}

impl ChunkTask {
    /// The chunks this task touches.
    pub fn chunks(&self) -> &[usize] {
        match self {
            ChunkTask::Single(c) => std::slice::from_ref(c),
            ChunkTask::Group(g) => g,
        }
    }

    /// Number of chunks in the task.
    pub fn len(&self) -> usize {
        self.chunks().len()
    }

    /// Tasks always touch at least one chunk.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// The resolved chunk plan of one gate.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Gate, Operation, access::GateAction};
/// use qgpu_sched::GatePlan;
///
/// // H on qubit 5 with 3-qubit chunks over 8 qubits: a high mixing qubit
/// // forces pairs of chunks.
/// let action = GateAction::from_operation(&Operation::new(Gate::H, vec![5]));
/// let plan = GatePlan::new(&action, 3, 32);
/// assert_eq!(plan.tasks().len(), 16);
/// assert_eq!(plan.tasks()[0].len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GatePlan {
    tasks: Vec<ChunkTask>,
    high_mixing: Vec<usize>,
    chunk_bits: u32,
}

impl GatePlan {
    /// [`GatePlan::new`] under observation: records a
    /// [`qgpu_obs::Stage::Plan`] span covering plan resolution. With
    /// `rec == None` this is exactly `new`.
    ///
    /// # Panics
    ///
    /// Panics if `num_chunks` is not a power of two, like
    /// [`GatePlan::new`].
    pub fn new_observed(
        action: &GateAction,
        chunk_bits: u32,
        num_chunks: usize,
        rec: Option<&qgpu_obs::Recorder>,
    ) -> Self {
        use qgpu_obs::{span_opt, Stage, Track};
        let _g = span_opt(rec, Track::Main, Stage::Plan, "sched.plan");
        GatePlan::new(action, chunk_bits, num_chunks)
    }

    /// Resolves an action against a chunk layout.
    ///
    /// # Panics
    ///
    /// Panics if `num_chunks` is not a power of two.
    pub fn new(action: &GateAction, chunk_bits: u32, num_chunks: usize) -> Self {
        assert!(num_chunks.is_power_of_two());
        let (high_controls_mask, high_mixing) = match action {
            GateAction::Diagonal { .. } => (0usize, Vec::new()),
            GateAction::ControlledDense {
                controls, mixing, ..
            } => {
                let mask = controls
                    .iter()
                    .filter(|&&c| (c as u32) >= chunk_bits)
                    .map(|&c| 1usize << (c as u32 - chunk_bits))
                    .sum();
                let high: Vec<usize> = mixing
                    .iter()
                    .copied()
                    .filter(|&q| (q as u32) >= chunk_bits)
                    .collect();
                (mask, high)
            }
        };

        let mut tasks = Vec::new();
        if high_mixing.is_empty() {
            for c in 0..num_chunks {
                if c & high_controls_mask == high_controls_mask {
                    tasks.push(ChunkTask::Single(c));
                }
            }
        } else {
            let group_mask: usize = high_mixing
                .iter()
                .map(|&q| 1usize << (q as u32 - chunk_bits))
                .sum();
            for c in 0..num_chunks {
                if c & group_mask != 0 {
                    continue; // not the canonical group representative
                }
                if c & high_controls_mask != high_controls_mask {
                    continue; // a high control bit is 0 for this group
                }
                let members: Vec<usize> = (0..1usize << high_mixing.len())
                    .map(|pattern| {
                        let mut idx = c;
                        for (b, &q) in high_mixing.iter().enumerate() {
                            if (pattern >> b) & 1 == 1 {
                                idx |= 1usize << (q as u32 - chunk_bits);
                            }
                        }
                        idx
                    })
                    .collect();
                tasks.push(ChunkTask::Group(members));
            }
        }
        GatePlan {
            tasks,
            high_mixing,
            chunk_bits,
        }
    }

    /// The task list, in chunk order.
    pub fn tasks(&self) -> &[ChunkTask] {
        &self.tasks
    }

    /// The mixing qubits above the chunk boundary (empty for Case 1).
    pub fn high_mixing(&self) -> &[usize] {
        &self.high_mixing
    }

    /// Returns `true` if the gate requires chunk grouping (Case 2).
    pub fn needs_grouping(&self) -> bool {
        !self.high_mixing.is_empty()
    }

    /// Tasks surviving zero-amplitude pruning: a task is dropped when all
    /// of its chunks are provably zero under `tracker`.
    ///
    /// (Dropping such tasks is exact: a linear map keeps an all-zero
    /// subspace zero, per the paper's §IV-C correctness argument.)
    pub fn pruned_tasks<'a>(
        &'a self,
        tracker: &'a InvolvementTracker,
    ) -> impl Iterator<Item = &'a ChunkTask> + 'a {
        let chunk_bits = self.chunk_bits;
        self.tasks.iter().filter(move |t| {
            t.chunks()
                .iter()
                .any(|&c| !tracker.chunk_is_zero(c, chunk_bits))
        })
    }

    /// Indices (into [`GatePlan::tasks`]) of the tasks surviving
    /// zero-amplitude pruning — the same predicate as
    /// [`GatePlan::pruned_tasks`], in index form for engines that walk
    /// tasks positionally.
    pub fn live_task_indices(&self, tracker: &InvolvementTracker) -> Vec<usize> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.chunks()
                    .iter()
                    .any(|&c| !tracker.chunk_is_zero(c, self.chunk_bits))
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of tasks dropped by pruning under `tracker`.
    pub fn pruned_count(&self, tracker: &InvolvementTracker) -> usize {
        self.tasks.len() - self.pruned_tasks(tracker).count()
    }

    /// Total chunks touched by the unpruned plan.
    pub fn total_chunks(&self) -> usize {
        self.tasks.iter().map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::access::GateAction;
    use qgpu_circuit::{Gate, Operation};

    fn action(g: Gate, qs: &[usize]) -> GateAction {
        GateAction::from_operation(&Operation::new(g, qs.to_vec()))
    }

    #[test]
    fn case1_low_target_touches_every_chunk() {
        let plan = GatePlan::new(&action(Gate::H, &[1]), 3, 16);
        assert!(!plan.needs_grouping());
        assert_eq!(plan.tasks().len(), 16);
        assert!(matches!(plan.tasks()[0], ChunkTask::Single(0)));
    }

    #[test]
    fn case2_high_target_pairs_chunks() {
        // Qubit 4 with 3-qubit chunks: chunk-index bit 1.
        let plan = GatePlan::new(&action(Gate::H, &[4]), 3, 16);
        assert!(plan.needs_grouping());
        assert_eq!(plan.tasks().len(), 8);
        assert_eq!(plan.tasks()[0], ChunkTask::Group(vec![0, 2]));
        assert_eq!(plan.tasks()[1], ChunkTask::Group(vec![1, 3]));
        // The paper's Figure 1 example: (chunk0, chunk2), (chunk1, chunk3)…
    }

    #[test]
    fn diagonal_never_groups() {
        let plan = GatePlan::new(&action(Gate::Cp(0.5), &[1, 7]), 3, 32);
        assert!(!plan.needs_grouping());
        assert_eq!(plan.tasks().len(), 32);
    }

    #[test]
    fn high_control_filters_chunks() {
        // CX control on qubit 4 (chunk bit 1), target on qubit 0.
        let plan = GatePlan::new(&action(Gate::Cx, &[4, 0]), 3, 16);
        assert!(!plan.needs_grouping());
        // Only chunks with bit 1 set participate: 8 of 16.
        assert_eq!(plan.tasks().len(), 8);
        for t in plan.tasks() {
            let ChunkTask::Single(c) = t else { panic!() };
            assert_eq!(c & 0b10, 0b10);
        }
    }

    #[test]
    fn swap_across_boundary_groups_four() {
        // Both mixing qubits high: groups of 4.
        let plan = GatePlan::new(&action(Gate::Swap, &[4, 5]), 3, 32);
        assert!(plan.needs_grouping());
        assert_eq!(plan.tasks().len(), 8);
        assert_eq!(plan.tasks()[0].len(), 4);
    }

    #[test]
    fn high_control_with_high_mixing() {
        // CCX: controls 6,7 (high), target 4 (high) with 3-bit chunks.
        let plan = GatePlan::new(&action(Gate::Ccx, &[6, 7, 4]), 3, 32);
        assert!(plan.needs_grouping());
        // Groups must have chunk bits 3 and 4 (qubits 6,7) set: canonical
        // representatives have bit 1 (qubit 4) clear → 4 groups... of the
        // 32 chunks, those with bits {3,4} set: 8; grouped in pairs → 4.
        assert_eq!(plan.tasks().len(), 4);
        for t in plan.tasks() {
            for &c in t.chunks() {
                assert_eq!(c & 0b11000, 0b11000);
            }
        }
    }

    #[test]
    fn pruning_drops_zero_tasks() {
        let plan = GatePlan::new(&action(Gate::H, &[0]), 2, 16);
        let mut tracker = InvolvementTracker::new(6);
        // Nothing involved: only chunk 0 can be non-zero.
        assert_eq!(plan.pruned_tasks(&tracker).count(), 1);
        assert_eq!(plan.pruned_count(&tracker), 15);
        tracker.involve_mask(0b111111);
        assert_eq!(plan.pruned_count(&tracker), 0);
    }

    #[test]
    fn group_survives_if_any_member_nonzero() {
        // H on qubit 5 (high): group {0, 8}; chunk 0 non-zero initially.
        let plan = GatePlan::new(&action(Gate::H, &[5]), 2, 16);
        let tracker = InvolvementTracker::new(6);
        let survivors: Vec<_> = plan.pruned_tasks(&tracker).collect();
        assert_eq!(survivors.len(), 1);
        assert_eq!(survivors[0].chunks(), &[0, 8]);
    }

    #[test]
    fn live_task_indices_agree_with_pruned_tasks() {
        let plan = GatePlan::new(&action(Gate::H, &[0]), 2, 16);
        let mut tracker = InvolvementTracker::new(6);
        let by_index: Vec<&ChunkTask> = plan
            .live_task_indices(&tracker)
            .into_iter()
            .map(|i| &plan.tasks()[i])
            .collect();
        let by_filter: Vec<&ChunkTask> = plan.pruned_tasks(&tracker).collect();
        assert_eq!(by_index, by_filter);
        tracker.involve_mask(0b111111);
        assert_eq!(plan.live_task_indices(&tracker).len(), plan.tasks().len());
    }

    #[test]
    fn total_chunks_counts_members() {
        let plan = GatePlan::new(&action(Gate::Swap, &[4, 5]), 3, 32);
        assert_eq!(plan.total_chunks(), 32);
    }
}
