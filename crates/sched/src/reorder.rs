//! Dependency-aware gate reordering (paper §IV-C).
//!
//! Both passes traverse the circuit's dependency DAG and pick, among the
//! currently executable gates, the one that delays qubit involvement the
//! most:
//!
//! * **greedy** (Algorithm 2): minimize the number of *new* qubits the
//!   gate itself involves;
//! * **forward-looking** (Algorithm 3): add a one-step lookahead — the
//!   minimum new-qubit cost among the gates that would be executable
//!   next.
//!
//! Ties break on source order, so the output is deterministic. The passes
//! never violate dependencies; the result is a permutation of the input
//! that simulates to the identical final state (enforced by integration
//! tests).

use qgpu_circuit::dag::GateDag;
use qgpu_circuit::involvement::full_mask;
use qgpu_circuit::{Circuit, Operation};
use serde::{Deserialize, Serialize};

/// Which gate order to simulate — the x-axis families of the paper's
/// Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum ReorderStrategy {
    /// Keep the source order.
    #[default]
    Original,
    /// Algorithm 2.
    Greedy,
    /// Algorithm 3 — what the paper's `Reorder` version ships.
    ForwardLooking,
}

impl ReorderStrategy {
    /// All strategies, for sweeps.
    pub const ALL: [ReorderStrategy; 3] = [
        ReorderStrategy::Original,
        ReorderStrategy::Greedy,
        ReorderStrategy::ForwardLooking,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            ReorderStrategy::Original => "original",
            ReorderStrategy::Greedy => "greedy",
            ReorderStrategy::ForwardLooking => "forward-looking",
        }
    }

    /// Applies the strategy to a circuit.
    pub fn reorder(self, circuit: &Circuit) -> Circuit {
        match self {
            ReorderStrategy::Original => circuit.clone(),
            ReorderStrategy::Greedy => apply_order(circuit, &greedy_order(circuit)),
            ReorderStrategy::ForwardLooking => {
                apply_order(circuit, &forward_looking_order(circuit))
            }
        }
    }

    /// [`ReorderStrategy::reorder`] under observation: records a
    /// [`qgpu_obs::Stage::Plan`] span covering the DAG traversal. With
    /// `rec == None` this is exactly `reorder`.
    pub fn reorder_observed(self, circuit: &Circuit, rec: Option<&qgpu_obs::Recorder>) -> Circuit {
        use qgpu_obs::{span_opt, Stage, Track};
        let _g = span_opt(rec, Track::Main, Stage::Plan, "sched.reorder");
        self.reorder(circuit)
    }
}

impl std::fmt::Display for ReorderStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Builds the reordered circuit from an operation permutation.
///
/// # Panics
///
/// Panics if `order` is not a valid topological order of the circuit's
/// DAG — reordering must never violate dependencies.
pub fn apply_order(circuit: &Circuit, order: &[usize]) -> Circuit {
    let dag = GateDag::new(circuit);
    assert!(
        dag.is_valid_order(order),
        "reordering produced a dependency-violating order"
    );
    let ops: Vec<Operation> = order.iter().map(|&i| circuit.ops()[i].clone()).collect();
    circuit.with_ops(ops)
}

/// New qubits an operation would involve given the current mask.
fn new_qubit_cost(op: &Operation, involved: u64) -> u32 {
    (op.qubit_mask() & !involved).count_ones()
}

/// Greedy reordering (Algorithm 2): repeatedly execute the ready gate with
/// the fewest newly involved qubits, with a seeded pseudo-random choice
/// among equal-cost candidates — exactly the paper's "we randomly select
/// one gate among them" (the randomness is what lets forward-looking beat
/// greedy in the paper's Figures 8 and 9).
///
/// (The paper's pseudocode initializes `minCost = 0` with a `<` compare,
/// which would never select a gate; the intended `∞` initialization is
/// used here.)
pub fn greedy_order(circuit: &Circuit) -> Vec<usize> {
    greedy_order_seeded(circuit, 0x9e37_79b9_7f4a_7c15)
}

/// [`greedy_order`] with an explicit tie-breaking seed (deterministic for
/// a fixed seed).
pub fn greedy_order_seeded(circuit: &Circuit, seed: u64) -> Vec<usize> {
    let dag = GateDag::new(circuit);
    let mut pred_counts = dag.predecessor_counts();
    let mut exe_list: Vec<usize> = dag.roots();
    let mut order = Vec::with_capacity(circuit.len());
    let mut involved = 0u64;
    let mut rng_state = seed | 1;
    let mut next_rand = move || {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        rng_state
    };

    while !exe_list.is_empty() {
        let min_cost = exe_list
            .iter()
            .map(|&g| new_qubit_cost(&circuit.ops()[g], involved))
            .min()
            .expect("exe_list is non-empty");
        let candidates: Vec<usize> = exe_list
            .iter()
            .copied()
            .filter(|&g| new_qubit_cost(&circuit.ops()[g], involved) == min_cost)
            .collect();
        let best = candidates[(next_rand() % candidates.len() as u64) as usize];
        exe_list.retain(|&g| g != best);
        involved |= circuit.ops()[best].qubit_mask();
        order.push(best);
        for &s in dag.successors(best) {
            pred_counts[s] -= 1;
            if pred_counts[s] == 0 {
                exe_list.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), circuit.len());
    order
}

/// Forward-looking reordering (Algorithm 3): the cost of a candidate is
/// its own new-qubit count plus the *minimum* new-qubit count among the
/// gates executable right after it.
pub fn forward_looking_order(circuit: &Circuit) -> Vec<usize> {
    let dag = GateDag::new(circuit);
    let mut pred_counts = dag.predecessor_counts();
    let mut exe_list: Vec<usize> = dag.roots();
    let mut order = Vec::with_capacity(circuit.len());
    let mut involved = 0u64;

    while !exe_list.is_empty() {
        // Key: (total cost, cost of the gate itself, source index). Among
        // equal totals, prefer the gate that adds fewer qubits *now* — it
        // keeps the involvement trajectory lower (better integrated
        // pruning) even when the two-step sums tie.
        let mut best: Option<(u32, u32, usize)> = None;
        for &g in &exe_list {
            let current = new_qubit_cost(&circuit.ops()[g], involved);
            let cost = forward_cost(circuit, &dag, &pred_counts, &exe_list, involved, g);
            let key = (cost, current, g);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, g) = best.expect("exe_list is non-empty");
        exe_list.retain(|&x| x != g);
        involved |= circuit.ops()[g].qubit_mask();
        order.push(g);
        for &s in dag.successors(g) {
            pred_counts[s] -= 1;
            if pred_counts[s] == 0 {
                exe_list.push(s);
            }
        }
    }
    debug_assert_eq!(order.len(), circuit.len());
    order
}

/// Algorithm 3's cost: `costCurrent + costLookAhead`, evaluated on copies
/// of the scheduler state.
fn forward_cost(
    circuit: &Circuit,
    dag: &GateDag,
    pred_counts: &[usize],
    exe_list: &[usize],
    involved: u64,
    g: usize,
) -> u32 {
    let op = &circuit.ops()[g];
    let cost_current = new_qubit_cost(op, involved);
    let involved_after = involved | op.qubit_mask();

    // Hypothetical exe_list after executing g.
    let mut lookahead_min: Option<u32> = None;
    let mut consider = |op: &Operation| {
        let c = new_qubit_cost(op, involved_after);
        lookahead_min = Some(lookahead_min.map_or(c, |m| m.min(c)));
    };
    for &other in exe_list {
        if other != g {
            consider(&circuit.ops()[other]);
        }
    }
    for &s in dag.successors(g) {
        if pred_counts[s] == 1 {
            consider(&circuit.ops()[s]);
        }
    }
    cost_current + lookahead_min.unwrap_or(0)
}

/// Number of operations before full involvement under a strategy — the
/// scalar the paper's Figure 9 visualizes.
pub fn delay_to_full_involvement(circuit: &Circuit, strategy: ReorderStrategy) -> usize {
    let reordered = strategy.reorder(circuit);
    let full = full_mask(circuit.num_qubits());
    let mut mask = 0u64;
    for (i, op) in reordered.iter().enumerate() {
        mask |= op.qubit_mask();
        if mask == full {
            return i + 1;
        }
    }
    reordered.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_circuit::involvement::involvement_counts;

    /// The paper's Figure 8 walk-through circuit (gs_5).
    fn gs5() -> Circuit {
        let mut c = Circuit::new(5);
        c.h(0).h(1).h(2).h(3).h(4); // g1..g5
        c.cx(0, 1); // g6
        c.cx(0, 2); // g7
        c.cx(1, 3); // g8
        c.cx(2, 4); // g9
        c
    }

    #[test]
    fn orders_are_valid_permutations() {
        for b in Benchmark::ALL {
            let c = b.generate(10);
            let dag = GateDag::new(&c);
            assert!(dag.is_valid_order(&greedy_order(&c)), "{b} greedy");
            assert!(
                dag.is_valid_order(&forward_looking_order(&c)),
                "{b} forward-looking"
            );
        }
    }

    #[test]
    fn figure8_forward_looking_delays_involvement() {
        // Paper Figure 8 walk-through on gs_5. Note: the paper reports
        // full involvement at step 9 for forward-looking, which cannot be
        // realized — every qubit's H precedes its CNOT, so the gate
        // executed at step 9 (a CNOT) cannot be the first to touch a
        // qubit. Step 8 is the true optimum, which both of our
        // deterministic passes reach (the paper's random tie-breaking
        // lands greedy at 7).
        let c = gs5();
        let orig = delay_to_full_involvement(&c, ReorderStrategy::Original);
        let greedy = delay_to_full_involvement(&c, ReorderStrategy::Greedy);
        let fl = delay_to_full_involvement(&c, ReorderStrategy::ForwardLooking);
        assert_eq!(orig, 5);
        assert!(greedy >= orig, "greedy {greedy} >= original {orig}");
        assert!(fl >= greedy, "forward-looking {fl} >= greedy {greedy}");
        assert_eq!(fl, 8, "forward-looking should delay to the last H");
    }

    #[test]
    fn figure8_involvement_trajectory() {
        // Expected optimal trajectory on gs_5: 1→2→2→3→3→4→4→5→5
        // (interleaving each CNOT right after its qubits' H gates).
        let c = ReorderStrategy::ForwardLooking.reorder(&gs5());
        let counts = involvement_counts(&c);
        assert_eq!(counts, vec![1, 2, 2, 3, 3, 4, 4, 5, 5]);
    }

    #[test]
    fn reorder_never_hurts_on_reorderable_circuits() {
        for b in [Benchmark::Gs, Benchmark::Hlf, Benchmark::Iqp] {
            let c = b.generate(12);
            let orig = delay_to_full_involvement(&c, ReorderStrategy::Original);
            let fl = delay_to_full_involvement(&c, ReorderStrategy::ForwardLooking);
            assert!(fl >= orig, "{b}: fl {fl} < original {orig}");
        }
    }

    #[test]
    fn qaoa_is_nearly_immune_to_reordering() {
        // Paper Figure 9: qaoa's dense dependencies leave reordering
        // almost nothing — full involvement stays in the first fraction of
        // the circuit even after the pass.
        let c = Benchmark::Qaoa.generate(12);
        let fl = delay_to_full_involvement(&c, ReorderStrategy::ForwardLooking);
        let total = c.len();
        assert!(
            (fl as f64) < 0.25 * total as f64,
            "qaoa still involves early after reordering: {fl} of {total}"
        );
    }

    #[test]
    fn reordered_gates_are_a_permutation() {
        let c = Benchmark::Hlf.generate(10);
        let r = ReorderStrategy::ForwardLooking.reorder(&c);
        let mut a: Vec<String> = c.iter().map(|op| op.to_string()).collect();
        let mut b: Vec<String> = r.iter().map(|op| op.to_string()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn deterministic() {
        let c = Benchmark::Gs.generate(14);
        assert_eq!(forward_looking_order(&c), forward_looking_order(&c));
        assert_eq!(greedy_order(&c), greedy_order(&c));
    }

    #[test]
    #[should_panic(expected = "dependency-violating")]
    fn apply_order_rejects_bad_permutations() {
        let c = gs5();
        let mut order: Vec<usize> = (0..c.len()).collect();
        order.swap(0, 5); // cx before its h
        let _ = apply_order(&c, &order);
    }

    #[test]
    fn empty_circuit_reorders_to_empty() {
        let c = Circuit::new(2);
        assert!(greedy_order(&c).is_empty());
        assert!(forward_looking_order(&c).is_empty());
    }
}
