//! Per-device health scoring with quarantine, probation, and
//! reinstatement.
//!
//! A device that flips bits is worse than a device that dies: death is
//! loud (the orchestrator re-shards and moves on) while silent data
//! corruption keeps producing plausible-looking wrong answers. The
//! [`DeviceHealthBoard`] turns the integrity layer's per-device signals
//! — invariant violations, retries, CRC failures — into an exponential
//! moving average per device and walks a three-state machine:
//!
//! ```text
//!            score ≥ probation_threshold        score ≥ quarantine_threshold
//! Healthy ──────────────────────────▶ Probation ────────────────────────▶ Quarantined
//!    ▲                                    │                                   │
//!    │        score ≤ reinstate_threshold │            every probe_interval-th│
//!    └────────────────────────────────────┘            placement is a probe;  │
//!    ▲                                                 probes that succeed    │
//!    │   clean probes decay the score; score ≤         decay the score        │
//!    │   reinstate_threshold reinstates                                       │
//!    └────────────────────────────────────────────────────────────────────────┘
//! ```
//!
//! The board is pure bookkeeping — no clocks, no threads — so the same
//! sequence of recorded events always produces the same state, and both
//! the engine (modeled devices) and the serving layer (fleet slots) can
//! embed one.

/// A device's scheduling state on the board.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HealthState {
    /// Full confidence; schedule freely.
    Healthy,
    /// Elevated fault score; schedulable, but under watch.
    Probation,
    /// Fault score crossed the quarantine threshold; drained and only
    /// reachable through periodic probe placements.
    Quarantined,
}

impl HealthState {
    /// Stable label used in metrics and flight events.
    pub fn label(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Probation => "probation",
            HealthState::Quarantined => "quarantined",
        }
    }
}

/// What happened on the board as a result of recording an event —
/// callers turn these into flight events and metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HealthTransition {
    /// No state change.
    None,
    /// Healthy → Probation.
    Demoted,
    /// Probation/Healthy → Quarantined.
    Quarantined,
    /// Quarantined/Probation → Healthy.
    Reinstated,
}

/// Tuning for the health board's EMA and thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// EMA smoothing factor in `(0, 1]`: the weight of the newest event.
    pub alpha: f64,
    /// Score an invariant violation contributes (the loudest signal —
    /// the device computed a wrong answer).
    pub violation_weight: f64,
    /// Score a CRC/transfer integrity failure contributes.
    pub crc_weight: f64,
    /// Score a recoverable retry contributes (weakest signal).
    pub retry_weight: f64,
    /// Score at or above which a device is quarantined.
    pub quarantine_threshold: f64,
    /// Score at or above which a healthy device enters probation.
    pub probation_threshold: f64,
    /// Score at or below which a probation/quarantined device is
    /// reinstated to healthy.
    pub reinstate_threshold: f64,
    /// While quarantined, every `probe_interval`-th placement query is
    /// allowed through as a probe (minimum 1).
    pub probe_interval: u64,
}

impl Default for HealthConfig {
    /// Two back-to-back violations quarantine (EMA after two 1.0 events
    /// at α = 0.5 is 0.75 ≥ 0.6); one violation alone only reaches
    /// probation (0.5); roughly four clean results after that decay the
    /// score under the reinstatement bar.
    fn default() -> Self {
        HealthConfig {
            alpha: 0.5,
            violation_weight: 1.0,
            crc_weight: 0.6,
            retry_weight: 0.3,
            quarantine_threshold: 0.6,
            probation_threshold: 0.35,
            reinstate_threshold: 0.05,
            probe_interval: 4,
        }
    }
}

#[derive(Debug, Clone)]
struct DeviceHealth {
    score: f64,
    state: HealthState,
    placements_denied: u64,
    violations: u64,
    crc_failures: u64,
    retries: u64,
    successes: u64,
    quarantines: u64,
}

impl DeviceHealth {
    fn new() -> Self {
        DeviceHealth {
            score: 0.0,
            state: HealthState::Healthy,
            placements_denied: 0,
            violations: 0,
            crc_failures: 0,
            retries: 0,
            successes: 0,
            quarantines: 0,
        }
    }
}

/// Immutable snapshot of one device's standing, for metrics export.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthSnapshot {
    /// Current EMA fault score.
    pub score: f64,
    /// Current scheduling state.
    pub state: HealthState,
    /// Invariant violations recorded against this device.
    pub violations: u64,
    /// CRC/transfer failures recorded.
    pub crc_failures: u64,
    /// Recoverable retries recorded.
    pub retries: u64,
    /// Times this device entered quarantine.
    pub quarantines: u64,
}

/// The per-device health scoreboard.
///
/// # Examples
///
/// ```
/// use qgpu_sched::health::{DeviceHealthBoard, HealthState, HealthTransition};
///
/// let mut board = DeviceHealthBoard::new(2);
/// assert!(board.schedulable(0));
/// // Two invariant violations in a row: device 0 goes to quarantine.
/// board.record_violation(0);
/// let t = board.record_violation(0);
/// assert_eq!(t, HealthTransition::Quarantined);
/// assert_eq!(board.state(0), HealthState::Quarantined);
/// assert!(!board.schedulable(0));
/// assert!(board.schedulable(1));
/// ```
#[derive(Debug, Clone)]
pub struct DeviceHealthBoard {
    cfg: HealthConfig,
    devices: Vec<DeviceHealth>,
}

impl DeviceHealthBoard {
    /// A board for `num_devices` devices, all healthy, default tuning.
    pub fn new(num_devices: usize) -> Self {
        Self::with_config(num_devices, HealthConfig::default())
    }

    /// A board with explicit tuning.
    pub fn with_config(num_devices: usize, cfg: HealthConfig) -> Self {
        DeviceHealthBoard {
            cfg,
            devices: (0..num_devices).map(|_| DeviceHealth::new()).collect(),
        }
    }

    /// Number of devices tracked.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when the board tracks no devices.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The board's tuning.
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    fn fold(&mut self, device: usize, event_score: f64) -> HealthTransition {
        let cfg = self.cfg;
        let a = cfg.alpha.clamp(f64::MIN_POSITIVE, 1.0);
        let d = &mut self.devices[device];
        d.score = (1.0 - a) * d.score + a * event_score;
        let next = if d.score >= cfg.quarantine_threshold {
            HealthState::Quarantined
        } else if d.score <= cfg.reinstate_threshold {
            HealthState::Healthy
        } else if d.score >= cfg.probation_threshold {
            HealthState::Probation
        } else {
            // Between reinstate and probation: keep the current state —
            // hysteresis, so scores drifting in the dead band don't
            // flap the scheduler.
            d.state
        };
        let t = match (d.state, next) {
            (a, b) if a == b => HealthTransition::None,
            (_, HealthState::Quarantined) => {
                d.quarantines += 1;
                HealthTransition::Quarantined
            }
            (_, HealthState::Healthy) => HealthTransition::Reinstated,
            (_, HealthState::Probation) => HealthTransition::Demoted,
        };
        d.state = next;
        t
    }

    /// Records an ABFT invariant violation attributed to `device`.
    pub fn record_violation(&mut self, device: usize) -> HealthTransition {
        self.devices[device].violations += 1;
        self.fold(device, self.cfg.violation_weight)
    }

    /// Records a CRC/transfer integrity failure on `device`.
    pub fn record_crc_failure(&mut self, device: usize) -> HealthTransition {
        self.devices[device].crc_failures += 1;
        self.fold(device, self.cfg.crc_weight)
    }

    /// Records a recoverable retry that ran on `device`.
    pub fn record_retry(&mut self, device: usize) -> HealthTransition {
        self.devices[device].retries += 1;
        self.fold(device, self.cfg.retry_weight)
    }

    /// Records a clean completion on `device`: the score decays toward
    /// zero, and a quarantined device that has probed its way under the
    /// reinstatement bar returns to service.
    pub fn record_success(&mut self, device: usize) -> HealthTransition {
        self.devices[device].successes += 1;
        self.fold(device, 0.0)
    }

    /// Current state of `device`.
    pub fn state(&self, device: usize) -> HealthState {
        self.devices[device].state
    }

    /// Current EMA score of `device`.
    pub fn score(&self, device: usize) -> f64 {
        self.devices[device].score
    }

    /// Whether the scheduler may place ordinary work on `device`.
    ///
    /// Healthy and probation devices: yes. Quarantined devices: only
    /// every [`HealthConfig::probe_interval`]-th query gets through, as
    /// a probe — enough traffic to earn reinstatement, little enough
    /// that a lying device cannot poison the fleet. Denied queries are
    /// counted so callers can report drained load.
    pub fn schedulable(&mut self, device: usize) -> bool {
        if self.devices[device].state != HealthState::Quarantined {
            return true;
        }
        let denied = self.devices[device].placements_denied;
        self.devices[device].placements_denied += 1;
        let interval = self.cfg.probe_interval.max(1);
        // The first (interval - 1) queries are denied, then one probe.
        denied % interval == interval - 1
    }

    /// Devices currently quarantined.
    pub fn quarantined(&self) -> Vec<usize> {
        self.devices
            .iter()
            .enumerate()
            .filter(|(_, d)| d.state == HealthState::Quarantined)
            .map(|(i, _)| i)
            .collect()
    }

    /// Count of devices currently schedulable without probing.
    pub fn healthy_count(&self) -> usize {
        self.devices
            .iter()
            .filter(|d| d.state != HealthState::Quarantined)
            .count()
    }

    /// Snapshot of `device` for metrics export.
    pub fn snapshot(&self, device: usize) -> HealthSnapshot {
        let d = &self.devices[device];
        HealthSnapshot {
            score: d.score,
            state: d.state,
            violations: d.violations,
            crc_failures: d.crc_failures,
            retries: d.retries,
            quarantines: d.quarantines,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_board_is_all_healthy() {
        let mut b = DeviceHealthBoard::new(4);
        assert_eq!(b.len(), 4);
        assert!(!b.is_empty());
        for d in 0..4 {
            assert_eq!(b.state(d), HealthState::Healthy);
            assert_eq!(b.score(d), 0.0);
            assert!(b.schedulable(d));
        }
        assert!(b.quarantined().is_empty());
        assert_eq!(b.healthy_count(), 4);
    }

    #[test]
    fn one_violation_probation_two_quarantine() {
        let mut b = DeviceHealthBoard::new(2);
        assert_eq!(b.record_violation(0), HealthTransition::Demoted);
        assert_eq!(b.state(0), HealthState::Probation);
        assert!(b.schedulable(0), "probation still schedules");
        assert_eq!(b.record_violation(0), HealthTransition::Quarantined);
        assert_eq!(b.state(0), HealthState::Quarantined);
        assert_eq!(b.quarantined(), vec![0]);
        assert_eq!(b.healthy_count(), 1);
        // The other device is untouched.
        assert_eq!(b.state(1), HealthState::Healthy);
    }

    #[test]
    fn retries_are_weaker_than_violations() {
        let mut b = DeviceHealthBoard::new(1);
        b.record_retry(0);
        assert_eq!(
            b.state(0),
            HealthState::Healthy,
            "one retry must not demote"
        );
        let mut v = DeviceHealthBoard::new(1);
        v.record_violation(0);
        assert!(v.score(0) > b.score(0));
    }

    #[test]
    fn crc_failures_count_between_retries_and_violations() {
        let cfg = HealthConfig::default();
        assert!(cfg.retry_weight < cfg.crc_weight);
        assert!(cfg.crc_weight < cfg.violation_weight);
        let mut b = DeviceHealthBoard::new(1);
        b.record_crc_failure(0);
        b.record_crc_failure(0);
        b.record_crc_failure(0);
        assert_ne!(
            b.state(0),
            HealthState::Healthy,
            "a CRC storm must at least demote"
        );
        assert_eq!(b.snapshot(0).crc_failures, 3);
    }

    #[test]
    fn quarantine_admits_periodic_probes_only() {
        let mut b = DeviceHealthBoard::new(1);
        b.record_violation(0);
        b.record_violation(0);
        assert_eq!(b.state(0), HealthState::Quarantined);
        let interval = b.config().probe_interval as usize;
        let admitted = (0..4 * interval).filter(|_| b.schedulable(0)).count();
        assert_eq!(admitted, 4, "exactly one probe per interval");
    }

    #[test]
    fn successful_probes_reinstate() {
        let mut b = DeviceHealthBoard::new(1);
        b.record_violation(0);
        assert_eq!(b.record_violation(0), HealthTransition::Quarantined);
        let mut reinstated = false;
        for _ in 0..16 {
            if b.record_success(0) == HealthTransition::Reinstated {
                reinstated = true;
                break;
            }
        }
        assert!(reinstated, "clean probes must decay the score to healthy");
        assert_eq!(b.state(0), HealthState::Healthy);
        assert!(b.schedulable(0));
        assert_eq!(b.snapshot(0).quarantines, 1);
    }

    #[test]
    fn hysteresis_keeps_the_dead_band_stable() {
        // Drive a device just over probation, then feed successes until
        // the score sits between reinstate and probation: the state must
        // hold (no flapping), then clear once under the reinstate bar.
        let mut b = DeviceHealthBoard::new(1);
        b.record_violation(0);
        assert_eq!(b.state(0), HealthState::Probation);
        b.record_success(0); // 0.25 — inside the dead band
        assert_eq!(b.state(0), HealthState::Probation, "dead band holds");
        let mut t = HealthTransition::None;
        for _ in 0..8 {
            t = b.record_success(0);
            if t == HealthTransition::Reinstated {
                break;
            }
        }
        assert_eq!(t, HealthTransition::Reinstated);
    }

    #[test]
    fn board_is_deterministic() {
        let run = || {
            let mut b = DeviceHealthBoard::new(3);
            b.record_violation(1);
            b.record_retry(2);
            b.record_crc_failure(1);
            b.record_success(0);
            (b.score(0), b.score(1), b.score(2), b.state(1))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn snapshot_reports_tallies() {
        let mut b = DeviceHealthBoard::new(1);
        b.record_violation(0);
        b.record_retry(0);
        b.record_retry(0);
        b.record_success(0);
        let s = b.snapshot(0);
        assert_eq!(s.violations, 1);
        assert_eq!(s.retries, 2);
        assert_eq!(s.crc_failures, 0);
        assert!(s.score > 0.0);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(HealthState::Healthy.label(), "healthy");
        assert_eq!(HealthState::Probation.label(), "probation");
        assert_eq!(HealthState::Quarantined.label(), "quarantined");
    }
}
