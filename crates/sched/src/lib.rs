//! Scheduling machinery for Q-GPU: pruning, reordering, planning,
//! residency.
//!
//! * [`involvement::InvolvementTracker`] — the qubit-involvement bitmask
//!   and the zero-chunk test of the paper's Algorithm 1, including dynamic
//!   chunk sizing;
//! * [`reorder`] — the dependency-aware gate reordering passes: *greedy*
//!   (Algorithm 2) and *forward-looking* (Algorithm 3);
//! * [`plan::GatePlan`] — which chunks a gate touches and how they group
//!   across the chunk boundary (the paper's Case 1 / Case 2);
//! * [`residency`] — where chunks live: the baseline's static split, and
//!   round-robin assignment for multi-GPU streaming (paper §V-E);
//! * [`devicegroup`] — resilient multi-device orchestration: device
//!   loss re-sharding, straggler work-stealing, and the memory-pressure
//!   degradation ladder;
//! * [`health::DeviceHealthBoard`] — the per-device EMA fault
//!   scoreboard (violations, CRC failures, retries) with quarantine,
//!   probation probes, and reinstatement, consumed by both the engine
//!   and the serving scheduler.
//!
//! # Examples
//!
//! ```
//! use qgpu_circuit::generators::Benchmark;
//! use qgpu_sched::reorder::ReorderStrategy;
//!
//! let c = Benchmark::Gs.generate(8);
//! let reordered = ReorderStrategy::ForwardLooking.reorder(&c);
//! assert_eq!(reordered.len(), c.len()); // a permutation, same gates
//! ```

pub mod devicegroup;
pub mod health;
pub mod involvement;
pub mod plan;
pub mod reorder;
pub mod residency;

pub use devicegroup::{DeviceGroup, OrchestratorConfig, PressureAction, PressureGovernor};
pub use health::{DeviceHealthBoard, HealthConfig, HealthState, HealthTransition};
pub use involvement::InvolvementTracker;
pub use plan::{ChunkTask, GatePlan};
pub use reorder::ReorderStrategy;
