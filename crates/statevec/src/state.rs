//! Flat state-vector storage: the reference implementation.

use qgpu_circuit::access::GateAction;
use qgpu_circuit::{Circuit, Operation};
use qgpu_math::Complex64;

use crate::kernels;

/// A full `2^n`-amplitude state vector.
///
/// This is the reference simulator layout: gates are applied in place over
/// the whole vector. The chunked layout ([`crate::ChunkedState`]) must
/// always agree with it — the integration tests enforce that.
///
/// # Examples
///
/// ```
/// use qgpu_statevec::StateVector;
/// use qgpu_circuit::{Gate, Operation};
///
/// let mut s = StateVector::new_zero(2);
/// s.apply(&Operation::new(Gate::H, vec![0]));
/// assert!((s.norm() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<Complex64>,
}

impl StateVector {
    /// The all-zeros computational basis state |0…0⟩.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0 or large enough to overflow memory
    /// (`2^n * 16` bytes are allocated).
    pub fn new_zero(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "need at least one qubit");
        assert!(num_qubits < 48, "state vector would not fit in memory");
        let mut amps = vec![Complex64::ZERO; 1usize << num_qubits];
        amps[0] = Complex64::ONE;
        StateVector { num_qubits, amps }
    }

    /// Builds a state from raw amplitudes.
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two.
    pub fn from_amplitudes(amps: Vec<Complex64>) -> Self {
        assert!(
            amps.len().is_power_of_two() && amps.len() >= 2,
            "amplitude count must be a power of two, got {}",
            amps.len()
        );
        let num_qubits = amps.len().trailing_zeros() as usize;
        StateVector { num_qubits, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of amplitudes (`2^n`).
    pub fn len(&self) -> usize {
        self.amps.len()
    }

    /// Always `false`: a state vector has at least two amplitudes.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The amplitude of basis state `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn amp(&self, i: usize) -> Complex64 {
        self.amps[i]
    }

    /// All amplitudes.
    pub fn amps(&self) -> &[Complex64] {
        &self.amps
    }

    /// Mutable amplitude access (for kernels and tests).
    pub fn amps_mut(&mut self) -> &mut [Complex64] {
        &mut self.amps
    }

    /// Consumes the state and returns the amplitude vector.
    pub fn into_amplitudes(self) -> Vec<Complex64> {
        self.amps
    }

    /// Applies one operation in place (single-threaded).
    pub fn apply(&mut self, op: &Operation) {
        let action = GateAction::from_operation(op);
        kernels::apply_action(&mut self.amps, 0, &action);
    }

    /// Applies a prebuilt action (avoids rebuilding it per call).
    pub fn apply_action(&mut self, action: &GateAction) {
        kernels::apply_action(&mut self.amps, 0, action);
    }

    /// Runs a whole circuit on the state.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn run(&mut self, circuit: &Circuit) {
        assert!(circuit.num_qubits() <= self.num_qubits);
        for op in circuit.iter() {
            self.apply(op);
        }
    }

    /// Runs a whole circuit using up to `threads` worker threads per gate
    /// (the OpenMP-style execution of the paper's CPU comparator).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state or
    /// `threads == 0`.
    pub fn run_parallel(&mut self, circuit: &Circuit, threads: usize) {
        assert!(circuit.num_qubits() <= self.num_qubits);
        for op in circuit.iter() {
            let action = GateAction::from_operation(op);
            crate::parallel::apply_action_parallel(&mut self.amps, &action, threads);
        }
    }

    /// Runs a whole circuit through the gate-fusion pass with *exact
    /// replay*: each fused run is applied member-by-member inside one
    /// cache-blocked pass, so the result is bitwise identical to
    /// [`StateVector::run`] at every thread count while touching memory
    /// once per run instead of once per gate.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state or
    /// `threads == 0`.
    pub fn run_fused(&mut self, circuit: &Circuit, threads: usize) {
        assert!(circuit.num_qubits() <= self.num_qubits);
        let ex = crate::executor::ChunkExecutor::new(threads);
        for fop in qgpu_circuit::fuse::fuse(circuit) {
            ex.apply_flat_run(&mut self.amps, fop.actions());
        }
    }

    /// Runs a whole circuit with fused runs *collapsed* to a single
    /// kernel each (one 2×2 product per single-qubit run, one merged
    /// phase table per diagonal run): the fastest path, one full pass and
    /// one complex multiply per amplitude per run. The collapsed
    /// arithmetic rounds differently from the gate-by-gate path, so the
    /// result agrees with [`StateVector::run`] to normal f64 tolerance
    /// rather than bitwise (it is still deterministic at every thread
    /// count).
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state or
    /// `threads == 0`.
    pub fn run_fused_collapsed(&mut self, circuit: &Circuit, threads: usize) {
        assert!(circuit.num_qubits() <= self.num_qubits);
        let ex = crate::executor::ChunkExecutor::new(threads);
        for fop in qgpu_circuit::fuse::fuse(circuit) {
            match fop.collapsed() {
                // Merged phase tables are mostly exact 1s: the strided
                // kernel skips those runs without touching their memory.
                GateAction::Diagonal { qubits, dvec } => {
                    ex.apply_flat_diagonal(&mut self.amps, qubits, dvec)
                }
                other => ex.apply_flat(&mut self.amps, other),
            }
        }
    }

    /// The 2-norm of the state (1.0 for any valid quantum state).
    pub fn norm(&self) -> f64 {
        // Fixed-order tree reduction (not a running serial sum) so the
        // norm matches what any parallel caller computes, bit for bit.
        crate::executor::ChunkExecutor::new(1)
            .reduce_f64(self.amps.len(), |r| {
                self.amps[r].iter().map(|a| a.norm_sqr()).sum()
            })
            .sqrt()
    }

    /// Measurement probabilities of all basis states.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }

    /// Fidelity `|⟨self|other⟩|²` with another state.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        let inner: Complex64 = self
            .amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| a.conj() * *b)
            .sum();
        inner.norm_sqr()
    }

    /// Largest per-amplitude deviation from `other`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn max_deviation(&self, other: &StateVector) -> f64 {
        assert_eq!(self.num_qubits, other.num_qubits);
        self.amps
            .iter()
            .zip(other.amps.iter())
            .map(|(a, b)| (*a - *b).abs())
            .fold(0.0, f64::max)
    }

    /// Number of exactly-zero amplitudes.
    ///
    /// The paper's pruning exploits the fact that untouched qubits leave
    /// entire index ranges bit-exactly zero.
    pub fn zero_count(&self) -> usize {
        self.amps.iter().filter(|a| a.is_zero()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_circuit::Gate;

    #[test]
    fn zero_state_has_unit_norm() {
        let s = StateVector::new_zero(5);
        assert!((s.norm() - 1.0).abs() < 1e-15);
        assert_eq!(s.zero_count(), 31);
    }

    #[test]
    fn ghz_probabilities() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cx(1, 2);
        let mut s = StateVector::new_zero(3);
        s.run(&c);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12);
        assert!((p[7] - 0.5).abs() < 1e-12);
        assert!(p[1..7].iter().all(|&x| x < 1e-12));
    }

    #[test]
    fn norm_preserved_across_benchmarks() {
        for b in Benchmark::ALL {
            let c = b.generate(8);
            let mut s = StateVector::new_zero(8);
            s.run(&c);
            assert!((s.norm() - 1.0).abs() < 1e-9, "{b}: norm = {}", s.norm());
        }
    }

    #[test]
    fn fidelity_of_identical_states_is_one() {
        let c = Benchmark::Qft.generate(6);
        let mut a = StateVector::new_zero(6);
        a.run(&c);
        let b = a.clone();
        assert!((a.fidelity(&b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fidelity_of_orthogonal_states_is_zero() {
        let a = StateVector::new_zero(2);
        let mut b = StateVector::new_zero(2);
        b.apply(&Operation::new(Gate::X, vec![0]));
        assert!(a.fidelity(&b) < 1e-15);
    }

    #[test]
    fn x_then_x_is_identity() {
        let mut s = StateVector::new_zero(4);
        let reference = s.clone();
        s.apply(&Operation::new(Gate::X, vec![2]));
        s.apply(&Operation::new(Gate::X, vec![2]));
        assert!(s.max_deviation(&reference) < 1e-15);
    }

    #[test]
    fn uninvolved_qubits_leave_zeros() {
        // Touch only qubits 0 and 1 of a 5-qubit state: 3 qubits
        // uninvolved leaves 2^5 - 2^2 = 28 amplitudes exactly zero.
        let mut s = StateVector::new_zero(5);
        let mut c = Circuit::new(5);
        c.h(0).h(1).cx(0, 1).t(0);
        s.run(&c);
        assert!(s.zero_count() >= 28);
    }

    #[test]
    fn from_amplitudes_roundtrip() {
        let amps = vec![
            Complex64::new(0.6, 0.0),
            Complex64::ZERO,
            Complex64::new(0.0, 0.8),
            Complex64::ZERO,
        ];
        let s = StateVector::from_amplitudes(amps.clone());
        assert_eq!(s.num_qubits(), 2);
        assert_eq!(s.into_amplitudes(), amps);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn from_amplitudes_checks_length() {
        let _ = StateVector::from_amplitudes(vec![Complex64::ONE; 3]);
    }
}
