//! Pauli-string observables and expectation values.
//!
//! Chemistry and optimization workloads (the paper's `hchain` and `qaoa`)
//! are ultimately judged by expectation values ⟨ψ|P|ψ⟩ of Pauli strings;
//! this module computes them directly from a final [`StateVector`]
//! without materializing the operator.

use std::fmt;

use qgpu_math::Complex64;

use crate::state::StateVector;

/// A single-qubit Pauli factor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pauli {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A tensor product of Pauli factors on specific qubits (identity
/// elsewhere).
///
/// # Examples
///
/// ```
/// use qgpu_statevec::observable::{Pauli, PauliString};
///
/// let zz = PauliString::new([(0, Pauli::Z), (1, Pauli::Z)]);
/// assert_eq!(zz.to_string(), "Z0 Z1");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PauliString {
    factors: Vec<(usize, Pauli)>,
}

impl PauliString {
    /// Builds a Pauli string from `(qubit, factor)` pairs; identity
    /// factors are dropped.
    ///
    /// # Panics
    ///
    /// Panics if a qubit appears twice.
    pub fn new<I: IntoIterator<Item = (usize, Pauli)>>(factors: I) -> Self {
        let mut fs: Vec<(usize, Pauli)> = factors
            .into_iter()
            .filter(|&(_, p)| p != Pauli::I)
            .collect();
        fs.sort_by_key(|&(q, _)| q);
        for w in fs.windows(2) {
            assert_ne!(w[0].0, w[1].0, "qubit {} repeated in Pauli string", w[0].0);
        }
        PauliString { factors: fs }
    }

    /// The identity string.
    pub fn identity() -> Self {
        PauliString {
            factors: Vec::new(),
        }
    }

    /// Single-qubit `Z`.
    pub fn z(q: usize) -> Self {
        PauliString::new([(q, Pauli::Z)])
    }

    /// Single-qubit `X`.
    pub fn x(q: usize) -> Self {
        PauliString::new([(q, Pauli::X)])
    }

    /// The non-identity factors, sorted by qubit.
    pub fn factors(&self) -> &[(usize, Pauli)] {
        &self.factors
    }

    /// Largest qubit index referenced (None for identity).
    pub fn max_qubit(&self) -> Option<usize> {
        self.factors.last().map(|&(q, _)| q)
    }

    /// Expectation value ⟨ψ|P|ψ⟩ (always real for Hermitian P).
    ///
    /// # Panics
    ///
    /// Panics if the string references a qubit outside the state.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        self.expectation_parallel(state, 1)
    }

    /// Multi-threaded [`PauliString::expectation`].
    ///
    /// Terms are accumulated over fixed-size index blocks and combined
    /// with a deterministic pairwise tree (see [`qgpu_math::reduce`]),
    /// never in thread-completion order — so the result is bitwise
    /// identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if the string references a qubit outside the state or
    /// `threads == 0`.
    pub fn expectation_parallel(&self, state: &StateVector, threads: usize) -> f64 {
        if let Some(q) = self.max_qubit() {
            assert!(q < state.num_qubits(), "qubit {q} outside state");
        }
        // ⟨ψ|P|ψ⟩ = Σ_i conj(a_i) · (P a)_i; P maps basis |i⟩ to
        // phase(i) · |i ^ flip_mask⟩.
        let mut flip = 0usize;
        for &(q, p) in &self.factors {
            if matches!(p, Pauli::X | Pauli::Y) {
                flip |= 1 << q;
            }
        }
        let amps = state.amps();
        let acc = crate::executor::ChunkExecutor::new(threads).reduce_complex(amps.len(), |r| {
            let mut acc = Complex64::ZERO;
            for (i, amp) in amps[r.clone()].iter().enumerate() {
                let i = r.start + i;
                if amp.is_zero() {
                    continue;
                }
                let j = i ^ flip;
                let mut coeff = Complex64::ONE;
                for &(q, p) in &self.factors {
                    let bit = (i >> q) & 1;
                    coeff *= match (p, bit) {
                        (Pauli::Z, 0) => Complex64::ONE,
                        (Pauli::Z, _) => -Complex64::ONE,
                        (Pauli::X, _) => Complex64::ONE,
                        // Y|0> = i|1>, Y|1> = -i|0>.
                        (Pauli::Y, 0) => Complex64::I,
                        (Pauli::Y, _) => -Complex64::I,
                        (Pauli::I, _) => Complex64::ONE,
                    };
                }
                // ⟨j| P |i⟩ = coeff, so the term is conj(a_j) * coeff * a_i.
                acc += amps[j].conj() * coeff * *amp;
            }
            acc
        });
        debug_assert!(acc.im.abs() < 1e-9, "Hermitian expectation must be real");
        acc.re
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.factors.is_empty() {
            return f.write_str("I");
        }
        let mut first = true;
        for &(q, p) in &self.factors {
            if !first {
                f.write_str(" ")?;
            }
            first = false;
            let label = match p {
                Pauli::I => "I",
                Pauli::X => "X",
                Pauli::Y => "Y",
                Pauli::Z => "Z",
            };
            write!(f, "{label}{q}")?;
        }
        Ok(())
    }
}

/// A real-weighted sum of Pauli strings (a Hamiltonian).
///
/// # Examples
///
/// ```
/// use qgpu_statevec::observable::{Hamiltonian, Pauli, PauliString};
/// use qgpu_statevec::StateVector;
///
/// // H = -Z0 on |0>: energy -1.
/// let mut h = Hamiltonian::new();
/// h.add(-1.0, PauliString::z(0));
/// let state = StateVector::new_zero(1);
/// assert!((h.expectation(&state) + 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Hamiltonian {
    terms: Vec<(f64, PauliString)>,
}

impl Hamiltonian {
    /// An empty (zero) Hamiltonian.
    pub fn new() -> Self {
        Hamiltonian::default()
    }

    /// Adds a weighted term.
    pub fn add(&mut self, weight: f64, term: PauliString) -> &mut Self {
        self.terms.push((weight, term));
        self
    }

    /// The `(weight, string)` terms.
    pub fn terms(&self) -> &[(f64, PauliString)] {
        &self.terms
    }

    /// Expectation value ⟨ψ|H|ψ⟩.
    ///
    /// # Panics
    ///
    /// Panics if any term references a qubit outside the state.
    pub fn expectation(&self, state: &StateVector) -> f64 {
        self.terms
            .iter()
            .map(|(w, p)| w * p.expectation(state))
            .sum()
    }

    /// The MaxCut cost Hamiltonian Σ_(a,b) (1 - Z_a Z_b)/2 for the given
    /// edges — what `qaoa` optimizes.
    pub fn maxcut<I: IntoIterator<Item = (usize, usize)>>(edges: I) -> Self {
        let mut h = Hamiltonian::new();
        for (a, b) in edges {
            h.add(0.5, PauliString::identity());
            h.add(-0.5, PauliString::new([(a, Pauli::Z), (b, Pauli::Z)]));
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::Circuit;

    fn run(c: &Circuit) -> StateVector {
        let mut s = StateVector::new_zero(c.num_qubits());
        s.run(c);
        s
    }

    #[test]
    fn expectation_is_bitwise_identical_across_thread_counts() {
        // Pins the fixed-order tree reduction for observables: one thread
        // and N threads must agree on every bit of the result.
        let c = qgpu_circuit::generators::Benchmark::Qaoa.generate(15);
        let s = run(&c);
        let obs = [
            PauliString::z(3),
            PauliString::new([(0, Pauli::Z), (9, Pauli::Z)]),
            PauliString::new([(2, Pauli::X), (5, Pauli::Y), (11, Pauli::Z)]),
        ];
        for p in &obs {
            let serial = p.expectation_parallel(&s, 1);
            assert_eq!(serial.to_bits(), p.expectation(&s).to_bits(), "{p}");
            for threads in [2, 3, 4, 8] {
                let par = p.expectation_parallel(&s, threads);
                assert_eq!(serial.to_bits(), par.to_bits(), "{p}, threads {threads}");
            }
        }
    }

    #[test]
    fn z_on_basis_states() {
        let zero = StateVector::new_zero(2);
        assert!((PauliString::z(0).expectation(&zero) - 1.0).abs() < 1e-12);
        let mut c = Circuit::new(2);
        c.x(0);
        let one = run(&c);
        assert!((PauliString::z(0).expectation(&one) + 1.0).abs() < 1e-12);
        // Z on an untouched qubit stays +1.
        assert!((PauliString::z(1).expectation(&one) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_on_plus_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let plus = run(&c);
        assert!((PauliString::x(0).expectation(&plus) - 1.0).abs() < 1e-12);
        assert!(PauliString::z(0).expectation(&plus).abs() < 1e-12);
    }

    #[test]
    fn y_expectation() {
        // |+i> = S H |0> has <Y> = 1.
        let mut c = Circuit::new(1);
        c.h(0).s(0);
        let plus_i = run(&c);
        assert!((PauliString::new([(0, Pauli::Y)]).expectation(&plus_i) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zz_correlation_of_bell_pair() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let bell = run(&c);
        let zz = PauliString::new([(0, Pauli::Z), (1, Pauli::Z)]);
        assert!((zz.expectation(&bell) - 1.0).abs() < 1e-12);
        let xx = PauliString::new([(0, Pauli::X), (1, Pauli::X)]);
        assert!((xx.expectation(&bell) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identity_expectation_is_one() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(2);
        let s = run(&c);
        assert!((PauliString::identity().expectation(&s) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn maxcut_counts_cut_edges() {
        // |01>: the single edge (0,1) is cut -> cost 1.
        let mut c = Circuit::new(2);
        c.x(0);
        let s = run(&c);
        let h = Hamiltonian::maxcut([(0, 1)]);
        assert!((h.expectation(&s) - 1.0).abs() < 1e-12);
        // |00>: nothing cut.
        let s0 = StateVector::new_zero(2);
        assert!(h.expectation(&s0).abs() < 1e-12);
    }

    #[test]
    fn uniform_state_cuts_half() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2);
        let s = run(&c);
        let h = Hamiltonian::maxcut([(0, 1), (1, 2), (0, 2)]);
        assert!((h.expectation(&s) - 1.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "repeated")]
    fn repeated_qubit_rejected() {
        let _ = PauliString::new([(0, Pauli::Z), (0, Pauli::X)]);
    }

    #[test]
    fn display() {
        let p = PauliString::new([(2, Pauli::X), (0, Pauli::Z)]);
        assert_eq!(p.to_string(), "Z0 X2");
        assert_eq!(PauliString::identity().to_string(), "I");
    }
}
