//! Measurement: probabilities, seeded collapse, and sampling.
//!
//! The paper's scope is measurement at the end of circuits (§II-B); this
//! module provides basis-state sampling and per-qubit marginals over a
//! final [`StateVector`], plus the chunked kernels the engine uses for
//! mid-circuit measurement and seeded shot sampling:
//!
//! * [`prob_one_chunked`] / [`collapse_chunked`] / [`reset_chunked`] —
//!   deterministic collapse on the engine's [`ChunkedState`], and
//! * [`seeded_counts_chunked`] — end-of-circuit shot counts keyed by
//!   [`qgpu_math::rng::unit_draw`].
//!
//! # Partition invariance
//!
//! Every chunked kernel here accumulates **sequentially in global index
//! order**. A sparse (all-zero) chunk contributes exact `+0.0` terms,
//! and since the accumulator starts at `+0.0` and each term is
//! non-negative, skipping those terms is a bitwise no-op. The marginal
//! probability — and therefore every collapse outcome and every sampled
//! shot — is bit-identical at any `chunk_bits`, thread count, or device
//! count.

use rand::Rng;

use qgpu_math::rng::{unit_draw, SALT_SAMPLE};

use crate::chunked::ChunkedState;
use crate::executor::ChunkExecutor;
use crate::state::StateVector;

/// Probability that measuring `qubit` yields 1.
///
/// Computed with the fixed-order tree reduction of
/// [`prob_one_parallel`] at one thread, so serial and parallel callers
/// agree bitwise.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
///
/// # Examples
///
/// ```
/// use qgpu_statevec::{StateVector, measure};
/// use qgpu_circuit::{Gate, Operation};
///
/// let mut s = StateVector::new_zero(2);
/// s.apply(&Operation::new(Gate::H, vec![0]));
/// let p = measure::prob_one(&s, 0);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn prob_one(state: &StateVector, qubit: usize) -> f64 {
    prob_one_parallel(state, qubit, 1)
}

/// Multi-threaded [`prob_one`].
///
/// The reduction never accumulates in thread-completion order: partial
/// sums are cut at fixed block boundaries and combined with a
/// deterministic pairwise tree (see [`qgpu_math::reduce`]), so the
/// result is bitwise identical at every thread count.
///
/// # Panics
///
/// Panics if `qubit` is out of range or `threads == 0`.
pub fn prob_one_parallel(state: &StateVector, qubit: usize, threads: usize) -> f64 {
    assert!(qubit < state.num_qubits());
    let bit = 1usize << qubit;
    let amps = state.amps();
    ChunkExecutor::new(threads).reduce_f64(amps.len(), |r| {
        let mut acc = 0.0;
        for i in r {
            if i & bit != 0 {
                acc += amps[i].norm_sqr();
            }
        }
        acc
    })
}

/// Samples one basis-state outcome from the measurement distribution.
///
/// # Examples
///
/// ```
/// use qgpu_statevec::{StateVector, measure};
/// use rand::SeedableRng;
///
/// let s = StateVector::new_zero(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert_eq!(measure::sample(&s, &mut rng), 0); // |000> always measures 0
/// ```
pub fn sample<R: Rng + ?Sized>(state: &StateVector, rng: &mut R) -> usize {
    let r: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, a) in state.amps().iter().enumerate() {
        acc += a.norm_sqr();
        if r < acc {
            return i;
        }
    }
    state.len() - 1
}

/// Draws `shots` samples and returns `(basis_state, count)` pairs sorted
/// by descending count.
pub fn sample_counts<R: Rng + ?Sized>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for _ in 0..shots {
        *counts.entry(sample(state, rng)).or_insert(0) += 1;
    }
    let mut v: Vec<(usize, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// Probability that measuring `qubit` yields 1, on a chunked state.
///
/// Accumulated sequentially in global index order (see the module docs),
/// so the result is bit-identical at every `chunk_bits` and independent
/// of which chunks happen to be sparse.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
pub fn prob_one_chunked(state: &ChunkedState, qubit: usize) -> f64 {
    assert!(qubit < state.num_qubits());
    let chunk_len = state.chunk_len();
    let mut acc = 0.0f64;
    for c in 0..state.num_chunks() {
        let Some(amps) = state.chunk(c) else { continue };
        let base = c << state.chunk_bits();
        for (off, a) in amps.iter().enumerate() {
            if (base | off) & (1usize << qubit) != 0 {
                acc += a.norm_sqr();
            }
        }
        debug_assert_eq!(amps.len(), chunk_len);
    }
    acc
}

/// Collapses `qubit` to `outcome`, renormalizing by `p_outcome`.
///
/// Amplitudes on the non-matching half are zeroed; matching amplitudes
/// are scaled elementwise by `1/√p_outcome` — the same multiply in the
/// same position for every layout, so collapse is partition-invariant.
/// Chunks left all-zero are demoted back to sparse so pruning keeps its
/// wins after the collapse.
///
/// # Panics
///
/// Panics if `qubit` is out of range; `p_outcome` must be positive
/// (a drawn outcome always has nonzero probability).
pub fn collapse_chunked(state: &mut ChunkedState, qubit: usize, outcome: bool, p_outcome: f64) {
    assert!(qubit < state.num_qubits());
    debug_assert!(p_outcome > 0.0, "drawn outcome must have p > 0");
    let scale = 1.0 / p_outcome.sqrt();
    let bit = 1usize << qubit;
    let chunk_bits = state.chunk_bits();
    for c in 0..state.num_chunks() {
        if state.is_zero_chunk(c) {
            continue;
        }
        let base = c << chunk_bits;
        let amps = state.chunk_mut_or_alloc(c);
        for (off, a) in amps.iter_mut().enumerate() {
            if (((base | off) & bit) != 0) == outcome {
                *a = *a * scale;
            } else {
                *a = qgpu_math::Complex64::ZERO;
            }
        }
        state.demote_if_zero(c);
    }
}

/// Resets `qubit` to |0⟩ given the measured `outcome`: collapse, then —
/// for outcome 1 — *move* each surviving amplitude to the partner index
/// with the qubit's bit cleared.
///
/// The move is a pure relocation (no matrix arithmetic), so it cannot
/// introduce signed-zero or rounding divergence between layouts.
///
/// # Panics
///
/// Panics if `qubit` is out of range; `p_outcome` must be positive.
pub fn reset_chunked(state: &mut ChunkedState, qubit: usize, outcome: bool, p_outcome: f64) {
    collapse_chunked(state, qubit, outcome, p_outcome);
    if !outcome {
        return;
    }
    let chunk_bits = state.chunk_bits() as usize;
    if qubit < chunk_bits {
        // The pair lives inside each chunk: move offset (o|bit) → o.
        let bit = 1usize << qubit;
        for c in 0..state.num_chunks() {
            if state.is_zero_chunk(c) {
                continue;
            }
            let amps = state.chunk_mut_or_alloc(c);
            for off in 0..amps.len() {
                if off & bit != 0 {
                    amps[off & !bit] = amps[off];
                    amps[off] = qgpu_math::Complex64::ZERO;
                }
            }
        }
    } else {
        // The pair spans chunks: move chunk (c|bit) → chunk (c & !bit).
        let bit = 1usize << (qubit - chunk_bits);
        for c in 0..state.num_chunks() {
            if c & bit == 0 || state.is_zero_chunk(c) {
                continue;
            }
            let src: Vec<qgpu_math::Complex64> = state.chunk(c).expect("dense chunk").to_vec();
            state.chunk_mut_or_alloc(c & !bit).copy_from_slice(&src);
            let cleared = state.chunk_mut_or_alloc(c);
            cleared.fill(qgpu_math::Complex64::ZERO);
            state.demote_if_zero(c);
        }
    }
}

/// Seeded end-of-circuit shot counts over a chunked state.
///
/// Shot `s` draws `unit_draw(seed, SALT_SAMPLE, s, trajectory)`; the
/// draws are sorted ascending and resolved in a single sequential CDF
/// pass in global index order, so `shots` samples cost one pass over the
/// state regardless of `shots`. Returns `(basis_state, count)` pairs
/// sorted by descending count, ties by ascending state.
///
/// Bit-reproducible: the draws are pure functions of the key and the
/// CDF accumulation is the partition-invariant sequential sum of the
/// module docs.
pub fn seeded_counts_chunked(
    state: &ChunkedState,
    shots: u64,
    seed: u64,
    trajectory: u64,
) -> Vec<(usize, u64)> {
    let mut draws: Vec<f64> = (0..shots)
        .map(|s| unit_draw(seed, SALT_SAMPLE, s, trajectory))
        .collect();
    draws.sort_by(f64::total_cmp);

    let mut counts: std::collections::BTreeMap<usize, u64> = std::collections::BTreeMap::new();
    let mut next = 0usize; // index into draws
    let mut acc = 0.0f64;
    let mut last_nonzero = 0usize;
    'pass: for c in 0..state.num_chunks() {
        let Some(amps) = state.chunk(c) else { continue };
        let base = c << state.chunk_bits();
        for (off, a) in amps.iter().enumerate() {
            let p = a.norm_sqr();
            if p == 0.0 {
                continue;
            }
            let idx = base | off;
            last_nonzero = idx;
            acc += p;
            let start = next;
            while next < draws.len() && draws[next] < acc {
                next += 1;
            }
            if next > start {
                *counts.entry(idx).or_insert(0) += (next - start) as u64;
            }
            if next == draws.len() {
                break 'pass;
            }
        }
    }
    // Draws past the accumulated norm (the norm is ≈1, not exactly 1)
    // land on the last populated state.
    if next < draws.len() {
        *counts.entry(last_nonzero).or_insert(0) += (draws.len() - next) as u64;
    }

    let mut v: Vec<(usize, u64)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// The most likely basis state and its probability.
pub fn most_likely(state: &StateVector) -> (usize, f64) {
    state
        .amps()
        .iter()
        .enumerate()
        .map(|(i, a)| (i, a.norm_sqr()))
        .fold(
            (0, 0.0),
            |best, cur| if cur.1 > best.1 { cur } else { best },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell() -> StateVector {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut s = StateVector::new_zero(2);
        s.run(&c);
        s
    }

    #[test]
    fn prob_one_is_bitwise_identical_across_thread_counts() {
        // Pins the fixed-order tree reduction: the marginal must not
        // depend on how many threads computed it, down to the last bit.
        let c = qgpu_circuit::generators::Benchmark::Qaoa.generate(15);
        let mut s = StateVector::new_zero(15);
        s.run(&c);
        for qubit in [0, 7, 14] {
            let serial = prob_one_parallel(&s, qubit, 1);
            assert_eq!(serial.to_bits(), prob_one(&s, qubit).to_bits());
            for threads in [2, 3, 4, 8] {
                let par = prob_one_parallel(&s, qubit, threads);
                assert_eq!(
                    serial.to_bits(),
                    par.to_bits(),
                    "qubit {qubit}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn prob_one_matches_naive_sum() {
        let c = qgpu_circuit::generators::Benchmark::Rqc.generate(12);
        let mut s = StateVector::new_zero(12);
        s.run(&c);
        for qubit in 0..12 {
            let naive: f64 = s
                .amps()
                .iter()
                .enumerate()
                .filter(|(i, _)| i & (1 << qubit) != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert!((prob_one(&s, qubit) - naive).abs() < 1e-12, "qubit {qubit}");
        }
    }

    #[test]
    fn bell_marginals_are_half() {
        let s = bell();
        assert!((prob_one(&s, 0) - 0.5).abs() < 1e-12);
        assert!((prob_one(&s, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_samples_are_correlated() {
        let s = bell();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let outcome = sample(&s, &mut rng);
            assert!(outcome == 0 || outcome == 3, "bell never measures 01/10");
        }
    }

    #[test]
    fn sample_counts_sum_to_shots() {
        let s = bell();
        let mut rng = StdRng::seed_from_u64(3);
        let counts = sample_counts(&s, 500, &mut rng);
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<usize>(), 500);
        // Roughly balanced between |00> and |11>.
        assert_eq!(counts.len(), 2);
        assert!(counts[0].1 > 150 && counts[0].1 < 350);
    }

    #[test]
    fn most_likely_of_basis_state() {
        let mut s = StateVector::new_zero(3);
        let mut c = Circuit::new(3);
        c.x(1);
        s.run(&c);
        assert_eq!(most_likely(&s), (2, 1.0));
    }

    #[test]
    fn deterministic_state_always_samples_same() {
        let s = StateVector::new_zero(4);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(sample(&s, &mut rng), 0);
        }
    }

    fn chunked_from(b: qgpu_circuit::generators::Benchmark, n: usize, bits: u32) -> ChunkedState {
        let mut s = StateVector::new_zero(n);
        s.run(&b.generate(n));
        ChunkedState::from_flat(&s, bits)
    }

    #[test]
    fn chunked_prob_matches_flat_at_every_partition() {
        use qgpu_circuit::generators::Benchmark;
        let mut flat = StateVector::new_zero(10);
        flat.run(&Benchmark::Rqc.generate(10));
        for bits in [2u32, 5, 8] {
            let cs = ChunkedState::from_flat(&flat, bits);
            for qubit in [0, 4, 9] {
                let p = prob_one_chunked(&cs, qubit);
                assert!(
                    (p - prob_one(&flat, qubit)).abs() < 1e-12,
                    "bits {bits}, qubit {qubit}"
                );
            }
        }
        // Partition invariance is bitwise, not just approximate.
        let a = prob_one_chunked(&ChunkedState::from_flat(&flat, 2), 6);
        let b = prob_one_chunked(&ChunkedState::from_flat(&flat, 7), 6);
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn collapse_renormalizes_and_zeroes_the_other_half() {
        use qgpu_circuit::generators::Benchmark;
        for bits in [2u32, 4] {
            let mut cs = chunked_from(Benchmark::Qft, 8, bits);
            for qubit in [1usize, 6] {
                let p1 = prob_one_chunked(&cs, qubit);
                collapse_chunked(&mut cs, qubit, true, p1);
                let after = prob_one_chunked(&cs, qubit);
                assert!((after - 1.0).abs() < 1e-10, "bits {bits} qubit {qubit}");
                let norm: f64 = cs.to_flat().amps().iter().map(|a| a.norm_sqr()).sum();
                assert!((norm - 1.0).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn collapse_is_bitwise_partition_invariant() {
        use qgpu_circuit::generators::Benchmark;
        let mut lo = chunked_from(Benchmark::Iqp, 9, 3);
        let mut hi = chunked_from(Benchmark::Iqp, 9, 7);
        for &(qubit, outcome) in &[(2usize, true), (8, false)] {
            let p_lo = prob_one_chunked(&lo, qubit);
            let p_hi = prob_one_chunked(&hi, qubit);
            assert_eq!(p_lo.to_bits(), p_hi.to_bits());
            let p = if outcome { p_lo } else { 1.0 - p_lo };
            collapse_chunked(&mut lo, qubit, outcome, p);
            collapse_chunked(&mut hi, qubit, outcome, p);
        }
        let (a, b) = (lo.to_flat(), hi.to_flat());
        for (x, y) in a.amps().iter().zip(b.amps()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn reset_moves_population_to_zero_branch() {
        use qgpu_circuit::generators::Benchmark;
        // Cover both layouts: qubit inside the chunk and in the chunk index.
        for (bits, qubit) in [(3u32, 1usize), (3, 7)] {
            let mut cs = chunked_from(Benchmark::Rqc, 8, bits);
            let p1 = prob_one_chunked(&cs, qubit);
            reset_chunked(&mut cs, qubit, true, p1);
            assert!(prob_one_chunked(&cs, qubit).abs() < 1e-12);
            let norm: f64 = cs.to_flat().amps().iter().map(|a| a.norm_sqr()).sum();
            assert!((norm - 1.0).abs() < 1e-10, "bits {bits} qubit {qubit}");
        }
    }

    #[test]
    fn reset_on_outcome_zero_only_collapses() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut s = StateVector::new_zero(2);
        s.run(&c);
        let mut cs = ChunkedState::from_flat(&s, 1);
        let p1 = prob_one_chunked(&cs, 0);
        reset_chunked(&mut cs, 0, false, 1.0 - p1);
        let flat = cs.to_flat();
        assert!((flat.amp(0).norm_sqr() - 1.0).abs() < 1e-10);
    }

    #[test]
    fn seeded_counts_sum_to_shots_and_replay() {
        use qgpu_circuit::generators::Benchmark;
        let cs = chunked_from(Benchmark::Qft, 8, 4);
        let counts = seeded_counts_chunked(&cs, 500, 42, 0);
        assert_eq!(counts.iter().map(|&(_, n)| n).sum::<u64>(), 500);
        assert_eq!(counts, seeded_counts_chunked(&cs, 500, 42, 0));
        assert_ne!(counts, seeded_counts_chunked(&cs, 500, 43, 0));
    }

    #[test]
    fn seeded_counts_are_partition_invariant() {
        use qgpu_circuit::generators::Benchmark;
        let lo = chunked_from(Benchmark::Iqp, 9, 2);
        let hi = chunked_from(Benchmark::Iqp, 9, 9);
        assert_eq!(
            seeded_counts_chunked(&lo, 256, 7, 3),
            seeded_counts_chunked(&hi, 256, 7, 3)
        );
    }

    #[test]
    fn seeded_counts_respect_support() {
        // Bell state: every shot must land on |00> or |11>.
        let s = bell();
        let cs = ChunkedState::from_flat(&s, 1);
        let counts = seeded_counts_chunked(&cs, 400, 9, 0);
        assert!(counts.iter().all(|&(idx, _)| idx == 0 || idx == 3));
        assert_eq!(counts.iter().map(|&(_, n)| n).sum::<u64>(), 400);
        // Roughly balanced.
        assert!(counts[0].1 > 120 && counts[0].1 < 280);
    }
}
