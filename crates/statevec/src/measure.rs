//! End-of-circuit measurement: probabilities and sampling.
//!
//! The paper's scope is measurement at the end of circuits (§II-B); this
//! module provides basis-state sampling and per-qubit marginals over a
//! final [`StateVector`].

use rand::Rng;

use crate::executor::ChunkExecutor;
use crate::state::StateVector;

/// Probability that measuring `qubit` yields 1.
///
/// Computed with the fixed-order tree reduction of
/// [`prob_one_parallel`] at one thread, so serial and parallel callers
/// agree bitwise.
///
/// # Panics
///
/// Panics if `qubit` is out of range.
///
/// # Examples
///
/// ```
/// use qgpu_statevec::{StateVector, measure};
/// use qgpu_circuit::{Gate, Operation};
///
/// let mut s = StateVector::new_zero(2);
/// s.apply(&Operation::new(Gate::H, vec![0]));
/// let p = measure::prob_one(&s, 0);
/// assert!((p - 0.5).abs() < 1e-12);
/// ```
pub fn prob_one(state: &StateVector, qubit: usize) -> f64 {
    prob_one_parallel(state, qubit, 1)
}

/// Multi-threaded [`prob_one`].
///
/// The reduction never accumulates in thread-completion order: partial
/// sums are cut at fixed block boundaries and combined with a
/// deterministic pairwise tree (see [`qgpu_math::reduce`]), so the
/// result is bitwise identical at every thread count.
///
/// # Panics
///
/// Panics if `qubit` is out of range or `threads == 0`.
pub fn prob_one_parallel(state: &StateVector, qubit: usize, threads: usize) -> f64 {
    assert!(qubit < state.num_qubits());
    let bit = 1usize << qubit;
    let amps = state.amps();
    ChunkExecutor::new(threads).reduce_f64(amps.len(), |r| {
        let mut acc = 0.0;
        for i in r {
            if i & bit != 0 {
                acc += amps[i].norm_sqr();
            }
        }
        acc
    })
}

/// Samples one basis-state outcome from the measurement distribution.
///
/// # Examples
///
/// ```
/// use qgpu_statevec::{StateVector, measure};
/// use rand::SeedableRng;
///
/// let s = StateVector::new_zero(3);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// assert_eq!(measure::sample(&s, &mut rng), 0); // |000> always measures 0
/// ```
pub fn sample<R: Rng + ?Sized>(state: &StateVector, rng: &mut R) -> usize {
    let r: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, a) in state.amps().iter().enumerate() {
        acc += a.norm_sqr();
        if r < acc {
            return i;
        }
    }
    state.len() - 1
}

/// Draws `shots` samples and returns `(basis_state, count)` pairs sorted
/// by descending count.
pub fn sample_counts<R: Rng + ?Sized>(
    state: &StateVector,
    shots: usize,
    rng: &mut R,
) -> Vec<(usize, usize)> {
    let mut counts: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
    for _ in 0..shots {
        *counts.entry(sample(state, rng)).or_insert(0) += 1;
    }
    let mut v: Vec<(usize, usize)> = counts.into_iter().collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

/// The most likely basis state and its probability.
pub fn most_likely(state: &StateVector) -> (usize, f64) {
    state
        .amps()
        .iter()
        .enumerate()
        .map(|(i, a)| (i, a.norm_sqr()))
        .fold(
            (0, 0.0),
            |best, cur| if cur.1 > best.1 { cur } else { best },
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::Circuit;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn bell() -> StateVector {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let mut s = StateVector::new_zero(2);
        s.run(&c);
        s
    }

    #[test]
    fn prob_one_is_bitwise_identical_across_thread_counts() {
        // Pins the fixed-order tree reduction: the marginal must not
        // depend on how many threads computed it, down to the last bit.
        let c = qgpu_circuit::generators::Benchmark::Qaoa.generate(15);
        let mut s = StateVector::new_zero(15);
        s.run(&c);
        for qubit in [0, 7, 14] {
            let serial = prob_one_parallel(&s, qubit, 1);
            assert_eq!(serial.to_bits(), prob_one(&s, qubit).to_bits());
            for threads in [2, 3, 4, 8] {
                let par = prob_one_parallel(&s, qubit, threads);
                assert_eq!(
                    serial.to_bits(),
                    par.to_bits(),
                    "qubit {qubit}, threads {threads}"
                );
            }
        }
    }

    #[test]
    fn prob_one_matches_naive_sum() {
        let c = qgpu_circuit::generators::Benchmark::Rqc.generate(12);
        let mut s = StateVector::new_zero(12);
        s.run(&c);
        for qubit in 0..12 {
            let naive: f64 = s
                .amps()
                .iter()
                .enumerate()
                .filter(|(i, _)| i & (1 << qubit) != 0)
                .map(|(_, a)| a.norm_sqr())
                .sum();
            assert!((prob_one(&s, qubit) - naive).abs() < 1e-12, "qubit {qubit}");
        }
    }

    #[test]
    fn bell_marginals_are_half() {
        let s = bell();
        assert!((prob_one(&s, 0) - 0.5).abs() < 1e-12);
        assert!((prob_one(&s, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_samples_are_correlated() {
        let s = bell();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..200 {
            let outcome = sample(&s, &mut rng);
            assert!(outcome == 0 || outcome == 3, "bell never measures 01/10");
        }
    }

    #[test]
    fn sample_counts_sum_to_shots() {
        let s = bell();
        let mut rng = StdRng::seed_from_u64(3);
        let counts = sample_counts(&s, 500, &mut rng);
        assert_eq!(counts.iter().map(|(_, c)| c).sum::<usize>(), 500);
        // Roughly balanced between |00> and |11>.
        assert_eq!(counts.len(), 2);
        assert!(counts[0].1 > 150 && counts[0].1 < 350);
    }

    #[test]
    fn most_likely_of_basis_state() {
        let mut s = StateVector::new_zero(3);
        let mut c = Circuit::new(3);
        c.x(1);
        s.run(&c);
        assert_eq!(most_likely(&s), (2, 1.0));
    }

    #[test]
    fn deterministic_state_always_samples_same() {
        let s = StateVector::new_zero(4);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(sample(&s, &mut rng), 0);
        }
    }
}
