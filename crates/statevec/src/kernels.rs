//! Low-level gate application kernels.
//!
//! Every kernel operates on a contiguous amplitude slice `amps` that
//! represents global indices `base .. base + amps.len()`. Passing the full
//! state vector with `base = 0` gives whole-vector semantics; passing a
//! chunk with its global base gives chunk-local semantics (diagonal gates
//! need the base to read qubit bits above the chunk boundary).
//!
//! Kernels for mixing gates require all referenced qubit positions to be
//! *local* (below `log2(amps.len())`); the chunked layer regroups chunks
//! so this always holds (the paper's Case 2 handling).

use qgpu_circuit::access::GateAction;
use qgpu_circuit::Matrix;
use qgpu_math::bits::{insert_zero_bit, insert_zero_bits};
use qgpu_math::Complex64;

/// Applies a diagonal action: `amps[off] *= dvec[s]` where `s` gathers the
/// bits of the *global* index `base + off` at `qubits`.
///
/// Works for any qubit positions, including those above the slice's local
/// range — that is exactly why diagonal gates never force chunk exchange.
///
/// # Panics
///
/// Panics if `dvec.len() != 2^qubits.len()`.
pub fn apply_diagonal(amps: &mut [Complex64], base: usize, qubits: &[usize], dvec: &[Complex64]) {
    assert_eq!(dvec.len(), 1 << qubits.len());
    match qubits.len() {
        1 => {
            let q = qubits[0];
            let (d0, d1) = (dvec[0], dvec[1]);
            for (off, amp) in amps.iter_mut().enumerate() {
                let bit = ((base + off) >> q) & 1;
                *amp *= if bit == 0 { d0 } else { d1 };
            }
        }
        2 => {
            let (q0, q1) = (qubits[0], qubits[1]);
            for (off, amp) in amps.iter_mut().enumerate() {
                let g = base + off;
                let s = ((g >> q0) & 1) | (((g >> q1) & 1) << 1);
                *amp *= dvec[s];
            }
        }
        _ => {
            for (off, amp) in amps.iter_mut().enumerate() {
                let g = base + off;
                let mut s = 0usize;
                for (bit, &q) in qubits.iter().enumerate() {
                    s |= ((g >> q) & 1) << bit;
                }
                *amp *= dvec[s];
            }
        }
    }
}

/// Applies a diagonal action by strided recursion instead of per-amplitude
/// bit gathering: the phase index is carried down a split over the qubit
/// positions (highest first), so each leaf is a contiguous run multiplied
/// by one constant — and leaves whose factor is *exactly* 1 are skipped
/// without touching their memory. This is the fast path for *merged*
/// diagonal kernels (gate fusion), where most table entries of a
/// controlled-phase product are exactly 1.
///
/// Every amplitude the kernel does touch is multiplied by the same factor
/// [`apply_diagonal`] would use, so results agree to the last bit except
/// for the sign of zeros on skipped identity runs (a multiply by `1+0i`
/// can flip `-0.0` to `0.0`). Callers that promise bit-equality with
/// per-gate execution must use [`apply_diagonal`]; the collapsed-kernel
/// path only promises tolerance-level agreement and thread-count
/// determinism, which this kernel preserves (per-amplitude work is
/// independent of how the slice is partitioned).
///
/// # Panics
///
/// Panics if `dvec.len() != 2^qubits.len()`, if `qubits` is empty or not
/// strictly ascending, or if `amps.len()` is not a multiple of
/// `2^(max qubit + 1)` (the slice must consist of whole aligned blocks —
/// callers split on block boundaries).
pub fn apply_diagonal_strided(amps: &mut [Complex64], qubits: &[usize], dvec: &[Complex64]) {
    assert_eq!(dvec.len(), 1 << qubits.len());
    assert!(!qubits.is_empty(), "strided diagonal needs qubits");
    assert!(
        qubits.windows(2).all(|w| w[0] < w[1]),
        "qubits must be strictly ascending"
    );
    let top_block = 2usize << qubits[qubits.len() - 1];
    assert_eq!(
        amps.len() % top_block,
        0,
        "slice must hold whole aligned blocks"
    );
    diagonal_strided_rec(amps, qubits, qubits.len(), 0, dvec);
}

fn diagonal_strided_rec(
    amps: &mut [Complex64],
    qubits: &[usize],
    k: usize,
    s: usize,
    dvec: &[Complex64],
) {
    if k == 0 {
        let d = dvec[s];
        if d.re == 1.0 && d.im == 0.0 {
            return; // exact identity: leave the run untouched
        }
        for a in amps {
            *a *= d;
        }
        return;
    }
    // The remaining qubits sit at the bottom of the index space: the low
    // `k` offset bits *are* the low `k` phase-index bits — one table
    // lookup per amplitude, no recursion.
    if qubits[k - 1] == k - 1 {
        let m = 1usize << k;
        for chunk in amps.chunks_mut(m) {
            for (j, a) in chunk.iter_mut().enumerate() {
                let d = dvec[s | j];
                if d.re != 1.0 || d.im != 0.0 {
                    *a *= d;
                }
            }
        }
        return;
    }
    let half = 1usize << qubits[k - 1];
    for chunk in amps.chunks_mut(half << 1) {
        let (lo, hi) = chunk.split_at_mut(half);
        diagonal_strided_rec(lo, qubits, k - 1, s, dvec);
        diagonal_strided_rec(hi, qubits, k - 1, s | (1 << (k - 1)), dvec);
    }
}

/// Applies a dense single-qubit matrix to local target `target`, restricted
/// to indices where all local `controls` bits are 1.
///
/// # Panics
///
/// Panics if `amps.len()` is not a power of two, or if `target`/`controls`
/// are not local to the slice.
pub fn apply_controlled_1q(amps: &mut [Complex64], controls: &[usize], target: usize, m: &Matrix) {
    assert!(amps.len().is_power_of_two());
    let local_bits = amps.len().trailing_zeros();
    assert!((target as u32) < local_bits, "target must be local");
    assert!(
        controls.iter().all(|&c| (c as u32) < local_bits),
        "controls must be local"
    );
    let (m00, m01, m10, m11) = (m.get(0, 0), m.get(0, 1), m.get(1, 0), m.get(1, 1));

    if controls.is_empty() {
        let pairs = amps.len() >> 1;
        for c in 0..pairs {
            let i0 = insert_zero_bit(c, target as u32);
            let i1 = i0 | (1 << target);
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = m00 * a0 + m01 * a1;
            amps[i1] = m10 * a0 + m11 * a1;
        }
    } else {
        // Enumerate indices with target bit 0 and all control bits 1.
        let mut positions: Vec<u32> = controls.iter().map(|&c| c as u32).collect();
        positions.push(target as u32);
        positions.sort_unstable();
        let control_mask: usize = controls.iter().map(|&c| 1usize << c).sum();
        let count = amps.len() >> positions.len();
        for c in 0..count {
            let i0 = insert_zero_bits(c, &positions) | control_mask;
            let i1 = i0 | (1 << target);
            let a0 = amps[i0];
            let a1 = amps[i1];
            amps[i0] = m00 * a0 + m01 * a1;
            amps[i1] = m10 * a0 + m11 * a1;
        }
    }
}

/// Applies a dense matrix over `mixing` local qubits (matrix bit order =
/// `mixing` order), restricted to indices where all local `controls` bits
/// are 1.
///
/// # Panics
///
/// Panics if the matrix dimension does not match `2^mixing.len()`, or if
/// any qubit is not local to the slice.
pub fn apply_controlled_dense(
    amps: &mut [Complex64],
    controls: &[usize],
    mixing: &[usize],
    m: &Matrix,
) {
    let k = mixing.len();
    assert_eq!(m.dim(), 1 << k, "matrix dimension mismatch");
    if k == 1 {
        return apply_controlled_1q(amps, controls, mixing[0], m);
    }
    assert!(amps.len().is_power_of_two());
    let local_bits = amps.len().trailing_zeros();
    let mut positions: Vec<u32> = mixing
        .iter()
        .chain(controls.iter())
        .map(|&q| q as u32)
        .collect();
    assert!(
        positions.iter().all(|&p| p < local_bits),
        "qubits must be local"
    );
    positions.sort_unstable();
    let control_mask: usize = controls.iter().map(|&c| 1usize << c).sum();

    let dim = 1usize << k;
    // Offset of each matrix basis index within the amplitude array.
    let offsets: Vec<usize> = (0..dim)
        .map(|s| {
            let mut off = 0usize;
            for (bit, &q) in mixing.iter().enumerate() {
                off |= ((s >> bit) & 1) << q;
            }
            off
        })
        .collect();

    let count = amps.len() >> positions.len();
    let mut gathered = vec![Complex64::ZERO; dim];
    for c in 0..count {
        let ibase = insert_zero_bits(c, &positions) | control_mask;
        for (s, g) in gathered.iter_mut().enumerate() {
            *g = amps[ibase + offsets[s]];
        }
        for (r, &off) in offsets.iter().enumerate() {
            let mut acc = Complex64::ZERO;
            for (s, &g) in gathered.iter().enumerate() {
                acc = m.get(r, s).mul_add(g, acc);
            }
            amps[ibase + off] = acc;
        }
    }
}

/// Applies a full [`GateAction`] to a slice with the given global base.
///
/// For mixing actions, every control and mixing qubit must be local to the
/// slice (the chunked layer guarantees this by grouping chunks).
///
/// # Panics
///
/// Panics if a mixing action references a non-local qubit.
pub fn apply_action(amps: &mut [Complex64], base: usize, action: &GateAction) {
    match action {
        GateAction::Diagonal { qubits, dvec } => apply_diagonal(amps, base, qubits, dvec),
        GateAction::ControlledDense {
            controls,
            mixing,
            matrix,
        } => {
            // High controls (at or above the local range) select whole
            // slices: if the base has the control bit 0, nothing happens.
            let local_bits = amps.len().trailing_zeros() as usize;
            let mut local_controls = Vec::with_capacity(controls.len());
            for &c in controls {
                if c < local_bits {
                    local_controls.push(c);
                } else if (base >> c) & 1 == 0 {
                    return; // control bit is 0 for this whole slice
                }
            }
            apply_controlled_dense(amps, &local_controls, mixing, matrix);
        }
    }
}

/// Number of floating-point operations a gate action performs per
/// *processed* amplitude pair/group — used by the device timing model.
///
/// A complex multiply counts 6 flops, an add 2.
pub fn action_flops_per_group(action: &GateAction) -> u64 {
    match action {
        GateAction::Diagonal { .. } => 6,
        GateAction::ControlledDense { matrix, .. } => {
            let dim = matrix.dim() as u64;
            // dim outputs, each a dot product of dim: mul (6) + add (2).
            dim * dim * 8
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::access::GateAction;
    use qgpu_circuit::{Gate, Operation};

    fn zero_state(n: usize) -> Vec<Complex64> {
        let mut v = vec![Complex64::ZERO; 1 << n];
        v[0] = Complex64::ONE;
        v
    }

    fn action(g: Gate, qs: &[usize]) -> GateAction {
        GateAction::from_operation(&Operation::new(g, qs.to_vec()))
    }

    #[test]
    fn h_on_zero_gives_plus() {
        let mut amps = zero_state(1);
        apply_action(&mut amps, 0, &action(Gate::H, &[0]));
        let h = std::f64::consts::FRAC_1_SQRT_2;
        assert!(amps[0].approx_eq(Complex64::from_real(h), 1e-12));
        assert!(amps[1].approx_eq(Complex64::from_real(h), 1e-12));
    }

    #[test]
    fn x_flips_basis_state() {
        let mut amps = zero_state(3);
        apply_action(&mut amps, 0, &action(Gate::X, &[1]));
        assert!(amps[0].is_zero());
        assert!(amps[2].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn cx_needs_control_set() {
        let mut amps = zero_state(2);
        apply_action(&mut amps, 0, &action(Gate::Cx, &[0, 1]));
        // |00> unchanged.
        assert!(amps[0].approx_eq(Complex64::ONE, 1e-12));
        // Now set control: X(0), then CX.
        apply_action(&mut amps, 0, &action(Gate::X, &[0]));
        apply_action(&mut amps, 0, &action(Gate::Cx, &[0, 1]));
        assert!(amps[3].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn diagonal_with_high_qubit_uses_base() {
        // A 2-qubit slice representing global indices 4..8 of a 3-qubit
        // state; Z on qubit 2 must negate everything (bit 2 of base is 1).
        let mut amps = vec![Complex64::ONE; 4];
        apply_action(&mut amps, 4, &action(Gate::Z, &[2]));
        for a in &amps {
            assert!(a.approx_eq(-Complex64::ONE, 1e-12));
        }
        // Base 0: bit 2 is 0 everywhere, so Z does nothing.
        let mut amps = vec![Complex64::ONE; 4];
        apply_action(&mut amps, 0, &action(Gate::Z, &[2]));
        for a in &amps {
            assert!(a.approx_eq(Complex64::ONE, 1e-12));
        }
    }

    #[test]
    fn high_control_selects_slice() {
        // CX with control qubit 2 on a slice with base 0 (control bit 0):
        // no-op. With base 4 (control bit 1): X on target.
        let act = action(Gate::Cx, &[2, 0]);
        let mut amps = zero_state(2);
        apply_action(&mut amps, 0, &act);
        assert!(amps[0].approx_eq(Complex64::ONE, 1e-12));
        let mut amps = zero_state(2);
        apply_action(&mut amps, 4, &act);
        assert!(amps[1].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut amps = zero_state(2);
        amps[1] = Complex64::new(0.6, 0.0); // |01>
        amps[0] = Complex64::new(0.8, 0.0);
        apply_action(&mut amps, 0, &action(Gate::Swap, &[0, 1]));
        assert!(amps[2].approx_eq(Complex64::new(0.6, 0.0), 1e-12)); // -> |10>
        assert!(amps[0].approx_eq(Complex64::new(0.8, 0.0), 1e-12));
    }

    #[test]
    fn dense_matches_composition_of_gates() {
        // swap = cx(a,b) cx(b,a) cx(a,b): verify the dense 2-qubit kernel
        // against three 1-qubit controlled kernels.
        let mut rng_state = 0x12345u64;
        let mut rnd = || {
            // xorshift
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            (rng_state as f64 / u64::MAX as f64) - 0.5
        };
        let mut a: Vec<Complex64> = (0..16).map(|_| Complex64::new(rnd(), rnd())).collect();
        let mut b = a.clone();
        apply_action(&mut a, 0, &action(Gate::Swap, &[1, 3]));
        apply_action(&mut b, 0, &action(Gate::Cx, &[1, 3]));
        apply_action(&mut b, 0, &action(Gate::Cx, &[3, 1]));
        apply_action(&mut b, 0, &action(Gate::Cx, &[1, 3]));
        for (x, y) in a.iter().zip(b.iter()) {
            assert!(x.approx_eq(*y, 1e-12));
        }
    }

    #[test]
    fn ccx_only_fires_with_both_controls() {
        let mut amps = zero_state(3);
        amps[0] = Complex64::ZERO;
        amps[0b011] = Complex64::ONE; // both controls set, target 0
        apply_action(&mut amps, 0, &action(Gate::Ccx, &[0, 1, 2]));
        assert!(amps[0b111].approx_eq(Complex64::ONE, 1e-12));
    }

    #[test]
    fn norm_preserved_by_unitaries() {
        let mut amps = zero_state(4);
        for (g, qs) in [
            (Gate::H, vec![0]),
            (Gate::Cx, vec![0, 1]),
            (Gate::Ry(0.77), vec![2]),
            (Gate::Cp(1.1), vec![1, 3]),
            (Gate::Ccx, vec![0, 1, 2]),
            (Gate::Swap, vec![2, 3]),
        ] {
            apply_action(&mut amps, 0, &action(g, &qs));
        }
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn flop_estimates() {
        assert_eq!(action_flops_per_group(&action(Gate::Z, &[0])), 6);
        assert_eq!(action_flops_per_group(&action(Gate::H, &[0])), 32);
        assert_eq!(action_flops_per_group(&action(Gate::Swap, &[0, 1])), 128);
    }

    #[test]
    #[should_panic(expected = "target must be local")]
    fn mixing_high_qubit_panics() {
        let mut amps = zero_state(2);
        apply_action(&mut amps, 0, &action(Gate::H, &[5]));
    }

    /// Dense synthetic amplitudes with no zero components, so the
    /// strided and gather diagonal kernels must agree to the last bit
    /// (zero signs are the only place they may differ).
    fn dense_amps(n: usize) -> Vec<Complex64> {
        (0..1usize << n)
            .map(|i| Complex64::new(0.3 + 0.001 * i as f64, -0.2 + 0.0007 * i as f64))
            .collect()
    }

    /// A merged-style phase table: CP-like (mostly exact 1s) when `k > 1`,
    /// with a couple of genuine phases mixed in.
    fn mixed_dvec(k: usize) -> Vec<Complex64> {
        (0..1usize << k)
            .map(|s| {
                if s == (1 << k) - 1 {
                    Complex64::cis(0.37)
                } else if s == 1 {
                    Complex64::new(-1.0, 0.0)
                } else {
                    Complex64::ONE
                }
            })
            .collect()
    }

    #[test]
    fn strided_diagonal_matches_gather_kernel_bitwise() {
        let n = 8;
        for qubits in [
            vec![0usize],
            vec![5],
            vec![0, 1, 2],
            vec![2, 5],
            vec![1, 3, 6],
            vec![0, 4, 7],
            vec![0, 1, 2, 3, 4],
        ] {
            let dvec = mixed_dvec(qubits.len());
            let mut a = dense_amps(n);
            let mut b = dense_amps(n);
            apply_diagonal(&mut a, 0, &qubits, &dvec);
            apply_diagonal_strided(&mut b, &qubits, &dvec);
            for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "qubits {qubits:?}, amp {i}: {x:?} vs {y:?}"
                );
            }
        }
    }

    #[test]
    fn strided_diagonal_skips_identity_runs_untouched() {
        // An all-ones table must leave every amplitude bit-identical —
        // including the sign of zeros, because skipped runs are never
        // multiplied at all.
        let mut amps = dense_amps(6);
        amps[17] = Complex64::new(-0.0, 0.0);
        let before = amps.clone();
        let dvec = vec![Complex64::ONE; 8];
        apply_diagonal_strided(&mut amps, &[1, 3, 5], &dvec);
        for (x, y) in amps.iter().zip(before.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn strided_diagonal_rejects_unsorted_qubits() {
        let mut amps = dense_amps(4);
        apply_diagonal_strided(&mut amps, &[3, 1], &[Complex64::ONE; 4]);
    }

    #[test]
    #[should_panic(expected = "whole aligned blocks")]
    fn strided_diagonal_rejects_misaligned_slice() {
        // 8 amplitudes cannot hold a whole block spanning qubit 3.
        let mut amps = dense_amps(3);
        apply_diagonal_strided(&mut amps, &[3], &[Complex64::ONE; 2]);
    }
}
