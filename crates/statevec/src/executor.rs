//! Shared parallel executor for gate kernels over disjoint chunks.
//!
//! [`ChunkExecutor`] is the one place threading lives: every functional
//! path — the flat comparators, the chunked engines, and the reduction
//! helpers in [`crate::measure`] / [`crate::observable`] — asks it to
//! spread work over a crossbeam-scoped worker pool. Each worker owns a
//! disjoint set of amplitudes (distinct chunks, distinct blocks, or
//! distinct compressed-index ranges), so no synchronization is needed
//! beyond the scope join.
//!
//! # Determinism
//!
//! The executor guarantees *bit-exact* results at every thread count:
//!
//! * gate application is embarrassingly per-amplitude — partitioning the
//!   index space differently changes which core performs an operation,
//!   never the operation itself, so parallel application is bitwise
//!   identical to serial;
//! * fused runs are replayed member-by-member inside each chunk/block
//!   visit (exact replay), performing the same floating-point ops in the
//!   same per-amplitude order as the unfused circuit;
//! * reductions never accumulate in completion order: block partials are
//!   cut at fixed [`qgpu_math::reduce::REDUCE_BLOCK`] boundaries that
//!   depend only on the input length, and combined with a deterministic
//!   pairwise tree ([`qgpu_math::reduce::pairwise_sum`]).

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use qgpu_circuit::access::GateAction;
use qgpu_circuit::Matrix;
use qgpu_faults::{FaultInjector, FaultSite, SimError};
use qgpu_math::bits::insert_zero_bits;
use qgpu_math::reduce;
use qgpu_math::Complex64;
use qgpu_obs::{span_opt, Recorder, Stage, Track};

use crate::chunked::ChunkedState;
use crate::kernels;

/// Below this many amplitudes thread-spawn overhead dominates and the
/// executor falls back to the serial path (which computes identical bits).
const MIN_PARALLEL: usize = 1 << 14;

/// Default block size (in qubits) for cache-blocked flat runs: 2^13
/// amplitudes = 128 KiB, sized to sit in L2 while a fused run makes
/// several passes over the block.
const FLAT_BLOCK_BITS: u32 = 13;

/// Raw amplitude pointer that can cross thread boundaries.
///
/// Safety: every spawn site hands each worker a disjoint set of
/// amplitudes (distinct chunks, blocks, or compressed-index ranges).
#[derive(Clone, Copy)]
struct AmpPtr(*mut Complex64);
unsafe impl Send for AmpPtr {}
unsafe impl Sync for AmpPtr {}

/// A worker pool applying gate kernels across disjoint chunks in
/// parallel.
///
/// # Examples
///
/// ```
/// use qgpu_statevec::{ChunkExecutor, StateVector};
/// use qgpu_circuit::{access::GateAction, Gate, Operation};
///
/// let mut s = StateVector::new_zero(15);
/// let h = GateAction::from_operation(&Operation::new(Gate::H, vec![3]));
/// ChunkExecutor::new(4).apply_flat(s.amps_mut(), &h);
/// assert!((s.norm() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct ChunkExecutor {
    threads: usize,
    /// When set, workers record wall-clock spans and queue-occupancy
    /// histograms into it (see [`ChunkExecutor::with_recorder`]).
    recorder: Option<Arc<Recorder>>,
    /// When set, the fault injector may kill workers at dispatch entry
    /// (see [`ChunkExecutor::with_faults`]).
    faults: Option<Arc<FaultInjector>>,
    /// Monotonic dispatch index shared across clones; the injector's
    /// worker-death decisions key off it, so a given seed kills the same
    /// workers of the same dispatches on every run.
    dispatches: Arc<AtomicU64>,
}

impl ChunkExecutor {
    /// Creates an executor using up to `threads` workers.
    ///
    /// The pool is clamped to the machine's available parallelism:
    /// oversubscribing cores only adds spawn and context-switch overhead,
    /// and the aligned partitioning makes results bitwise identical at
    /// every worker count, so the clamp changes wall-clock only.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let cores = std::thread::available_parallelism().map_or(threads, |n| n.get());
        ChunkExecutor {
            threads: threads.min(cores),
            recorder: None,
            faults: None,
            dispatches: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Creates an executor with *exactly* `threads` workers, bypassing
    /// the hardware clamp of [`ChunkExecutor::new`]. Results are
    /// identical either way; this exists so the multi-worker partitioning
    /// paths can be exercised even on machines with few cores.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_exact_threads(threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        ChunkExecutor {
            threads,
            recorder: None,
            faults: None,
            dispatches: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Attaches an observability recorder: each spawned worker records a
    /// [`Track::Worker`] span around its share of every dispatch, and the
    /// `worker.queue` histogram tracks how many work items each worker
    /// received. Without a recorder the instrumentation is a no-op (no
    /// clock reads).
    pub fn with_recorder(mut self, recorder: Arc<Recorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Attaches a fault injector: chunk dispatches
    /// ([`ChunkExecutor::try_apply_local_run`],
    /// [`ChunkExecutor::try_apply_group_runs`]) consult it at worker
    /// spawn time and may lose workers to injected deaths — which the
    /// dispatch then recovers from by re-executing the dead workers'
    /// (untouched) pieces serially. Without an injector the consult is a
    /// branch on `None`.
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The effective worker count (after the hardware clamp).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies one action to a flat amplitude slice, splitting the
    /// compressed pair-index space over the workers.
    ///
    /// Semantically identical to [`crate::kernels::apply_action`] with
    /// `base = 0`, and bitwise identical at every thread count; small
    /// inputs fall back to the single-threaded kernel.
    ///
    /// # Panics
    ///
    /// Panics if the action references a qubit outside the state.
    pub fn apply_flat(&self, amps: &mut [Complex64], action: &GateAction) {
        assert!(amps.len().is_power_of_two());
        if self.threads == 1 || amps.len() < MIN_PARALLEL {
            return kernels::apply_action(amps, 0, action);
        }
        match action {
            GateAction::Diagonal { qubits, dvec } => {
                let per = amps.len().div_ceil(self.threads);
                let rec = self.recorder.as_deref();
                crossbeam::scope(|scope| {
                    for (t, piece) in amps.chunks_mut(per).enumerate() {
                        let base = t * per;
                        scope.spawn(move |_| {
                            let _g = span_opt(rec, Track::Worker(t), Stage::Update, "worker.diag");
                            kernels::apply_diagonal(piece, base, qubits, dvec);
                        });
                    }
                })
                .expect("worker thread panicked");
            }
            GateAction::ControlledDense {
                controls,
                mixing,
                matrix,
            } => {
                let local_bits = amps.len().trailing_zeros() as usize;
                for &q in controls.iter().chain(mixing.iter()) {
                    assert!(q < local_bits, "qubit {q} outside state");
                }
                self.dense_over_ranges(amps, controls, mixing, matrix);
            }
        }
    }

    /// Applies a (merged) diagonal over a flat state with the strided
    /// skip-identity kernel ([`kernels::apply_diagonal_strided`]): the
    /// collapsed-execution fast path, one constant multiply per touched
    /// amplitude and no memory traffic for exact-identity runs.
    ///
    /// Workers split on aligned whole-block boundaries (a block spans the
    /// highest qubit), so per-amplitude arithmetic — and therefore the
    /// result, bit for bit — is independent of the thread count.
    ///
    /// # Panics
    ///
    /// Panics if `qubits` is empty, contains duplicates, references a
    /// qubit outside the state, or `dvec.len() != 2^qubits.len()`.
    pub fn apply_flat_diagonal(
        &self,
        amps: &mut [Complex64],
        qubits: &[usize],
        dvec: &[Complex64],
    ) {
        assert!(amps.len().is_power_of_two());
        assert!(!qubits.is_empty(), "strided diagonal needs qubits");
        // Gate actions list qubits in gate order (a controlled phase may
        // put the control above the target); the strided kernel wants
        // ascending positions, so sort and permute the table to match —
        // a diagonal is invariant under qubit relabeling done this way.
        let sorted_qubits: Vec<usize>;
        let sorted_dvec: Vec<Complex64>;
        let (qubits, dvec) = if qubits.windows(2).all(|w| w[0] < w[1]) {
            (qubits, dvec)
        } else {
            let mut order: Vec<usize> = (0..qubits.len()).collect();
            order.sort_unstable_by_key(|&i| qubits[i]);
            sorted_qubits = order.iter().map(|&i| qubits[i]).collect();
            sorted_dvec = (0..dvec.len())
                .map(|s| {
                    let mut old = 0usize;
                    for (j, &i) in order.iter().enumerate() {
                        old |= ((s >> j) & 1) << i;
                    }
                    dvec[old]
                })
                .collect();
            (sorted_qubits.as_slice(), sorted_dvec.as_slice())
        };
        let top = *qubits.last().expect("strided diagonal needs qubits");
        assert!(1usize << top < amps.len(), "qubit {top} outside state");
        let block = 2usize << top;
        let nblocks = amps.len() / block;
        if self.threads == 1 || nblocks < 2 || amps.len() < MIN_PARALLEL {
            return kernels::apply_diagonal_strided(amps, qubits, dvec);
        }
        let per = nblocks.div_ceil(self.threads) * block;
        let rec = self.recorder.as_deref();
        crossbeam::scope(|scope| {
            for (t, piece) in amps.chunks_mut(per).enumerate() {
                scope.spawn(move |_| {
                    let _g = span_opt(rec, Track::Worker(t), Stage::Update, "worker.diag");
                    kernels::apply_diagonal_strided(piece, qubits, dvec);
                });
            }
        })
        .expect("worker thread panicked");
    }

    /// Splits the compressed index space of a dense gate over the workers.
    fn dense_over_ranges(
        &self,
        amps: &mut [Complex64],
        controls: &[usize],
        mixing: &[usize],
        matrix: &Matrix,
    ) {
        let mut positions: Vec<u32> = mixing
            .iter()
            .chain(controls.iter())
            .map(|&q| q as u32)
            .collect();
        positions.sort_unstable();
        let control_mask: usize = controls.iter().map(|&c| 1usize << c).sum();
        let dim = matrix.dim();
        let offsets: Vec<usize> = (0..dim)
            .map(|s| {
                let mut off = 0usize;
                for (bit, &q) in mixing.iter().enumerate() {
                    off |= ((s >> bit) & 1) << q;
                }
                off
            })
            .collect();
        let count = amps.len() >> positions.len();
        let per = count.div_ceil(self.threads);
        let ptr = AmpPtr(amps.as_mut_ptr());
        let rec = self.recorder.as_deref();
        crossbeam::scope(|scope| {
            for t in 0..self.threads {
                let lo = t * per;
                let hi = ((t + 1) * per).min(count);
                if lo >= hi {
                    break;
                }
                let positions = &positions;
                let offsets = &offsets;
                scope.spawn(move |_| {
                    let _g = span_opt(rec, Track::Worker(t), Stage::Update, "worker.dense");
                    let ptr = ptr; // move the Send wrapper
                    let mut gathered = vec![Complex64::ZERO; dim];
                    for c in lo..hi {
                        let ibase = insert_zero_bits(c, positions) | control_mask;
                        if dim == 2 {
                            // Fast path for single-qubit gates.
                            let i0 = ibase + offsets[0];
                            let i1 = ibase + offsets[1];
                            unsafe {
                                let a0 = *ptr.0.add(i0);
                                let a1 = *ptr.0.add(i1);
                                *ptr.0.add(i0) = matrix.get(0, 0) * a0 + matrix.get(0, 1) * a1;
                                *ptr.0.add(i1) = matrix.get(1, 0) * a0 + matrix.get(1, 1) * a1;
                            }
                        } else {
                            unsafe {
                                for (s, g) in gathered.iter_mut().enumerate() {
                                    *g = *ptr.0.add(ibase + offsets[s]);
                                }
                                for (r, &off) in offsets.iter().enumerate() {
                                    let mut acc = Complex64::ZERO;
                                    for (s, &g) in gathered.iter().enumerate() {
                                        acc = matrix.get(r, s).mul_add(g, acc);
                                    }
                                    *ptr.0.add(ibase + off) = acc;
                                }
                            }
                        }
                    }
                });
            }
        })
        .expect("worker thread panicked");
    }

    /// Replays a fused run over a flat state in cache-sized blocks: each
    /// block is brought in once and every member action is applied to it
    /// before moving on, so the state makes one memory pass per *run*
    /// instead of one per gate.
    ///
    /// Bitwise identical to applying the actions one by one over the whole
    /// state (per-amplitude arithmetic is unchanged; only the visit order
    /// differs), at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if an action references a qubit outside the state.
    pub fn apply_flat_run(&self, amps: &mut [Complex64], actions: &[GateAction]) {
        assert!(amps.len().is_power_of_two());
        match actions {
            [] => return,
            [single] => return self.apply_flat(amps, single),
            _ => {}
        }
        let n_bits = amps.len().trailing_zeros();
        // Dense mixing qubits must be local to a block; raise the block
        // size to cover the highest one. (High *controls* are fine: the
        // kernel checks them against the block base.)
        let mut block_bits = FLAT_BLOCK_BITS;
        for a in actions {
            for &q in a.mixing_qubits() {
                block_bits = block_bits.max(q as u32 + 1);
            }
        }
        let block_bits = block_bits.min(n_bits);
        let block_len = 1usize << block_bits;
        let num_blocks = amps.len() >> block_bits;

        fn run_blocks(
            piece: &mut [Complex64],
            base: usize,
            block_len: usize,
            actions: &[GateAction],
        ) {
            for (i, block) in piece.chunks_mut(block_len).enumerate() {
                let bbase = base + i * block_len;
                for a in actions {
                    kernels::apply_action(block, bbase, a);
                }
            }
        }

        if self.threads == 1 || num_blocks <= 1 || amps.len() < MIN_PARALLEL {
            return run_blocks(amps, 0, block_len, actions);
        }
        let per = num_blocks.div_ceil(self.threads) << block_bits;
        let rec = self.recorder.as_deref();
        crossbeam::scope(|scope| {
            for (t, piece) in amps.chunks_mut(per).enumerate() {
                scope.spawn(move |_| {
                    let _g = span_opt(rec, Track::Worker(t), Stage::Update, "worker.run");
                    run_blocks(piece, t * per, block_len, actions)
                });
            }
        })
        .expect("worker thread panicked");
    }

    /// Applies a fused run to the listed chunks (Case 1: every dense
    /// mixing qubit below the chunk boundary), visiting each dense chunk
    /// once and replaying the member actions inside the visit. Sparse
    /// chunks are skipped, like [`ChunkedState::apply_local`].
    ///
    /// Chunks are distributed over the workers; results are bitwise
    /// identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if an action has a mixing qubit at or above the boundary,
    /// or if a worker thread panics (see
    /// [`ChunkExecutor::try_apply_local_run`] for the non-panicking form).
    pub fn apply_local_run(
        &self,
        state: &mut ChunkedState,
        actions: &[GateAction],
        chunks: &[usize],
    ) {
        self.try_apply_local_run(state, actions, chunks)
            .expect("worker thread panicked");
    }

    /// Fallible form of [`ChunkExecutor::apply_local_run`]: a genuine
    /// worker panic surfaces as [`SimError::WorkerLost`] instead of
    /// aborting the caller, and injected worker deaths (see
    /// [`ChunkExecutor::with_faults`]) are recovered by re-executing the
    /// dead workers' untouched pieces serially — bit-exactly, since a
    /// killed worker exits before mutating anything. Returns the number
    /// of workers recovered this dispatch.
    ///
    /// # Panics
    ///
    /// Panics if an action has a mixing qubit at or above the boundary
    /// (a caller contract violation, not a runtime fault).
    pub fn try_apply_local_run(
        &self,
        state: &mut ChunkedState,
        actions: &[GateAction],
        chunks: &[usize],
    ) -> Result<u64, SimError> {
        let chunk_bits = state.chunk_bits();
        for a in actions {
            assert!(
                a.mixing_qubits().iter().all(|&q| (q as u32) < chunk_bits),
                "apply_local_run called with a high mixing qubit"
            );
        }
        // Collect (global base, pointer, length) of the dense chunks. The
        // boxes backing them are stable, so the pointers stay valid for
        // the whole run.
        let chunk_len = state.chunk_len();
        let mut work: Vec<(usize, AmpPtr)> = Vec::with_capacity(chunks.len());
        for &c in chunks {
            if state.is_zero_chunk(c) {
                continue;
            }
            let slice = state.chunk_mut_or_alloc(c);
            work.push((c << chunk_bits, AmpPtr(slice.as_mut_ptr())));
        }

        let run = |items: &[(usize, AmpPtr)]| {
            for &(base, ptr) in items {
                let slice = unsafe { std::slice::from_raw_parts_mut(ptr.0, chunk_len) };
                for a in actions {
                    kernels::apply_action(slice, base, a);
                }
            }
        };
        if self.threads == 1 || work.len() <= 1 || work.len() * chunk_len < MIN_PARALLEL {
            run(&work);
            return Ok(0);
        }
        let per = work.len().div_ceil(self.threads);
        self.run_dispatch(&work, per, "apply_local_run", "worker.local", &|piece| {
            run(piece)
        })
    }

    /// Applies a fused run to chunk groups (Case 2: a mixing qubit at or
    /// above the boundary). Each group is gathered into a scratch buffer
    /// once, every member action is applied with qubit positions remapped
    /// into scratch coordinates, and the group is scattered back —
    /// generalizing [`ChunkedState::apply_group`] from one gate to a run.
    ///
    /// Groups are distributed over the workers (each group's scratch is
    /// worker-local); results are bitwise identical at every thread
    /// count. Sparse members that remain all-zero after the run stay
    /// sparse.
    ///
    /// # Panics
    ///
    /// Panics if a group's size is not `2^high_mixing.len()`, if a dense
    /// member mixes a high qubit not listed in `high_mixing`, or if a
    /// worker thread panics (see
    /// [`ChunkExecutor::try_apply_group_runs`] for the non-panicking
    /// form).
    pub fn apply_group_runs(
        &self,
        state: &mut ChunkedState,
        actions: &[GateAction],
        groups: &[&[usize]],
        high_mixing: &[usize],
    ) {
        self.try_apply_group_runs(state, actions, groups, high_mixing)
            .expect("worker thread panicked");
    }

    /// Fallible form of [`ChunkExecutor::apply_group_runs`]: worker
    /// panics surface as [`SimError::WorkerLost`], injected worker
    /// deaths are recovered serially (a group is processed entirely by
    /// one worker, so a killed worker leaves its groups untouched).
    /// Returns the number of workers recovered this dispatch.
    ///
    /// # Panics
    ///
    /// Panics if a group's size is not `2^high_mixing.len()` (a caller
    /// contract violation, not a runtime fault).
    pub fn try_apply_group_runs(
        &self,
        state: &mut ChunkedState,
        actions: &[GateAction],
        groups: &[&[usize]],
        high_mixing: &[usize],
    ) -> Result<u64, SimError> {
        let chunk_bits = state.chunk_bits();
        let chunk_len = state.chunk_len();
        let hm = high_mixing.len();
        let prepared: Vec<Prepared> = actions
            .iter()
            .map(|a| Prepared::build(a, chunk_bits, high_mixing))
            .collect();

        // Select surviving groups and speculatively materialize their
        // members so workers can write without allocation. Previously
        // sparse members are demoted again after the run if still zero.
        struct GroupWork {
            anchor: usize,
            members: Vec<(usize, AmpPtr, bool)>, // (chunk, ptr, was_sparse)
        }
        let mut work: Vec<GroupWork> = Vec::new();
        for &group in groups {
            assert_eq!(group.len(), 1 << hm, "group size must be 2^high_mixing");
            if group.iter().all(|&m| state.is_zero_chunk(m)) {
                continue;
            }
            let members = group
                .iter()
                .map(|&m| {
                    let was_sparse = state.is_zero_chunk(m);
                    let slice = state.chunk_mut_or_alloc(m);
                    (m, AmpPtr(slice.as_mut_ptr()), was_sparse)
                })
                .collect();
            work.push(GroupWork {
                anchor: group[0],
                members,
            });
        }

        let process = |w: &GroupWork| {
            let mut scratch = vec![Complex64::ZERO; chunk_len << hm];
            for (j, &(_, ptr, _)) in w.members.iter().enumerate() {
                let src = unsafe { std::slice::from_raw_parts(ptr.0, chunk_len) };
                scratch[j * chunk_len..(j + 1) * chunk_len].copy_from_slice(src);
            }
            for p in &prepared {
                p.apply(&mut scratch, w.anchor);
            }
            for (j, &(_, ptr, _)) in w.members.iter().enumerate() {
                let dst = unsafe { std::slice::from_raw_parts_mut(ptr.0, chunk_len) };
                dst.copy_from_slice(&scratch[j * chunk_len..(j + 1) * chunk_len]);
            }
        };
        let restarts = if self.threads == 1 || work.len() <= 1 {
            for w in &work {
                process(w);
            }
            0
        } else {
            let per = work.len().div_ceil(self.threads);
            self.run_dispatch(&work, per, "apply_group_runs", "worker.group", &|piece| {
                for w in piece {
                    process(w);
                }
            })?
        };

        for w in &work {
            for &(m, _, was_sparse) in &w.members {
                if was_sparse {
                    state.demote_if_zero(m);
                }
            }
        }
        Ok(restarts)
    }

    /// Shared parallel dispatch with fault awareness: splits `work` into
    /// `per`-sized pieces, one worker each. An injected worker death (a
    /// pure decision of the injector keyed on the dispatch counter and
    /// worker index) makes that worker exit *before touching its piece*;
    /// after the scope joins, any piece not flagged done is re-executed
    /// serially — identical result, since the dead worker mutated
    /// nothing. A genuine worker panic cannot guarantee that, so it maps
    /// to [`SimError::WorkerLost`] and is not retried. Returns the
    /// number of recovered workers.
    fn run_dispatch<T: Sync>(
        &self,
        work: &[T],
        per: usize,
        dispatch_name: &'static str,
        span_name: &'static str,
        run_piece: &(dyn Fn(&[T]) + Sync),
    ) -> Result<u64, SimError> {
        let rec = self.recorder.as_deref();
        let dispatch = self.dispatches.fetch_add(1, Ordering::Relaxed);
        let n_pieces = work.len().div_ceil(per);
        let killed: Vec<bool> = (0..n_pieces)
            .map(|t| {
                self.faults
                    .as_deref()
                    .is_some_and(|f| f.fires_attempt(FaultSite::WorkerDeath, dispatch, t as u32))
            })
            .collect();
        let done: Vec<AtomicBool> = (0..n_pieces).map(|_| AtomicBool::new(false)).collect();
        let killed = &killed;
        let done = &done;
        crossbeam::scope(|scope| {
            for (t, piece) in work.chunks(per).enumerate() {
                if let Some(r) = rec {
                    r.observe("worker.queue", piece.len() as u64);
                }
                scope.spawn(move |_| {
                    if killed[t] {
                        return;
                    }
                    let _g = span_opt(rec, Track::Worker(t), Stage::Update, span_name);
                    run_piece(piece);
                    done[t].store(true, Ordering::Release);
                });
            }
        })
        .map_err(|_| SimError::WorkerLost {
            dispatch: dispatch_name,
        })?;
        let mut restarts = 0u64;
        for (t, piece) in work.chunks(per).enumerate() {
            if !done[t].load(Ordering::Acquire) {
                run_piece(piece);
                restarts += 1;
            }
        }
        Ok(restarts)
    }

    /// Deterministic parallel sum of `block_sum` over fixed-size blocks
    /// covering `0..len` (see [`qgpu_math::reduce`]): bitwise identical at
    /// every thread count.
    pub fn reduce_f64<F>(&self, len: usize, block_sum: F) -> f64
    where
        F: Fn(Range<usize>) -> f64 + Sync,
    {
        let nb = reduce::num_blocks(len);
        let mut partials = vec![0.0f64; nb];
        self.fill_partials(&mut partials, len, &block_sum);
        reduce::pairwise_sum(&partials)
    }

    /// Complex counterpart of [`ChunkExecutor::reduce_f64`].
    pub fn reduce_complex<F>(&self, len: usize, block_sum: F) -> Complex64
    where
        F: Fn(Range<usize>) -> Complex64 + Sync,
    {
        let nb = reduce::num_blocks(len);
        let mut partials = vec![Complex64::ZERO; nb];
        self.fill_partials(&mut partials, len, &block_sum);
        reduce::pairwise_sum_complex(&partials)
    }

    fn fill_partials<T: Copy + Send>(
        &self,
        partials: &mut [T],
        len: usize,
        block_sum: &(dyn Fn(Range<usize>) -> T + Sync),
    ) {
        let nb = partials.len();
        if self.threads == 1 || len < MIN_PARALLEL || nb <= 1 {
            for (b, p) in partials.iter_mut().enumerate() {
                *p = block_sum(reduce::block_range(b, len));
            }
            return;
        }
        let per = nb.div_ceil(self.threads);
        let rec = self.recorder.as_deref();
        crossbeam::scope(|scope| {
            for (t, piece) in partials.chunks_mut(per).enumerate() {
                scope.spawn(move |_| {
                    let _g = span_opt(rec, Track::Worker(t), Stage::Update, "worker.reduce");
                    for (i, p) in piece.iter_mut().enumerate() {
                        *p = block_sum(reduce::block_range(t * per + i, len));
                    }
                });
            }
        })
        .expect("worker thread panicked");
    }
}

/// A member action with qubit positions remapped into the scratch
/// coordinates of a chunk group (high mixing qubit of rank `r` lives at
/// scratch position `chunk_bits + r`).
enum Prepared {
    Dense {
        local_controls: Vec<usize>,
        /// Chunk-index bit positions of high controls, checked against
        /// the group anchor (constant across the group).
        high_control_bits: Vec<u32>,
        mixing: Vec<usize>,
        matrix: Matrix,
    },
    Diag {
        qubits: Vec<usize>,
        /// `(chunk-index bit, scratch position)` of qubits that are high
        /// but not mixing: their value is constant across the group, so
        /// they get virtual positions above the scratch and a base word
        /// carrying the anchor's bits there.
        virtual_bits: Vec<(u32, usize)>,
        dvec: Vec<Complex64>,
    },
}

impl Prepared {
    fn build(action: &GateAction, chunk_bits: u32, high_mixing: &[usize]) -> Prepared {
        let rank_of = |q: usize| {
            chunk_bits as usize
                + high_mixing
                    .iter()
                    .position(|&h| h == q)
                    .expect("high mixing qubit of a member must be in the run's high_mixing")
        };
        match action {
            GateAction::ControlledDense {
                controls,
                mixing,
                matrix,
            } => {
                let mut local_controls = Vec::new();
                let mut high_control_bits = Vec::new();
                for &c in controls {
                    if (c as u32) < chunk_bits {
                        local_controls.push(c);
                    } else {
                        high_control_bits.push(c as u32 - chunk_bits);
                    }
                }
                let mixing = mixing
                    .iter()
                    .map(|&q| {
                        if (q as u32) < chunk_bits {
                            q
                        } else {
                            rank_of(q)
                        }
                    })
                    .collect();
                Prepared::Dense {
                    local_controls,
                    high_control_bits,
                    mixing,
                    matrix: matrix.clone(),
                }
            }
            GateAction::Diagonal { qubits, dvec } => {
                let mut next_virtual = chunk_bits as usize + high_mixing.len();
                let mut virtual_bits = Vec::new();
                let qubits = qubits
                    .iter()
                    .map(|&q| {
                        if (q as u32) < chunk_bits {
                            q
                        } else if high_mixing.contains(&q) {
                            rank_of(q)
                        } else {
                            // Constant across the group: park it above the
                            // scratch and feed its value via the base word.
                            let pos = next_virtual;
                            next_virtual += 1;
                            virtual_bits.push((q as u32 - chunk_bits, pos));
                            pos
                        }
                    })
                    .collect();
                Prepared::Diag {
                    qubits,
                    virtual_bits,
                    dvec: dvec.clone(),
                }
            }
        }
    }

    fn apply(&self, scratch: &mut [Complex64], anchor: usize) {
        match self {
            Prepared::Dense {
                local_controls,
                high_control_bits,
                mixing,
                matrix,
            } => {
                // High controls are constant across the group: skip the
                // whole action when any is 0, like apply_group does.
                if high_control_bits.iter().any(|&b| (anchor >> b) & 1 == 0) {
                    return;
                }
                kernels::apply_controlled_dense(scratch, local_controls, mixing, matrix);
            }
            Prepared::Diag {
                qubits,
                virtual_bits,
                dvec,
            } => {
                let base: usize = virtual_bits
                    .iter()
                    .map(|&(cb, pos)| ((anchor >> cb) & 1) << pos)
                    .sum();
                kernels::apply_diagonal(scratch, base, qubits, dvec);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_circuit::{fuse, Gate, Operation};

    fn bits_equal(a: &StateVector, b: &StateVector) -> bool {
        a.amps()
            .iter()
            .zip(b.amps().iter())
            .all(|(x, y)| x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits())
    }

    fn actions_of(ops: &[(Gate, Vec<usize>)]) -> Vec<GateAction> {
        ops.iter()
            .map(|(g, qs)| GateAction::from_operation(&Operation::new(*g, qs.clone())))
            .collect()
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        ChunkExecutor::new(0);
    }

    #[test]
    fn recorder_captures_worker_spans_and_queue_occupancy() {
        let rec = Arc::new(Recorder::new());
        let n = 15;
        let chunk_bits = 8;
        let c = Benchmark::Qft.generate(n);
        let mut flat = StateVector::new_zero(n);
        flat.run(&c);
        let mut state = ChunkedState::from_flat(&flat, chunk_bits);
        let chunks: Vec<usize> = (0..state.num_chunks()).collect();
        let run = actions_of(&[(Gate::H, vec![1]), (Gate::T, vec![2])]);
        ChunkExecutor::with_exact_threads(4)
            .with_recorder(Arc::clone(&rec))
            .apply_local_run(&mut state, &run, &chunks);
        let spans = rec.spans();
        assert!(
            spans.iter().any(|s| matches!(s.track, Track::Worker(_))),
            "worker spans expected"
        );
        let queue = rec.metrics();
        let hist = queue.histogram("worker.queue").expect("occupancy");
        // 128 dense chunks over 4 workers: 32 items each.
        assert_eq!(hist.count(), 4);
        assert_eq!(hist.max(), 32);
    }

    #[test]
    fn new_clamps_to_available_parallelism() {
        let cores = std::thread::available_parallelism().map_or(usize::MAX, |n| n.get());
        assert!(ChunkExecutor::new(1024).threads() <= cores.max(1));
        assert_eq!(ChunkExecutor::with_exact_threads(1024).threads(), 1024);
    }

    #[test]
    fn flat_run_is_bitwise_equal_to_sequential_at_any_thread_count() {
        let c = Benchmark::Qft.generate(15);
        let program = fuse::fuse(&c);
        let mut reference = StateVector::new_zero(15);
        reference.run(&c);
        for threads in [1usize, 2, 3, 4, 8] {
            let ex = ChunkExecutor::with_exact_threads(threads);
            let mut s = StateVector::new_zero(15);
            for fop in &program {
                ex.apply_flat_run(s.amps_mut(), fop.actions());
            }
            assert!(bits_equal(&s, &reference), "threads = {threads}");
        }
    }

    #[test]
    fn flat_run_handles_high_dense_qubits() {
        // A run whose dense member mixes the top qubit forces block_bits
        // up to the full state: exercises the single-block fallback.
        let n = 15;
        let run = actions_of(&[(Gate::H, vec![n - 1]), (Gate::T, vec![n - 1])]);
        let mut a = StateVector::new_zero(n);
        let mut b = StateVector::new_zero(n);
        for act in &run {
            kernels::apply_action(b.amps_mut(), 0, act);
        }
        ChunkExecutor::with_exact_threads(4).apply_flat_run(a.amps_mut(), &run);
        assert!(bits_equal(&a, &b));
    }

    #[test]
    fn empty_run_is_a_no_op() {
        let mut s = StateVector::new_zero(4);
        ChunkExecutor::with_exact_threads(2).apply_flat_run(s.amps_mut(), &[]);
        assert!((s.amp(0) - Complex64::ONE).abs() < 1e-15);
    }

    /// Regression: a fused run whose target qubit sits *below* the
    /// chunk-size exponent must go through the Case-1 path and match the
    /// flat result bitwise.
    #[test]
    fn local_run_below_chunk_boundary_matches_flat() {
        let n = 10;
        let chunk_bits = 4;
        let prep = Benchmark::Gs.generate(n);
        let run = actions_of(&[(Gate::H, vec![2]), (Gate::T, vec![2]), (Gate::H, vec![2])]);

        let mut flat = StateVector::new_zero(n);
        flat.run(&prep);
        let chunked = ChunkedState::from_flat(&flat, chunk_bits);
        for act in &run {
            kernels::apply_action(flat.amps_mut(), 0, act);
        }
        for threads in [1usize, 2, 4] {
            let mut state = chunked.clone();
            let chunks: Vec<usize> = (0..state.num_chunks()).collect();
            ChunkExecutor::with_exact_threads(threads).apply_local_run(&mut state, &run, &chunks);
            assert!(bits_equal(&state.to_flat(), &flat), "threads = {threads}");
        }
    }

    /// Regression: a fused run whose target qubit sits *above* the
    /// chunk-size exponent must go through the Case-2 group path and
    /// match the flat result bitwise.
    #[test]
    fn group_run_above_chunk_boundary_matches_flat() {
        let n = 10;
        let chunk_bits: u32 = 3;
        let target = 8usize; // above the boundary
        let prep = Benchmark::Iqp.generate(n);
        let run = actions_of(&[
            (Gate::H, vec![target]),
            (Gate::T, vec![target]),
            (Gate::H, vec![target]),
        ]);

        let mut flat = StateVector::new_zero(n);
        flat.run(&prep);
        let chunked = ChunkedState::from_flat(&flat, chunk_bits);
        for act in &run {
            kernels::apply_action(flat.amps_mut(), 0, act);
        }
        let high_mixing = [target];
        for threads in [1usize, 2, 4] {
            let mut state = chunked.clone();
            let group_bit = 1usize << (target as u32 - chunk_bits);
            let groups_owned: Vec<Vec<usize>> = (0..state.num_chunks())
                .filter(|c| c & group_bit == 0)
                .map(|c| state.chunk_group(c, &high_mixing))
                .collect();
            let groups: Vec<&[usize]> = groups_owned.iter().map(|g| g.as_slice()).collect();
            ChunkExecutor::with_exact_threads(threads).apply_group_runs(
                &mut state,
                &run,
                &groups,
                &high_mixing,
            );
            assert!(bits_equal(&state.to_flat(), &flat), "threads = {threads}");
        }
    }

    #[test]
    fn group_run_sparsity_matches_per_gate_semantics() {
        // |0…0⟩ chunked: only chunk 0 is dense. The run X·X on the top
        // qubit moves the amplitude into the (sparse) top chunk and back:
        // the top chunk was speculatively materialized but ends all-zero,
        // so it must demote back to sparse. Chunk 0 was dense before the
        // run, so it stays dense even while holding the amplitude — the
        // same sparsity the per-gate path produces.
        let n = 8;
        let chunk_bits: u32 = 3;
        let mut state = ChunkedState::new_zero(n, chunk_bits);
        let top = n - 1;
        let run = actions_of(&[(Gate::X, vec![top]), (Gate::X, vec![top])]);
        let groups_owned: Vec<Vec<usize>> = vec![state.chunk_group(0, &[top])];
        let groups: Vec<&[usize]> = groups_owned.iter().map(|g| g.as_slice()).collect();
        ChunkExecutor::with_exact_threads(2).apply_group_runs(&mut state, &run, &groups, &[top]);
        assert_eq!(state.dense_chunk_count(), 1);
        assert!(
            state.is_zero_chunk(state.num_chunks() - 1),
            "speculatively materialized chunk must re-sparsify"
        );
        let flat = state.to_flat();
        assert!((flat.amp(0) - Complex64::ONE).abs() < 1e-15);

        // A single X leaves the amplitude in the top chunk: the sparse
        // member stays dense, and chunk 0 — though now zero — was dense
        // before the run and is not demoted.
        let mut state = ChunkedState::new_zero(n, chunk_bits);
        let run = actions_of(&[(Gate::X, vec![top])]);
        ChunkExecutor::with_exact_threads(2).apply_group_runs(&mut state, &run, &groups, &[top]);
        assert_eq!(state.dense_chunk_count(), 2);
        assert!(!state.is_zero_chunk(0));
        let flat = state.to_flat();
        assert!((flat.amp(1 << top) - Complex64::ONE).abs() < 1e-15);
    }

    #[test]
    fn group_run_respects_high_controls() {
        // CX with a high control and high target: control bit selects
        // half the groups; compare against the per-gate path bitwise.
        let n = 9;
        let chunk_bits: u32 = 3;
        let prep = Benchmark::Rqc.generate(n);
        let mut flat = StateVector::new_zero(n);
        flat.run(&prep);
        let op = Operation::new(Gate::Cx, vec![7, 8]);
        let action = GateAction::from_operation(&op);

        let mut expected = ChunkedState::from_flat(&flat, chunk_bits);
        expected.apply_action(&action);

        let mut state = ChunkedState::from_flat(&flat, chunk_bits);
        let high_mixing = [8usize];
        let group_bit = 1usize << (8 - chunk_bits);
        let groups_owned: Vec<Vec<usize>> = (0..state.num_chunks())
            .filter(|c| c & group_bit == 0)
            .map(|c| state.chunk_group(c, &high_mixing))
            .collect();
        let groups: Vec<&[usize]> = groups_owned.iter().map(|g| g.as_slice()).collect();
        ChunkExecutor::with_exact_threads(3).apply_group_runs(
            &mut state,
            &[action],
            &groups,
            &high_mixing,
        );
        assert!(bits_equal(&state.to_flat(), &expected.to_flat()));
    }

    #[test]
    fn flat_diagonal_is_bitwise_identical_across_worker_counts() {
        // Large enough to clear MIN_PARALLEL so the aligned-block split
        // actually runs; compare every worker count against the serial
        // strided kernel and the gather kernel, bit for bit (the state
        // has no zero components, so zero-sign differences cannot arise).
        let n = 15;
        let amps0: Vec<Complex64> = (0..1usize << n)
            .map(|i| Complex64::new(0.4 + 1e-5 * i as f64, -0.3 + 7e-6 * i as f64))
            .collect();
        let qubits = [1usize, 4, 9];
        let dvec: Vec<Complex64> = (0..8)
            .map(|s| match s {
                3 => Complex64::cis(0.81),
                6 => Complex64::new(-1.0, 0.0),
                _ => Complex64::ONE,
            })
            .collect();
        let mut reference = amps0.clone();
        kernels::apply_diagonal(&mut reference, 0, &qubits, &dvec);
        for threads in [1usize, 2, 3, 4, 8] {
            let mut amps = amps0.clone();
            ChunkExecutor::with_exact_threads(threads)
                .apply_flat_diagonal(&mut amps, &qubits, &dvec);
            for (i, (x, y)) in amps.iter().zip(reference.iter()).enumerate() {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "threads = {threads}, amp {i}"
                );
            }
        }
    }

    #[test]
    fn flat_diagonal_accepts_gate_ordered_qubits() {
        // A controlled phase listed control-first puts the higher qubit
        // position at table bit 0; the executor must sort and permute the
        // table, matching the gather kernel on the original order bitwise.
        let n = 15;
        let amps0: Vec<Complex64> = (0..1usize << n)
            .map(|i| Complex64::new(0.5 + 3e-6 * i as f64, 0.1 - 2e-6 * i as f64))
            .collect();
        let qubits = [9usize, 2];
        let dvec = vec![
            Complex64::ONE,
            Complex64::ONE,
            Complex64::cis(0.55),
            Complex64::new(-1.0, 0.0),
        ];
        let mut reference = amps0.clone();
        kernels::apply_diagonal(&mut reference, 0, &qubits, &dvec);
        for threads in [1usize, 4] {
            let mut amps = amps0.clone();
            ChunkExecutor::with_exact_threads(threads)
                .apply_flat_diagonal(&mut amps, &qubits, &dvec);
            for (i, (x, y)) in amps.iter().zip(reference.iter()).enumerate() {
                assert!(
                    x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                    "threads = {threads}, amp {i}"
                );
            }
        }
    }

    #[test]
    fn reduce_is_bitwise_identical_across_thread_counts() {
        let c = Benchmark::Qaoa.generate(15);
        let mut s = StateVector::new_zero(15);
        s.run(&c);
        let amps = s.amps();
        let serial = ChunkExecutor::with_exact_threads(1)
            .reduce_f64(amps.len(), |r| amps[r].iter().map(|a| a.norm_sqr()).sum());
        for threads in [2usize, 3, 4, 8] {
            let par = ChunkExecutor::with_exact_threads(threads)
                .reduce_f64(amps.len(), |r| amps[r].iter().map(|a| a.norm_sqr()).sum());
            assert_eq!(serial.to_bits(), par.to_bits(), "threads = {threads}");
        }
        assert!((serial - 1.0).abs() < 1e-10);
    }

    #[test]
    fn reduce_complex_handles_odd_lengths() {
        let values: Vec<Complex64> = (0..10_001)
            .map(|i| Complex64::new(1.0 / (i as f64 + 1.0), -0.5 / (i as f64 + 2.0)))
            .collect();
        let a = ChunkExecutor::with_exact_threads(1).reduce_complex(values.len(), |r| {
            let mut acc = Complex64::ZERO;
            for v in &values[r] {
                acc += *v;
            }
            acc
        });
        let b = ChunkExecutor::with_exact_threads(4).reduce_complex(values.len(), |r| {
            let mut acc = Complex64::ZERO;
            for v in &values[r] {
                acc += *v;
            }
            acc
        });
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }

    #[test]
    fn injected_worker_death_recovers_bit_exactly() {
        use qgpu_faults::FaultConfig;
        let n = 15;
        let chunk_bits = 8;
        let c = Benchmark::Qft.generate(n);
        let mut flat = StateVector::new_zero(n);
        flat.run(&c);
        let run = actions_of(&[(Gate::H, vec![1]), (Gate::T, vec![2]), (Gate::X, vec![0])]);
        let chunks: Vec<usize> = (0..1usize << (n as u32 - chunk_bits)).collect();

        let mut healthy = ChunkedState::from_flat(&flat, chunk_bits);
        ChunkExecutor::with_exact_threads(4).apply_local_run(&mut healthy, &run, &chunks);

        // Every worker of every dispatch dies; recovery re-runs all pieces
        // serially and the result must still be bit-identical.
        let injector = FaultInjector::new(FaultConfig {
            p_worker_death: 1.0,
            ..FaultConfig::default()
        });
        let mut faulty = ChunkedState::from_flat(&flat, chunk_bits);
        let restarts = ChunkExecutor::with_exact_threads(4)
            .with_faults(Arc::new(injector))
            .try_apply_local_run(&mut faulty, &run, &chunks)
            .expect("injected deaths are recoverable");
        assert!(restarts > 0, "all workers were killed, none restarted?");
        assert!(bits_equal(&healthy.to_flat(), &faulty.to_flat()));
    }

    #[test]
    fn injected_death_in_group_dispatch_recovers() {
        use qgpu_faults::FaultConfig;
        let n = 12;
        let chunk_bits = 8;
        let c = Benchmark::Qft.generate(n);
        let mut flat = StateVector::new_zero(n);
        flat.run(&c);
        // One high mixing qubit: groups pair chunk k with chunk k + 8.
        let run = actions_of(&[(Gate::H, vec![(chunk_bits + 3) as usize])]);
        let groups_owned: Vec<Vec<usize>> = (0..8).map(|k| vec![k, k + 8]).collect();
        let groups: Vec<&[usize]> = groups_owned.iter().map(Vec::as_slice).collect();
        let high_mixing = vec![(chunk_bits + 3) as usize];

        let mut healthy = ChunkedState::from_flat(&flat, chunk_bits);
        ChunkExecutor::with_exact_threads(4).apply_group_runs(
            &mut healthy,
            &run,
            &groups,
            &high_mixing,
        );

        let injector = FaultInjector::new(FaultConfig {
            p_worker_death: 1.0,
            ..FaultConfig::default()
        });
        let mut faulty = ChunkedState::from_flat(&flat, chunk_bits);
        let restarts = ChunkExecutor::with_exact_threads(4)
            .with_faults(Arc::new(injector))
            .try_apply_group_runs(&mut faulty, &run, &groups, &high_mixing)
            .expect("injected deaths are recoverable");
        assert!(restarts > 0);
        assert!(bits_equal(&healthy.to_flat(), &faulty.to_flat()));
    }

    #[test]
    fn partial_worker_death_is_deterministic_across_thread_interleavings() {
        use qgpu_faults::FaultConfig;
        let n = 15;
        let chunk_bits = 8;
        let c = Benchmark::Qft.generate(n);
        let mut flat = StateVector::new_zero(n);
        flat.run(&c);
        let run = actions_of(&[(Gate::H, vec![0]), (Gate::S, vec![3])]);
        let chunks: Vec<usize> = (0..1usize << (n as u32 - chunk_bits)).collect();
        let injector = Arc::new(FaultInjector::new(FaultConfig {
            seed: 7,
            p_worker_death: 0.5,
            ..FaultConfig::default()
        }));

        let mut first = ChunkedState::from_flat(&flat, chunk_bits);
        let r1 = ChunkExecutor::with_exact_threads(4)
            .with_faults(Arc::clone(&injector))
            .try_apply_local_run(&mut first, &run, &chunks)
            .unwrap();
        let mut second = ChunkedState::from_flat(&flat, chunk_bits);
        let r2 = ChunkExecutor::with_exact_threads(4)
            .with_faults(injector)
            .try_apply_local_run(&mut second, &run, &chunks)
            .unwrap();
        assert_eq!(r1, r2, "same seed, same dispatch → same deaths");
        assert!(bits_equal(&first.to_flat(), &second.to_flat()));
    }

    #[test]
    fn genuine_worker_panic_surfaces_as_worker_lost() {
        let ex = ChunkExecutor::with_exact_threads(2);
        let work: Vec<usize> = (0..4).collect();
        let err = ex
            .run_dispatch(&work, 2, "test_dispatch", "worker.test", &|piece| {
                if piece[0] == 2 {
                    panic!("injected genuine panic");
                }
            })
            .expect_err("a real panic must not be swallowed");
        match err {
            SimError::WorkerLost { dispatch } => assert_eq!(dispatch, "test_dispatch"),
            other => panic!("expected WorkerLost, got {other}"),
        }
    }
}
