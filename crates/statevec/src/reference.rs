//! Dense-operator reference implementation: an independent oracle.
//!
//! For small systems, a circuit can be evaluated by materializing each
//! gate as a full `2^n × 2^n` operator and multiplying state vectors
//! directly. This is exponentially expensive and exists purely as an
//! *independent check* on the optimized kernels: the two paths share no
//! indexing code, so agreement is strong evidence both are right.

use qgpu_circuit::{Circuit, Matrix, Operation};
use qgpu_math::Complex64;

use crate::state::StateVector;

/// Largest system the dense path accepts (a 2^12 × 2^12 operator is 256 MB).
pub const MAX_DENSE_QUBITS: usize = 12;

/// Builds the full `2^n × 2^n` operator of a single gate.
///
/// # Panics
///
/// Panics if `n > MAX_DENSE_QUBITS` or the operation is out of range.
pub fn operator_of(op: &Operation, n: usize) -> Matrix {
    assert!(n <= MAX_DENSE_QUBITS, "dense operator would be too large");
    assert!(op.max_qubit() < n);
    let dim = 1usize << n;
    let gm = op.gate().matrix();
    let qubits = op.qubits();
    let k = qubits.len();
    let mut data = vec![Complex64::ZERO; dim * dim];
    for col in 0..dim {
        // Sub-index of the gate's qubits within this column.
        let mut sub = 0usize;
        for (bit, &q) in qubits.iter().enumerate() {
            sub |= ((col >> q) & 1) << bit;
        }
        for row_sub in 0..(1 << k) {
            let v = gm.get(row_sub, sub);
            if v.is_zero() {
                continue;
            }
            let mut row = col;
            for (bit, &q) in qubits.iter().enumerate() {
                row = (row & !(1 << q)) | (((row_sub >> bit) & 1) << q);
            }
            data[row * dim + col] = v;
        }
    }
    Matrix::new(dim, data)
}

/// Runs a circuit by dense operator application.
///
/// # Panics
///
/// Panics if the circuit has more than [`MAX_DENSE_QUBITS`] qubits.
pub fn run_dense(circuit: &Circuit) -> StateVector {
    let n = circuit.num_qubits();
    assert!(n <= MAX_DENSE_QUBITS);
    let dim = 1usize << n;
    let mut amps = vec![Complex64::ZERO; dim];
    amps[0] = Complex64::ONE;
    for op in circuit.iter() {
        let m = operator_of(op, n);
        let mut next = vec![Complex64::ZERO; dim];
        for (row, out) in next.iter_mut().enumerate() {
            let mut acc = Complex64::ZERO;
            for (col, &a) in amps.iter().enumerate() {
                if !a.is_zero() {
                    acc = m.get(row, col).mul_add(a, acc);
                }
            }
            *out = acc;
        }
        amps = next;
    }
    StateVector::from_amplitudes(amps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_circuit::Gate;

    #[test]
    fn dense_operators_are_unitary() {
        for (g, qs) in [
            (Gate::H, vec![2]),
            (Gate::Cx, vec![0, 3]),
            (Gate::Swap, vec![1, 2]),
            (Gate::Ccx, vec![3, 0, 2]),
            (Gate::Cp(0.7), vec![2, 1]),
        ] {
            let op = Operation::new(g, qs);
            let m = operator_of(&op, 4);
            assert!(m.is_unitary(1e-10), "{}", op);
        }
    }

    #[test]
    fn dense_path_agrees_with_kernels_on_benchmarks() {
        for b in Benchmark::ALL {
            let c = b.generate(6);
            let dense = run_dense(&c);
            let mut fast = StateVector::new_zero(6);
            fast.run(&c);
            let dev = fast.max_deviation(&dense);
            assert!(
                dev < 1e-9,
                "{b}: kernels deviate from dense oracle by {dev}"
            );
        }
    }

    #[test]
    fn dense_path_agrees_on_awkward_qubit_orders() {
        // Reversed and interleaved argument orders stress the bit
        // embedding on both paths.
        let mut c = Circuit::new(5);
        c.h(4)
            .cx(4, 0)
            .ccx(3, 1, 0)
            .swap(0, 4)
            .cp(1.234, 4, 2)
            .rzz(0.5, 3, 0)
            .cy(2, 4);
        let dense = run_dense(&c);
        let mut fast = StateVector::new_zero(5);
        fast.run(&c);
        assert!(fast.max_deviation(&dense) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn dense_operator_size_capped() {
        let op = Operation::new(Gate::H, vec![0]);
        let _ = operator_of(&op, 20);
    }
}
