//! The chunked state-vector layout of the paper's Figure 1.
//!
//! The `2^n` amplitudes are split into `2^(n - chunk_bits)` chunks of
//! `2^chunk_bits` amplitudes; the high `n - chunk_bits` index bits select
//! the chunk, the low bits the offset inside it. All-zero chunks are
//! stored sparsely (`None`) — the storage-level counterpart of Q-GPU's
//! zero-amplitude pruning: a chunk that has never been written is
//! guaranteed zero because gate application is linear.
//!
//! Gates whose mixing qubits are all below the chunk boundary update each
//! chunk independently (the paper's Case 1). A mixing qubit at or above
//! the boundary forces chunks to be processed in groups of
//! `2^high_mixing` (Case 2); [`ChunkedState::apply_action`] gathers each
//! group into a scratch buffer, applies the kernel with remapped qubit
//! positions, and scatters the result back — the functional analogue of
//! the CPU→GPU chunk exchange the paper optimizes.

use qgpu_circuit::access::GateAction;
use qgpu_circuit::{Matrix, Operation};
use qgpu_math::Complex64;

use crate::kernels;
use crate::state::StateVector;

/// A state vector partitioned into power-of-two chunks with sparse
/// all-zero chunks.
///
/// # Examples
///
/// ```
/// use qgpu_statevec::ChunkedState;
/// use qgpu_circuit::{Gate, Operation};
///
/// let mut s = ChunkedState::new_zero(6, 3); // 8 chunks of 8 amplitudes
/// assert_eq!(s.num_chunks(), 8);
/// assert_eq!(s.dense_chunk_count(), 1); // only chunk 0 is materialized
///
/// s.apply_operation(&Operation::new(Gate::H, vec![0]));
/// assert_eq!(s.dense_chunk_count(), 1); // still confined to chunk 0
///
/// s.apply_operation(&Operation::new(Gate::H, vec![5]));
/// assert_eq!(s.dense_chunk_count(), 2); // qubit 5 spans chunks
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkedState {
    num_qubits: usize,
    chunk_bits: u32,
    chunks: Vec<Option<Box<[Complex64]>>>,
}

impl ChunkedState {
    /// The |0…0⟩ state with the given chunk size (in qubits).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bits` is 0 or exceeds `num_qubits`.
    pub fn new_zero(num_qubits: usize, chunk_bits: u32) -> Self {
        assert!(num_qubits > 0 && num_qubits < 48);
        assert!(
            chunk_bits >= 1 && (chunk_bits as usize) <= num_qubits,
            "chunk_bits {chunk_bits} out of range for {num_qubits} qubits"
        );
        let num_chunks = 1usize << (num_qubits as u32 - chunk_bits);
        let mut chunks = vec![None; num_chunks];
        let mut first = vec![Complex64::ZERO; 1 << chunk_bits].into_boxed_slice();
        first[0] = Complex64::ONE;
        chunks[0] = Some(first);
        ChunkedState {
            num_qubits,
            chunk_bits,
            chunks,
        }
    }

    /// Builds a chunked state from a flat one.
    ///
    /// Chunks that are entirely zero are stored sparsely.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bits` exceeds the state's qubit count or is 0.
    pub fn from_flat(state: &StateVector, chunk_bits: u32) -> Self {
        let num_qubits = state.num_qubits();
        assert!(chunk_bits >= 1 && (chunk_bits as usize) <= num_qubits);
        let chunk_len = 1usize << chunk_bits;
        let chunks = state
            .amps()
            .chunks(chunk_len)
            .map(|c| {
                if c.iter().all(|a| a.is_zero()) {
                    None
                } else {
                    Some(c.to_vec().into_boxed_slice())
                }
            })
            .collect();
        ChunkedState {
            num_qubits,
            chunk_bits,
            chunks,
        }
    }

    /// Flattens back into a [`StateVector`].
    pub fn to_flat(&self) -> StateVector {
        let chunk_len = self.chunk_len();
        let mut amps = vec![Complex64::ZERO; 1 << self.num_qubits];
        for (i, chunk) in self.chunks.iter().enumerate() {
            if let Some(c) = chunk {
                amps[i * chunk_len..(i + 1) * chunk_len].copy_from_slice(c);
            }
        }
        StateVector::from_amplitudes(amps)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Chunk size in qubits.
    pub fn chunk_bits(&self) -> u32 {
        self.chunk_bits
    }

    /// Amplitudes per chunk.
    pub fn chunk_len(&self) -> usize {
        1 << self.chunk_bits
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The chunk's amplitudes, or `None` if it is (guaranteed) all-zero.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chunk(&self, i: usize) -> Option<&[Complex64]> {
        self.chunks[i].as_deref()
    }

    /// Returns `true` if chunk `i` is stored sparsely (all-zero).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn is_zero_chunk(&self, i: usize) -> bool {
        self.chunks[i].is_none()
    }

    /// Number of materialized (non-sparse) chunks.
    pub fn dense_chunk_count(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_some()).count()
    }

    /// Bytes of amplitude storage actually allocated — the memory-side
    /// benefit of sparse zero chunks (a full vector would always take
    /// `2^n × 16`).
    pub fn memory_bytes(&self) -> usize {
        self.dense_chunk_count() * self.chunk_len() * 16
    }

    /// Materializes chunk `i` (zero-filled if sparse) and returns it.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn chunk_mut_or_alloc(&mut self, i: usize) -> &mut [Complex64] {
        let len = self.chunk_len();
        self.chunks[i].get_or_insert_with(|| vec![Complex64::ZERO; len].into_boxed_slice())
    }

    /// Reverts chunk `i` to sparse storage if its contents are all zero.
    ///
    /// Used by the run executor to undo speculative materialization: a
    /// sparse chunk is materialized before a fused run so worker threads
    /// can write it freely, then demoted again if the run left it zero —
    /// matching the sparsity the per-gate path would have produced.
    pub(crate) fn demote_if_zero(&mut self, i: usize) {
        if let Some(c) = &self.chunks[i] {
            if c.iter().all(|a| a.is_zero()) {
                self.chunks[i] = None;
            }
        }
    }

    /// Re-partitions the state with a new chunk size, preserving contents.
    ///
    /// Growing merges `2^(new-old)` consecutive chunks (sparse only if all
    /// parts were sparse); shrinking splits chunks (each part sparse if it
    /// is all-zero). This implements the paper's *dynamic chunk size*
    /// (Algorithm 1's `getChunkSize`).
    ///
    /// # Panics
    ///
    /// Panics if `new_bits` is 0 or exceeds the qubit count.
    pub fn set_chunk_bits(&mut self, new_bits: u32) {
        assert!(new_bits >= 1 && (new_bits as usize) <= self.num_qubits);
        if new_bits == self.chunk_bits {
            return;
        }
        if new_bits > self.chunk_bits {
            let factor = 1usize << (new_bits - self.chunk_bits);
            let old_len = self.chunk_len();
            let new_len = old_len * factor;
            let mut merged: Vec<Option<Box<[Complex64]>>> =
                Vec::with_capacity(self.chunks.len() / factor);
            for group in self.chunks.chunks(factor) {
                if group.iter().all(|c| c.is_none()) {
                    merged.push(None);
                } else {
                    let mut buf = vec![Complex64::ZERO; new_len].into_boxed_slice();
                    for (j, part) in group.iter().enumerate() {
                        if let Some(p) = part {
                            buf[j * old_len..(j + 1) * old_len].copy_from_slice(p);
                        }
                    }
                    merged.push(Some(buf));
                }
            }
            self.chunks = merged;
        } else {
            let factor = 1usize << (self.chunk_bits - new_bits);
            let new_len = 1usize << new_bits;
            let mut split: Vec<Option<Box<[Complex64]>>> =
                Vec::with_capacity(self.chunks.len() * factor);
            for chunk in &self.chunks {
                match chunk {
                    None => split.extend(std::iter::repeat_with(|| None).take(factor)),
                    Some(c) => {
                        for part in c.chunks(new_len) {
                            if part.iter().all(|a| a.is_zero()) {
                                split.push(None);
                            } else {
                                split.push(Some(part.to_vec().into_boxed_slice()));
                            }
                        }
                    }
                }
            }
            self.chunks = split;
        }
        self.chunk_bits = new_bits;
    }

    /// The chunk group that must be co-processed with `chunk` for the
    /// given high-mixing qubit positions, ordered by mixing-bit pattern.
    ///
    /// `high_mixing` lists global qubit positions `>= chunk_bits`; the
    /// group has `2^high_mixing.len()` members.
    ///
    /// # Panics
    ///
    /// Panics if a listed qubit is below the chunk boundary.
    pub fn chunk_group(&self, chunk: usize, high_mixing: &[usize]) -> Vec<usize> {
        let mut base = chunk;
        for &q in high_mixing {
            let bit = q as u32 - self.chunk_bits;
            assert!(q as u32 >= self.chunk_bits);
            base &= !(1usize << bit);
        }
        (0..1usize << high_mixing.len())
            .map(|pattern| {
                let mut idx = base;
                for (b, &q) in high_mixing.iter().enumerate() {
                    if (pattern >> b) & 1 == 1 {
                        idx |= 1usize << (q as u32 - self.chunk_bits);
                    }
                }
                idx
            })
            .collect()
    }

    /// Applies an action to a single chunk (Case 1: all mixing qubits
    /// below the boundary). Sparse chunks are skipped — linear maps
    /// preserve all-zero blocks.
    ///
    /// # Panics
    ///
    /// Panics if the action has a high mixing qubit.
    pub fn apply_local(&mut self, action: &GateAction, chunk: usize) {
        assert!(
            action
                .mixing_qubits()
                .iter()
                .all(|&q| (q as u32) < self.chunk_bits),
            "apply_local called with a high mixing qubit"
        );
        if self.chunks[chunk].is_none() {
            return;
        }
        let base = chunk << self.chunk_bits;
        let c = self.chunks[chunk].as_mut().expect("checked above");
        kernels::apply_action(c, base, action);
    }

    /// Applies an action to a chunk group (Case 2), gathering the group
    /// into a scratch buffer.
    ///
    /// If every chunk of the group is sparse the group is skipped. The
    /// group must be exactly [`ChunkedState::chunk_group`] of its first
    /// member for the action's high mixing qubits.
    ///
    /// # Panics
    ///
    /// Panics on a diagonal action (those never need grouping) or a
    /// mismatched group size.
    pub fn apply_group(&mut self, action: &GateAction, group: &[usize]) {
        let GateAction::ControlledDense {
            controls,
            mixing,
            matrix,
        } = action
        else {
            panic!("diagonal actions never require chunk groups");
        };
        let (low_mixing, high_mixing): (Vec<usize>, Vec<usize>) =
            mixing.iter().partition(|&&q| (q as u32) < self.chunk_bits);
        assert_eq!(
            group.len(),
            1 << high_mixing.len(),
            "group size must be 2^high_mixing"
        );
        if group.iter().all(|&g| self.chunks[g].is_none()) {
            return;
        }

        // High controls are constant across the group (controls and mixing
        // are disjoint): check them against the first member's index bits.
        let mut local_controls: Vec<usize> = Vec::with_capacity(controls.len());
        for &c in controls {
            if (c as u32) < self.chunk_bits {
                local_controls.push(c);
            } else {
                let bit = (group[0] >> (c as u32 - self.chunk_bits)) & 1;
                if bit == 0 {
                    return; // control is 0 for the whole group
                }
            }
        }

        // Gather the group into a scratch buffer; qubit positions remap so
        // high mixing qubit #r lands at local position chunk_bits + r.
        let chunk_len = self.chunk_len();
        let mut scratch = vec![Complex64::ZERO; chunk_len * group.len()];
        for (j, &g) in group.iter().enumerate() {
            if let Some(c) = &self.chunks[g] {
                scratch[j * chunk_len..(j + 1) * chunk_len].copy_from_slice(c);
            }
        }
        let remapped_mixing: Vec<usize> = mixing
            .iter()
            .map(|&q| {
                if (q as u32) < self.chunk_bits {
                    q
                } else {
                    let rank = high_mixing
                        .iter()
                        .position(|&h| h == q)
                        .expect("high mixing qubit present");
                    self.chunk_bits as usize + rank
                }
            })
            .collect();
        let _ = low_mixing; // ordering information is kept in `mixing` itself
        kernels::apply_controlled_dense(&mut scratch, &local_controls, &remapped_mixing, matrix);

        // Scatter back, materializing chunks that received amplitude.
        for (j, &g) in group.iter().enumerate() {
            let part = &scratch[j * chunk_len..(j + 1) * chunk_len];
            if self.chunks[g].is_none() && part.iter().all(|a| a.is_zero()) {
                continue;
            }
            self.chunk_mut_or_alloc(g).copy_from_slice(part);
        }
        let _ = matrix_dim_check(matrix, remapped_mixing.len());
    }

    /// Applies one action to the whole state, dispatching Case 1 / Case 2
    /// per chunk.
    pub fn apply_action(&mut self, action: &GateAction) {
        match action {
            GateAction::Diagonal { .. } => {
                for chunk in 0..self.num_chunks() {
                    if self.chunks[chunk].is_some() {
                        let base = chunk << self.chunk_bits;
                        let c = self.chunks[chunk].as_mut().expect("checked");
                        kernels::apply_action(c, base, action);
                    }
                }
            }
            GateAction::ControlledDense { mixing, .. } => {
                let high_mixing: Vec<usize> = mixing
                    .iter()
                    .copied()
                    .filter(|&q| (q as u32) >= self.chunk_bits)
                    .collect();
                if high_mixing.is_empty() {
                    for chunk in 0..self.num_chunks() {
                        self.apply_local(action, chunk);
                    }
                } else {
                    // Enumerate canonical groups: chunks whose high-mixing
                    // index bits are all zero.
                    let group_mask: usize = high_mixing
                        .iter()
                        .map(|&q| 1usize << (q as u32 - self.chunk_bits))
                        .sum();
                    for chunk in 0..self.num_chunks() {
                        if chunk & group_mask != 0 {
                            continue;
                        }
                        let group = self.chunk_group(chunk, &high_mixing);
                        self.apply_group(action, &group);
                    }
                }
            }
        }
    }

    /// Applies one operation (convenience wrapper over
    /// [`ChunkedState::apply_action`]).
    pub fn apply_operation(&mut self, op: &Operation) {
        self.apply_action(&GateAction::from_operation(op));
    }
}

fn matrix_dim_check(m: &Matrix, k: usize) -> bool {
    debug_assert_eq!(m.dim(), 1 << k);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_circuit::{Circuit, Gate};

    fn run_both(c: &Circuit, chunk_bits: u32) -> (StateVector, ChunkedState) {
        let mut flat = StateVector::new_zero(c.num_qubits());
        flat.run(c);
        let mut chunked = ChunkedState::new_zero(c.num_qubits(), chunk_bits);
        for op in c.iter() {
            chunked.apply_operation(op);
        }
        (flat, chunked)
    }

    #[test]
    fn matches_flat_on_benchmarks() {
        for b in Benchmark::ALL {
            let c = b.generate(8);
            let (flat, chunked) = run_both(&c, 3);
            let dev = chunked.to_flat().max_deviation(&flat);
            assert!(dev < 1e-10, "{b}: deviation {dev}");
        }
    }

    #[test]
    fn matches_flat_for_all_chunk_sizes() {
        let c = Benchmark::Qft.generate(7);
        let mut flat = StateVector::new_zero(7);
        flat.run(&c);
        for chunk_bits in 1..=7 {
            let mut chunked = ChunkedState::new_zero(7, chunk_bits);
            for op in c.iter() {
                chunked.apply_operation(op);
            }
            let dev = chunked.to_flat().max_deviation(&flat);
            assert!(dev < 1e-10, "chunk_bits {chunk_bits}: deviation {dev}");
        }
    }

    #[test]
    fn zero_chunks_stay_sparse_until_involved() {
        // Gates confined to chunk-local qubits never materialize other chunks.
        let mut s = ChunkedState::new_zero(8, 4);
        let mut c = Circuit::new(8);
        c.h(0).h(1).cx(0, 2).t(3).cz(1, 3);
        for op in c.iter() {
            s.apply_operation(op);
        }
        assert_eq!(s.dense_chunk_count(), 1);
        // Involving qubit 7 (top chunk bit) doubles the dense chunks.
        s.apply_operation(&Operation::new(Gate::H, vec![7]));
        assert_eq!(s.dense_chunk_count(), 2);
    }

    #[test]
    fn diagonal_gates_never_materialize() {
        let mut s = ChunkedState::new_zero(8, 4);
        s.apply_operation(&Operation::new(Gate::H, vec![0]));
        // CZ and CP across the boundary stay Case-1.
        s.apply_operation(&Operation::new(Gate::Cz, vec![0, 7]));
        s.apply_operation(&Operation::new(Gate::Cp(0.4), vec![6, 1]));
        assert_eq!(s.dense_chunk_count(), 1);
    }

    #[test]
    fn high_control_does_not_group() {
        // CX with high control, low target: chunk-local once selected.
        let mut s = ChunkedState::new_zero(6, 3);
        s.apply_operation(&Operation::new(Gate::H, vec![5]));
        s.apply_operation(&Operation::new(Gate::Cx, vec![5, 0]));
        let flat = s.to_flat();
        // Expect (|000000> + |100001>)/√2.
        assert!((flat.amp(0).norm_sqr() - 0.5).abs() < 1e-12);
        assert!((flat.amp(0b100001).norm_sqr() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn chunk_group_enumeration() {
        let s = ChunkedState::new_zero(8, 3);
        // High mixing qubits 4 and 6 -> chunk-index bits 1 and 3.
        let group = s.chunk_group(0b0101, &[4, 6]);
        assert_eq!(group, vec![0b0101, 0b0111, 0b1101, 0b1111]);
    }

    #[test]
    fn rechunking_preserves_state() {
        let c = Benchmark::Gs.generate(8);
        let (flat, mut chunked) = run_both(&c, 2);
        chunked.set_chunk_bits(5);
        assert!(chunked.to_flat().max_deviation(&flat) < 1e-10);
        chunked.set_chunk_bits(3);
        assert!(chunked.to_flat().max_deviation(&flat) < 1e-10);
        assert_eq!(chunked.chunk_bits(), 3);
    }

    #[test]
    fn rechunking_keeps_sparsity() {
        let s0 = ChunkedState::new_zero(10, 2);
        let mut s = s0.clone();
        s.set_chunk_bits(5);
        assert_eq!(s.dense_chunk_count(), 1);
        s.set_chunk_bits(1);
        assert_eq!(s.dense_chunk_count(), 1);
    }

    #[test]
    fn from_flat_detects_zero_chunks() {
        let mut flat = StateVector::new_zero(6);
        let mut c = Circuit::new(6);
        c.h(0).h(1);
        flat.run(&c);
        let chunked = ChunkedState::from_flat(&flat, 2);
        assert_eq!(chunked.dense_chunk_count(), 1);
        assert!(chunked.to_flat().max_deviation(&flat) < 1e-15);
    }

    #[test]
    fn memory_tracks_dense_chunks() {
        let mut s = ChunkedState::new_zero(10, 4);
        assert_eq!(s.memory_bytes(), 16 * 16); // one 16-amp chunk
        s.apply_operation(&Operation::new(Gate::H, vec![9]));
        assert_eq!(s.memory_bytes(), 2 * 16 * 16);
        // Full involvement materializes everything.
        for q in 0..10 {
            s.apply_operation(&Operation::new(Gate::H, vec![q]));
        }
        assert_eq!(s.memory_bytes(), (1 << 10) * 16);
    }

    #[test]
    fn mid_circuit_rechunk_matches_flat() {
        // Change chunk size mid-run, as dynamic chunk sizing does.
        let c = Benchmark::Iqp.generate(8);
        let mut flat = StateVector::new_zero(8);
        let mut chunked = ChunkedState::new_zero(8, 1);
        for (i, op) in c.iter().enumerate() {
            flat.apply(op);
            chunked.apply_operation(op);
            if i == c.len() / 3 {
                chunked.set_chunk_bits(4);
            }
            if i == 2 * c.len() / 3 {
                chunked.set_chunk_bits(2);
            }
        }
        assert!(chunked.to_flat().max_deviation(&flat) < 1e-10);
    }
}
