//! Multi-threaded gate application for the flat layout.
//!
//! Used by the CPU comparator engines (the "CPU OpenMP" baseline of the
//! paper's Figure 12) and to speed up large functional simulations. Work
//! is split over the compressed pair-index space; each thread owns a
//! disjoint set of amplitude indices, so the unsynchronized writes through
//! a shared pointer are race-free.

use qgpu_circuit::access::GateAction;
use qgpu_math::bits::{insert_zero_bit, insert_zero_bits};
use qgpu_math::Complex64;

/// Raw amplitude pointer that can cross thread boundaries.
///
/// Safety: each thread derived from a distinct compressed-index range
/// touches a disjoint set of amplitudes.
#[derive(Clone, Copy)]
struct AmpPtr(*mut Complex64);
unsafe impl Send for AmpPtr {}
unsafe impl Sync for AmpPtr {}

/// Applies a gate action to `amps` using up to `threads` worker threads.
///
/// Semantically identical to [`crate::kernels::apply_action`] with
/// `base = 0`; small inputs fall back to the single-threaded kernel.
///
/// # Panics
///
/// Panics if the action references a qubit outside the state, or if
/// `threads == 0`.
pub fn apply_action_parallel(amps: &mut [Complex64], action: &GateAction, threads: usize) {
    assert!(threads > 0, "need at least one thread");
    assert!(amps.len().is_power_of_two());
    // Below this size thread spawn overhead dominates.
    const MIN_PARALLEL: usize = 1 << 14;
    if threads == 1 || amps.len() < MIN_PARALLEL {
        return crate::kernels::apply_action(amps, 0, action);
    }

    match action {
        GateAction::Diagonal { qubits, dvec } => {
            let n = amps.len();
            let per = n.div_ceil(threads);
            crossbeam::scope(|scope| {
                for (t, piece) in amps.chunks_mut(per).enumerate() {
                    let base = t * per;
                    let qubits = qubits.clone();
                    let dvec = dvec.clone();
                    scope.spawn(move |_| {
                        crate::kernels::apply_diagonal(piece, base, &qubits, &dvec);
                    });
                }
            })
            .expect("worker thread panicked");
        }
        GateAction::ControlledDense {
            controls,
            mixing,
            matrix,
        } => {
            let local_bits = amps.len().trailing_zeros() as usize;
            for &q in controls.iter().chain(mixing.iter()) {
                assert!(q < local_bits, "qubit {q} outside state");
            }
            let mut positions: Vec<u32> = mixing
                .iter()
                .chain(controls.iter())
                .map(|&q| q as u32)
                .collect();
            positions.sort_unstable();
            let control_mask: usize = controls.iter().map(|&c| 1usize << c).sum();
            let dim = matrix.dim();
            let offsets: Vec<usize> = (0..dim)
                .map(|s| {
                    let mut off = 0usize;
                    for (bit, &q) in mixing.iter().enumerate() {
                        off |= ((s >> bit) & 1) << q;
                    }
                    off
                })
                .collect();
            let count = amps.len() >> positions.len();
            let per = count.div_ceil(threads);
            let ptr = AmpPtr(amps.as_mut_ptr());
            crossbeam::scope(|scope| {
                for t in 0..threads {
                    let lo = t * per;
                    let hi = ((t + 1) * per).min(count);
                    if lo >= hi {
                        break;
                    }
                    let positions = positions.clone();
                    let offsets = offsets.clone();
                    let matrix = matrix.clone();
                    scope.spawn(move |_| {
                        let ptr = ptr; // move the Send wrapper
                        let mut gathered = vec![Complex64::ZERO; dim];
                        for c in lo..hi {
                            let ibase = insert_zero_bits(c, &positions) | control_mask;
                            if dim == 2 {
                                // Fast path for single-qubit gates.
                                let i0 = ibase + offsets[0];
                                let i1 = ibase + offsets[1];
                                unsafe {
                                    let a0 = *ptr.0.add(i0);
                                    let a1 = *ptr.0.add(i1);
                                    *ptr.0.add(i0) =
                                        matrix.get(0, 0) * a0 + matrix.get(0, 1) * a1;
                                    *ptr.0.add(i1) =
                                        matrix.get(1, 0) * a0 + matrix.get(1, 1) * a1;
                                }
                            } else {
                                unsafe {
                                    for (s, g) in gathered.iter_mut().enumerate() {
                                        *g = *ptr.0.add(ibase + offsets[s]);
                                    }
                                    for (r, &off) in offsets.iter().enumerate() {
                                        let mut acc = Complex64::ZERO;
                                        for (s, &g) in gathered.iter().enumerate() {
                                            acc = matrix.get(r, s).mul_add(g, acc);
                                        }
                                        *ptr.0.add(ibase + off) = acc;
                                    }
                                }
                            }
                        }
                    });
                }
            })
            .expect("worker thread panicked");
        }
    }
    // Keep the helper import used in both paths.
    let _ = insert_zero_bit;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use qgpu_circuit::access::GateAction;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_circuit::Operation;

    fn run_parallel(n: usize, b: Benchmark, threads: usize) -> StateVector {
        let c = b.generate(n);
        let mut s = StateVector::new_zero(n);
        for op in c.iter() {
            let action = GateAction::from_operation(op);
            apply_action_parallel(s.amps_mut(), &action, threads);
        }
        s
    }

    #[test]
    fn parallel_matches_serial() {
        // 16 qubits crosses the MIN_PARALLEL threshold.
        for b in [Benchmark::Qft, Benchmark::Gs, Benchmark::Hchain] {
            let serial = {
                let c = b.generate(16);
                let mut s = StateVector::new_zero(16);
                s.run(&c);
                s
            };
            let par = run_parallel(16, b, 4);
            assert!(
                par.max_deviation(&serial) < 1e-10,
                "{b} parallel mismatch"
            );
        }
    }

    #[test]
    fn single_thread_falls_back() {
        let serial = {
            let c = Benchmark::Bv.generate(10);
            let mut s = StateVector::new_zero(10);
            s.run(&c);
            s
        };
        let par = run_parallel(10, Benchmark::Bv, 1);
        assert!(par.max_deviation(&serial) < 1e-12);
    }

    #[test]
    fn odd_thread_counts() {
        let serial = {
            let c = Benchmark::Iqp.generate(15);
            let mut s = StateVector::new_zero(15);
            s.run(&c);
            s
        };
        for threads in [2, 3, 5, 7] {
            let par = run_parallel(15, Benchmark::Iqp, threads);
            assert!(
                par.max_deviation(&serial) < 1e-10,
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn multi_qubit_dense_parallel() {
        // Swap has a 4-dimensional dense matrix: exercises the generic path.
        use qgpu_circuit::Gate;
        let mut a = StateVector::new_zero(15);
        let mut b = StateVector::new_zero(15);
        let prep = Benchmark::Rqc.generate(15);
        a.run(&prep);
        for op in prep.iter() {
            let action = GateAction::from_operation(op);
            apply_action_parallel(b.amps_mut(), &action, 4);
        }
        let sw = Operation::new(Gate::Swap, vec![3, 12]);
        a.apply(&sw);
        apply_action_parallel(b.amps_mut(), &GateAction::from_operation(&sw), 4);
        assert!(a.max_deviation(&b) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let mut s = StateVector::new_zero(4);
        let op = Operation::new(qgpu_circuit::Gate::H, vec![0]);
        apply_action_parallel(s.amps_mut(), &GateAction::from_operation(&op), 0);
    }
}
