//! Multi-threaded gate application for the flat layout.
//!
//! Used by the CPU comparator engines (the "CPU OpenMP" baseline of the
//! paper's Figure 12) and to speed up large functional simulations. This
//! module is a thin wrapper kept for API stability: the actual work-
//! splitting lives in [`crate::executor::ChunkExecutor`], the shared
//! worker pool used by every parallel path in the workspace.

use qgpu_circuit::access::GateAction;
use qgpu_math::Complex64;

use crate::executor::ChunkExecutor;

/// Applies a gate action to `amps` using up to `threads` worker threads.
///
/// Semantically identical to [`crate::kernels::apply_action`] with
/// `base = 0`, and bitwise identical at every thread count; small inputs
/// fall back to the single-threaded kernel.
///
/// # Panics
///
/// Panics if the action references a qubit outside the state, or if
/// `threads == 0`.
pub fn apply_action_parallel(amps: &mut [Complex64], action: &GateAction, threads: usize) {
    ChunkExecutor::new(threads).apply_flat(amps, action);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::StateVector;
    use qgpu_circuit::access::GateAction;
    use qgpu_circuit::generators::Benchmark;
    use qgpu_circuit::Operation;

    fn run_parallel(n: usize, b: Benchmark, threads: usize) -> StateVector {
        let c = b.generate(n);
        let mut s = StateVector::new_zero(n);
        for op in c.iter() {
            let action = GateAction::from_operation(op);
            apply_action_parallel(s.amps_mut(), &action, threads);
        }
        s
    }

    #[test]
    fn parallel_matches_serial() {
        // 16 qubits crosses the MIN_PARALLEL threshold.
        for b in [Benchmark::Qft, Benchmark::Gs, Benchmark::Hchain] {
            let serial = {
                let c = b.generate(16);
                let mut s = StateVector::new_zero(16);
                s.run(&c);
                s
            };
            let par = run_parallel(16, b, 4);
            assert!(par.max_deviation(&serial) < 1e-10, "{b} parallel mismatch");
        }
    }

    #[test]
    fn parallel_is_bitwise_identical_to_serial() {
        // Stronger than tolerance: partitioning work over threads must
        // not change a single bit of any amplitude.
        let serial = run_parallel(16, Benchmark::Qft, 1);
        for threads in [2, 4, 8] {
            let par = run_parallel(16, Benchmark::Qft, threads);
            let same =
                serial.amps().iter().zip(par.amps().iter()).all(|(a, b)| {
                    a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits()
                });
            assert!(same, "threads = {threads}");
        }
    }

    #[test]
    fn single_thread_falls_back() {
        let serial = {
            let c = Benchmark::Bv.generate(10);
            let mut s = StateVector::new_zero(10);
            s.run(&c);
            s
        };
        let par = run_parallel(10, Benchmark::Bv, 1);
        assert!(par.max_deviation(&serial) < 1e-12);
    }

    #[test]
    fn odd_thread_counts() {
        let serial = {
            let c = Benchmark::Iqp.generate(15);
            let mut s = StateVector::new_zero(15);
            s.run(&c);
            s
        };
        for threads in [2, 3, 5, 7] {
            let par = run_parallel(15, Benchmark::Iqp, threads);
            assert!(par.max_deviation(&serial) < 1e-10, "threads = {threads}");
        }
    }

    #[test]
    fn multi_qubit_dense_parallel() {
        // Swap has a 4-dimensional dense matrix: exercises the generic path.
        use qgpu_circuit::Gate;
        let mut a = StateVector::new_zero(15);
        let mut b = StateVector::new_zero(15);
        let prep = Benchmark::Rqc.generate(15);
        a.run(&prep);
        for op in prep.iter() {
            let action = GateAction::from_operation(op);
            apply_action_parallel(b.amps_mut(), &action, 4);
        }
        let sw = Operation::new(Gate::Swap, vec![3, 12]);
        a.apply(&sw);
        apply_action_parallel(b.amps_mut(), &GateAction::from_operation(&sw), 4);
        assert!(a.max_deviation(&b) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let mut s = StateVector::new_zero(4);
        let op = Operation::new(qgpu_circuit::Gate::H, vec![0]);
        apply_action_parallel(s.amps_mut(), &GateAction::from_operation(&op), 0);
    }
}
