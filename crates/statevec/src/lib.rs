//! Chunked full-state-vector storage and CPU gate kernels.
//!
//! This crate is the *functional* half of the Q-GPU simulator: it stores
//! the `2^n` complex amplitudes and updates them exactly, using `f64`
//! arithmetic. (The *timing* half — modelling where chunks live and what
//! data movement costs — is in `qgpu-device` and `qgpu-sched`; the
//! orchestrator in the `qgpu` crate drives both.)
//!
//! * [`StateVector`] — a flat amplitude vector with single-threaded and
//!   multi-threaded gate application; the reference implementation.
//! * [`ChunkedState`] — the paper's chunked layout (Figure 1): the state
//!   split into `2^chunk_bits`-amplitude chunks, with all-zero chunks
//!   stored sparsely (exactly what pruning exploits).
//! * [`ChunkExecutor`] — the shared worker pool that applies gate
//!   kernels (and fused runs) across disjoint chunks in parallel, with
//!   bit-exact results at every thread count.
//! * [`kernels`] — the low-level update routines shared by both layouts.
//! * [`measure`] — probabilities and sampling.
//!
//! # Examples
//!
//! ```
//! use qgpu_circuit::Circuit;
//! use qgpu_statevec::StateVector;
//!
//! let mut bell = Circuit::new(2);
//! bell.h(0).cx(0, 1);
//!
//! let mut state = StateVector::new_zero(2);
//! for op in bell.iter() {
//!     state.apply(op);
//! }
//! let probs = state.probabilities();
//! assert!((probs[0] - 0.5).abs() < 1e-12);
//! assert!((probs[3] - 0.5).abs() < 1e-12);
//! ```

pub mod chunked;
pub mod executor;
pub mod kernels;
pub mod measure;
pub mod observable;
pub mod parallel;
pub mod reference;
pub mod state;

pub use chunked::ChunkedState;
pub use executor::ChunkExecutor;
pub use state::StateVector;
