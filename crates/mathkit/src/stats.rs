//! Small statistics helpers used by the experiment harness.
//!
//! The repro binaries summarize per-circuit measurements (execution times,
//! compression ratios, residual distributions) with these types rather than
//! pulling in a full statistics crate.

use serde::{Deserialize, Serialize};

/// Online accumulator for mean / min / max / variance (Welford's method).
///
/// # Examples
///
/// ```
/// use qgpu_math::stats::OnlineStats;
///
/// let mut s = OnlineStats::new();
/// for x in [1.0, 2.0, 3.0, 4.0] {
///     s.push(x);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one sample.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 if empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Population variance (0 if fewer than 2 samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (+inf if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (-inf if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

impl Extend<f64> for OnlineStats {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for OnlineStats {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = OnlineStats::new();
        s.extend(iter);
        s
    }
}

/// Geometric mean of a sequence of positive values.
///
/// Speedup figures in the paper are averaged geometrically across circuits.
/// Returns 0 for an empty input.
///
/// # Examples
///
/// ```
/// use qgpu_math::stats::geometric_mean;
/// let g = geometric_mean([1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geometric_mean<I: IntoIterator<Item = f64>>(values: I) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0u64;
    for v in values {
        debug_assert!(v > 0.0, "geometric mean of non-positive value {v}");
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// A fixed-bin histogram over a closed range, used for residual
/// distribution analysis (Figure 10 of the paper).
///
/// # Examples
///
/// ```
/// use qgpu_math::stats::Histogram;
///
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// h.push(1.0);
/// h.push(9.5);
/// assert_eq!(h.counts()[0], 1);
/// assert_eq!(h.counts()[4], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds a sample, counting out-of-range values in under/overflow.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (x - self.lo) / (self.hi - self.lo);
            let bin = ((frac * self.counts.len() as f64) as usize).min(self.counts.len() - 1);
            self.counts[bin] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Samples below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the range's upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total samples recorded, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Midpoint of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn bin_center(&self, i: usize) -> f64 {
        assert!(i < self.counts.len());
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.lo + w * (i as f64 + 0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_constant_sequence() {
        let s: OnlineStats = std::iter::repeat_n(3.5, 10).collect();
        assert_eq!(s.mean(), 3.5);
        assert!(s.variance() < 1e-12);
        assert_eq!(s.count(), 10);
    }

    #[test]
    fn variance_matches_direct_formula() {
        let xs = [1.0, 2.0, 4.0, 8.0];
        let s: OnlineStats = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / 4.0;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / 4.0;
        assert!((s.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn geometric_mean_of_speedups() {
        // 2x and 8x average to 4x geometrically.
        assert!((geometric_mean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geometric_mean(std::iter::empty()), 0.0);
    }

    #[test]
    fn histogram_bins_and_flows() {
        let mut h = Histogram::new(-1.0, 1.0, 4);
        for x in [-2.0, -0.9, -0.1, 0.1, 0.9, 1.0, 5.0] {
            h.push(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn histogram_bin_center() {
        let h = Histogram::new(0.0, 4.0, 4);
        assert_eq!(h.bin_center(0), 0.5);
        assert_eq!(h.bin_center(3), 3.5);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn histogram_zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }
}
