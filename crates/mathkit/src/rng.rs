//! The workspace's one source of randomness: a pure splitmix64 hash.
//!
//! Every stochastic decision in the simulator — fault injection, noise
//! insertion, measurement collapse, shot sampling — is a pure function
//! of `(seed, salt, index, attempt)` through [`unit_draw`]. Nothing
//! holds mutable RNG state, so any component can replay any other
//! component's draws from the same key, runs are bit-reproducible
//! across thread counts and device counts, and golden fixtures can pin
//! stochastic behavior exactly.
//!
//! The `salt` namespaces independent streams. `qgpu-faults` derives its
//! salts from fault-site names; the stochastic-execution salts for the
//! engine live here ([`SALT_NOISE`], [`SALT_COLLAPSE`], [`SALT_SAMPLE`])
//! so circuit rewriting and engine collapse key off the same constants.

/// splitmix64: avalanches a 64-bit input into an independent-looking
/// 64-bit output. Passes BigCrush as a counter-based generator.
#[must_use]
pub fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)` keyed by `(seed, salt, index, attempt)`.
///
/// The top 53 bits of three chained [`mix`] rounds become the mantissa,
/// so every representable value is a multiple of 2⁻⁵³ — enough to
/// compare against probabilities without bias.
///
/// # Examples
///
/// ```
/// use qgpu_math::rng::unit_draw;
///
/// let u = unit_draw(42, 7, 0, 0);
/// assert!((0.0..1.0).contains(&u));
/// // Pure: the same key always replays the same draw.
/// assert_eq!(u, unit_draw(42, 7, 0, 0));
/// ```
#[must_use]
pub fn unit_draw(seed: u64, salt: u64, index: u64, attempt: u64) -> f64 {
    let h = mix(mix(mix(seed ^ salt).wrapping_add(index)).wrapping_add(attempt));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Salt for per-site noise-channel draws (ASCII "noisechn").
pub const SALT_NOISE: u64 = 0x6e6f_6973_6563_686e;

/// Salt for mid-circuit measurement collapse draws (ASCII "collapse").
pub const SALT_COLLAPSE: u64 = 0x636f_6c6c_6170_7365;

/// Salt for end-of-circuit shot sampling draws (ASCII "sampling").
pub const SALT_SAMPLE: u64 = 0x7361_6d70_6c69_6e67;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_pure_functions_of_the_key() {
        for seed in [0u64, 1, 42, u64::MAX] {
            for index in [0u64, 1, 1000] {
                let a = unit_draw(seed, SALT_NOISE, index, 0);
                let b = unit_draw(seed, SALT_NOISE, index, 0);
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn draws_live_in_the_unit_interval() {
        for i in 0..10_000u64 {
            let u = unit_draw(7, SALT_SAMPLE, i, 0);
            assert!((0.0..1.0).contains(&u), "draw {i} = {u}");
        }
    }

    #[test]
    fn salts_separate_streams() {
        // The three engine salts must give uncorrelated streams: no
        // index where two salts agree bit-for-bit over a long scan.
        for i in 0..1000u64 {
            let n = unit_draw(42, SALT_NOISE, i, 0);
            let c = unit_draw(42, SALT_COLLAPSE, i, 0);
            let s = unit_draw(42, SALT_SAMPLE, i, 0);
            assert_ne!(n.to_bits(), c.to_bits());
            assert_ne!(c.to_bits(), s.to_bits());
        }
    }

    #[test]
    fn draws_are_roughly_uniform() {
        let n = 100_000u64;
        let mean: f64 = (0..n)
            .map(|i| unit_draw(3, SALT_COLLAPSE, i, 0))
            .sum::<f64>()
            / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn mix_is_a_bijection_sample() {
        // Distinct inputs keep distinct outputs over a small scan.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix(i)));
        }
    }
}
