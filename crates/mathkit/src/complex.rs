//! A minimal `f64` complex number type.
//!
//! The simulator stores state vectors as flat arrays of [`Complex64`]. The
//! type is `repr(C)`, `Copy`, and exactly 16 bytes, so a state chunk can be
//! reinterpreted as a `&[f64]` for compression (see the `qgpu-compress`
//! crate) without any conversion cost.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A complex number backed by two `f64`s.
///
/// # Examples
///
/// ```
/// use qgpu_math::Complex64;
///
/// let i = Complex64::I;
/// assert_eq!(i * i, -Complex64::ONE);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
#[repr(C)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity, `0 + 0i`.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity, `1 + 0i`.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit, `0 + 1i`.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from real and imaginary parts.
    ///
    /// # Examples
    ///
    /// ```
    /// use qgpu_math::Complex64;
    /// let z = Complex64::new(3.0, -4.0);
    /// assert_eq!(z.abs(), 5.0);
    /// ```
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Returns `e^(i·theta)` — a unit complex number at angle `theta` radians.
    ///
    /// # Examples
    ///
    /// ```
    /// use qgpu_math::Complex64;
    /// let z = Complex64::cis(std::f64::consts::PI);
    /// assert!((z.re + 1.0).abs() < 1e-15);
    /// ```
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Complex64 {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Returns the complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Returns `|z|²`, the squared magnitude.
    ///
    /// For a state amplitude this is the measurement probability of the
    /// corresponding basis state.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Returns `|z|`, the magnitude.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Returns the argument (phase angle) in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplies by a real scalar.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        Complex64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Returns `true` if both parts are exactly zero.
    ///
    /// Zero-amplitude pruning in Q-GPU relies on *exact* zeros: an amplitude
    /// that has never been touched by a gate is bit-exactly `0.0`, so no
    /// epsilon is needed.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.re == 0.0 && self.im == 0.0
    }

    /// Returns `true` if `self` and `other` differ by at most `eps` in both
    /// components.
    #[inline]
    pub fn approx_eq(self, other: Complex64, eps: f64) -> bool {
        (self.re - other.re).abs() <= eps && (self.im - other.im).abs() <= eps
    }

    /// Fused multiply-add: `self * b + c`.
    ///
    /// This is the inner operation of every gate kernel
    /// (`amp' = m00 * a0 + m01 * a1`).
    #[inline]
    pub fn mul_add(self, b: Complex64, c: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Complex64) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex64) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64 {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Complex64 {
        self.scale(rhs)
    }
}

impl Mul<Complex64> for f64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Complex64) -> Complex64 {
        rhs.scale(self)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: Complex64) -> Complex64 {
        let d = rhs.norm_sqr();
        Complex64 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Complex64 {
        Complex64 {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl Sum for Complex64 {
    fn sum<I: Iterator<Item = Complex64>>(iter: I) -> Complex64 {
        iter.fold(Complex64::ZERO, |acc, z| acc + z)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    #[test]
    fn constants() {
        assert_eq!(Complex64::ZERO.norm_sqr(), 0.0);
        assert_eq!(Complex64::ONE.norm_sqr(), 1.0);
        assert_eq!(Complex64::I.norm_sqr(), 1.0);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, -Complex64::ONE);
    }

    #[test]
    fn mul_matches_formula() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, -1.0);
        let c = a * b;
        assert!((c.re - 5.0).abs() < EPS);
        assert!((c.im - 5.0).abs() < EPS);
    }

    #[test]
    fn div_inverts_mul() {
        let a = Complex64::new(0.3, -0.7);
        let b = Complex64::new(-1.5, 0.2);
        let c = (a * b) / b;
        assert!(c.approx_eq(a, EPS));
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let z = Complex64::cis(k as f64 * 0.5);
            assert!((z.norm_sqr() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn conj_negates_phase() {
        let z = Complex64::cis(0.7);
        assert!((z.conj().arg() + 0.7).abs() < EPS);
    }

    #[test]
    fn mul_add_matches_separate_ops() {
        let a = Complex64::new(1.5, -0.5);
        let b = Complex64::new(0.25, 2.0);
        let c = Complex64::new(-3.0, 1.0);
        assert!(a.mul_add(b, c).approx_eq(a * b + c, EPS));
    }

    #[test]
    fn is_zero_is_exact() {
        assert!(Complex64::ZERO.is_zero());
        assert!(!Complex64::new(1e-300, 0.0).is_zero());
    }

    #[test]
    fn sum_of_amplitudes() {
        let v = vec![Complex64::ONE, Complex64::I, Complex64::new(-1.0, -1.0)];
        let s: Complex64 = v.into_iter().sum();
        assert!(s.approx_eq(Complex64::ZERO, EPS));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_c() -> impl Strategy<Value = Complex64> {
            (-1e6f64..1e6, -1e6f64..1e6).prop_map(|(re, im)| Complex64::new(re, im))
        }

        proptest! {
            #[test]
            fn conj_is_involutive(z in arb_c()) {
                prop_assert_eq!(z.conj().conj(), z);
            }

            #[test]
            fn norm_sqr_is_z_times_conj(z in arb_c()) {
                let w = z * z.conj();
                prop_assert!((w.re - z.norm_sqr()).abs() <= 1e-6 * z.norm_sqr().max(1.0));
                prop_assert!(w.im.abs() <= 1e-6 * z.norm_sqr().max(1.0));
            }

            #[test]
            fn multiplication_commutes(a in arb_c(), b in arb_c()) {
                let x = a * b;
                let y = b * a;
                prop_assert!(x.approx_eq(y, 1e-6 * (x.abs().max(1.0))));
            }

            #[test]
            fn distributive_law(a in arb_c(), b in arb_c(), c in arb_c()) {
                let lhs = a * (b + c);
                let rhs = a * b + a * c;
                let scale = lhs.abs().max(1.0);
                prop_assert!(lhs.approx_eq(rhs, 1e-6 * scale));
            }

            #[test]
            fn cis_multiplication_adds_angles(a in -3.0f64..3.0, b in -3.0f64..3.0) {
                let lhs = Complex64::cis(a) * Complex64::cis(b);
                let rhs = Complex64::cis(a + b);
                prop_assert!(lhs.approx_eq(rhs, 1e-9));
            }
        }
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Complex64::new(1.0, -2.0).to_string(), "1-2i");
        assert_eq!(Complex64::new(1.0, 2.0).to_string(), "1+2i");
    }
}
