//! Fixed-order reductions for bit-exact determinism.
//!
//! Floating-point addition is not associative, so a sum's bit pattern
//! depends on the order partial results are combined. Completion-order
//! accumulation (whichever thread finishes first adds first) makes norms
//! and measurement probabilities vary run-to-run and with the thread
//! count. This module pins the order instead:
//!
//! 1. the input is cut into fixed-size blocks of [`REDUCE_BLOCK`]
//!    elements — block boundaries depend only on the input length, never
//!    on how many threads computed them;
//! 2. each block is summed left-to-right;
//! 3. the per-block partials are combined with a deterministic pairwise
//!    tree ([`pairwise_sum`] / [`pairwise_sum_complex`]), splitting at the
//!    midpoint at every level.
//!
//! Any number of threads may compute step 2 in parallel (blocks are
//! independent), and step 3 is a cheap serial pass — so the result is
//! bitwise identical at every thread count, and as a bonus the pairwise
//! tree has O(√n·ε)-style error growth instead of the serial O(n·ε).

use crate::complex::Complex64;

/// Number of elements per reduction block. A block of f64 norms is 32 KiB
/// of amplitude reads — L1/L2 resident — and the partial-sum vector for a
/// 2^30-amplitude state stays under 2 MiB.
pub const REDUCE_BLOCK: usize = 4096;

/// Sums `values` with a deterministic pairwise tree: split at the
/// midpoint, sum each half recursively, add the two halves.
///
/// The association depends only on `values.len()`, so any two callers
/// that produce the same slice get the bitwise-same sum.
///
/// # Examples
///
/// ```
/// use qgpu_math::reduce::pairwise_sum;
///
/// let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
/// assert_eq!(pairwise_sum(&xs), 4950.0);
/// assert_eq!(pairwise_sum(&[]), 0.0);
/// ```
pub fn pairwise_sum(values: &[f64]) -> f64 {
    // Small base case: a short left-to-right run, still length-determined.
    if values.len() <= 4 {
        let mut acc = 0.0;
        for &v in values {
            acc += v;
        }
        return acc;
    }
    let mid = values.len() / 2;
    pairwise_sum(&values[..mid]) + pairwise_sum(&values[mid..])
}

/// Complex counterpart of [`pairwise_sum`], with the identical tree shape.
pub fn pairwise_sum_complex(values: &[Complex64]) -> Complex64 {
    if values.len() <= 4 {
        let mut acc = Complex64::ZERO;
        for &v in values {
            acc += v;
        }
        return acc;
    }
    let mid = values.len() / 2;
    pairwise_sum_complex(&values[..mid]) + pairwise_sum_complex(&values[mid..])
}

/// Number of [`REDUCE_BLOCK`]-sized blocks covering `len` elements.
pub fn num_blocks(len: usize) -> usize {
    len.div_ceil(REDUCE_BLOCK)
}

/// The element range of block `block` for an input of `len` elements.
pub fn block_range(block: usize, len: usize) -> core::ops::Range<usize> {
    let start = block * REDUCE_BLOCK;
    start..len.min(start + REDUCE_BLOCK)
}

/// Neumaier-compensated sum of a block of values, left-to-right.
///
/// The improved Kahan scheme: the running compensation absorbs the
/// rounding error of every addition regardless of which operand is
/// larger, so the block partial is accurate to ~1 ulp of the true sum
/// even for ill-conditioned inputs. Order is strictly left-to-right, so
/// the result depends only on the slice contents.
fn neumaier_sum(values: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0f64;
    let mut comp = 0.0f64;
    for v in values {
        let t = sum + v;
        comp += if sum.abs() >= v.abs() {
            (sum - t) + v
        } else {
            (v - t) + sum
        };
        sum = t;
    }
    sum + comp
}

/// Squared 2-norm of `amps` (`Σ |aᵢ|²`) with compensated blockwise
/// summation: each [`REDUCE_BLOCK`] block is Neumaier-summed, and the
/// block partials combine through the same deterministic pairwise tree
/// as every other reduction in the engine.
///
/// Deterministic in the strong sense the integrity checks need: the
/// result depends only on the amplitudes, never on thread count or
/// evaluation order, and the compensation keeps the error near 1 ulp so
/// invariant tolerances can be tight without false positives.
///
/// # Examples
///
/// ```
/// use qgpu_math::complex::Complex64;
/// use qgpu_math::reduce::norm_sqr_compensated;
///
/// let amps = vec![Complex64::new(0.5, 0.0); 4];
/// assert_eq!(norm_sqr_compensated(&amps), 1.0);
/// assert_eq!(norm_sqr_compensated(&[]), 0.0);
/// ```
pub fn norm_sqr_compensated(amps: &[Complex64]) -> f64 {
    let partials: Vec<f64> = (0..num_blocks(amps.len()))
        .map(|b| {
            neumaier_sum(
                amps[block_range(b, amps.len())]
                    .iter()
                    .map(|a| a.norm_sqr()),
            )
        })
        .collect();
    pairwise_sum(&partials)
}

/// One-pass `(squared 2-norm, max per-amplitude |aᵢ|²)` of `amps`.
///
/// The norm uses the same compensated blockwise scheme as
/// [`norm_sqr_compensated`] (bitwise-identical result); the peak rides
/// along for free and backs the magnitude-preservation check on
/// diagonal kernels.
pub fn norm_and_peak(amps: &[Complex64]) -> (f64, f64) {
    let mut peak = 0.0f64;
    let partials: Vec<f64> = (0..num_blocks(amps.len()))
        .map(|b| {
            neumaier_sum(amps[block_range(b, amps.len())].iter().map(|a| {
                let n = a.norm_sqr();
                if n > peak {
                    peak = n;
                }
                n
            }))
        })
        .collect();
    (pairwise_sum(&partials), peak)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert_eq!(pairwise_sum(&[]), 0.0);
        assert_eq!(pairwise_sum(&[2.5]), 2.5);
        assert_eq!(pairwise_sum_complex(&[]), Complex64::ZERO);
    }

    #[test]
    fn matches_exact_sum_on_integers() {
        // Integer-valued f64s sum exactly in any order.
        for n in [1usize, 2, 3, 5, 17, 100, 4097] {
            let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
            assert_eq!(pairwise_sum(&xs), (n * (n - 1) / 2) as f64, "n={n}");
        }
    }

    #[test]
    fn tree_shape_is_length_determined() {
        // Two slices with equal contents must reduce to the same bits.
        let xs: Vec<f64> = (0..1000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let ys = xs.clone();
        assert_eq!(pairwise_sum(&xs).to_bits(), pairwise_sum(&ys).to_bits());
    }

    #[test]
    fn pairwise_beats_serial_on_ill_conditioned_sum() {
        // 1 followed by many tiny values: serial accumulation loses them
        // one by one; pairwise keeps them grouped.
        let mut xs = vec![1.0f64];
        xs.extend(std::iter::repeat_n(1e-16, 1 << 16));
        let serial: f64 = xs.iter().sum();
        let pairwise = pairwise_sum(&xs);
        let exact = 1.0 + 1e-16 * (1 << 16) as f64;
        assert!((pairwise - exact).abs() <= (serial - exact).abs());
        assert!((pairwise - exact).abs() < 1e-12);
    }

    #[test]
    fn complex_tree_matches_componentwise() {
        let xs: Vec<Complex64> = (0..333)
            .map(|i| Complex64::new(i as f64, -(i as f64) / 3.0))
            .collect();
        let s = pairwise_sum_complex(&xs);
        let re: Vec<f64> = xs.iter().map(|c| c.re).collect();
        let im: Vec<f64> = xs.iter().map(|c| c.im).collect();
        assert_eq!(s.re.to_bits(), pairwise_sum(&re).to_bits());
        assert_eq!(s.im.to_bits(), pairwise_sum(&im).to_bits());
    }

    #[test]
    fn compensated_norm_is_exact_on_representable_inputs() {
        // 4 × 0.25 sums exactly; so does a big block of equal powers of 2.
        let amps = vec![Complex64::new(0.5, 0.0); 4];
        assert_eq!(norm_sqr_compensated(&amps), 1.0);
        let n = 1usize << 14;
        let a = (1.0 / n as f64).sqrt();
        let amps: Vec<Complex64> = (0..n).map(|_| Complex64::new(a, 0.0)).collect();
        assert!((norm_sqr_compensated(&amps) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn compensated_norm_beats_serial_on_ill_conditioned_input() {
        // One dominant amplitude plus a sea of tiny ones: the naive
        // serial sum drops the tail; the compensated sum keeps it.
        let mut amps = vec![Complex64::new(1.0, 0.0)];
        amps.extend(std::iter::repeat_n(Complex64::new(1e-9, 0.0), 1 << 15));
        let exact = 1.0 + 1e-18 * (1 << 15) as f64;
        let serial: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        let comp = norm_sqr_compensated(&amps);
        assert!((comp - exact).abs() <= (serial - exact).abs());
        // Within a couple of ulps of 1.0 — the best any representable
        // result can do.
        assert!((comp - exact).abs() < 4.0 * f64::EPSILON);
    }

    #[test]
    fn compensated_norm_is_bitwise_reproducible() {
        let amps: Vec<Complex64> = (0..10_000)
            .map(|i| Complex64::new(1.0 / (i as f64 + 1.0), -(i as f64).sin()))
            .collect();
        let again = amps.clone();
        assert_eq!(
            norm_sqr_compensated(&amps).to_bits(),
            norm_sqr_compensated(&again).to_bits()
        );
    }

    #[test]
    fn norm_and_peak_matches_norm_and_finds_the_max() {
        let amps: Vec<Complex64> = (0..5000)
            .map(|i| Complex64::new((i as f64).cos() / 100.0, (i as f64).sin() / 90.0))
            .collect();
        let (norm, peak) = norm_and_peak(&amps);
        assert_eq!(norm.to_bits(), norm_sqr_compensated(&amps).to_bits());
        let expect_peak = amps.iter().map(|a| a.norm_sqr()).fold(0.0f64, f64::max);
        assert_eq!(peak, expect_peak);
        assert_eq!(norm_and_peak(&[]), (0.0, 0.0));
    }

    #[test]
    fn block_ranges_tile_the_input() {
        for len in [
            0usize,
            1,
            REDUCE_BLOCK - 1,
            REDUCE_BLOCK,
            REDUCE_BLOCK + 1,
            3 * REDUCE_BLOCK + 7,
        ] {
            let mut covered = 0;
            for b in 0..num_blocks(len) {
                let r = block_range(b, len);
                assert_eq!(r.start, covered);
                assert!(!r.is_empty());
                covered = r.end;
            }
            assert_eq!(covered, len);
        }
    }
}
