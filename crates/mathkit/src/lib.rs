//! Math utilities for the Q-GPU quantum circuit simulator.
//!
//! This crate provides the low-level numeric building blocks shared by the
//! rest of the workspace:
//!
//! * [`Complex64`] — a `f64`-based complex number with the arithmetic needed
//!   by state-vector simulation (no external `num` dependency),
//! * [`bits`] — bit-manipulation helpers used by gate kernels and chunk
//!   indexing (inserting zero bits, masks, log2 helpers),
//! * [`rng`] — the pure splitmix64 keyed-draw primitive behind every
//!   stochastic decision in the workspace (faults, noise, collapse,
//!   sampling),
//! * [`stats`] — small online statistics and histogram types used by the
//!   experiment harness.
//!
//! # Examples
//!
//! ```
//! use qgpu_math::Complex64;
//!
//! let h = Complex64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
//! let amp = h * Complex64::ONE;
//! assert!((amp.norm_sqr() - 0.5).abs() < 1e-12);
//! ```

pub mod bits;
pub mod complex;
pub mod reduce;
pub mod rng;
pub mod stats;

pub use complex::Complex64;
