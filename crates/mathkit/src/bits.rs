//! Bit-manipulation helpers for amplitude indexing and chunk bookkeeping.
//!
//! Gate kernels enumerate amplitude pairs by inserting a zero bit at the
//! target-qubit position of a compressed index (see
//! [`insert_zero_bit`]); the pruning machinery of Q-GPU (Algorithm 1 in the
//! paper) works with qubit *involvement* masks built from these helpers.

/// Inserts a `0` bit at position `pos` of `index`, shifting the bits at and
/// above `pos` left by one.
///
/// Given a compressed index over `n-1` bits, this produces the full `n`-bit
/// amplitude index whose `pos`-th bit is `0`; OR-ing with `1 << pos` yields
/// its partner with bit `pos` set. This is the standard enumeration of
/// amplitude pairs for a single-qubit gate (Equation 8 of the paper).
///
/// # Examples
///
/// ```
/// use qgpu_math::bits::insert_zero_bit;
/// assert_eq!(insert_zero_bit(0b101, 1), 0b1001);
/// assert_eq!(insert_zero_bit(0b111, 0), 0b1110);
/// ```
#[inline]
pub fn insert_zero_bit(index: usize, pos: u32) -> usize {
    let low_mask = (1usize << pos) - 1;
    let low = index & low_mask;
    let high = index & !low_mask;
    (high << 1) | low
}

/// Inserts `0` bits at the (distinct) positions listed in `positions`,
/// lowest-position first.
///
/// `positions` must be sorted ascending; each position refers to the bit
/// index in the *output* value.
///
/// # Panics
///
/// Debug-asserts that `positions` is sorted and free of duplicates.
///
/// # Examples
///
/// ```
/// use qgpu_math::bits::insert_zero_bits;
/// // Insert zeros at output bits 0 and 2: 0b11 -> 0b1010
/// assert_eq!(insert_zero_bits(0b11, &[0, 2]), 0b1010);
/// ```
#[inline]
pub fn insert_zero_bits(mut index: usize, positions: &[u32]) -> usize {
    debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
    for &pos in positions {
        index = insert_zero_bit(index, pos);
    }
    index
}

/// Returns a mask with the lowest `n` bits set.
///
/// # Examples
///
/// ```
/// use qgpu_math::bits::low_mask;
/// assert_eq!(low_mask(3), 0b111);
/// assert_eq!(low_mask(0), 0);
/// ```
#[inline]
pub fn low_mask(n: u32) -> usize {
    if n as usize >= usize::BITS as usize {
        usize::MAX
    } else {
        (1usize << n) - 1
    }
}

/// Returns the position of the lowest set bit, or `None` for zero.
///
/// Used by the dynamic chunk-size selection of Algorithm 1: the chunk size
/// is chosen as the position of the least non-zero bit of the involvement
/// mask.
///
/// # Examples
///
/// ```
/// use qgpu_math::bits::lowest_set_bit;
/// assert_eq!(lowest_set_bit(0b1100), Some(2));
/// assert_eq!(lowest_set_bit(0), None);
/// ```
#[inline]
pub fn lowest_set_bit(x: u64) -> Option<u32> {
    if x == 0 {
        None
    } else {
        Some(x.trailing_zeros())
    }
}

/// Integer base-2 logarithm of a power of two.
///
/// # Panics
///
/// Panics if `x` is not a power of two.
///
/// # Examples
///
/// ```
/// use qgpu_math::bits::log2_exact;
/// assert_eq!(log2_exact(1024), 10);
/// ```
#[inline]
pub fn log2_exact(x: usize) -> u32 {
    assert!(x.is_power_of_two(), "log2_exact of non-power-of-two {x}");
    x.trailing_zeros()
}

/// Ceiling division for `usize`.
///
/// # Examples
///
/// ```
/// use qgpu_math::bits::ceil_div;
/// assert_eq!(ceil_div(10, 3), 4);
/// assert_eq!(ceil_div(9, 3), 3);
/// ```
#[inline]
pub fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b)
}

/// Iterator over the positions of set bits in a `u64` mask, ascending.
///
/// # Examples
///
/// ```
/// use qgpu_math::bits::iter_set_bits;
/// let v: Vec<u32> = iter_set_bits(0b1011).collect();
/// assert_eq!(v, [0, 1, 3]);
/// ```
pub fn iter_set_bits(mask: u64) -> impl Iterator<Item = u32> {
    SetBits { mask }
}

struct SetBits {
    mask: u64,
}

impl Iterator for SetBits {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        if self.mask == 0 {
            return None;
        }
        let pos = self.mask.trailing_zeros();
        self.mask &= self.mask - 1;
        Some(pos)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.mask.count_ones() as usize;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_zero_bit_at_top() {
        // Inserting at a position above all bits is a no-op on the value.
        assert_eq!(insert_zero_bit(0b101, 10), 0b101);
    }

    #[test]
    fn insert_zero_bit_enumerates_pairs() {
        // For target qubit 1 in a 3-qubit system, the 4 compressed indices
        // must enumerate exactly the indices with bit 1 clear.
        let got: Vec<usize> = (0..4).map(|i| insert_zero_bit(i, 1)).collect();
        assert_eq!(got, [0b000, 0b001, 0b100, 0b101]);
    }

    #[test]
    fn insert_zero_bits_two_targets() {
        // Targets {0, 2}: compressed 2-bit index spreads into bits 1 and 3.
        let got: Vec<usize> = (0..4).map(|i| insert_zero_bits(i, &[0, 2])).collect();
        assert_eq!(got, [0b0000, 0b0010, 0b1000, 0b1010]);
    }

    #[test]
    fn low_mask_saturates() {
        assert_eq!(low_mask(usize::BITS), usize::MAX);
    }

    #[test]
    fn set_bits_roundtrip() {
        let mask = 0b1010_0110_u64;
        let rebuilt = iter_set_bits(mask).fold(0u64, |m, b| m | (1 << b));
        assert_eq!(rebuilt, mask);
    }

    proptest! {
        #[test]
        fn insert_zero_bit_clears_target(idx in 0usize..(1 << 20), pos in 0u32..20) {
            let full = insert_zero_bit(idx, pos);
            prop_assert_eq!(full & (1 << pos), 0);
        }

        #[test]
        fn insert_zero_bit_is_injective(a in 0usize..(1 << 16), b in 0usize..(1 << 16), pos in 0u32..16) {
            prop_assume!(a != b);
            prop_assert_ne!(insert_zero_bit(a, pos), insert_zero_bit(b, pos));
        }

        #[test]
        fn insert_zero_bit_preserves_other_bits(idx in 0usize..(1 << 20), pos in 0u32..20) {
            let full = insert_zero_bit(idx, pos);
            // Removing the inserted bit recovers the original index.
            let low = full & ((1 << pos) - 1);
            let high = (full >> 1) & !((1usize << pos) - 1);
            prop_assert_eq!(high | low, idx);
        }
    }
}
