//! Qubit-involvement analysis (paper §IV-B).
//!
//! A qubit is *involved* once any gate has acted on it. Until then, its
//! state remains |0⟩ and every amplitude with that qubit's bit set is
//! guaranteed zero — the source of Q-GPU's pruning opportunity. This
//! module computes the involvement trajectory of a circuit, which drives
//! Table II ("operations before all qubits are involved") and Figure 9
//! (involvement curves under different gate orders).

use crate::circuit::Circuit;

/// The involvement mask after each operation of a circuit.
///
/// `masks[k]` is the `u64` bitmask of involved qubits after operations
/// `0..=k` have been applied (so `masks.len() == circuit.len()`).
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Circuit, involvement::involvement_sequence};
///
/// let mut c = Circuit::new(3);
/// c.h(0).cx(0, 2).h(1);
/// let seq = involvement_sequence(&c);
/// assert_eq!(seq, vec![0b001, 0b101, 0b111]);
/// ```
pub fn involvement_sequence(circuit: &Circuit) -> Vec<u64> {
    let mut mask = 0u64;
    circuit
        .iter()
        .map(|op| {
            mask |= op.qubit_mask();
            mask
        })
        .collect()
}

/// Number of operations executed before every qubit has been involved.
///
/// Returns `circuit.len()` if some qubit is never touched. This is the
/// "number of operations before all qubit involvement" column of the
/// paper's Table II.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Circuit, involvement::ops_until_full_involvement};
///
/// let mut c = Circuit::new(2);
/// c.h(0).z(0).cx(0, 1).h(1);
/// assert_eq!(ops_until_full_involvement(&c), 3);
/// ```
pub fn ops_until_full_involvement(circuit: &Circuit) -> usize {
    let full = full_mask(circuit.num_qubits());
    let mut mask = 0u64;
    for (i, op) in circuit.iter().enumerate() {
        mask |= op.qubit_mask();
        if mask == full {
            return i + 1;
        }
    }
    circuit.len()
}

/// Number of involved qubits after each operation (the y-axis of the
/// paper's Figure 9, with the involvement mask reduced to a count).
pub fn involvement_counts(circuit: &Circuit) -> Vec<u32> {
    involvement_sequence(circuit)
        .into_iter()
        .map(|m| m.count_ones())
        .collect()
}

/// Area under the involvement curve, normalized to `[0, 1]`: the mean
/// fraction of qubits involved across the circuit's operations. Lower
/// means more of the circuit executes with prunable subspace — a single
/// scalar ranking of gate orders, sharper than "ops before full
/// involvement" when curves cross (used alongside the paper's Figure 9).
///
/// Returns 1.0 for an empty circuit (nothing prunable).
pub fn involvement_integral(circuit: &Circuit) -> f64 {
    if circuit.is_empty() {
        return 1.0;
    }
    let n = circuit.num_qubits() as f64;
    let counts = involvement_counts(circuit);
    counts.iter().map(|&c| c as f64 / n).sum::<f64>() / counts.len() as f64
}

/// The all-involved mask for `n` qubits.
///
/// # Panics
///
/// Panics if `n` is 0 or greater than 64.
pub fn full_mask(n: usize) -> u64 {
    assert!(n > 0 && n <= 64);
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Summary row of Table II for one circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct InvolvementSummary {
    /// Total number of operations in the circuit.
    pub total_ops: usize,
    /// Operations before all qubits are involved.
    pub ops_before_full: usize,
    /// `ops_before_full / total_ops`, as the paper's percentage column.
    pub percentage: f64,
}

/// Computes the Table II row for `circuit`.
pub fn summarize(circuit: &Circuit) -> InvolvementSummary {
    let total_ops = circuit.len();
    let ops_before_full = ops_until_full_involvement(circuit);
    InvolvementSummary {
        total_ops,
        ops_before_full,
        percentage: if total_ops == 0 {
            0.0
        } else {
            100.0 * ops_before_full as f64 / total_ops as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Benchmark;

    #[test]
    fn sequence_is_monotone() {
        let c = Benchmark::Hchain.generate(8);
        let seq = involvement_sequence(&c);
        for w in seq.windows(2) {
            assert_eq!(w[0] & w[1], w[0], "involvement must only grow");
        }
    }

    #[test]
    fn full_mask_boundaries() {
        assert_eq!(full_mask(1), 1);
        assert_eq!(full_mask(3), 0b111);
        assert_eq!(full_mask(64), u64::MAX);
    }

    #[test]
    fn untouched_qubit_reports_total_len() {
        let mut c = Circuit::new(3);
        c.h(0).h(1); // qubit 2 never involved
        assert_eq!(ops_until_full_involvement(&c), 2);
        assert_eq!(involvement_sequence(&c).last(), Some(&0b011));
    }

    #[test]
    fn counts_match_sequence() {
        let c = Benchmark::Gs.generate(6);
        let seq = involvement_sequence(&c);
        let counts = involvement_counts(&c);
        for (m, c) in seq.iter().zip(counts.iter()) {
            assert_eq!(m.count_ones(), *c);
        }
    }

    #[test]
    fn summary_percentage() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(0).h(1);
        let s = summarize(&c);
        assert_eq!(s.total_ops, 4);
        assert_eq!(s.ops_before_full, 2);
        assert!((s.percentage - 50.0).abs() < 1e-12);
    }

    #[test]
    fn integral_ranks_orders() {
        // A circuit that involves everything at once integrates to ~1;
        // one that ramps up linearly integrates to ~0.5.
        let mut eager = Circuit::new(4);
        eager.h(0).h(1).h(2).h(3);
        for _ in 0..20 {
            eager.t(0);
        }
        let mut lazy = Circuit::new(4);
        for q in 0..4 {
            lazy.h(q);
            for _ in 0..5 {
                lazy.t(q);
            }
        }
        assert!(involvement_integral(&eager) > 0.9);
        assert!(involvement_integral(&lazy) < 0.75);
        assert_eq!(involvement_integral(&Circuit::new(3)), 1.0);
    }

    #[test]
    fn iqp_involves_late_qft_early() {
        // The qualitative property behind Table II: iqp has a much larger
        // fraction of operations before full involvement than qft.
        let iqp = summarize(&Benchmark::Iqp.generate(16));
        let qft = summarize(&Benchmark::Qft.generate(16));
        assert!(
            iqp.percentage > 2.0 * qft.percentage,
            "iqp {:.1}% should dwarf qft {:.1}%",
            iqp.percentage,
            qft.percentage
        );
    }
}
