//! Gate fusion: collapse runs of compatible adjacent gates into one kernel.
//!
//! Chunked simulation pays one full pass over every dense chunk per gate
//! (paper §III-B), so the pass count — not the per-amplitude arithmetic —
//! dominates wall-clock time for phase-heavy circuits like `qft` and `iqp`.
//! This module shrinks the pass count by merging *adjacent* gates:
//!
//! * a run of single-qubit gates on the same qubit collapses into one
//!   2×2 matrix (the product of the run, in application order);
//! * a run of diagonal gates collapses into one diagonal kernel over the
//!   union of their qubits, capped at [`MAX_FUSED_DIAG_QUBITS`] so the
//!   merged phase table stays cache-resident.
//!
//! Fusion is **adjacency-only**: gates are never commuted past intervening
//! operations, so the flattened order of a fused program is exactly the
//! source order — trivially a valid topological order of the circuit's
//! [`GateDag`](crate::dag::GateDag). Scheduling passes that *do* reorder
//! (e.g. the forward-looking pass) therefore run before fusion; clustering
//! same-qubit gates first makes runs longer and fusion stronger.
//!
//! Each [`FusedOp`] carries two executable forms:
//!
//! * [`actions`](FusedOp::actions) — the member gates in source order, for
//!   *exact replay*: applying them one after another inside a single visit
//!   to each chunk performs bit-for-bit the same floating-point operations
//!   as the unfused circuit, so fusion cannot change the state at all;
//! * [`collapsed`](FusedOp::collapsed) — the single merged kernel, used by
//!   the device timing model (one kernel launch per chunk visit) and by
//!   the collapsed fast path, whose different rounding stays within normal
//!   f64 tolerance of the exact result.

use qgpu_math::Complex64;

use crate::access::GateAction;
use crate::circuit::Circuit;
use crate::gate::{Gate, Matrix};

/// Cap on the qubit-union size of a fused diagonal run: the merged phase
/// table has `2^n` entries, and 64 × 16 B = 1 KiB stays comfortably in L1.
pub const MAX_FUSED_DIAG_QUBITS: usize = 6;

/// A maximal run of adjacent fusible gates, executable either exactly
/// (member by member) or as one collapsed kernel.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{fuse, Circuit, Gate};
///
/// let mut c = Circuit::new(2);
/// c.apply(Gate::H, &[0]);
/// c.apply(Gate::T, &[0]);
/// c.apply(Gate::Cp(0.5), &[0, 1]);
/// let program = fuse::fuse(&c);
/// assert_eq!(program.len(), 2); // [H·T on q0], [cp]
/// assert_eq!(program[0].source_gates(), 2);
/// assert!(program[0].is_fused());
/// ```
#[derive(Debug, Clone)]
pub struct FusedOp {
    /// Member actions in source order — the exact-replay form.
    actions: Vec<GateAction>,
    /// The single merged kernel equivalent to the whole run.
    collapsed: GateAction,
    /// OR of the member operations' qubit masks.
    qubit_mask: u64,
    /// Number of source gates merged into this op.
    source_gates: usize,
}

impl FusedOp {
    /// The member actions in source order; applying them sequentially is
    /// bit-identical to the unfused circuit.
    pub fn actions(&self) -> &[GateAction] {
        &self.actions
    }

    /// The single kernel equivalent to the run (2×2 matrix product or
    /// merged diagonal). For unfused singletons this is the plain action.
    pub fn collapsed(&self) -> &GateAction {
        &self.collapsed
    }

    /// OR of the qubit masks of every member gate.
    pub fn qubit_mask(&self) -> u64 {
        self.qubit_mask
    }

    /// Number of source gates in this op (1 for an unfused singleton).
    pub fn source_gates(&self) -> usize {
        self.source_gates
    }

    /// `true` when more than one source gate was merged.
    pub fn is_fused(&self) -> bool {
        self.source_gates > 1
    }
}

/// How the open run can keep absorbing gates.
enum RunKind {
    /// Single-qubit gates (dense or diagonal) on one fixed qubit; the
    /// collapsed form is the accumulated 2×2 product.
    Dense1q { qubit: usize, acc: Matrix },
    /// Diagonal gates; the collapsed form is a merged phase table over the
    /// sorted union of the member qubits.
    Diag {
        qubits: Vec<usize>,
        dvec: Vec<Complex64>,
    },
    /// Anything else (multi-qubit dense, controlled dense): never absorbs.
    Opaque,
}

/// A run still open for absorption.
struct Pending {
    actions: Vec<GateAction>,
    mask: u64,
    kind: RunKind,
}

impl Pending {
    fn start(action: GateAction, mask: u64) -> Pending {
        let kind = match &action {
            GateAction::Diagonal { qubits, dvec } => {
                let (qubits, dvec) = merge_diagonals(&[], &[Complex64::ONE], qubits, dvec);
                RunKind::Diag { qubits, dvec }
            }
            GateAction::ControlledDense {
                controls,
                mixing,
                matrix,
            } if controls.is_empty() && mixing.len() == 1 => RunKind::Dense1q {
                qubit: mixing[0],
                acc: matrix.clone(),
            },
            GateAction::ControlledDense { .. } => RunKind::Opaque,
        };
        Pending {
            actions: vec![action],
            mask,
            kind,
        }
    }

    /// Tries to fold `action` into the open run; on success the action is
    /// recorded and the collapsed form updated.
    fn try_absorb(&mut self, action: &GateAction, mask: u64) -> bool {
        match (&mut self.kind, action) {
            (RunKind::Opaque, _) => false,
            (
                RunKind::Dense1q { qubit, acc },
                GateAction::ControlledDense {
                    controls,
                    mixing,
                    matrix,
                },
            ) if controls.is_empty() && mixing.as_slice() == [*qubit] => {
                // v ← M(acc·v), so the product grows on the left.
                *acc = matrix.matmul(acc);
                self.accept(action, mask)
            }
            (RunKind::Dense1q { qubit, acc }, GateAction::Diagonal { qubits, dvec })
                if qubits.as_slice() == [*qubit] =>
            {
                *acc = diagonal_as_matrix(dvec).matmul(acc);
                self.accept(action, mask)
            }
            (
                RunKind::Diag { qubits, dvec },
                GateAction::Diagonal {
                    qubits: q2,
                    dvec: d2,
                },
            ) => {
                let union = sorted_union(qubits, q2);
                if union.len() > MAX_FUSED_DIAG_QUBITS {
                    return false;
                }
                let (qubits_m, dvec_m) = merge_diagonals(qubits, dvec, q2, d2);
                (*qubits, *dvec) = (qubits_m, dvec_m);
                self.accept(action, mask)
            }
            (
                RunKind::Diag { qubits, dvec },
                GateAction::ControlledDense {
                    controls,
                    mixing,
                    matrix,
                },
            ) if controls.is_empty() && mixing.len() == 1 && qubits.as_slice() == [mixing[0]] => {
                // A pure-diagonal run confined to this one qubit upgrades to
                // a dense 1q run.
                let acc = matrix.matmul(&diagonal_as_matrix(dvec));
                self.kind = RunKind::Dense1q {
                    qubit: mixing[0],
                    acc,
                };
                self.accept(action, mask)
            }
            _ => false,
        }
    }

    fn accept(&mut self, action: &GateAction, mask: u64) -> bool {
        self.actions.push(action.clone());
        self.mask |= mask;
        true
    }

    fn finish(self) -> FusedOp {
        let source_gates = self.actions.len();
        let collapsed = if source_gates == 1 {
            // Keep the original action so a singleton plans and times
            // exactly like the unfused path.
            self.actions[0].clone()
        } else {
            match self.kind {
                RunKind::Dense1q { qubit, acc } => GateAction::ControlledDense {
                    controls: Vec::new(),
                    mixing: vec![qubit],
                    matrix: acc,
                },
                RunKind::Diag { qubits, dvec } => GateAction::Diagonal { qubits, dvec },
                RunKind::Opaque => unreachable!("opaque runs never absorb"),
            }
        };
        FusedOp {
            actions: self.actions,
            collapsed,
            qubit_mask: self.mask,
            source_gates,
        }
    }
}

/// One step of an executable program: either a fused unitary kernel or a
/// non-unitary stochastic operation that the engine must execute as a
/// synchronization point.
///
/// Measurements and resets are **fusion barriers**: no unitary run ever
/// absorbs across one, because collapse changes the state in a way that
/// depends on amplitudes at that exact point in the order.
#[derive(Debug, Clone)]
pub enum ProgramOp {
    /// A maximal run of fused unitary gates.
    Unitary(FusedOp),
    /// Mid-circuit measurement collapse of `qubit`.
    Measure {
        /// The measured qubit.
        qubit: usize,
    },
    /// Mid-circuit reset of `qubit` to |0⟩ (collapse, then flip on
    /// outcome 1).
    Reset {
        /// The reset qubit.
        qubit: usize,
    },
}

impl ProgramOp {
    /// OR of the qubit masks this step touches.
    pub fn qubit_mask(&self) -> u64 {
        match self {
            ProgramOp::Unitary(f) => f.qubit_mask(),
            ProgramOp::Measure { qubit } | ProgramOp::Reset { qubit } => 1u64 << qubit,
        }
    }

    /// The fused unitary kernel, if this step is one.
    pub fn unitary(&self) -> Option<&FusedOp> {
        match self {
            ProgramOp::Unitary(f) => Some(f),
            _ => None,
        }
    }
}

/// Fuses a circuit — which may contain measurements and resets — into a
/// program of maximal unitary runs separated by non-unitary barriers.
///
/// The flattened member order equals the source order — fusion never
/// reorders, only groups — and every [`Gate::Measure`] / [`Gate::Reset`]
/// becomes its own [`ProgramOp`], flushing any open run first.
pub fn fuse_program(circuit: &Circuit) -> Vec<ProgramOp> {
    let mut program: Vec<ProgramOp> = Vec::new();
    let mut open: Option<Pending> = None;
    for op in circuit.ops() {
        if !op.gate().is_unitary() {
            if let Some(run) = open.take() {
                program.push(ProgramOp::Unitary(run.finish()));
            }
            program.push(non_unitary_op(op.gate(), op.qubits()[0]));
            continue;
        }
        let action = GateAction::from_operation(op);
        let mask = op.qubit_mask();
        open = Some(match open.take() {
            None => Pending::start(action, mask),
            Some(mut run) => {
                if run.try_absorb(&action, mask) {
                    run
                } else {
                    program.push(ProgramOp::Unitary(run.finish()));
                    Pending::start(action, mask)
                }
            }
        });
    }
    if let Some(run) = open {
        program.push(ProgramOp::Unitary(run.finish()));
    }
    program
}

/// Lowers a circuit 1:1 into singleton [`ProgramOp`]s — the no-fusion
/// program, so engines can run a single representation either way.
pub fn lower_program(circuit: &Circuit) -> Vec<ProgramOp> {
    circuit
        .ops()
        .iter()
        .map(|op| {
            if op.gate().is_unitary() {
                ProgramOp::Unitary(
                    Pending::start(GateAction::from_operation(op), op.qubit_mask()).finish(),
                )
            } else {
                non_unitary_op(op.gate(), op.qubits()[0])
            }
        })
        .collect()
}

fn non_unitary_op(gate: Gate, qubit: usize) -> ProgramOp {
    match gate {
        Gate::Measure => ProgramOp::Measure { qubit },
        Gate::Reset => ProgramOp::Reset { qubit },
        other => unreachable!("{} is unitary", other.name()),
    }
}

/// Fuses a unitary-only circuit into maximal runs of adjacent compatible
/// gates. See [`fuse_program`] for circuits with measurements/resets.
///
/// # Panics
///
/// Panics if the circuit contains non-unitary operations.
pub fn fuse(circuit: &Circuit) -> Vec<FusedOp> {
    fuse_program(circuit)
        .into_iter()
        .map(|p| match p {
            ProgramOp::Unitary(f) => f,
            other => panic!("fuse() requires a unitary circuit, found {other:?}"),
        })
        .collect()
}

/// Lowers a unitary-only circuit 1:1 into singleton [`FusedOp`]s.
///
/// # Panics
///
/// Panics if the circuit contains non-unitary operations.
pub fn lower(circuit: &Circuit) -> Vec<FusedOp> {
    lower_program(circuit)
        .into_iter()
        .map(|p| match p {
            ProgramOp::Unitary(f) => f,
            other => panic!("lower() requires a unitary circuit, found {other:?}"),
        })
        .collect()
}

/// Total source gates saved as separate kernel passes by fusion.
pub fn gates_fused(program: &[FusedOp]) -> usize {
    program.iter().map(|f| f.source_gates() - 1).sum()
}

/// [`gates_fused`] over a mixed program: non-unitary steps fuse nothing.
pub fn program_gates_fused(program: &[ProgramOp]) -> usize {
    program
        .iter()
        .filter_map(ProgramOp::unitary)
        .map(|f| f.source_gates() - 1)
        .sum()
}

/// The 2×2 matrix form of a single-qubit diagonal.
fn diagonal_as_matrix(dvec: &[Complex64]) -> Matrix {
    debug_assert_eq!(dvec.len(), 2);
    Matrix::new(2, vec![dvec[0], Complex64::ZERO, Complex64::ZERO, dvec[1]])
}

fn sorted_union(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut u: Vec<usize> = a.iter().chain(b.iter()).copied().collect();
    u.sort_unstable();
    u.dedup();
    u
}

/// Pointwise product of two diagonals, re-indexed over the sorted union of
/// their qubits. `q1` must already be sorted (the accumulated run); `q2`
/// may be in any order (gate-argument order).
fn merge_diagonals(
    q1: &[usize],
    d1: &[Complex64],
    q2: &[usize],
    d2: &[Complex64],
) -> (Vec<usize>, Vec<Complex64>) {
    let union = sorted_union(q1, q2);
    let pos = |q: usize| union.binary_search(&q).expect("qubit in union");
    // Index of union-index `s` within the sub-diagonal over `qs`.
    let sub_index = |s: usize, qs: &[usize]| -> usize {
        qs.iter()
            .enumerate()
            .fold(0usize, |acc, (bit, &q)| acc | (((s >> pos(q)) & 1) << bit))
    };
    let dvec = (0..1usize << union.len())
        .map(|s| d1[sub_index(s, q1)] * d2[sub_index(s, q2)])
        .collect();
    (union, dvec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dag::GateDag;
    use crate::gate::Gate;
    use crate::generators::Benchmark;

    fn circuit(n: usize, gates: &[(Gate, &[usize])]) -> Circuit {
        let mut c = Circuit::new(n);
        for (g, qs) in gates {
            c.apply(*g, qs);
        }
        c
    }

    fn total_gates(program: &[FusedOp]) -> usize {
        program.iter().map(|f| f.source_gates()).sum()
    }

    #[test]
    fn empty_circuit_fuses_to_empty_program() {
        let c = Circuit::new(3);
        assert!(fuse(&c).is_empty());
        assert!(lower(&c).is_empty());
    }

    #[test]
    fn single_gate_is_a_singleton() {
        let c = circuit(2, &[(Gate::H, &[1])]);
        let p = fuse(&c);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].source_gates(), 1);
        assert!(!p[0].is_fused());
        assert_eq!(p[0].actions().len(), 1);
        assert_eq!(p[0].collapsed(), &p[0].actions()[0]);
        assert_eq!(p[0].qubit_mask(), 0b10);
    }

    #[test]
    fn lower_is_one_to_one() {
        let c = Benchmark::Qft.generate(6);
        let p = lower(&c);
        assert_eq!(p.len(), c.len());
        assert!(p.iter().all(|f| f.source_gates() == 1));
        assert_eq!(gates_fused(&p), 0);
    }

    #[test]
    fn same_qubit_dense_run_collapses_to_product() {
        // H then T on qubit 0: collapsed must be T·H (application order).
        let c = circuit(1, &[(Gate::H, &[0]), (Gate::T, &[0])]);
        let p = fuse(&c);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].source_gates(), 2);
        let expected = Gate::T.matrix().matmul(&Gate::H.matrix());
        match p[0].collapsed() {
            GateAction::ControlledDense {
                controls,
                mixing,
                matrix,
            } => {
                assert!(controls.is_empty());
                assert_eq!(mixing.as_slice(), &[0]);
                for r in 0..2 {
                    for c in 0..2 {
                        assert!(matrix.get(r, c).approx_eq(expected.get(r, c), 1e-14));
                    }
                }
            }
            other => panic!("expected dense collapse, got {other:?}"),
        }
    }

    #[test]
    fn h_h_collapses_to_identity() {
        let c = circuit(1, &[(Gate::H, &[0]), (Gate::H, &[0])]);
        let p = fuse(&c);
        assert_eq!(p.len(), 1);
        match p[0].collapsed() {
            GateAction::ControlledDense { matrix, .. } => {
                assert!(matrix.get(0, 0).approx_eq(Complex64::ONE, 1e-14));
                assert!(matrix.get(0, 1).approx_eq(Complex64::ZERO, 1e-14));
            }
            other => panic!("expected dense collapse, got {other:?}"),
        }
    }

    #[test]
    fn diag_then_dense_on_same_qubit_upgrades_to_dense_run() {
        // T then H on qubit 0: collapsed must be H·T.
        let c = circuit(1, &[(Gate::T, &[0]), (Gate::H, &[0])]);
        let p = fuse(&c);
        assert_eq!(p.len(), 1);
        let expected = Gate::H.matrix().matmul(&Gate::T.matrix());
        match p[0].collapsed() {
            GateAction::ControlledDense { matrix, .. } => {
                for r in 0..2 {
                    for c in 0..2 {
                        assert!(matrix.get(r, c).approx_eq(expected.get(r, c), 1e-14));
                    }
                }
            }
            other => panic!("expected dense collapse, got {other:?}"),
        }
    }

    #[test]
    fn adjacent_diagonals_merge_across_qubits() {
        let c = circuit(
            3,
            &[
                (Gate::Cp(0.3), &[0, 1]),
                (Gate::Cp(0.7), &[1, 2]),
                (Gate::Z, &[0]),
            ],
        );
        let p = fuse(&c);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].source_gates(), 3);
        match p[0].collapsed() {
            GateAction::Diagonal { qubits, dvec } => {
                assert_eq!(qubits.as_slice(), &[0, 1, 2]);
                // Spot-check every entry against the three factors.
                let d1 = Gate::Cp(0.3).matrix();
                let d2 = Gate::Cp(0.7).matrix();
                for (s, entry) in dvec.iter().enumerate() {
                    let (b0, b1, b2) = (s & 1, (s >> 1) & 1, (s >> 2) & 1);
                    let expect = d1.get(b0 | (b1 << 1), b0 | (b1 << 1))
                        * d2.get(b1 | (b2 << 1), b1 | (b2 << 1))
                        * if b0 == 1 {
                            -Complex64::ONE
                        } else {
                            Complex64::ONE
                        };
                    assert!(entry.approx_eq(expect, 1e-14), "entry {s}");
                }
            }
            other => panic!("expected diagonal collapse, got {other:?}"),
        }
    }

    #[test]
    fn diagonal_union_is_capped() {
        // A chain of CPs touching 8 qubits must split once the union would
        // exceed MAX_FUSED_DIAG_QUBITS.
        let mut c = Circuit::new(8);
        for q in 0..7 {
            c.apply(Gate::Cp(0.1), &[q, q + 1]);
        }
        let p = fuse(&c);
        assert!(p.len() >= 2, "cap must split the run");
        for f in &p {
            if let GateAction::Diagonal { qubits, .. } = f.collapsed() {
                assert!(qubits.len() <= MAX_FUSED_DIAG_QUBITS);
            }
        }
        assert_eq!(total_gates(&p), c.len());
    }

    #[test]
    fn opaque_gates_never_fuse() {
        let c = circuit(
            3,
            &[
                (Gate::Cx, &[0, 1]),
                (Gate::Cx, &[0, 1]),
                (Gate::Swap, &[1, 2]),
            ],
        );
        let p = fuse(&c);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|f| !f.is_fused()));
    }

    #[test]
    fn intervening_gate_breaks_a_run() {
        // T(0), CX(0,1), T(0): the CX must split the two Ts — fusion is
        // adjacency-only and never commutes gates past each other.
        let c = circuit(2, &[(Gate::T, &[0]), (Gate::Cx, &[0, 1]), (Gate::T, &[0])]);
        let p = fuse(&c);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn fused_member_order_is_a_valid_dag_order() {
        // The flattened member order of the fused program must be a valid
        // topological order of the gate DAG (it is the source order, so
        // this pins the no-reordering invariant).
        for b in [
            Benchmark::Qft,
            Benchmark::Iqp,
            Benchmark::Rqc,
            Benchmark::Qaoa,
        ] {
            let c = b.generate(8);
            let p = fuse(&c);
            assert_eq!(total_gates(&p), c.len(), "{}", b.abbrev());
            let dag = GateDag::new(&c);
            let order: Vec<usize> = (0..c.len()).collect();
            assert!(dag.is_valid_order(&order), "{}", b.abbrev());
        }
    }

    #[test]
    fn qft_fuses_substantially() {
        let c = Benchmark::Qft.generate(16);
        let p = fuse(&c);
        assert!(
            p.len() * 2 <= c.len(),
            "qft should fuse at least 2:1 (got {} ops from {} gates)",
            p.len(),
            c.len()
        );
        assert_eq!(gates_fused(&p), c.len() - p.len());
    }

    #[test]
    fn qubit_mask_covers_all_members() {
        let c = circuit(4, &[(Gate::Cp(0.2), &[0, 3]), (Gate::Z, &[1])]);
        let p = fuse(&c);
        assert_eq!(p.len(), 1);
        assert_eq!(p[0].qubit_mask(), 0b1011);
    }

    #[test]
    fn collapsed_diagonal_matches_sequential_application() {
        // Apply the collapsed diagonal and the member diagonals to a basis
        // enumeration and compare.
        let c = circuit(
            3,
            &[
                (Gate::Cp(1.1), &[2, 0]),
                (Gate::Rz(0.4), &[1]),
                (Gate::T, &[2]),
            ],
        );
        let p = fuse(&c);
        assert_eq!(p.len(), 1);
        let GateAction::Diagonal { qubits, dvec } = p[0].collapsed() else {
            panic!("expected diagonal");
        };
        for idx in 0..8usize {
            let mut expect = Complex64::ONE;
            for op in c.ops() {
                let GateAction::Diagonal {
                    qubits: qs,
                    dvec: d,
                } = GateAction::from_operation(op)
                else {
                    panic!("all members diagonal");
                };
                let s = qs
                    .iter()
                    .enumerate()
                    .fold(0usize, |a, (bit, &q)| a | (((idx >> q) & 1) << bit));
                expect *= d[s];
            }
            let s = qubits
                .iter()
                .enumerate()
                .fold(0usize, |a, (bit, &q)| a | (((idx >> q) & 1) << bit));
            assert!(dvec[s].approx_eq(expect, 1e-13), "index {idx}");
        }
    }

    #[test]
    fn measurement_is_a_fusion_barrier() {
        // T(0), measure(0), T(0): without the barrier the two Ts would
        // fuse into one kernel, silently moving the second T before the
        // collapse. The program must keep three separate steps.
        let mut c = Circuit::new(1);
        c.t(0).measure(0).t(0);
        let p = fuse_program(&c);
        assert_eq!(p.len(), 3);
        assert!(matches!(p[1], ProgramOp::Measure { qubit: 0 }));
        assert!(p[0].unitary().is_some_and(|f| !f.is_fused()));
        assert!(p[2].unitary().is_some_and(|f| !f.is_fused()));
    }

    #[test]
    fn reset_is_a_fusion_barrier() {
        let mut c = Circuit::new(2);
        c.apply(Gate::Cp(0.2), &[0, 1]);
        c.reset(1);
        c.apply(Gate::Cp(0.4), &[0, 1]);
        let p = fuse_program(&c);
        assert_eq!(p.len(), 3);
        assert!(matches!(p[1], ProgramOp::Reset { qubit: 1 }));
        assert_eq!(p[1].qubit_mask(), 0b10);
    }

    #[test]
    fn fuse_program_matches_fuse_on_unitary_circuits() {
        for b in [Benchmark::Qft, Benchmark::Iqp, Benchmark::Rqc] {
            let c = b.generate(8);
            let via_program = fuse_program(&c);
            let direct = fuse(&c);
            assert_eq!(via_program.len(), direct.len(), "{}", b.abbrev());
            assert_eq!(
                program_gates_fused(&via_program),
                gates_fused(&direct),
                "{}",
                b.abbrev()
            );
        }
    }

    #[test]
    fn lower_program_is_one_to_one_with_barriers() {
        let mut c = Circuit::new(2);
        c.h(0).measure(0).h(1).reset(0).t(1);
        let p = lower_program(&c);
        assert_eq!(p.len(), 5);
        assert_eq!(program_gates_fused(&p), 0);
        assert!(matches!(p[1], ProgramOp::Measure { qubit: 0 }));
        assert!(matches!(p[3], ProgramOp::Reset { qubit: 0 }));
    }

    #[test]
    #[should_panic(expected = "requires a unitary circuit")]
    fn fuse_rejects_measure_circuits() {
        let mut c = Circuit::new(1);
        c.h(0).measure(0);
        let _ = fuse(&c);
    }

    #[test]
    fn singleton_collapsed_preserves_original_action() {
        // Controlled gates keep their control structure (not absorbed into
        // a dense matrix) so chunk planning matches the unfused path.
        let c = circuit(2, &[(Gate::Cp(0.3), &[0, 1]), (Gate::Cx, &[1, 0])]);
        let p = fuse(&c);
        assert_eq!(p[1].collapsed(), &GateAction::from_operation(&c.ops()[1]));
    }
}
