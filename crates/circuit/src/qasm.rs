//! OpenQASM 2.0 emission and parsing.
//!
//! The paper exports its benchmarks as OpenQASM programs to run them on
//! Google Qsim-Cirq and Microsoft QDK (§V-C). This module supports the
//! same interchange: [`to_qasm`] emits a program using only standard
//! `qelib1` gates, and [`parse`] reads the subset of OpenQASM 2.0 those
//! programs use (one quantum register, the gate set of
//! [`crate::Gate`], `barrier`/`creg` accepted and ignored).
//! `measure q[i] -> c[j];` and `reset q[i];` statements become real
//! [`Gate::Measure`] / [`Gate::Reset`] operations so stochastic circuits
//! survive the interchange round-trip.

use std::fmt::Write as _;

use crate::circuit::Circuit;
use crate::gate::{Gate, Operation};

/// Error produced when parsing an OpenQASM program.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseQasmError {
    /// 1-based line of the error.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ParseQasmError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "qasm parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseQasmError {}

/// Emits `circuit` as an OpenQASM 2.0 program.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Circuit, qasm};
///
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let text = qasm::to_qasm(&c);
/// assert!(text.contains("h q[0];"));
/// assert!(text.contains("cx q[0],q[1];"));
/// ```
pub fn to_qasm(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str("OPENQASM 2.0;\n");
    out.push_str("include \"qelib1.inc\";\n");
    let _ = writeln!(out, "qreg q[{}];", circuit.num_qubits());
    if circuit.iter().any(|op| op.gate() == Gate::Measure) {
        let _ = writeln!(out, "creg c[{}];", circuit.num_qubits());
    }
    for op in circuit.iter() {
        if op.gate() == Gate::Measure {
            // OpenQASM measurement syntax needs a classical target; we
            // mirror the qubit index into the classical register.
            let _ = writeln!(out, "measure q[{0}] -> c[{0}];", op.qubits()[0]);
            continue;
        }
        let params = op.gate().params();
        if params.is_empty() {
            let _ = write!(out, "{}", op.gate().name());
        } else {
            let joined = params
                .iter()
                .map(|p| format!("{p:.17}"))
                .collect::<Vec<_>>()
                .join(",");
            let _ = write!(out, "{}({})", op.gate().name(), joined);
        }
        let qs = op
            .qubits()
            .iter()
            .map(|q| format!("q[{q}]"))
            .collect::<Vec<_>>()
            .join(",");
        let _ = writeln!(out, " {qs};");
    }
    out
}

/// Parses an OpenQASM 2.0 program into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseQasmError`] on malformed syntax, unknown gates, missing
/// `qreg`, or out-of-range qubit indices.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::qasm;
///
/// let c = qasm::parse(
///     "OPENQASM 2.0;\ninclude \"qelib1.inc\";\nqreg q[2];\nh q[0];\ncx q[0],q[1];",
/// )?;
/// assert_eq!(c.len(), 2);
/// # Ok::<(), qgpu_circuit::qasm::ParseQasmError>(())
/// ```
pub fn parse(text: &str) -> Result<Circuit, ParseQasmError> {
    let mut circuit: Option<Circuit> = None;
    let mut reg_name = String::new();

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let stripped = match raw_line.find("//") {
            Some(pos) => &raw_line[..pos],
            None => raw_line,
        };
        for stmt in stripped.split(';') {
            let stmt = stmt.trim();
            if stmt.is_empty() {
                continue;
            }
            if stmt.starts_with("OPENQASM") || stmt.starts_with("include") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("qreg") {
                let (name, size) = parse_reg(rest.trim(), line)?;
                if circuit.is_some() {
                    return Err(err(line, "multiple qreg declarations are unsupported"));
                }
                if size == 0 || size > 64 {
                    return Err(err(line, format!("unsupported register size {size}")));
                }
                reg_name = name;
                circuit = Some(Circuit::new(size));
                continue;
            }
            if stmt.starts_with("creg") || stmt.starts_with("barrier") {
                continue;
            }
            if let Some(rest) = stmt.strip_prefix("measure") {
                let c = circuit
                    .as_mut()
                    .ok_or_else(|| err(line, "measure before qreg declaration"))?;
                // `measure q[i] -> c[j];` — the classical target is
                // accepted and dropped (outcomes live in the engine's
                // seeded stochastic stream, not a classical register).
                let target = rest
                    .split("->")
                    .next()
                    .ok_or_else(|| err(line, "expected measure target"))?
                    .trim();
                let q = parse_qubit(target, &reg_name, c.num_qubits(), line)?;
                c.push(Operation::new(Gate::Measure, vec![q]));
                continue;
            }
            let c = circuit
                .as_mut()
                .ok_or_else(|| err(line, "gate before qreg declaration"))?;
            let op = parse_gate_stmt(stmt, &reg_name, c.num_qubits(), line)?;
            c.push(op);
        }
    }
    circuit.ok_or_else(|| err(text.lines().count(), "no qreg declaration found"))
}

fn err(line: usize, message: impl Into<String>) -> ParseQasmError {
    ParseQasmError {
        line,
        message: message.into(),
    }
}

/// Parses `name[size]`.
fn parse_reg(s: &str, line: usize) -> Result<(String, usize), ParseQasmError> {
    let open = s.find('[').ok_or_else(|| err(line, "expected [size]"))?;
    let close = s.find(']').ok_or_else(|| err(line, "expected ]"))?;
    let name = s[..open].trim().to_string();
    let size = s[open + 1..close]
        .trim()
        .parse::<usize>()
        .map_err(|_| err(line, "bad register size"))?;
    Ok((name, size))
}

fn parse_gate_stmt(
    stmt: &str,
    reg: &str,
    num_qubits: usize,
    line: usize,
) -> Result<Operation, ParseQasmError> {
    // Split "name(params) args" into head and qubit args. The parameter
    // list may contain nested parentheses, so scan for the balancing ')'.
    let (head, args) = match stmt.find('(') {
        Some(open) => {
            let mut depth = 0usize;
            let mut close = None;
            for (i, ch) in stmt.char_indices().skip(open) {
                match ch {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            close = Some(i);
                            break;
                        }
                    }
                    _ => {}
                }
            }
            let close = close.ok_or_else(|| err(line, "unbalanced ("))?;
            (&stmt[..=close], stmt[close + 1..].trim())
        }
        None => {
            let space = stmt
                .find(char::is_whitespace)
                .ok_or_else(|| err(line, "expected qubit arguments"))?;
            (&stmt[..space], stmt[space..].trim())
        }
    };

    let (name, params) = match head.find('(') {
        Some(open) => {
            let close = head.rfind(')').ok_or_else(|| err(line, "unbalanced ("))?;
            let name = head[..open].trim();
            let params = head[open + 1..close]
                .split(',')
                .map(|e| eval_expr(e.trim(), line))
                .collect::<Result<Vec<f64>, _>>()?;
            (name, params)
        }
        None => (head.trim(), Vec::new()),
    };

    let qubits = args
        .split(',')
        .map(|a| parse_qubit(a.trim(), reg, num_qubits, line))
        .collect::<Result<Vec<usize>, _>>()?;

    let gate = gate_from_name(name, &params).ok_or_else(|| {
        err(
            line,
            format!("unknown gate '{name}' with {} params", params.len()),
        )
    })?;
    if gate.arity() != qubits.len() {
        return Err(err(
            line,
            format!(
                "gate {name} expects {} qubits, got {}",
                gate.arity(),
                qubits.len()
            ),
        ));
    }
    Ok(Operation::new(gate, qubits))
}

fn parse_qubit(
    s: &str,
    reg: &str,
    num_qubits: usize,
    line: usize,
) -> Result<usize, ParseQasmError> {
    let open = s.find('[').ok_or_else(|| err(line, "expected q[i]"))?;
    let close = s.find(']').ok_or_else(|| err(line, "expected ]"))?;
    let name = s[..open].trim();
    if !reg.is_empty() && name != reg {
        return Err(err(line, format!("unknown register '{name}'")));
    }
    let idx = s[open + 1..close]
        .trim()
        .parse::<usize>()
        .map_err(|_| err(line, "bad qubit index"))?;
    if idx >= num_qubits {
        return Err(err(line, format!("qubit index {idx} out of range")));
    }
    Ok(idx)
}

fn gate_from_name(name: &str, params: &[f64]) -> Option<Gate> {
    Some(match (name, params.len()) {
        ("h", 0) => Gate::H,
        ("x", 0) => Gate::X,
        ("y", 0) => Gate::Y,
        ("z", 0) => Gate::Z,
        ("s", 0) => Gate::S,
        ("sdg", 0) => Gate::Sdg,
        ("t", 0) => Gate::T,
        ("tdg", 0) => Gate::Tdg,
        ("sx", 0) => Gate::Sx,
        ("sy", 0) => Gate::Sy,
        ("rx", 1) => Gate::Rx(params[0]),
        ("ry", 1) => Gate::Ry(params[0]),
        ("rz", 1) => Gate::Rz(params[0]),
        ("p" | "u1", 1) => Gate::Phase(params[0]),
        ("u" | "u3", 3) => Gate::U(params[0], params[1], params[2]),
        ("u2", 2) => Gate::U(std::f64::consts::FRAC_PI_2, params[0], params[1]),
        ("cx" | "CX", 0) => Gate::Cx,
        ("cy", 0) => Gate::Cy,
        ("cz", 0) => Gate::Cz,
        ("cp" | "cu1", 1) => Gate::Cp(params[0]),
        ("rzz", 1) => Gate::Rzz(params[0]),
        ("swap", 0) => Gate::Swap,
        ("ccx", 0) => Gate::Ccx,
        ("reset", 0) => Gate::Reset,
        _ => return None,
    })
}

/// Evaluates an OpenQASM angle expression: numbers, `pi`, unary minus,
/// `+ - * /`, and parentheses.
fn eval_expr(expr: &str, line: usize) -> Result<f64, ParseQasmError> {
    let tokens = tokenize(expr, line)?;
    let mut pos = 0;
    let v = parse_sum(&tokens, &mut pos, line)?;
    if pos != tokens.len() {
        return Err(err(line, format!("trailing tokens in expression '{expr}'")));
    }
    Ok(v)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Num(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
}

fn tokenize(expr: &str, line: usize) -> Result<Vec<Tok>, ParseQasmError> {
    let mut toks = Vec::new();
    let bytes = expr.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            _ if c.is_ascii_digit() || c == '.' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    i += 1;
                }
                let num = expr[start..i]
                    .parse::<f64>()
                    .map_err(|_| err(line, format!("bad number in '{expr}'")))?;
                toks.push(Tok::Num(num));
            }
            _ if c.is_ascii_alphabetic() => {
                let start = i;
                while i < bytes.len() && (bytes[i] as char).is_ascii_alphanumeric() {
                    i += 1;
                }
                match &expr[start..i] {
                    "pi" => toks.push(Tok::Num(std::f64::consts::PI)),
                    other => return Err(err(line, format!("unknown identifier '{other}'"))),
                }
            }
            _ => return Err(err(line, format!("unexpected character '{c}'"))),
        }
    }
    Ok(toks)
}

fn parse_sum(toks: &[Tok], pos: &mut usize, line: usize) -> Result<f64, ParseQasmError> {
    let mut v = parse_product(toks, pos, line)?;
    while *pos < toks.len() {
        match toks[*pos] {
            Tok::Plus => {
                *pos += 1;
                v += parse_product(toks, pos, line)?;
            }
            Tok::Minus => {
                *pos += 1;
                v -= parse_product(toks, pos, line)?;
            }
            _ => break,
        }
    }
    Ok(v)
}

fn parse_product(toks: &[Tok], pos: &mut usize, line: usize) -> Result<f64, ParseQasmError> {
    let mut v = parse_atom(toks, pos, line)?;
    while *pos < toks.len() {
        match toks[*pos] {
            Tok::Star => {
                *pos += 1;
                v *= parse_atom(toks, pos, line)?;
            }
            Tok::Slash => {
                *pos += 1;
                v /= parse_atom(toks, pos, line)?;
            }
            _ => break,
        }
    }
    Ok(v)
}

fn parse_atom(toks: &[Tok], pos: &mut usize, line: usize) -> Result<f64, ParseQasmError> {
    match toks.get(*pos) {
        Some(Tok::Num(v)) => {
            *pos += 1;
            Ok(*v)
        }
        Some(Tok::Minus) => {
            *pos += 1;
            Ok(-parse_atom(toks, pos, line)?)
        }
        Some(Tok::Plus) => {
            *pos += 1;
            parse_atom(toks, pos, line)
        }
        Some(Tok::LParen) => {
            *pos += 1;
            let v = parse_sum(toks, pos, line)?;
            if toks.get(*pos) != Some(&Tok::RParen) {
                return Err(err(line, "expected )"));
            }
            *pos += 1;
            Ok(v)
        }
        _ => Err(err(line, "expected a value")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Benchmark;

    #[test]
    fn roundtrip_bell() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1);
        let parsed = parse(&to_qasm(&c)).expect("parse");
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.ops()[1].gate(), Gate::Cx);
    }

    #[test]
    fn roundtrip_all_benchmarks() {
        for b in Benchmark::ALL {
            let c = b.generate(8);
            let parsed = parse(&to_qasm(&c)).unwrap_or_else(|e| panic!("{b}: {e}"));
            assert_eq!(parsed.len(), c.len(), "{b}");
            for (a, b_op) in c.iter().zip(parsed.iter()) {
                assert_eq!(a.qubits(), b_op.qubits());
                assert_eq!(a.gate().name(), b_op.gate().name());
                for (pa, pb) in a.gate().params().iter().zip(b_op.gate().params()) {
                    assert!((pa - pb).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn parses_pi_expressions() {
        let src = "qreg q[1]; rz(pi/4) q[0]; rz(-pi/2) q[0]; rz(2*pi) q[0]; rz((pi+1)/2) q[0];";
        let c = parse(src).expect("parse");
        let angles: Vec<f64> = c.iter().map(|op| op.gate().params()[0]).collect();
        use std::f64::consts::PI;
        assert!((angles[0] - PI / 4.0).abs() < 1e-12);
        assert!((angles[1] + PI / 2.0).abs() < 1e-12);
        assert!((angles[2] - 2.0 * PI).abs() < 1e-12);
        assert!((angles[3] - (PI + 1.0) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn ignores_creg_barrier_comments_and_parses_measure() {
        let src = "OPENQASM 2.0;\nqreg q[2];\ncreg c[2];\n// comment\nh q[0]; barrier q[0];\nmeasure q[0] -> c[0];\n";
        let c = parse(src).expect("parse");
        assert_eq!(c.len(), 2);
        assert_eq!(c.ops()[1].gate(), Gate::Measure);
        assert_eq!(c.ops()[1].qubits(), &[0]);
    }

    #[test]
    fn roundtrip_measure_and_reset() {
        let mut c = Circuit::new(3);
        c.h(0).measure(0).reset(1).cx(0, 2).measure(2);
        let text = to_qasm(&c);
        assert!(text.contains("creg c[3];"));
        assert!(text.contains("measure q[0] -> c[0];"));
        assert!(text.contains("reset q[1];"));
        let parsed = parse(&text).expect("parse");
        assert_eq!(parsed.len(), c.len());
        for (a, b) in c.iter().zip(parsed.iter()) {
            assert_eq!(a.gate().name(), b.gate().name());
            assert_eq!(a.qubits(), b.qubits());
        }
    }

    #[test]
    fn error_measure_before_qreg() {
        let e = parse("measure q[0] -> c[0];").unwrap_err();
        assert!(e.message.contains("before qreg"));
    }

    #[test]
    fn u2_maps_to_u3() {
        let c = parse("qreg q[1]; u2(0,pi) q[0];").expect("parse");
        assert!(matches!(c.ops()[0].gate(), Gate::U(..)));
    }

    #[test]
    fn error_unknown_gate() {
        let e = parse("qreg q[1]; frob q[0];").unwrap_err();
        assert!(e.message.contains("unknown gate"));
        assert_eq!(e.line, 1);
    }

    #[test]
    fn error_out_of_range() {
        let e = parse("qreg q[2]; h q[5];").unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn error_gate_before_qreg() {
        let e = parse("h q[0]; qreg q[1];").unwrap_err();
        assert!(e.message.contains("before qreg"));
    }

    #[test]
    fn error_no_qreg() {
        assert!(parse("OPENQASM 2.0;").is_err());
    }

    #[test]
    fn error_arity_mismatch() {
        let e = parse("qreg q[2]; cx q[0];").unwrap_err();
        assert!(e.message.contains("expects 2 qubits"));
    }

    #[test]
    fn error_unbalanced_paren() {
        let e = parse("qreg q[1]; rz((pi q[0];").unwrap_err();
        assert!(e.message.contains("unbalanced") || e.message.contains("expected"));
    }

    #[test]
    fn error_unknown_identifier_in_expr() {
        let e = parse("qreg q[1]; rz(tau) q[0];").unwrap_err();
        assert!(e.message.contains("unknown identifier"));
    }

    #[test]
    fn error_bad_number() {
        assert!(parse("qreg q[1]; rz(1..2) q[0];").is_err());
    }

    #[test]
    fn error_division_chain_precedence() {
        // 8/2/2 must parse left-associative: 2, not 8.
        let c = parse("qreg q[1]; rz(8/2/2) q[0];").expect("parse");
        assert!((c.ops()[0].gate().params()[0] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn scientific_notation_angles() {
        let c = parse("qreg q[1]; rz(1.5e-3) q[0]; rz(2E2) q[0];").expect("parse");
        assert!((c.ops()[0].gate().params()[0] - 1.5e-3).abs() < 1e-15);
        assert!((c.ops()[1].gate().params()[0] - 200.0).abs() < 1e-12);
    }

    #[test]
    fn multiple_statements_per_line() {
        let c = parse("qreg q[2]; h q[0]; h q[1]; cz q[0],q[1];").expect("parse");
        assert_eq!(c.len(), 3);
    }
}
