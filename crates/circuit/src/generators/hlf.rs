//! Hidden linear function circuits (Bravyi, Gosset, König).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;

/// The 2D hidden linear function circuit: `H^{⊗n} · U_q · H^{⊗n}` where
/// `U_q` applies `CZ` on the edges of a sparse grid-like adjacency matrix
/// and `S` on qubits with a diagonal entry.
///
/// Like `gs`, the opening Hadamard layer commutes with most of the
/// diagonal middle section, giving moderate reordering potential (the
/// paper reports 33% of operations before full involvement).
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::hidden_linear_function;
///
/// let c = hidden_linear_function(9, 5);
/// assert_eq!(c.num_qubits(), 9);
/// ```
pub fn hidden_linear_function(n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "hlf needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("hlf_{n}"));

    for q in 0..n {
        c.h(q);
    }
    // Grid edges with probability 1/2 (the problem's random symmetric
    // adjacency restricted to a 2D grid).
    let cols = (n as f64).sqrt().ceil() as usize;
    for q in 0..n {
        let right = q + 1;
        if right < n && right % cols != 0 && rng.gen_bool(0.5) {
            c.cz(q, right);
        }
        let down = q + cols;
        if down < n && rng.gen_bool(0.5) {
            c.cz(q, down);
        }
    }
    // Diagonal entries -> S gates.
    for q in 0..n {
        if rng.gen_bool(0.5) {
            c.s(q);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::{full_mask, involvement_sequence, summarize};

    #[test]
    fn touches_all_qubits() {
        let c = hidden_linear_function(10, 2);
        assert_eq!(involvement_sequence(&c).last(), Some(&full_mask(10)));
    }

    #[test]
    fn moderate_involvement_fraction() {
        let s = summarize(&hidden_linear_function(25, 1));
        // Opening H layer of n ops out of ~2n + edges + S ops: 25-45%.
        assert!(
            s.percentage > 20.0 && s.percentage < 55.0,
            "got {:.1}%",
            s.percentage
        );
    }

    #[test]
    fn sandwich_structure() {
        let c = hidden_linear_function(8, 3);
        // First and last ops are Hadamards.
        assert_eq!(c.ops()[0].gate().name(), "h");
        assert_eq!(c.ops()[c.len() - 1].gate().name(), "h");
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(hidden_linear_function(12, 7), hidden_linear_function(12, 7));
    }
}
