//! Quantum Fourier transform circuits.

use std::f64::consts::PI;

use crate::circuit::Circuit;

/// The full `n`-qubit quantum Fourier transform.
///
/// Uses the textbook construction: for each target qubit from the most
/// significant down, a Hadamard followed by controlled phases from every
/// lower qubit, then a final layer of swaps that reverses the qubit order.
///
/// The first Hadamard-plus-rotations block touches *every* qubit, so all
/// qubits are involved after `n` operations — the reason `qft` has one of
/// the smallest pruning potentials in the paper's Table II.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::quantum_fourier_transform;
///
/// let c = quantum_fourier_transform(4);
/// // n Hadamards + n(n-1)/2 controlled phases + n/2 swaps.
/// assert_eq!(c.len(), 4 + 6 + 2);
/// ```
pub fn quantum_fourier_transform(n: usize) -> Circuit {
    quantum_fourier_transform_approx(n, n)
}

/// Approximate QFT: controlled phases with angle below `π/2^degree` are
/// dropped.
///
/// `degree >= n` gives the exact QFT. Approximation bounds the number of
/// rotations per qubit, which is how large-scale QFT circuits are built in
/// practice.
///
/// # Panics
///
/// Panics if `n < 2` or `degree == 0`.
pub fn quantum_fourier_transform_approx(n: usize, degree: usize) -> Circuit {
    assert!(n >= 2, "qft needs at least 2 qubits");
    assert!(degree >= 1, "approximation degree must be at least 1");
    let mut c = Circuit::with_name(n, format!("qft_{n}"));
    for target in (0..n).rev() {
        c.h(target);
        for k in (0..target).rev() {
            let distance = target - k;
            if distance >= degree {
                break;
            }
            c.cp(PI / (1u64 << distance) as f64, k, target);
        }
    }
    for q in 0..n / 2 {
        c.swap(q, n - 1 - q);
    }
    c
}

/// The inverse quantum Fourier transform: [`quantum_fourier_transform`]
/// inverted exactly (reversed gate order, negated phases).
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::{quantum_fourier_transform, quantum_fourier_transform_inverse};
///
/// let qft = quantum_fourier_transform(4);
/// let inv = quantum_fourier_transform_inverse(4);
/// assert_eq!(qft.len(), inv.len());
/// ```
pub fn quantum_fourier_transform_inverse(n: usize) -> Circuit {
    let mut c = quantum_fourier_transform(n).inverse();
    c.set_name(format!("qft_dg_{n}"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::ops_until_full_involvement;

    #[test]
    fn exact_qft_op_count() {
        let n = 10;
        let c = quantum_fourier_transform(n);
        assert_eq!(c.len(), n + n * (n - 1) / 2 + n / 2);
    }

    #[test]
    fn early_full_involvement() {
        // All qubits are involved after the first H + rotation block.
        let n = 16;
        let c = quantum_fourier_transform(n);
        assert_eq!(ops_until_full_involvement(&c), n);
    }

    #[test]
    fn approximation_truncates_rotations() {
        let exact = quantum_fourier_transform_approx(12, 12);
        let approx = quantum_fourier_transform_approx(12, 4);
        assert!(approx.len() < exact.len());
        // Still touches all qubits.
        assert_eq!(
            crate::involvement::involvement_sequence(&approx).last(),
            Some(&crate::involvement::full_mask(12))
        );
    }

    #[test]
    fn inverse_qft_mirrors_qft_structurally() {
        // Functional identity is verified in the integration tests
        // (statevec is not a dependency here); structurally the inverse
        // is the reversed, gate-inverted sequence.
        let n = 5;
        let qft = quantum_fourier_transform(n);
        let inv = quantum_fourier_transform_inverse(n);
        assert_eq!(inv.len(), qft.len());
        for (a, b) in inv.iter().zip(qft.iter().rev()) {
            assert_eq!(a.qubits(), b.qubits());
            assert_eq!(a.gate(), b.gate().inverse());
        }
    }

    #[test]
    fn smallest_qft() {
        let c = quantum_fourier_transform(2);
        // h, cp, h, swap.
        assert_eq!(c.len(), 4);
    }
}
