//! Quadratic form circuits (Grover adaptive search building block).

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;

/// A quadratic-form circuit: computes `Q(x) = x^T A x + b^T x` over binary
/// variables into a result register via phase arithmetic, QFT-style.
///
/// Layout: the first `n - m` qubits are the input register, the last
/// `m = max(3, n/4)` qubits are the result register. The circuit applies
/// Hadamards everywhere, phase rotations implementing the linear and
/// (sparse) quadratic terms against the Fourier-encoded result register,
/// and closes with an inverse QFT on the result. All registers are touched
/// within the opening layers, so `qf` involves all qubits early — the
/// paper's Table II reports only 7.21% of operations before full
/// involvement.
///
/// # Panics
///
/// Panics if `n < 4`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::quadratic_form;
///
/// let c = quadratic_form(10, 1);
/// assert_eq!(c.num_qubits(), 10);
/// ```
pub fn quadratic_form(n: usize, seed: u64) -> Circuit {
    assert!(n >= 4, "qf needs at least 4 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let m = (n / 4).max(3); // result register width
    let k = n - m; // input register width
    let mut c = Circuit::with_name(n, format!("qf_{n}"));

    // Superpose inputs and Fourier-prepare the result register.
    for q in 0..k {
        c.h(q);
    }
    for r in 0..m {
        c.h(k + r);
    }

    // Linear terms b_i: controlled phases from each input onto each
    // result bit, with the usual 2^j weighting.
    for i in 0..k {
        let b = rng.gen_range(1..4) as f64;
        for j in 0..m {
            let theta = 2.0 * PI * b * (1u64 << j) as f64 / (1u64 << m) as f64;
            c.cp(theta, i, k + j);
        }
    }

    // Sparse quadratic terms A_ij: doubly-controlled phases, decomposed.
    let quad_terms = k / 2;
    for _ in 0..quad_terms {
        let i = rng.gen_range(0..k);
        let j = rng.gen_range(0..k);
        if i == j {
            continue;
        }
        let a = rng.gen_range(1..3) as f64;
        // Apply against the least significant result bit only (sparse form).
        let theta = 2.0 * PI * a / (1u64 << m) as f64;
        c.ccp(theta, i.min(j), i.max(j), k);
    }

    // Inverse QFT on the result register.
    for target in 0..m {
        for kk in 0..target {
            let theta = -PI / (1u64 << (target - kk)) as f64;
            c.cp(theta, k + kk, k + target);
        }
        c.h(k + target);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::{full_mask, involvement_sequence, summarize};

    #[test]
    fn touches_all_qubits() {
        let c = quadratic_form(12, 4);
        assert_eq!(involvement_sequence(&c).last(), Some(&full_mask(12)));
    }

    #[test]
    fn early_involvement() {
        let s = summarize(&quadratic_form(20, 1));
        assert!(
            s.percentage < 25.0,
            "qf involves early: {:.1}%",
            s.percentage
        );
    }

    #[test]
    fn registers_partitioned() {
        // Result register is at least 3 qubits wide.
        let c = quadratic_form(8, 2);
        assert_eq!(c.num_qubits(), 8);
        assert!(c.len() > 20);
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(quadratic_form(10, 6), quadratic_form(10, 6));
    }
}
