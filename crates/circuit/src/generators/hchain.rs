//! Linear hydrogen-chain (quantum chemistry) circuits.

use std::f64::consts::PI;

use crate::circuit::Circuit;

/// A Trotterized time-evolution circuit for a linear chain of hydrogen
/// atoms under a nearest-neighbour hopping + on-site Hamiltonian
/// (Jordan–Wigner mapped).
///
/// This mirrors the structural properties the paper relies on: `hchain` is
/// by far the *deepest* benchmark, entangles neighbouring qubits early,
/// and its dense dependency chains leave little room for reordering
/// (paper §V-A: "for hchain and rqc, reordering cannot enlarge the pruning
/// potential due to dependent gates").
///
/// Per Trotter step and per bond `(i, i+1)` the circuit applies the
/// exponentials of `XX` and `YY` (hopping) via the standard CX–RZ–CX
/// sandwich, plus on-site `RZ` terms.
///
/// # Panics
///
/// Panics if `n < 2` or `trotter_steps == 0`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::hydrogen_chain;
///
/// let c = hydrogen_chain(6, 2);
/// assert!(c.depth() > 20, "hchain is deep");
/// ```
pub fn hydrogen_chain(n: usize, trotter_steps: usize) -> Circuit {
    assert!(n >= 2, "hchain needs at least 2 qubits");
    assert!(trotter_steps >= 1, "need at least one Trotter step");
    let mut c = Circuit::with_name(n, format!("hchain_{n}"));

    // Hartree–Fock-like reference state: occupy alternating sites.
    for q in (0..n).step_by(2) {
        c.x(q);
    }

    let dt = 0.1;
    for step in 0..trotter_steps {
        let theta = dt * (1.0 + 0.1 * step as f64);
        for i in 0..n - 1 {
            // exp(-i θ XX/2): rotate into X basis, entangle, rotate back.
            c.h(i).h(i + 1);
            c.cx(i, i + 1);
            c.rz(theta, i + 1);
            c.cx(i, i + 1);
            c.h(i).h(i + 1);
            // exp(-i θ YY/2): rotate into Y basis.
            c.sdg(i).h(i).sdg(i + 1).h(i + 1);
            c.cx(i, i + 1);
            c.rz(theta, i + 1);
            c.cx(i, i + 1);
            c.h(i).s(i).h(i + 1).s(i + 1);
        }
        // On-site terms.
        for q in 0..n {
            c.rz(PI * 0.05 * (q % 3 + 1) as f64, q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::{full_mask, involvement_sequence, summarize};

    #[test]
    fn touches_all_qubits() {
        let c = hydrogen_chain(10, 2);
        assert_eq!(involvement_sequence(&c).last(), Some(&full_mask(10)));
    }

    #[test]
    fn deep_circuit() {
        let c = hydrogen_chain(8, 4);
        assert!(c.depth() > 50, "depth = {}", c.depth());
    }

    #[test]
    fn involvement_grows_gradually() {
        // Bonds are processed left to right, so the last qubit joins
        // during the first Trotter step — a modest percentage like the
        // paper's 15%.
        let s = summarize(&hydrogen_chain(20, 4));
        assert!(
            s.percentage > 3.0 && s.percentage < 40.0,
            "got {:.1}%",
            s.percentage
        );
    }

    #[test]
    fn op_count_scales_with_steps() {
        let c1 = hydrogen_chain(10, 1);
        let c3 = hydrogen_chain(10, 3);
        assert!(c3.len() > 2 * c1.len());
    }
}
