//! Bernstein–Vazirani circuits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;

/// The Bernstein–Vazirani circuit for a random secret string.
///
/// Qubit `n-1` is the oracle ancilla (prepared in |−⟩); the rest are the
/// input register. The oracle is a CX from every secret-bit qubit onto the
/// ancilla, sandwiched between Hadamard layers.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::bernstein_vazirani;
///
/// let c = bernstein_vazirani(8, 3);
/// assert_eq!(c.num_qubits(), 8);
/// ```
pub fn bernstein_vazirani(n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "bv needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let anc = n - 1;
    let mut c = Circuit::with_name(n, format!("bv_{n}"));

    for q in 0..anc {
        c.h(q);
    }
    c.x(anc).h(anc);

    // Oracle: secret has each bit set with probability 1/2 (at least one).
    let mut any = false;
    for q in 0..anc {
        if rng.gen_bool(0.5) {
            c.cx(q, anc);
            any = true;
        }
    }
    if !any {
        c.cx(0, anc);
    }

    for q in 0..anc {
        c.h(q);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::{full_mask, involvement_sequence, summarize};

    #[test]
    fn touches_all_qubits() {
        let c = bernstein_vazirani(10, 8);
        assert_eq!(involvement_sequence(&c).last(), Some(&full_mask(10)));
    }

    #[test]
    fn ancilla_involved_after_input_layer() {
        let c = bernstein_vazirani(16, 1);
        let s = summarize(&c);
        // Full involvement right after the opening layer: n-1 H + X on
        // the ancilla = n ops out of ~2.5n-3.5n total.
        assert_eq!(s.ops_before_full, 16);
        assert!(s.percentage > 20.0 && s.percentage < 50.0);
    }

    #[test]
    fn oracle_never_empty() {
        // Even a secret of all zeros gets a fallback CX.
        for seed in 0..20 {
            let c = bernstein_vazirani(4, seed);
            assert!(c.ops().iter().any(|op| op.gate().name() == "cx"));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(bernstein_vazirani(12, 9), bernstein_vazirani(12, 9));
    }
}
