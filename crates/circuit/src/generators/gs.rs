//! Graph state preparation circuits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;

/// Prepares a graph state: a Hadamard on every qubit followed by an
/// entangling gate per edge of a sparse random graph.
///
/// Mirrors the paper's `gs_5` walk-through (Figure 8), which uses a
/// Hadamard layer followed by tree-structured CNOTs: we use a random
/// spanning tree plus a few extra chords, entangling with CNOT as in the
/// figure. Because the H layer and the entangling layer interleave freely
/// in the dependency DAG, `gs` is the showcase circuit for
/// forward-looking reordering.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::graph_state;
///
/// let c = graph_state(5, 7);
/// assert_eq!(c.num_qubits(), 5);
/// // n Hadamards + (n-1) tree edges + chords.
/// assert!(c.len() >= 9);
/// ```
pub fn graph_state(n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "graph state needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("gs_{n}"));
    for q in 0..n {
        c.h(q);
    }
    // Random spanning tree: attach each qubit to an earlier one.
    for q in 1..n {
        let parent = rng.gen_range(0..q);
        c.cx(parent, q);
    }
    // A few chord edges (~10% of n) for irregularity.
    let chords = n / 10;
    for _ in 0..chords {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b {
            c.cz(a.min(b), a.max(b));
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::{full_mask, involvement_sequence, ops_until_full_involvement};

    #[test]
    fn touches_all_qubits() {
        let c = graph_state(12, 3);
        assert_eq!(involvement_sequence(&c).last(), Some(&full_mask(12)));
    }

    #[test]
    fn h_layer_dominates_involvement() {
        // Full involvement exactly at the end of the H layer.
        let c = graph_state(10, 1);
        assert_eq!(ops_until_full_involvement(&c), 10);
    }

    #[test]
    fn op_count_is_n_plus_tree() {
        let n = 20;
        let c = graph_state(n, 5);
        // n H + (n-1) CX + up to n/10 CZ chords.
        assert!(c.len() >= 2 * n - 1);
        assert!(c.len() <= 2 * n - 1 + n / 10);
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(graph_state(8, 42), graph_state(8, 42));
    }
}
