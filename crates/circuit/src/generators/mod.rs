//! Generators for the paper's benchmark circuits (Table I).
//!
//! Each generator produces a deterministic circuit for a given qubit count
//! (random choices are seeded from the circuit family and size), so that
//! experiments are reproducible run-to-run.
//!
//! The generators aim to match the *involvement structure* reported in the
//! paper's Table II — which circuits involve all qubits early (`qft`,
//! `qaoa`, `qf`), late (`iqp`), or gradually (`gs`, `hlf`, `rqc`, `bv`,
//! `hchain`) — since that structure is what drives the pruning and
//! reordering results. Exact gate counts differ from the paper's Qiskit
//! constructions; see `EXPERIMENTS.md`.

mod bv;
mod deep;
mod gs;
mod hchain;
mod hlf;
mod iqp;
mod qaoa;
mod qf;
mod qft;
mod rqc;

pub use bv::bernstein_vazirani;
pub use deep::{deep_random_circuit, google_deep_circuit};
pub use gs::graph_state;
pub use hchain::hydrogen_chain;
pub use hlf::hidden_linear_function;
pub use iqp::instantaneous_quantum_polynomial;
pub use qaoa::qaoa_maxcut;
pub use qf::quadratic_form;
pub use qft::{
    quantum_fourier_transform, quantum_fourier_transform_approx, quantum_fourier_transform_inverse,
};
pub use rqc::random_quantum_circuit;

use crate::circuit::Circuit;

/// The nine benchmark circuits of the paper's Table I.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::Benchmark;
///
/// for b in Benchmark::ALL {
///     let c = b.generate(8);
///     assert_eq!(c.num_qubits(), 8);
///     assert!(!c.is_empty());
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// Linear hydrogen atom chain (quantum chemistry, deep circuit).
    Hchain,
    /// Google random quantum circuit.
    Rqc,
    /// Quantum approximate optimization algorithm (MaxCut).
    Qaoa,
    /// Graph state preparation.
    Gs,
    /// Hidden linear function.
    Hlf,
    /// Quantum Fourier transform.
    Qft,
    /// Instantaneous quantum polynomial-time.
    Iqp,
    /// Quadratic form.
    Qf,
    /// Bernstein–Vazirani.
    Bv,
}

impl Benchmark {
    /// All nine benchmarks, in the paper's Table I order.
    pub const ALL: [Benchmark; 9] = [
        Benchmark::Hchain,
        Benchmark::Rqc,
        Benchmark::Qaoa,
        Benchmark::Gs,
        Benchmark::Hlf,
        Benchmark::Qft,
        Benchmark::Iqp,
        Benchmark::Qf,
        Benchmark::Bv,
    ];

    /// The paper's abbreviation for the circuit.
    pub fn abbrev(self) -> &'static str {
        match self {
            Benchmark::Hchain => "hchain",
            Benchmark::Rqc => "rqc",
            Benchmark::Qaoa => "qaoa",
            Benchmark::Gs => "gs",
            Benchmark::Hlf => "hlf",
            Benchmark::Qft => "qft",
            Benchmark::Iqp => "iqp",
            Benchmark::Qf => "qf",
            Benchmark::Bv => "bv",
        }
    }

    /// Parses a paper abbreviation (e.g. `"qft"`).
    pub fn from_abbrev(s: &str) -> Option<Benchmark> {
        Benchmark::ALL.into_iter().find(|b| b.abbrev() == s)
    }

    /// Generates the benchmark circuit on `n` qubits with default
    /// parameters and a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `n` is smaller than the circuit family's minimum (2 for
    /// most, 3 for `qf` and `bv`).
    pub fn generate(self, n: usize) -> Circuit {
        self.generate_seeded(n, default_seed(self, n))
    }

    /// Generates the benchmark with an explicit seed for its random
    /// choices (graph edges, secret strings, gate draws) — for workload
    /// variation studies. `qft` and `hchain` are deterministic and ignore
    /// the seed.
    ///
    /// # Panics
    ///
    /// Panics under the same size constraints as [`Benchmark::generate`].
    pub fn generate_seeded(self, n: usize, seed: u64) -> Circuit {
        let mut c = match self {
            Benchmark::Hchain => hydrogen_chain(n, 4),
            Benchmark::Rqc => random_quantum_circuit(n, 4, seed),
            Benchmark::Qaoa => qaoa_maxcut(n, 8, seed),
            Benchmark::Gs => graph_state(n, seed),
            Benchmark::Hlf => hidden_linear_function(n, seed),
            Benchmark::Qft => quantum_fourier_transform(n),
            Benchmark::Iqp => instantaneous_quantum_polynomial(n, seed),
            Benchmark::Qf => quadratic_form(n, seed),
            Benchmark::Bv => bernstein_vazirani(n, seed),
        };
        c.set_name(format!("{}_{}", self.abbrev(), n));
        c
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Deterministic seed for a benchmark family and size.
fn default_seed(b: Benchmark, n: usize) -> u64 {
    // Simple FNV-style mix of the family name and the size.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in b.abbrev().bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (n as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::summarize;

    #[test]
    fn all_benchmarks_generate() {
        for b in Benchmark::ALL {
            let c = b.generate(10);
            assert_eq!(c.num_qubits(), 10, "{b}");
            assert!(c.len() > 5, "{b} too small: {} ops", c.len());
            assert_eq!(c.name(), format!("{}_10", b.abbrev()));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for b in Benchmark::ALL {
            assert_eq!(b.generate(9), b.generate(9), "{b} not deterministic");
        }
    }

    #[test]
    fn abbrev_roundtrip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_abbrev(b.abbrev()), Some(b));
        }
        assert_eq!(Benchmark::from_abbrev("nope"), None);
    }

    #[test]
    fn all_qubits_touched() {
        // Every benchmark must involve every qubit by the end.
        use crate::involvement::{full_mask, involvement_sequence};
        for b in Benchmark::ALL {
            let c = b.generate(12);
            let last = *involvement_sequence(&c).last().expect("non-empty");
            assert_eq!(last, full_mask(12), "{b} leaves qubits untouched");
        }
    }

    #[test]
    fn table2_qualitative_ordering() {
        // The paper's Table II shape: iqp involves qubits latest; qft,
        // qaoa and qf earliest.
        let pct = |b: Benchmark| summarize(&b.generate(20)).percentage;
        let iqp = pct(Benchmark::Iqp);
        for early in [Benchmark::Qft, Benchmark::Qaoa, Benchmark::Qf] {
            assert!(
                iqp > pct(early) + 30.0,
                "iqp ({iqp:.1}%) should involve much later than {early}"
            );
        }
    }

    #[test]
    fn seeds_vary_random_families_only() {
        use crate::involvement::{full_mask, involvement_sequence};
        for b in Benchmark::ALL {
            let a = b.generate_seeded(12, 1);
            let c = b.generate_seeded(12, 2);
            match b {
                Benchmark::Qft | Benchmark::Hchain => assert_eq!(a, c, "{b} is deterministic"),
                _ => assert_ne!(a, c, "{b} should vary with the seed"),
            }
            // Every seed still yields a full-involvement circuit.
            assert_eq!(
                involvement_sequence(&c).last(),
                Some(&full_mask(12)),
                "{b} seed variant leaves qubits untouched"
            );
        }
    }

    #[test]
    fn generation_scales_to_34_qubits() {
        // Table II is computed at 34 qubits: generation (not simulation)
        // must be cheap at that size.
        for b in Benchmark::ALL {
            let c = b.generate(34);
            assert_eq!(c.num_qubits(), 34);
        }
    }
}
