//! Google-style random quantum circuits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;

/// A random quantum circuit in the style of Boixo et al., mapped onto a
/// near-square 2D grid.
///
/// Per cycle, a staggered pattern of CZ gates couples neighbouring grid
/// sites, and every qubit that just participated in a CZ receives a random
/// single-qubit gate from {√X, √Y, T}. A qubit's opening Hadamard is
/// emitted immediately before its first two-qubit gate, so involvement
/// grows gradually over the first cycles (the paper's Table II reports
/// 43.5% of `rqc` operations before full involvement).
///
/// # Panics
///
/// Panics if `n < 2` or `cycles == 0`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::random_quantum_circuit;
///
/// let c = random_quantum_circuit(12, 4, 1);
/// assert_eq!(c.num_qubits(), 12);
/// ```
pub fn random_quantum_circuit(n: usize, cycles: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "rqc needs at least 2 qubits");
    assert!(cycles >= 1, "rqc needs at least one cycle");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("rqc_{n}"));

    // Map qubits onto a rows × cols grid.
    let cols = (n as f64).sqrt().ceil() as usize;
    let site = |r: usize, col: usize| r * cols + col;
    let rows = n.div_ceil(cols);

    let mut hadamarded = vec![false; n];
    let ensure_h = |c: &mut Circuit, q: usize, hadamarded: &mut Vec<bool>| {
        if !hadamarded[q] {
            c.h(q);
            hadamarded[q] = true;
        }
    };

    for cycle in 0..cycles {
        // Staggered CZ pattern: alternate horizontal / vertical, even/odd.
        let mut touched: Vec<usize> = Vec::new();
        match cycle % 4 {
            0 | 2 => {
                // Horizontal pairs, offset alternates.
                let offset = (cycle / 2) % 2;
                for r in 0..rows {
                    let mut col = offset;
                    while col + 1 < cols {
                        let (a, b) = (site(r, col), site(r, col + 1));
                        if a < n && b < n {
                            ensure_h(&mut c, a, &mut hadamarded);
                            ensure_h(&mut c, b, &mut hadamarded);
                            c.cz(a, b);
                            touched.push(a);
                            touched.push(b);
                        }
                        col += 2;
                    }
                }
            }
            _ => {
                // Vertical pairs.
                let offset = (cycle / 2) % 2;
                for col in 0..cols {
                    let mut r = offset;
                    while r + 1 < rows {
                        let (a, b) = (site(r, col), site(r + 1, col));
                        if a < n && b < n {
                            ensure_h(&mut c, a, &mut hadamarded);
                            ensure_h(&mut c, b, &mut hadamarded);
                            c.cz(a, b);
                            touched.push(a);
                            touched.push(b);
                        }
                        r += 2;
                    }
                }
            }
        }
        // Random single-qubit gates on qubits that just interacted.
        for q in touched {
            match rng.gen_range(0..3) {
                0 => c.sx(q),
                1 => c.sy(q),
                _ => c.t(q),
            };
        }
    }
    // Any isolated qubit (possible on ragged grids) still gets involved.
    for (q, done) in hadamarded.iter().enumerate() {
        if !done {
            c.h(q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::{full_mask, involvement_sequence, summarize};

    #[test]
    fn touches_all_qubits() {
        for n in [5, 9, 12, 16] {
            let c = random_quantum_circuit(n, 4, 3);
            assert_eq!(
                involvement_sequence(&c).last(),
                Some(&full_mask(n)),
                "n = {n}"
            );
        }
    }

    #[test]
    fn gradual_involvement() {
        let s = summarize(&random_quantum_circuit(25, 4, 1));
        assert!(
            s.percentage > 15.0 && s.percentage < 80.0,
            "rqc involvement should be gradual, got {:.1}%",
            s.percentage
        );
    }

    #[test]
    fn cycles_scale_depth() {
        let shallow = random_quantum_circuit(16, 2, 5);
        let deep = random_quantum_circuit(16, 16, 5);
        assert!(deep.len() > 4 * shallow.len() / 2);
        assert!(deep.depth() > shallow.depth());
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(
            random_quantum_circuit(10, 4, 2),
            random_quantum_circuit(10, 4, 2)
        );
    }
}
