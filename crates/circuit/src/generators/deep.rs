//! Deep random circuits for the paper's Table III.

use crate::circuit::Circuit;

use super::rqc::random_quantum_circuit;

/// The "Google deep circuit" (`grqc`) of Table III: a random quantum
/// circuit with very many cycles (the paper's `grqc_32` has 7241
/// operations, ~226 per qubit).
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::google_deep_circuit;
///
/// let c = google_deep_circuit(12);
/// assert!(c.len() > 100 * 12 / 4, "grqc is deep");
/// ```
pub fn google_deep_circuit(n: usize) -> Circuit {
    let mut c = random_quantum_circuit(n, 120, 0x6712c);
    c.set_name(format!("grqc_{n}"));
    c
}

/// A deep random circuit (`rqc_31` / `rqc_32` in Table III, ~20 operations
/// per qubit).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn deep_random_circuit(n: usize) -> Circuit {
    let mut c = random_quantum_circuit(n, 12, 0xdeeb);
    c.set_name(format!("rqc_deep_{n}"));
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grqc_is_much_deeper_than_rqc_deep() {
        let grqc = google_deep_circuit(10);
        let rqc = deep_random_circuit(10);
        assert!(grqc.len() > 5 * rqc.len());
    }

    #[test]
    fn names() {
        assert_eq!(google_deep_circuit(8).name(), "grqc_8");
        assert_eq!(deep_random_circuit(8).name(), "rqc_deep_8");
    }
}
