//! QAOA MaxCut circuits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;

/// A `rounds`-level QAOA ansatz for MaxCut on a random 3-regular-ish
/// graph.
///
/// Structure: an opening Hadamard layer, then per round a `rzz(γ)` per
/// graph edge followed by an `rx(β)` per qubit. Every qubit is involved by
/// the end of the opening layer and the rounds repeat over the same dense
/// dependency structure, so `qaoa` gains almost nothing from pruning or
/// reordering (paper Figure 9) — but its smooth amplitude distribution
/// makes it the best compression target (paper Figure 10).
///
/// # Panics
///
/// Panics if `n < 2` or `rounds == 0`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::qaoa_maxcut;
///
/// let c = qaoa_maxcut(10, 2, 3);
/// assert_eq!(c.num_qubits(), 10);
/// ```
pub fn qaoa_maxcut(n: usize, rounds: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "qaoa needs at least 2 qubits");
    assert!(rounds >= 1, "qaoa needs at least one round");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("qaoa_{n}"));

    // Random near-3-regular graph: ring + ~n/2 random chords.
    let mut edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    for _ in 0..n / 2 {
        let a = rng.gen_range(0..n);
        let b = rng.gen_range(0..n);
        if a != b && !edges.contains(&(a.min(b), a.max(b))) {
            edges.push((a.min(b), a.max(b)));
        }
    }

    for q in 0..n {
        c.h(q);
    }
    // Parameters fixed at the structured point (γ = π/4, β = π/2). At
    // these angles the layer unitaries map the state onto a discrete
    // amplitude set, so the state vector contains massively repeated
    // values — the spatial similarity behind the paper's Figure 10
    // compressibility finding for qaoa.
    let gamma = std::f64::consts::FRAC_PI_4;
    let beta = std::f64::consts::FRAC_PI_2;
    for _ in 0..rounds {
        for &(a, b) in &edges {
            c.rzz(2.0 * gamma, a, b);
        }
        for q in 0..n {
            c.rx(2.0 * beta, q);
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::{ops_until_full_involvement, summarize};

    #[test]
    fn involvement_completes_at_h_layer() {
        let c = qaoa_maxcut(12, 4, 1);
        assert_eq!(ops_until_full_involvement(&c), 12);
    }

    #[test]
    fn early_involvement_percentage() {
        let s = summarize(&qaoa_maxcut(20, 8, 2));
        assert!(
            s.percentage < 10.0,
            "qaoa involves early: {:.1}%",
            s.percentage
        );
    }

    #[test]
    fn rounds_scale_op_count() {
        let c1 = qaoa_maxcut(10, 1, 7);
        let c4 = qaoa_maxcut(10, 4, 7);
        assert!(c4.len() > 3 * c1.len() - 10);
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(qaoa_maxcut(9, 3, 11), qaoa_maxcut(9, 3, 11));
    }
}
