//! Instantaneous quantum polynomial-time (IQP) circuits.

use std::f64::consts::PI;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::circuit::Circuit;

/// An IQP circuit: `H^{⊗n} · D · H^{⊗n}` with `D` a random diagonal
/// operator built from `T`-power and controlled-phase gates.
///
/// Because every gate of `D` commutes, the instruction stream can be
/// emitted qubit-block by qubit-block: qubit `i`'s opening Hadamard is
/// placed immediately before its diagonal gates. Later qubits therefore
/// join the computation late — matching the paper's Table II, where `iqp`
/// reaches full involvement only after 90% of its operations, and making
/// it the best-case circuit for zero-amplitude pruning.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::generators::instantaneous_quantum_polynomial;
/// use qgpu_circuit::involvement::summarize;
///
/// let c = instantaneous_quantum_polynomial(16, 1);
/// let s = summarize(&c);
/// assert!(s.percentage > 60.0, "iqp involves qubits late");
/// ```
pub fn instantaneous_quantum_polynomial(n: usize, seed: u64) -> Circuit {
    assert!(n >= 2, "iqp needs at least 2 qubits");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::with_name(n, format!("iqp_{n}"));
    for i in 0..n {
        c.h(i);
        // Diagonal single-qubit part: a random power of T.
        let t_power = rng.gen_range(0..4);
        for _ in 0..t_power {
            c.t(i);
        }
        // Diagonal two-qubit part: controlled phases to ~2 earlier qubits.
        if i > 0 {
            let pairs = rng.gen_range(1..=2.min(i));
            for _ in 0..pairs {
                let j = rng.gen_range(0..i);
                let theta = PI / (1 << rng.gen_range(1..4)) as f64;
                c.cp(theta, j, i);
            }
        }
    }
    // Closing Hadamard layer.
    for i in 0..n {
        c.h(i);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::involvement::{full_mask, involvement_sequence, summarize};

    #[test]
    fn touches_all_qubits() {
        let c = instantaneous_quantum_polynomial(14, 9);
        assert_eq!(involvement_sequence(&c).last(), Some(&full_mask(14)));
    }

    #[test]
    fn late_involvement() {
        let s = summarize(&instantaneous_quantum_polynomial(20, 2));
        assert!(
            s.percentage > 60.0,
            "expected late involvement, got {:.1}%",
            s.percentage
        );
    }

    #[test]
    fn op_count_scales_linearly() {
        let c = instantaneous_quantum_polynomial(30, 3);
        // Between 2n (pure H layers) and ~7n.
        assert!(c.len() >= 60 && c.len() <= 210, "len = {}", c.len());
    }

    #[test]
    fn deterministic_for_seed() {
        assert_eq!(
            instantaneous_quantum_polynomial(10, 5),
            instantaneous_quantum_polynomial(10, 5)
        );
    }
}
