//! Decomposition of multi-qubit gates into a `{single-qubit, CX}` basis.
//!
//! The paper feeds its benchmarks to simulators with narrower gate sets
//! than Qiskit's (§V-C: "not all the transformed circuits can run on
//! Qsim-Cirq … the cp gate cannot be recognized"). This pass rewrites a
//! circuit using only single-qubit gates and CNOT — the least common
//! denominator every state-vector simulator accepts — using the standard
//! textbook decompositions. The rewritten circuit simulates to the
//! identical state (up to global phase; exactly, for the gates below).

use std::f64::consts::FRAC_PI_2;

use crate::circuit::Circuit;
use crate::gate::{Gate, Operation};

/// Rewrites `circuit` using only single-qubit gates and CX.
///
/// Gates already in the basis pass through untouched; `cz`, `cy`, `cp`,
/// `rzz`, `swap` and `ccx` are decomposed exactly.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Circuit, transpile};
///
/// let mut c = Circuit::new(3);
/// c.ccx(0, 1, 2);
/// let basis = transpile::to_cx_basis(&c);
/// assert!(basis.iter().all(|op| op.qubits().len() == 1 || op.gate().name() == "cx"));
/// ```
pub fn to_cx_basis(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name().to_string());
    for op in circuit.iter() {
        decompose_into(op, &mut out);
    }
    out
}

fn decompose_into(op: &Operation, out: &mut Circuit) {
    let q = op.qubits();
    match op.gate() {
        // Already in the basis (measure/reset are arity-1 and pass
        // through untouched — they have no unitary decomposition).
        g if g.arity() == 1 => {
            out.push(op.clone());
        }
        Gate::Cx => {
            out.push(op.clone());
        }
        // cz(a,b) = h(b) cx(a,b) h(b)
        Gate::Cz => {
            out.h(q[1]).cx(q[0], q[1]).h(q[1]);
        }
        // cy(c,t) = sdg(t) cx(c,t) s(t)
        Gate::Cy => {
            out.sdg(q[1]).cx(q[0], q[1]).s(q[1]);
        }
        // cp(θ) = p(θ/2)(a) p(θ/2)(b) cx(a,b) p(-θ/2)(b) cx(a,b)
        Gate::Cp(theta) => {
            out.p(theta / 2.0, q[0])
                .p(theta / 2.0, q[1])
                .cx(q[0], q[1])
                .p(-theta / 2.0, q[1])
                .cx(q[0], q[1]);
        }
        // rzz(θ) = cx(a,b) rz(θ)(b) cx(a,b)
        Gate::Rzz(theta) => {
            out.cx(q[0], q[1]).rz(theta, q[1]).cx(q[0], q[1]);
        }
        // swap = cx(a,b) cx(b,a) cx(a,b)
        Gate::Swap => {
            out.cx(q[0], q[1]).cx(q[1], q[0]).cx(q[0], q[1]);
        }
        // Standard 6-CX Toffoli decomposition.
        Gate::Ccx => {
            let (a, b, t) = (q[0], q[1], q[2]);
            out.h(t)
                .cx(b, t)
                .tdg(t)
                .cx(a, t)
                .t(t)
                .cx(b, t)
                .tdg(t)
                .cx(a, t)
                .t(b)
                .t(t)
                .h(t)
                .cx(a, b)
                .t(a)
                .tdg(b)
                .cx(a, b);
        }
        other => unreachable!("gate {} has no decomposition rule", other.name()),
    }
}

/// Counts two-qubit gates in a circuit — the usual cost metric after
/// transpilation.
pub fn two_qubit_gate_count(circuit: &Circuit) -> usize {
    circuit.iter().filter(|op| op.qubits().len() >= 2).count()
}

/// Rewrites the `sx`/`sy` roots as `U` rotations (some backends reject
/// them); everything else passes through.
pub fn canonicalize_roots(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name().to_string());
    for op in circuit.iter() {
        match op.gate() {
            Gate::Sx => {
                out.rx(FRAC_PI_2, op.qubits()[0]);
                // rx(π/2) = sx up to global phase e^{-iπ/4}.
            }
            Gate::Sy => {
                out.ry(FRAC_PI_2, op.qubits()[0]);
            }
            _ => {
                out.push(op.clone());
            }
        }
    }
    out
}

/// Peephole optimization: cancels adjacent inverse pairs and merges
/// consecutive rotations on the same qubits.
///
/// "Adjacent" is with respect to the dependency DAG: two gates on the
/// same qubit vector with no intervening gate touching any of those
/// qubits. Every gate the pass removes reduces the bytes the Q-GPU
/// pipeline must stream, so this composes with all four of the paper's
/// optimizations.
///
/// The pass runs to a fixpoint (cancellations can cascade); the result
/// simulates to the identical state, enforced by integration tests.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Circuit, transpile};
///
/// let mut c = Circuit::new(2);
/// c.h(0).t(1).h(0).cx(0, 1).cx(0, 1);
/// let optimized = transpile::peephole(&c);
/// assert_eq!(optimized.len(), 1); // only t(1) survives
/// ```
pub fn peephole(circuit: &Circuit) -> Circuit {
    let mut ops: Vec<Operation> = circuit.ops().to_vec();
    loop {
        let (next, changed) = peephole_pass(circuit.num_qubits(), &ops);
        ops = next;
        if !changed {
            break;
        }
    }
    let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name().to_string());
    for op in ops {
        out.push(op);
    }
    out
}

/// One forward pass; returns the rewritten ops and whether anything
/// changed.
fn peephole_pass(num_qubits: usize, ops: &[Operation]) -> (Vec<Operation>, bool) {
    let mut out: Vec<Option<Operation>> = Vec::with_capacity(ops.len());
    // Index into `out` of the last surviving op touching each qubit.
    let mut last_on_qubit: Vec<Option<usize>> = vec![None; num_qubits];
    let mut changed = false;

    for op in ops {
        // The candidate predecessor must be the last op on *all* of this
        // op's qubits, must touch exactly the same qubit vector, and must
        // still be alive. Non-unitary ops (measure/reset) are optimization
        // barriers: never cancelled or merged, but they still claim their
        // qubit below so no pair can cancel across them.
        let preds: Vec<Option<usize>> = op.qubits().iter().map(|&q| last_on_qubit[q]).collect();
        let candidate = match preds.first().copied().flatten() {
            Some(i)
                if op.gate().is_unitary()
                    && preds.iter().all(|&p| p == Some(i))
                    && out[i].as_ref().is_some_and(|prev| {
                        prev.gate().is_unitary() && prev.qubits() == op.qubits()
                    }) =>
            {
                Some(i)
            }
            _ => None,
        };

        if let Some(i) = candidate {
            let prev = out[i].as_ref().expect("alive");
            if prev.gate() == op.gate().inverse() {
                // Exact cancellation: drop both.
                out[i] = None;
                for &q in op.qubits() {
                    last_on_qubit[q] = None;
                }
                changed = true;
                continue;
            }
            if let Some(merged) = merge_rotations(prev.gate(), op.gate()) {
                changed = true;
                match merged {
                    Some(g) => {
                        out[i] = Some(Operation::new(g, op.qubits().to_vec()));
                    }
                    None => {
                        // Angles summed to (numerically) zero: drop both.
                        out[i] = None;
                        for &q in op.qubits() {
                            last_on_qubit[q] = None;
                        }
                    }
                }
                continue;
            }
        }

        let idx = out.len();
        out.push(Some(op.clone()));
        for &q in op.qubits() {
            last_on_qubit[q] = Some(idx);
        }
    }
    (out.into_iter().flatten().collect(), changed)
}

/// Merges two same-axis rotations; `Some(None)` means they annihilate.
#[allow(clippy::option_option)]
fn merge_rotations(a: Gate, b: Gate) -> Option<Option<Gate>> {
    let merged = match (a, b) {
        (Gate::Rx(x), Gate::Rx(y)) => Gate::Rx(x + y),
        (Gate::Ry(x), Gate::Ry(y)) => Gate::Ry(x + y),
        (Gate::Rz(x), Gate::Rz(y)) => Gate::Rz(x + y),
        (Gate::Phase(x), Gate::Phase(y)) => Gate::Phase(x + y),
        (Gate::Cp(x), Gate::Cp(y)) => Gate::Cp(x + y),
        (Gate::Rzz(x), Gate::Rzz(y)) => Gate::Rzz(x + y),
        _ => return None,
    };
    let angle = merged.params()[0];
    if angle.abs() < 1e-12 {
        Some(None)
    } else {
        Some(Some(merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Benchmark;

    #[test]
    fn output_is_in_basis() {
        for b in Benchmark::ALL {
            let c = to_cx_basis(&b.generate(8));
            for op in c.iter() {
                let ok = op.qubits().len() == 1 || op.gate() == Gate::Cx;
                assert!(ok, "{b}: {} not in basis", op.gate().name());
            }
        }
    }

    #[test]
    fn two_qubit_count_only_counts_wide_gates() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).ccx(0, 1, 2).t(2);
        assert_eq!(two_qubit_gate_count(&c), 2);
    }

    #[test]
    fn peephole_cancels_adjacent_inverses() {
        let mut c = Circuit::new(3);
        c.h(0).h(0).cx(1, 2).cx(1, 2).t(0).tdg(0).s(1).sdg(1);
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn peephole_sees_through_commuting_spacers() {
        // h(0), t(1), h(0): the t(1) does not touch qubit 0, so the
        // Hadamards are DAG-adjacent and cancel.
        let mut c = Circuit::new(2);
        c.h(0).t(1).h(0);
        let out = peephole(&c);
        assert_eq!(out.len(), 1);
        assert_eq!(out.ops()[0].gate(), Gate::T);
    }

    #[test]
    fn peephole_respects_qubit_order() {
        // cx(0,1) then cx(1,0) is NOT an inverse pair.
        let mut c = Circuit::new(2);
        c.cx(0, 1).cx(1, 0);
        assert_eq!(peephole(&c).len(), 2);
    }

    #[test]
    fn peephole_merges_rotations() {
        let mut c = Circuit::new(2);
        c.rz(0.3, 0).rz(0.4, 0).rzz(0.1, 0, 1).rzz(-0.1, 0, 1);
        let out = peephole(&c);
        assert_eq!(out.len(), 1);
        assert!(matches!(out.ops()[0].gate(), Gate::Rz(t) if (t - 0.7).abs() < 1e-12));
    }

    #[test]
    fn peephole_cascades_to_fixpoint() {
        // x s s x: the inner pair merges to z-ish... use exact pairs:
        // h x x h collapses completely only after the inner xx cancels.
        let mut c = Circuit::new(1);
        c.h(0).x(0).x(0).h(0);
        assert!(peephole(&c).is_empty());
    }

    #[test]
    fn peephole_collapses_circuit_plus_inverse() {
        for b in [Benchmark::Qft, Benchmark::Gs, Benchmark::Hlf] {
            let c = b.generate(6);
            let mut round = c.clone();
            round.extend_from(&c.inverse());
            let out = peephole(&round);
            // sx/sy invert to rx/ry (global phase), which don't cancel
            // syntactically; everything else must vanish.
            let residual = out
                .iter()
                .filter(|op| !matches!(op.gate(), Gate::Rx(_) | Gate::Ry(_) | Gate::Sx | Gate::Sy))
                .count();
            assert_eq!(residual, 0, "{b}: {} ops left", out.len());
        }
    }

    #[test]
    fn peephole_leaves_irreducible_circuits_alone() {
        let c = Benchmark::Qft.generate(6);
        assert_eq!(peephole(&c).len(), c.len());
    }

    #[test]
    fn peephole_never_cancels_across_a_measurement() {
        // h(0) measure(0) h(0): the Hadamards are NOT DAG-adjacent —
        // collapse sits between them — so fusing/cancelling them would
        // change the observable distribution. The pass must keep all 3.
        let mut c = Circuit::new(1);
        c.h(0).measure(0).h(0);
        let out = peephole(&c);
        assert_eq!(out.len(), 3);
        assert_eq!(out.ops()[1].gate(), Gate::Measure);
    }

    #[test]
    fn peephole_keeps_measure_and_reset_and_merges_around_them() {
        // Rotations on an untouched qubit still merge; the barrier only
        // blocks pairs that would straddle the non-unitary op's qubit.
        let mut c = Circuit::new(2);
        c.rz(0.3, 1).reset(0).rz(0.4, 1).t(0).tdg(0);
        let out = peephole(&c);
        // rz pair merges (qubit 1 unaffected by reset on qubit 0);
        // t/tdg cancel only because they are both AFTER the reset.
        assert_eq!(out.len(), 2);
        assert!(out.iter().any(|op| op.gate() == Gate::Reset));
        assert!(out
            .iter()
            .any(|op| matches!(op.gate(), Gate::Rz(t) if (t - 0.7).abs() < 1e-12)));
    }

    #[test]
    fn to_cx_basis_passes_measure_and_reset_through() {
        let mut c = Circuit::new(3);
        c.ccx(0, 1, 2).measure(0).reset(1);
        let out = to_cx_basis(&c);
        assert!(out.iter().any(|op| op.gate() == Gate::Measure));
        assert!(out.iter().any(|op| op.gate() == Gate::Reset));
    }

    #[test]
    fn canonicalize_removes_roots() {
        let mut c = Circuit::new(2);
        c.sx(0).sy(1).h(0);
        let out = canonicalize_roots(&c);
        assert!(out
            .iter()
            .all(|op| !matches!(op.gate(), Gate::Sx | Gate::Sy)));
        assert_eq!(out.len(), 3);
    }
}
