//! Classification of how a gate touches the state vector.
//!
//! Chunked execution (paper §III-B) cares about *which* amplitudes a gate
//! mixes:
//!
//! * **diagonal** gates multiply each amplitude by a phase — they never
//!   pair amplitudes, so every chunk can be updated in place regardless of
//!   qubit position;
//! * **controlled** gates only mix amplitudes whose control bits are 1 — a
//!   control above the chunk boundary merely *selects* chunks;
//! * **mixing** qubits are the ones whose bit differs between paired
//!   amplitudes — a mixing qubit at or above the chunk boundary forces
//!   chunks to be processed in groups (the paper's "Case 2").
//!
//! [`GateAction`] is the executable form of an [`Operation`]: a diagonal
//! vector or a controls + dense-submatrix pair, with qubit positions
//! resolved.

use qgpu_math::Complex64;

use crate::gate::{Matrix, Operation};

/// The executable form of a gate: either a diagonal phase vector or a
/// controlled dense matrix over the mixing qubits.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Gate, Operation, access::GateAction};
///
/// let cx = GateAction::from_operation(&Operation::new(Gate::Cx, vec![2, 5]));
/// match &cx {
///     GateAction::ControlledDense { controls, mixing, .. } => {
///         assert_eq!(controls.as_slice(), &[2]);
///         assert_eq!(mixing.as_slice(), &[5]);
///     }
///     _ => panic!("cx is not diagonal"),
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum GateAction {
    /// Multiply amplitude `a_i` by `dvec[s]`, where `s` gathers the bits
    /// of `i` at `qubits` (argument order = bit order).
    Diagonal {
        /// Qubit positions, in gate-argument order.
        qubits: Vec<usize>,
        /// The `2^qubits.len()` diagonal entries.
        dvec: Vec<Complex64>,
    },
    /// Apply `matrix` (dimension `2^mixing.len()`) to the amplitudes
    /// enumerated over `mixing`, restricted to indices where every
    /// `controls` bit is 1.
    ControlledDense {
        /// Control qubit positions (may be empty).
        controls: Vec<usize>,
        /// Mixing qubit positions, in matrix bit order.
        mixing: Vec<usize>,
        /// Dense submatrix over the mixing qubits.
        matrix: Matrix,
    },
}

impl GateAction {
    /// Builds the action for an operation.
    ///
    /// Diagonal gates become [`GateAction::Diagonal`]; everything else is
    /// decomposed into control and mixing qubits with the dense submatrix
    /// extracted from the gate's full unitary.
    pub fn from_operation(op: &Operation) -> GateAction {
        let gate = op.gate();
        let qubits = op.qubits();
        let matrix = gate.matrix();
        if gate.is_diagonal() {
            let dim = matrix.dim();
            let dvec = (0..dim).map(|i| matrix.get(i, i)).collect();
            return GateAction::Diagonal {
                qubits: qubits.to_vec(),
                dvec,
            };
        }
        // Argument positions (bit indices into the gate matrix) that act
        // as controls: the matrix is identity wherever that bit is 0.
        let k = qubits.len();
        let control_args: Vec<usize> = (0..k).filter(|&arg| is_control_bit(&matrix, arg)).collect();
        let mixing_args: Vec<usize> = (0..k).filter(|a| !control_args.contains(a)).collect();
        debug_assert!(!mixing_args.is_empty(), "non-diagonal gate must mix");

        // Extract the submatrix over mixing bits with all control bits 1.
        let control_mask: usize = control_args.iter().map(|&a| 1usize << a).sum();
        let sub_dim = 1usize << mixing_args.len();
        let mut data = vec![Complex64::ZERO; sub_dim * sub_dim];
        let expand = |s: usize| -> usize {
            let mut idx = control_mask;
            for (bit, &arg) in mixing_args.iter().enumerate() {
                idx |= ((s >> bit) & 1) << arg;
            }
            idx
        };
        for r in 0..sub_dim {
            for c in 0..sub_dim {
                data[r * sub_dim + c] = matrix.get(expand(r), expand(c));
            }
        }
        GateAction::ControlledDense {
            controls: control_args.iter().map(|&a| qubits[a]).collect(),
            mixing: mixing_args.iter().map(|&a| qubits[a]).collect(),
            matrix: Matrix::new(sub_dim, data),
        }
    }

    /// Returns `true` for diagonal actions.
    pub fn is_diagonal(&self) -> bool {
        matches!(self, GateAction::Diagonal { .. })
    }

    /// The mixing qubit positions (empty for diagonal actions).
    pub fn mixing_qubits(&self) -> &[usize] {
        match self {
            GateAction::Diagonal { .. } => &[],
            GateAction::ControlledDense { mixing, .. } => mixing,
        }
    }

    /// The control qubit positions (empty for diagonal actions).
    pub fn control_qubits(&self) -> &[usize] {
        match self {
            GateAction::Diagonal { .. } => &[],
            GateAction::ControlledDense { controls, .. } => controls,
        }
    }
}

/// Returns `true` if the matrix acts as identity whenever bit `arg` of the
/// index is 0 and never maps a `bit=1` index onto a `bit=0` one — i.e.
/// `arg` is a control.
fn is_control_bit(m: &Matrix, arg: usize) -> bool {
    let dim = m.dim();
    let bit = 1usize << arg;
    for r in 0..dim {
        for c in 0..dim {
            let v = m.get(r, c);
            if (r & bit) == 0 || (c & bit) == 0 {
                // Outside the controls-on block the matrix must be identity.
                let expected = if r == c {
                    Complex64::ONE
                } else {
                    Complex64::ZERO
                };
                if !v.approx_eq(expected, 1e-14) {
                    return false;
                }
            }
        }
    }
    true
}

/// Splits qubit positions into those below and those at-or-above the chunk
/// boundary — the paper's Case 1 / Case 2 distinction.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::access::split_by_boundary;
/// let (low, high) = split_by_boundary(&[1, 4, 9], 4);
/// assert_eq!(low, vec![1]);
/// assert_eq!(high, vec![4, 9]);
/// ```
pub fn split_by_boundary(qubits: &[usize], chunk_bits: u32) -> (Vec<usize>, Vec<usize>) {
    let mut low = Vec::new();
    let mut high = Vec::new();
    for &q in qubits {
        if (q as u32) < chunk_bits {
            low.push(q);
        } else {
            high.push(q);
        }
    }
    (low, high)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::Gate;

    #[test]
    fn single_qubit_gates_have_one_mixing_qubit() {
        for g in [
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Sx,
            Gate::Rx(0.3),
            Gate::U(1.0, 0.2, 0.3),
        ] {
            let a = GateAction::from_operation(&Operation::new(g, vec![7]));
            assert_eq!(a.mixing_qubits(), &[7], "{}", g.name());
            assert!(a.control_qubits().is_empty());
        }
    }

    #[test]
    fn diagonal_gates_are_diagonal_actions() {
        for (g, qs) in [
            (Gate::Z, vec![0]),
            (Gate::T, vec![3]),
            (Gate::Rz(0.5), vec![1]),
            (Gate::Cz, vec![0, 2]),
            (Gate::Cp(0.9), vec![4, 1]),
            (Gate::Rzz(1.3), vec![2, 3]),
        ] {
            let a = GateAction::from_operation(&Operation::new(g, qs));
            assert!(a.is_diagonal(), "{}", g.name());
        }
    }

    #[test]
    fn cx_splits_into_control_and_target() {
        let a = GateAction::from_operation(&Operation::new(Gate::Cx, vec![3, 1]));
        assert_eq!(a.control_qubits(), &[3]);
        assert_eq!(a.mixing_qubits(), &[1]);
        if let GateAction::ControlledDense { matrix, .. } = &a {
            // Submatrix is X.
            assert_eq!(matrix.dim(), 2);
            assert!(matrix.get(0, 1).approx_eq(Complex64::ONE, 1e-14));
            assert!(matrix.get(1, 0).approx_eq(Complex64::ONE, 1e-14));
        }
    }

    #[test]
    fn ccx_has_two_controls() {
        let a = GateAction::from_operation(&Operation::new(Gate::Ccx, vec![5, 2, 0]));
        assert_eq!(a.control_qubits(), &[5, 2]);
        assert_eq!(a.mixing_qubits(), &[0]);
    }

    #[test]
    fn swap_mixes_both_qubits() {
        let a = GateAction::from_operation(&Operation::new(Gate::Swap, vec![1, 4]));
        assert!(a.control_qubits().is_empty());
        assert_eq!(a.mixing_qubits(), &[1, 4]);
    }

    #[test]
    fn cy_control_detected() {
        let a = GateAction::from_operation(&Operation::new(Gate::Cy, vec![0, 1]));
        assert_eq!(a.control_qubits(), &[0]);
        assert_eq!(a.mixing_qubits(), &[1]);
    }

    #[test]
    fn diagonal_vector_matches_matrix() {
        let op = Operation::new(Gate::Rzz(0.7), vec![0, 1]);
        if let GateAction::Diagonal { dvec, .. } = GateAction::from_operation(&op) {
            let m = Gate::Rzz(0.7).matrix();
            for (i, d) in dvec.iter().enumerate() {
                assert!(d.approx_eq(m.get(i, i), 1e-14));
            }
        } else {
            panic!("rzz should be diagonal");
        }
    }

    #[test]
    fn boundary_split() {
        let (low, high) = split_by_boundary(&[0, 3, 7, 8], 8);
        assert_eq!(low, vec![0, 3, 7]);
        assert_eq!(high, vec![8]);
    }
}
