//! The [`Circuit`] type: an ordered list of gate operations.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::gate::{Gate, Operation};

/// A quantum circuit: `num_qubits` and an ordered operation list.
///
/// Builder methods (`h`, `cx`, …) return `&mut Self` so circuits can be
/// assembled fluently; [`Circuit::push`] accepts an arbitrary
/// [`Operation`].
///
/// # Examples
///
/// ```
/// use qgpu_circuit::Circuit;
///
/// let mut ghz = Circuit::new(3);
/// ghz.h(0).cx(0, 1).cx(1, 2);
/// assert_eq!(ghz.len(), 3);
/// assert_eq!(ghz.depth(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    num_qubits: usize,
    ops: Vec<Operation>,
    name: String,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `num_qubits` is 0 or greater than 64 (the involvement
    /// machinery uses `u64` masks, matching the paper's scope).
    pub fn new(num_qubits: usize) -> Self {
        assert!(num_qubits > 0, "circuit needs at least one qubit");
        assert!(
            num_qubits <= 64,
            "circuits beyond 64 qubits are unsupported"
        );
        Circuit {
            num_qubits,
            ops: Vec::new(),
            name: String::new(),
        }
    }

    /// Creates an empty named circuit (names appear in reports).
    pub fn with_name(num_qubits: usize, name: impl Into<String>) -> Self {
        let mut c = Circuit::new(num_qubits);
        c.name = name.into();
        c
    }

    /// The circuit's name ("" if unnamed).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets the circuit name.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` if the circuit has no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The operation list.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Iterates over operations.
    pub fn iter(&self) -> std::slice::Iter<'_, Operation> {
        self.ops.iter()
    }

    /// Appends an operation.
    ///
    /// # Panics
    ///
    /// Panics if the operation references a qubit outside the circuit.
    pub fn push(&mut self, op: Operation) -> &mut Self {
        assert!(
            op.max_qubit() < self.num_qubits,
            "operation {op} out of range for {} qubits",
            self.num_qubits
        );
        self.ops.push(op);
        self
    }

    /// Appends a gate on the given qubits.
    ///
    /// # Panics
    ///
    /// Panics on arity mismatch, repeated qubits, or out-of-range qubits.
    pub fn apply(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.push(Operation::new(gate, qubits.to_vec()))
    }

    /// Appends every operation of `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than `self`.
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        assert!(other.num_qubits <= self.num_qubits);
        for op in &other.ops {
            self.ops.push(op.clone());
        }
        self
    }

    /// Replaces the operation order with `ops`.
    ///
    /// Used by the reordering passes, which produce a permutation of the
    /// original operations.
    ///
    /// # Panics
    ///
    /// Panics if any operation is out of range.
    pub fn with_ops(&self, ops: Vec<Operation>) -> Circuit {
        let mut c = Circuit::with_name(self.num_qubits, self.name.clone());
        for op in ops {
            c.push(op);
        }
        c
    }

    /// The inverse circuit: gates inverted, order reversed, so that
    /// `c · c.inverse()` is the identity (up to an unobservable global
    /// phase for `sx`/`sy`).
    ///
    /// # Panics
    ///
    /// Panics if the circuit contains non-unitary operations
    /// (measurements or resets), which have no inverse.
    ///
    /// # Examples
    ///
    /// ```
    /// use qgpu_circuit::Circuit;
    /// let mut c = Circuit::new(2);
    /// c.h(0).cx(0, 1).t(1);
    /// let inv = c.inverse();
    /// assert_eq!(inv.ops()[0].gate().name(), "tdg");
    /// ```
    pub fn inverse(&self) -> Circuit {
        let ops = self
            .ops
            .iter()
            .rev()
            .map(|op| Operation::new(op.gate().inverse(), op.qubits().to_vec()))
            .collect();
        let mut c = self.with_ops(ops);
        if !self.name.is_empty() {
            c.set_name(format!("{}_dg", self.name));
        }
        c
    }

    /// Circuit depth: the length of the longest qubit-dependency chain.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        for op in &self.ops {
            let d = op.qubits().iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in op.qubits() {
                level[q] = d;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// Counts operations per gate name.
    pub fn gate_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for op in &self.ops {
            let name = op.gate().name();
            match counts.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += 1,
                None => counts.push((name, 1)),
            }
        }
        counts.sort_by_key(|&(n, _)| n);
        counts
    }

    // ---- builder methods for every gate -------------------------------

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::H, &[q])
    }

    /// Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::X, &[q])
    }

    /// Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Y, &[q])
    }

    /// Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Z, &[q])
    }

    /// S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::S, &[q])
    }

    /// S† gate on `q`.
    pub fn sdg(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Sdg, &[q])
    }

    /// T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::T, &[q])
    }

    /// T† gate on `q`.
    pub fn tdg(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Tdg, &[q])
    }

    /// √X on `q`.
    pub fn sx(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Sx, &[q])
    }

    /// √Y on `q`.
    pub fn sy(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Sy, &[q])
    }

    /// X rotation by `theta` on `q`.
    pub fn rx(&mut self, theta: f64, q: usize) -> &mut Self {
        self.apply(Gate::Rx(theta), &[q])
    }

    /// Y rotation by `theta` on `q`.
    pub fn ry(&mut self, theta: f64, q: usize) -> &mut Self {
        self.apply(Gate::Ry(theta), &[q])
    }

    /// Z rotation by `theta` on `q`.
    pub fn rz(&mut self, theta: f64, q: usize) -> &mut Self {
        self.apply(Gate::Rz(theta), &[q])
    }

    /// Phase gate by `theta` on `q`.
    pub fn p(&mut self, theta: f64, q: usize) -> &mut Self {
        self.apply(Gate::Phase(theta), &[q])
    }

    /// Generic `U(θ, φ, λ)` on `q`.
    pub fn u(&mut self, theta: f64, phi: f64, lam: f64, q: usize) -> &mut Self {
        self.apply(Gate::U(theta, phi, lam), &[q])
    }

    /// CNOT with control `c` and target `t`.
    pub fn cx(&mut self, c: usize, t: usize) -> &mut Self {
        self.apply(Gate::Cx, &[c, t])
    }

    /// Controlled-Y with control `c` and target `t`.
    pub fn cy(&mut self, c: usize, t: usize) -> &mut Self {
        self.apply(Gate::Cy, &[c, t])
    }

    /// Controlled-Z between `a` and `b`.
    pub fn cz(&mut self, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::Cz, &[a, b])
    }

    /// Controlled phase by `theta` between `a` and `b`.
    pub fn cp(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::Cp(theta), &[a, b])
    }

    /// ZZ interaction by `theta` between `a` and `b`.
    pub fn rzz(&mut self, theta: f64, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::Rzz(theta), &[a, b])
    }

    /// Swap between `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.apply(Gate::Swap, &[a, b])
    }

    /// Toffoli with controls `c0`, `c1` and target `t`.
    pub fn ccx(&mut self, c0: usize, c1: usize, t: usize) -> &mut Self {
        self.apply(Gate::Ccx, &[c0, c1, t])
    }

    /// Doubly-controlled phase by `theta`, decomposed into `cp` and `cx`
    /// gates (the decomposition Qiskit uses for `mcp` with two controls).
    pub fn ccp(&mut self, theta: f64, c0: usize, c1: usize, t: usize) -> &mut Self {
        self.cp(theta / 2.0, c1, t)
            .cx(c0, c1)
            .cp(-theta / 2.0, c1, t)
            .cx(c0, c1)
            .cp(theta / 2.0, c0, t)
    }

    // ---- non-unitary operations ---------------------------------------

    /// Mid-circuit measurement of `q` in the computational basis.
    ///
    /// The engine collapses the state to the sampled outcome using its
    /// seeded stochastic stream. Note [`Circuit::inverse`] panics on
    /// circuits containing measurements (collapse is irreversible).
    pub fn measure(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Measure, &[q])
    }

    /// Mid-circuit reset of `q` to |0⟩ (measure, then flip on outcome 1).
    ///
    /// Like [`Circuit::measure`], this is irreversible and makes
    /// [`Circuit::inverse`] panic.
    pub fn reset(&mut self, q: usize) -> &mut Self {
        self.apply(Gate::Reset, &[q])
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Operation;
    type IntoIter = std::slice::Iter<'a, Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.iter()
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit{}{} on {} qubits, {} ops:",
            if self.name.is_empty() { "" } else { " " },
            self.name,
            self.num_qubits,
            self.ops.len()
        )?;
        for op in &self.ops {
            writeln!(f, "  {op}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).cz(1, 2).rz(0.5, 2).ccx(0, 1, 2);
        assert_eq!(c.len(), 5);
        assert_eq!(c.num_qubits(), 3);
    }

    #[test]
    fn depth_of_parallel_gates_is_one() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3);
        assert_eq!(c.depth(), 1);
    }

    #[test]
    fn depth_counts_chains() {
        let mut c = Circuit::new(2);
        c.h(0).cx(0, 1).h(1);
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn empty_circuit() {
        let c = Circuit::new(5);
        assert!(c.is_empty());
        assert_eq!(c.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_checks_range() {
        let mut c = Circuit::new(2);
        c.h(2);
    }

    #[test]
    fn gate_counts() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cx(0, 1);
        let counts = c.gate_counts();
        assert_eq!(counts, vec![("cx", 1), ("h", 2)]);
    }

    #[test]
    fn with_ops_reorders() {
        let mut c = Circuit::new(2);
        c.h(0).h(1);
        let reversed: Vec<_> = c.ops().iter().rev().cloned().collect();
        let r = c.with_ops(reversed);
        assert_eq!(r.ops()[0].qubits(), &[1]);
        assert_eq!(r.ops()[1].qubits(), &[0]);
    }

    #[test]
    fn ccp_decomposition_length() {
        let mut c = Circuit::new(3);
        c.ccp(1.0, 0, 1, 2);
        assert_eq!(c.len(), 5);
    }

    #[test]
    #[should_panic(expected = "at least one qubit")]
    fn zero_qubits_rejected() {
        let _ = Circuit::new(0);
    }

    #[test]
    fn inverse_reverses_and_inverts() {
        let mut c = Circuit::with_name(2, "demo");
        c.h(0).s(0).cx(0, 1);
        let inv = c.inverse();
        assert_eq!(inv.name(), "demo_dg");
        let names: Vec<&str> = inv.iter().map(|op| op.gate().name()).collect();
        assert_eq!(names, vec!["cx", "sdg", "h"]);
    }

    #[test]
    fn display_lists_ops() {
        let mut c = Circuit::with_name(2, "bell");
        c.h(0).cx(0, 1);
        let s = c.to_string();
        assert!(s.contains("bell"));
        assert!(s.contains("h q[0]"));
        assert!(s.contains("cx q[0],q[1]"));
    }
}
