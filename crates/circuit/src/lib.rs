//! Quantum circuit representation for the Q-GPU simulator.
//!
//! This crate contains everything the simulator needs to *describe* a
//! computation, independent of how it is executed:
//!
//! * [`Gate`] and [`Operation`] — the gate set and its unitary matrices,
//! * [`Circuit`] — an ordered list of operations with builder methods,
//! * [`dag::GateDag`] — the dependency DAG used by gate reordering,
//! * [`involvement`] — qubit-involvement analysis (the basis of
//!   zero-amplitude pruning, paper §IV-B),
//! * [`noise`] — seeded Pauli/depolarizing/loss noise channels that
//!   rewrite a circuit into a deterministic noisy trajectory,
//! * [`qasm`] — OpenQASM 2.0 emission and parsing,
//! * [`generators`] — the nine benchmark circuits of Table I plus the deep
//!   random circuits of Table III.
//!
//! # Examples
//!
//! Build a Bell pair by hand:
//!
//! ```
//! use qgpu_circuit::Circuit;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cx(0, 1);
//! assert_eq!(c.len(), 2);
//! assert_eq!(c.depth(), 2);
//! ```
//!
//! Or generate a paper benchmark:
//!
//! ```
//! use qgpu_circuit::generators::Benchmark;
//!
//! let qft = Benchmark::Qft.generate(10);
//! assert_eq!(qft.num_qubits(), 10);
//! ```

pub mod access;
pub mod circuit;
pub mod dag;
pub mod fuse;
pub mod gate;
pub mod generators;
pub mod involvement;
pub mod noise;
pub mod qasm;
pub mod transpile;

pub use circuit::Circuit;
pub use gate::{Gate, Matrix, Operation};
pub use noise::NoiseConfig;
