//! The gate set, gate matrices, and circuit operations.
//!
//! The gate set matches what the paper's benchmarks need (the Qiskit
//! standard gates that appear in hchain, rqc, qaoa, gs, hlf, qft, iqp, qf
//! and bv): the usual one-qubit Cliffords and rotations, controlled
//! phases, `swap`, `rzz`, and the Toffoli gate.

use std::f64::consts::FRAC_1_SQRT_2;
use std::fmt;

use qgpu_math::Complex64;
use serde::{Deserialize, Serialize};

/// A quantum gate, parameterized where applicable by rotation angles in
/// radians.
///
/// The discriminants are grouped by arity; use [`Gate::arity`] to know how
/// many qubit arguments an [`Operation`] built from this gate requires.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::Gate;
///
/// assert_eq!(Gate::H.arity(), 1);
/// assert_eq!(Gate::Cx.arity(), 2);
/// assert!(Gate::Cz.is_diagonal());
/// assert!(!Gate::H.is_diagonal());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard.
    H,
    /// Pauli-X (NOT).
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// T gate `diag(1, e^{iπ/4})`.
    T,
    /// Inverse T gate.
    Tdg,
    /// Square root of X.
    Sx,
    /// Square root of Y (used by Google random circuits).
    Sy,
    /// Rotation about X by the given angle.
    Rx(f64),
    /// Rotation about Y by the given angle.
    Ry(f64),
    /// Rotation about Z by the given angle.
    Rz(f64),
    /// Phase gate `diag(1, e^{iθ})` (OpenQASM `p` / `u1`).
    Phase(f64),
    /// Generic single-qubit gate `U(θ, φ, λ)` (OpenQASM `u3`).
    U(f64, f64, f64),
    /// Controlled-X (CNOT).
    Cx,
    /// Controlled-Y.
    Cy,
    /// Controlled-Z.
    Cz,
    /// Controlled phase `diag(1,1,1,e^{iθ})` (OpenQASM `cp` / `cu1`).
    Cp(f64),
    /// Two-qubit ZZ interaction `e^{-iθ/2 Z⊗Z}` (used by QAOA).
    Rzz(f64),
    /// Swap.
    Swap,
    /// Toffoli (CCX).
    Ccx,
    /// Mid-circuit computational-basis measurement with seeded collapse.
    ///
    /// Not a unitary: [`Gate::matrix`] and [`Gate::inverse`] panic.
    /// The engine resolves the outcome from its deterministic
    /// `(seed, site, shot)` draw stream and renormalizes the state.
    Measure,
    /// Reset to |0⟩ (measure, then flip to |0⟩ if the outcome was 1).
    ///
    /// Not a unitary: [`Gate::matrix`] and [`Gate::inverse`] panic.
    /// Inserted by the qubit-loss noise channel, QDK-style.
    Reset,
}

impl Gate {
    /// Number of qubits the gate acts on.
    pub fn arity(self) -> usize {
        match self {
            Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::S
            | Gate::Sdg
            | Gate::T
            | Gate::Tdg
            | Gate::Sx
            | Gate::Sy
            | Gate::Rx(_)
            | Gate::Ry(_)
            | Gate::Rz(_)
            | Gate::Phase(_)
            | Gate::U(..)
            | Gate::Measure
            | Gate::Reset => 1,
            Gate::Cx | Gate::Cy | Gate::Cz | Gate::Cp(_) | Gate::Rzz(_) | Gate::Swap => 2,
            Gate::Ccx => 3,
        }
    }

    /// Returns `true` for gates with a unitary matrix — everything except
    /// [`Gate::Measure`] and [`Gate::Reset`].
    ///
    /// Transformation passes (fusion, peephole cancellation, dense
    /// reference simulation) must check this before calling
    /// [`Gate::matrix`] or [`Gate::inverse`]: non-unitary ops are
    /// barriers, not matrices.
    pub fn is_unitary(self) -> bool {
        !matches!(self, Gate::Measure | Gate::Reset)
    }

    /// Returns `true` if the gate's matrix is diagonal in the computational
    /// basis.
    ///
    /// Diagonal gates never mix amplitudes, so the simulator applies them
    /// with one complex multiplication per amplitude instead of a 2×2
    /// matrix-vector product, and pruning can skip them entirely on
    /// all-zero chunks regardless of qubit position.
    pub fn is_diagonal(self) -> bool {
        matches!(
            self,
            Gate::Z
                | Gate::S
                | Gate::Sdg
                | Gate::T
                | Gate::Tdg
                | Gate::Rz(_)
                | Gate::Phase(_)
                | Gate::Cz
                | Gate::Cp(_)
                | Gate::Rzz(_)
        )
    }

    /// The OpenQASM 2.0 name of the gate.
    pub fn name(self) -> &'static str {
        match self {
            Gate::H => "h",
            Gate::X => "x",
            Gate::Y => "y",
            Gate::Z => "z",
            Gate::S => "s",
            Gate::Sdg => "sdg",
            Gate::T => "t",
            Gate::Tdg => "tdg",
            Gate::Sx => "sx",
            Gate::Sy => "sy",
            Gate::Rx(_) => "rx",
            Gate::Ry(_) => "ry",
            Gate::Rz(_) => "rz",
            Gate::Phase(_) => "p",
            Gate::U(..) => "u3",
            Gate::Cx => "cx",
            Gate::Cy => "cy",
            Gate::Cz => "cz",
            Gate::Cp(_) => "cp",
            Gate::Rzz(_) => "rzz",
            Gate::Swap => "swap",
            Gate::Ccx => "ccx",
            Gate::Measure => "measure",
            Gate::Reset => "reset",
        }
    }

    /// The gate's unitary as a dense row-major matrix of dimension
    /// `2^arity`.
    ///
    /// Qubit ordering follows the little-endian convention used throughout
    /// the crate: for a two-qubit gate on `(q0, q1)`, basis index bit 0
    /// corresponds to the *first* qubit argument.
    ///
    /// # Panics
    ///
    /// Panics on the non-unitary ops [`Gate::Measure`] and
    /// [`Gate::Reset`] — guard call sites with [`Gate::is_unitary`].
    pub fn matrix(self) -> Matrix {
        let h = FRAC_1_SQRT_2;
        let z = Complex64::ZERO;
        let o = Complex64::ONE;
        let i = Complex64::I;
        match self {
            Gate::H => Matrix::new(2, vec![o * h, o * h, o * h, -o * h]),
            Gate::X => Matrix::new(2, vec![z, o, o, z]),
            Gate::Y => Matrix::new(2, vec![z, -i, i, z]),
            Gate::Z => Matrix::new(2, vec![o, z, z, -o]),
            Gate::S => Matrix::new(2, vec![o, z, z, i]),
            Gate::Sdg => Matrix::new(2, vec![o, z, z, -i]),
            Gate::T => Matrix::new(
                2,
                vec![o, z, z, Complex64::cis(std::f64::consts::FRAC_PI_4)],
            ),
            Gate::Tdg => Matrix::new(
                2,
                vec![o, z, z, Complex64::cis(-std::f64::consts::FRAC_PI_4)],
            ),
            Gate::Sx => {
                let a = Complex64::new(0.5, 0.5);
                let b = Complex64::new(0.5, -0.5);
                Matrix::new(2, vec![a, b, b, a])
            }
            Gate::Sy => {
                let a = Complex64::new(0.5, 0.5);
                let b = Complex64::new(-0.5, -0.5);
                Matrix::new(2, vec![a, b, -b, a])
            }
            Gate::Rx(t) => {
                let c = Complex64::from_real((t / 2.0).cos());
                let s = Complex64::new(0.0, -(t / 2.0).sin());
                Matrix::new(2, vec![c, s, s, c])
            }
            Gate::Ry(t) => {
                let c = Complex64::from_real((t / 2.0).cos());
                let s = Complex64::from_real((t / 2.0).sin());
                Matrix::new(2, vec![c, -s, s, c])
            }
            Gate::Rz(t) => Matrix::new(
                2,
                vec![Complex64::cis(-t / 2.0), z, z, Complex64::cis(t / 2.0)],
            ),
            Gate::Phase(t) => Matrix::new(2, vec![o, z, z, Complex64::cis(t)]),
            Gate::U(theta, phi, lam) => {
                let c = (theta / 2.0).cos();
                let s = (theta / 2.0).sin();
                Matrix::new(
                    2,
                    vec![
                        Complex64::from_real(c),
                        -Complex64::cis(lam) * s,
                        Complex64::cis(phi) * s,
                        Complex64::cis(phi + lam) * c,
                    ],
                )
            }
            Gate::Cx => {
                // Control = qubit argument 0 (basis bit 0), target = argument 1.
                let mut m = Matrix::identity(4);
                // States with bit0=1: indices 1 (bit1=0) and 3 (bit1=1) swap target bit.
                m.set(1, 1, z);
                m.set(1, 3, o);
                m.set(3, 3, z);
                m.set(3, 1, o);
                m
            }
            Gate::Cy => {
                let mut m = Matrix::identity(4);
                m.set(1, 1, z);
                m.set(1, 3, -i);
                m.set(3, 3, z);
                m.set(3, 1, i);
                m
            }
            Gate::Cz => {
                let mut m = Matrix::identity(4);
                m.set(3, 3, -o);
                m
            }
            Gate::Cp(t) => {
                let mut m = Matrix::identity(4);
                m.set(3, 3, Complex64::cis(t));
                m
            }
            Gate::Rzz(t) => {
                let mut m = Matrix::identity(4);
                let e_neg = Complex64::cis(-t / 2.0);
                let e_pos = Complex64::cis(t / 2.0);
                m.set(0, 0, e_neg);
                m.set(1, 1, e_pos);
                m.set(2, 2, e_pos);
                m.set(3, 3, e_neg);
                m
            }
            Gate::Swap => {
                let mut m = Matrix::identity(4);
                m.set(1, 1, z);
                m.set(2, 2, z);
                m.set(1, 2, o);
                m.set(2, 1, o);
                m
            }
            Gate::Ccx => {
                // Controls = arguments 0 and 1 (bits 0 and 1), target = argument 2.
                let mut m = Matrix::identity(8);
                // Indices with bits 0 and 1 set: 0b011 = 3 and 0b111 = 7.
                m.set(3, 3, z);
                m.set(7, 7, z);
                m.set(3, 7, o);
                m.set(7, 3, o);
                m
            }
            Gate::Measure | Gate::Reset => {
                panic!("{} is not a unitary and has no matrix", self.name())
            }
        }
    }

    /// The inverse gate (`U†`).
    ///
    /// # Panics
    ///
    /// Panics on the non-unitary ops [`Gate::Measure`] and
    /// [`Gate::Reset`]: collapse destroys information and has no inverse.
    ///
    /// # Examples
    ///
    /// ```
    /// use qgpu_circuit::Gate;
    /// assert_eq!(Gate::S.inverse(), Gate::Sdg);
    /// assert_eq!(Gate::Rx(0.5).inverse(), Gate::Rx(-0.5));
    /// assert_eq!(Gate::Cx.inverse(), Gate::Cx);
    /// ```
    pub fn inverse(self) -> Gate {
        match self {
            Gate::S => Gate::Sdg,
            Gate::Sdg => Gate::S,
            Gate::T => Gate::Tdg,
            Gate::Tdg => Gate::T,
            // √X† = √X·X up to phase; expressed exactly as a U gate is
            // awkward, so use the rotation form (equal up to global
            // phase, which is unobservable).
            Gate::Sx => Gate::Rx(-std::f64::consts::FRAC_PI_2),
            Gate::Sy => Gate::Ry(-std::f64::consts::FRAC_PI_2),
            Gate::Rx(t) => Gate::Rx(-t),
            Gate::Ry(t) => Gate::Ry(-t),
            Gate::Rz(t) => Gate::Rz(-t),
            Gate::Phase(t) => Gate::Phase(-t),
            Gate::U(theta, phi, lam) => Gate::U(-theta, -lam, -phi),
            Gate::Cp(t) => Gate::Cp(-t),
            Gate::Rzz(t) => Gate::Rzz(-t),
            // Self-inverse gates.
            g @ (Gate::H
            | Gate::X
            | Gate::Y
            | Gate::Z
            | Gate::Cx
            | Gate::Cy
            | Gate::Cz
            | Gate::Swap
            | Gate::Ccx) => g,
            Gate::Measure | Gate::Reset => {
                panic!("{} is not a unitary and has no inverse", self.name())
            }
        }
    }

    /// Angle parameters of the gate, in OpenQASM argument order.
    pub fn params(self) -> Vec<f64> {
        match self {
            Gate::Rx(t)
            | Gate::Ry(t)
            | Gate::Rz(t)
            | Gate::Phase(t)
            | Gate::Cp(t)
            | Gate::Rzz(t) => vec![t],
            Gate::U(a, b, c) => vec![a, b, c],
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let params = self.params();
        if params.is_empty() {
            write!(f, "{}", self.name())
        } else {
            let joined = params
                .iter()
                .map(|p| format!("{p}"))
                .collect::<Vec<_>>()
                .join(",");
            write!(f, "{}({})", self.name(), joined)
        }
    }
}

/// A dense, row-major complex matrix of power-of-two dimension.
///
/// Gate matrices are tiny (2×2 to 8×8), so a boxed `Vec` is fine.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::Gate;
///
/// let h = Gate::H.matrix();
/// assert_eq!(h.dim(), 2);
/// assert!(h.is_unitary(1e-12));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    dim: usize,
    data: Vec<Complex64>,
}

impl Matrix {
    /// Creates a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != dim * dim`.
    pub fn new(dim: usize, data: Vec<Complex64>) -> Self {
        assert_eq!(data.len(), dim * dim, "matrix data must be dim²");
        Matrix { dim, data }
    }

    /// The identity matrix of the given dimension.
    pub fn identity(dim: usize) -> Self {
        let mut data = vec![Complex64::ZERO; dim * dim];
        for r in 0..dim {
            data[r * dim + r] = Complex64::ONE;
        }
        Matrix { dim, data }
    }

    /// Matrix dimension (number of rows).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> Complex64 {
        self.data[row * self.dim + col]
    }

    /// Sets element `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, v: Complex64) {
        self.data[row * self.dim + col] = v;
    }

    /// Row-major element slice.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.dim, rhs.dim);
        let n = self.dim;
        let mut out = vec![Complex64::ZERO; n * n];
        for r in 0..n {
            for k in 0..n {
                let a = self.get(r, k);
                if a.is_zero() {
                    continue;
                }
                for c in 0..n {
                    out[r * n + c] += a * rhs.get(k, c);
                }
            }
        }
        Matrix { dim: n, data: out }
    }

    /// Conjugate transpose.
    pub fn dagger(&self) -> Matrix {
        let n = self.dim;
        let mut out = vec![Complex64::ZERO; n * n];
        for r in 0..n {
            for c in 0..n {
                out[c * n + r] = self.get(r, c).conj();
            }
        }
        Matrix { dim: n, data: out }
    }

    /// Checks `U† U = I` within `eps` per element.
    pub fn is_unitary(&self, eps: f64) -> bool {
        let prod = self.dagger().matmul(self);
        let id = Matrix::identity(self.dim);
        prod.data
            .iter()
            .zip(id.data.iter())
            .all(|(a, b)| a.approx_eq(*b, eps))
    }

    /// Returns `true` if all off-diagonal entries are zero within `eps`.
    pub fn is_diagonal(&self, eps: f64) -> bool {
        let n = self.dim;
        (0..n).all(|r| (0..n).all(|c| r == c || self.get(r, c).approx_eq(Complex64::ZERO, eps)))
    }
}

/// A gate applied to specific qubits: one node of a [`crate::Circuit`].
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Gate, Operation};
///
/// let op = Operation::new(Gate::Cx, vec![0, 3]);
/// assert_eq!(op.qubits(), &[0, 3]);
/// assert_eq!(op.max_qubit(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operation {
    gate: Gate,
    qubits: Vec<usize>,
}

impl Operation {
    /// Creates an operation.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len()` does not match the gate's arity, or if a
    /// qubit is repeated.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        assert_eq!(
            qubits.len(),
            gate.arity(),
            "gate {} needs {} qubits, got {}",
            gate.name(),
            gate.arity(),
            qubits.len()
        );
        for (i, q) in qubits.iter().enumerate() {
            assert!(
                !qubits[..i].contains(q),
                "gate {} applied with repeated qubit {}",
                gate.name(),
                q
            );
        }
        Operation { gate, qubits }
    }

    /// The gate being applied.
    pub fn gate(&self) -> Gate {
        self.gate
    }

    /// The qubit arguments, in gate-argument order.
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// Largest qubit index referenced.
    ///
    /// # Panics
    ///
    /// Never panics: operations always have at least one qubit.
    pub fn max_qubit(&self) -> usize {
        *self.qubits.iter().max().expect("operations are non-empty")
    }

    /// Bitmask with the operation's qubits set.
    ///
    /// # Panics
    ///
    /// Panics if a qubit index is ≥ 64 (the involvement machinery uses a
    /// `u64` mask, matching the paper's ≤ 64-qubit scope).
    pub fn qubit_mask(&self) -> u64 {
        let mut m = 0u64;
        for &q in &self.qubits {
            assert!(q < 64, "qubit index {q} exceeds the 64-qubit mask limit");
            m |= 1 << q;
        }
        m
    }
}

impl fmt::Display for Operation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs = self
            .qubits
            .iter()
            .map(|q| format!("q[{q}]"))
            .collect::<Vec<_>>()
            .join(",");
        write!(f, "{} {qs}", self.gate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn all_gates() -> Vec<Gate> {
        vec![
            Gate::H,
            Gate::X,
            Gate::Y,
            Gate::Z,
            Gate::S,
            Gate::Sdg,
            Gate::T,
            Gate::Tdg,
            Gate::Sx,
            Gate::Sy,
            Gate::Rx(0.3),
            Gate::Ry(-1.1),
            Gate::Rz(2.2),
            Gate::Phase(0.7),
            Gate::U(0.5, 1.0, -0.25),
            Gate::Cx,
            Gate::Cy,
            Gate::Cz,
            Gate::Cp(0.4),
            Gate::Rzz(0.9),
            Gate::Swap,
            Gate::Ccx,
        ]
    }

    #[test]
    fn all_gate_matrices_are_unitary() {
        for g in all_gates() {
            assert!(g.matrix().is_unitary(EPS), "{} is not unitary", g.name());
        }
    }

    #[test]
    fn matrix_dims_match_arity() {
        for g in all_gates() {
            assert_eq!(g.matrix().dim(), 1 << g.arity(), "{}", g.name());
        }
    }

    #[test]
    fn diagonal_flag_matches_matrix() {
        for g in all_gates() {
            assert_eq!(
                g.is_diagonal(),
                g.matrix().is_diagonal(EPS),
                "is_diagonal mismatch for {}",
                g.name()
            );
        }
    }

    #[test]
    fn s_squared_is_z() {
        let s = Gate::S.matrix();
        assert_eq!(s.matmul(&s), Gate::Z.matrix());
    }

    #[test]
    fn t_squared_is_s() {
        let t = Gate::T.matrix();
        let s = Gate::S.matrix();
        let tt = t.matmul(&t);
        for r in 0..2 {
            for c in 0..2 {
                assert!(tt.get(r, c).approx_eq(s.get(r, c), EPS));
            }
        }
    }

    #[test]
    fn sx_squared_is_x() {
        let sx = Gate::Sx.matrix();
        let xx = sx.matmul(&sx);
        let x = Gate::X.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!(xx.get(r, c).approx_eq(x.get(r, c), EPS));
            }
        }
    }

    #[test]
    fn sdg_inverts_s() {
        let p = Gate::S.matrix().matmul(&Gate::Sdg.matrix());
        assert_eq!(p, Matrix::identity(2));
    }

    #[test]
    fn u_gate_reduces_to_known_gates() {
        use std::f64::consts::PI;
        // U(π/2, 0, π) = H up to global phase (exact in this convention).
        let u = Gate::U(PI / 2.0, 0.0, PI).matrix();
        let h = Gate::H.matrix();
        for r in 0..2 {
            for c in 0..2 {
                assert!(u.get(r, c).approx_eq(h.get(r, c), EPS));
            }
        }
    }

    #[test]
    fn phase_vs_rz_differ_by_global_phase() {
        let t = 0.8;
        let p = Gate::Phase(t).matrix();
        let rz = Gate::Rz(t).matrix();
        let phase = Complex64::cis(t / 2.0);
        for r in 0..2 {
            for c in 0..2 {
                assert!(p.get(r, c).approx_eq(rz.get(r, c) * phase, EPS));
            }
        }
    }

    #[test]
    fn cx_truth_table() {
        // Little-endian: index = q0 + 2*q1, control is argument 0 (bit 0).
        let m = Gate::Cx.matrix();
        // |control=1, target=0> = index 1 maps to index 3.
        assert!(m.get(3, 1).approx_eq(Complex64::ONE, EPS));
        assert!(m.get(1, 3).approx_eq(Complex64::ONE, EPS));
        // |00> and |10> (index 0, 2) are fixed.
        assert!(m.get(0, 0).approx_eq(Complex64::ONE, EPS));
        assert!(m.get(2, 2).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn ccx_truth_table() {
        let m = Gate::Ccx.matrix();
        // |c0=1, c1=1, t=0> = index 3 maps to index 7.
        assert!(m.get(7, 3).approx_eq(Complex64::ONE, EPS));
        // Single control set: fixed.
        assert!(m.get(1, 1).approx_eq(Complex64::ONE, EPS));
        assert!(m.get(2, 2).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    fn swap_matrix() {
        let m = Gate::Swap.matrix();
        assert!(m.get(2, 1).approx_eq(Complex64::ONE, EPS));
        assert!(m.get(1, 2).approx_eq(Complex64::ONE, EPS));
    }

    #[test]
    #[should_panic(expected = "needs 2 qubits")]
    fn operation_arity_checked() {
        let _ = Operation::new(Gate::Cx, vec![0]);
    }

    #[test]
    #[should_panic(expected = "repeated qubit")]
    fn operation_rejects_repeated_qubits() {
        let _ = Operation::new(Gate::Cx, vec![1, 1]);
    }

    #[test]
    fn qubit_mask_sets_bits() {
        let op = Operation::new(Gate::Ccx, vec![0, 5, 63]);
        assert_eq!(op.qubit_mask(), (1 << 0) | (1 << 5) | (1 << 63));
    }

    #[test]
    fn inverse_gates_multiply_to_identity() {
        for g in all_gates() {
            let prod = g.matrix().matmul(&g.inverse().matrix());
            // Allow a global phase: normalize by the (0,0) entry.
            let phase = prod.get(0, 0);
            assert!(
                (phase.norm_sqr() - 1.0).abs() < EPS,
                "{}: global phase not unit",
                g.name()
            );
            for r in 0..prod.dim() {
                for c in 0..prod.dim() {
                    let expected = if r == c { phase } else { Complex64::ZERO };
                    assert!(
                        prod.get(r, c).approx_eq(expected, 1e-10),
                        "{}: U·U† differs from identity at ({r},{c})",
                        g.name()
                    );
                }
            }
        }
    }

    #[test]
    fn only_measure_and_reset_are_non_unitary() {
        for g in all_gates() {
            assert!(g.is_unitary(), "{}", g.name());
        }
        assert!(!Gate::Measure.is_unitary());
        assert!(!Gate::Reset.is_unitary());
        assert_eq!(Gate::Measure.arity(), 1);
        assert_eq!(Gate::Reset.arity(), 1);
        assert_eq!(Gate::Measure.name(), "measure");
        assert_eq!(Gate::Reset.name(), "reset");
        assert!(!Gate::Measure.is_diagonal());
        assert!(Gate::Measure.params().is_empty());
    }

    #[test]
    #[should_panic(expected = "has no matrix")]
    fn measure_has_no_matrix() {
        let _ = Gate::Measure.matrix();
    }

    #[test]
    #[should_panic(expected = "has no inverse")]
    fn reset_has_no_inverse() {
        let _ = Gate::Reset.inverse();
    }

    #[test]
    fn display_includes_params() {
        assert_eq!(Gate::Rz(0.5).to_string(), "rz(0.5)");
        assert_eq!(Gate::H.to_string(), "h");
        let op = Operation::new(Gate::Cx, vec![0, 1]);
        assert_eq!(op.to_string(), "cx q[0],q[1]");
    }
}
