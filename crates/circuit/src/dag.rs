//! Gate dependency DAG.
//!
//! Two gates depend on each other when they share a qubit; independent
//! gates may be reordered freely without changing the circuit's semantics
//! (paper §IV-C). [`GateDag`] captures exactly that relation: node `i` is
//! operation `i` of the source circuit, and there is an edge `i -> j` when
//! `j` is the *next* operation touching one of `i`'s qubits.

use crate::circuit::Circuit;

/// Dependency DAG over the operations of a [`Circuit`].
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Circuit, dag::GateDag};
///
/// let mut c = Circuit::new(2);
/// c.h(0).h(1).cx(0, 1);
/// let dag = GateDag::new(&c);
/// assert_eq!(dag.roots(), vec![0, 1]);           // both H gates are roots
/// assert_eq!(dag.predecessor_count(2), 2);       // cx waits on both
/// ```
#[derive(Debug, Clone)]
pub struct GateDag {
    successors: Vec<Vec<usize>>,
    predecessor_counts: Vec<usize>,
}

impl GateDag {
    /// Builds the dependency DAG of `circuit`.
    ///
    /// Edges connect each operation to the next operation on each of its
    /// qubits (duplicate edges between the same pair are collapsed).
    pub fn new(circuit: &Circuit) -> Self {
        let n = circuit.len();
        let mut successors: Vec<Vec<usize>> = vec![Vec::new(); n];
        let mut predecessor_counts = vec![0usize; n];
        // Last operation index seen on each qubit.
        let mut last_on_qubit: Vec<Option<usize>> = vec![None; circuit.num_qubits()];

        for (i, op) in circuit.iter().enumerate() {
            for &q in op.qubits() {
                if let Some(prev) = last_on_qubit[q] {
                    if !successors[prev].contains(&i) {
                        successors[prev].push(i);
                        predecessor_counts[i] += 1;
                    }
                }
                last_on_qubit[q] = Some(i);
            }
        }
        GateDag {
            successors,
            predecessor_counts,
        }
    }

    /// Number of nodes (operations).
    pub fn len(&self) -> usize {
        self.successors.len()
    }

    /// Returns `true` if the DAG has no nodes.
    pub fn is_empty(&self) -> bool {
        self.successors.is_empty()
    }

    /// Direct successors of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn successors(&self, i: usize) -> &[usize] {
        &self.successors[i]
    }

    /// Number of direct predecessors of node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn predecessor_count(&self, i: usize) -> usize {
        self.predecessor_counts[i]
    }

    /// A copy of all predecessor counts — the working state consumed by
    /// topological traversals (Algorithms 2 and 3 of the paper mutate
    /// these counts as gates are scheduled).
    pub fn predecessor_counts(&self) -> Vec<usize> {
        self.predecessor_counts.clone()
    }

    /// Nodes with no predecessors, in source order.
    pub fn roots(&self) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.predecessor_counts[i] == 0)
            .collect()
    }

    /// Returns one topological order (Kahn's algorithm, FIFO tie-break).
    ///
    /// The original circuit order is itself a valid topological order; this
    /// method is mostly useful for testing and for verifying reorderings.
    pub fn topological_order(&self) -> Vec<usize> {
        let mut counts = self.predecessor_counts.clone();
        let mut queue: std::collections::VecDeque<usize> = self.roots().into();
        let mut order = Vec::with_capacity(self.len());
        while let Some(i) = queue.pop_front() {
            order.push(i);
            for &s in &self.successors[i] {
                counts[s] -= 1;
                if counts[s] == 0 {
                    queue.push_back(s);
                }
            }
        }
        debug_assert_eq!(order.len(), self.len(), "DAG must be acyclic");
        order
    }

    /// Checks that `order` is a permutation of `0..len` respecting all
    /// dependency edges.
    ///
    /// Reordering passes use this to validate their output; the paper's
    /// correctness argument ("reordering does not affect the simulation
    /// results since we do not violate dependencies") is enforced here.
    pub fn is_valid_order(&self, order: &[usize]) -> bool {
        if order.len() != self.len() {
            return false;
        }
        let mut position = vec![usize::MAX; self.len()];
        for (pos, &node) in order.iter().enumerate() {
            if node >= self.len() || position[node] != usize::MAX {
                return false;
            }
            position[node] = pos;
        }
        for (i, succs) in self.successors.iter().enumerate() {
            for &s in succs {
                if position[i] >= position[s] {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Benchmark;

    fn sample() -> Circuit {
        // gs_5-like shape from the paper's Figure 8.
        let mut c = Circuit::new(5);
        c.h(0).h(1).h(2).h(3).h(4); // g1..g5
        c.cx(0, 1); // g6
        c.cx(0, 2); // g7
        c.cx(1, 3); // g8
        c.cx(2, 4); // g9
        c
    }

    #[test]
    fn roots_are_initial_h_layer() {
        let dag = GateDag::new(&sample());
        assert_eq!(dag.roots(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn cnot_waits_on_both_h() {
        let dag = GateDag::new(&sample());
        assert_eq!(dag.predecessor_count(5), 2); // cx(0,1) after h(0), h(1)
    }

    #[test]
    fn chained_cnots_depend() {
        let dag = GateDag::new(&sample());
        // g7 = cx(0,2) comes after g6 = cx(0,1) via q0 and h(2) via q2.
        assert_eq!(dag.predecessor_count(6), 2);
        assert!(dag.successors(5).contains(&6));
    }

    #[test]
    fn source_order_is_topological() {
        let c = sample();
        let dag = GateDag::new(&c);
        let identity: Vec<usize> = (0..c.len()).collect();
        assert!(dag.is_valid_order(&identity));
    }

    #[test]
    fn kahn_order_is_valid() {
        let c = Benchmark::Qft.generate(8);
        let dag = GateDag::new(&c);
        let order = dag.topological_order();
        assert!(dag.is_valid_order(&order));
    }

    #[test]
    fn invalid_orders_rejected() {
        let dag = GateDag::new(&sample());
        // Wrong length.
        assert!(!dag.is_valid_order(&[0, 1]));
        // Duplicate node.
        assert!(!dag.is_valid_order(&[0, 0, 1, 2, 3, 4, 5, 6, 7]));
        // Dependency violated: cx(0,1) before h(0).
        assert!(!dag.is_valid_order(&[5, 0, 1, 2, 3, 4, 6, 7, 8]));
    }

    #[test]
    fn duplicate_edges_collapse() {
        // Two consecutive 2-qubit gates on the same qubits share both
        // qubits; the edge must be counted once.
        let mut c = Circuit::new(2);
        c.cz(0, 1).cz(0, 1);
        let dag = GateDag::new(&c);
        assert_eq!(dag.predecessor_count(1), 1);
        assert_eq!(dag.successors(0), &[1]);
    }

    #[test]
    fn empty_dag() {
        let c = Circuit::new(1);
        let dag = GateDag::new(&c);
        assert!(dag.is_empty());
        assert!(dag.topological_order().is_empty());
    }
}
