//! Seeded noise channels: deterministic rewriting of a circuit into one
//! noisy trajectory.
//!
//! Real devices interleave every gate with error processes; simulators
//! model them by sampling error operators per gate application. This
//! module follows the trajectory approach the QDK sparse simulator uses:
//! [`NoiseConfig::apply`] walks the circuit and, **after** each unitary
//! operation, inserts concrete error gates (`X`/`Y`/`Z` for Pauli
//! channels, [`Gate::Reset`] for qubit loss) chosen
//! by pure seeded draws. The output is an ordinary [`Circuit`] — the
//! engine needs no density matrices, and every downstream optimization
//! (fusion, pruning, reordering, compression) sees the noise as plain
//! gates.
//!
//! Determinism discipline: every draw is
//! `unit_draw(seed, SALT_NOISE, (op_index << 32) | qubit, channel_id)`
//! from [`qgpu_math::rng`] — a pure function of the key, no RNG state.
//! The same `(circuit, seed)` pair always produces the identical noisy
//! circuit, on any thread count, device count, or engine version, so
//! noisy runs golden-pin exactly like deterministic ones.

use serde::{Deserialize, Serialize};

use qgpu_math::rng::{unit_draw, SALT_NOISE};

use crate::circuit::Circuit;
use crate::gate::Gate;

/// Per-gate noise channel probabilities.
///
/// Each field is the probability that the corresponding channel fires on
/// one qubit of one operation. All channels are evaluated independently
/// per `(operation, qubit)` site, in a fixed order (depolarizing,
/// bit-flip, phase-flip, loss), so a spec is a complete description of
/// the stochastic process.
///
/// # Examples
///
/// ```
/// use qgpu_circuit::{Circuit, NoiseConfig};
///
/// let nc: NoiseConfig = "depolarizing:0.5,loss:0.1".parse()?;
/// let mut c = Circuit::new(2);
/// c.h(0).cx(0, 1);
/// let noisy = nc.apply(&c, 42);
/// // Deterministic: the same seed replays the same trajectory.
/// assert_eq!(noisy, nc.apply(&c, 42));
/// assert!(noisy.len() >= c.len());
/// # Ok::<(), String>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Depolarizing channel: with this probability, apply X, Y, or Z
    /// (each a third of the time).
    pub depolarizing: f64,
    /// Bit-flip channel: apply X with this probability.
    pub bit_flip: f64,
    /// Phase-flip channel: apply Z with this probability.
    pub phase_flip: f64,
    /// Qubit loss: the qubit leaks out of the computational subspace and
    /// is returned as a fresh |0⟩ — modeled as a reset.
    pub loss: f64,
}

impl NoiseConfig {
    /// `true` when any channel has nonzero probability.
    pub fn is_enabled(&self) -> bool {
        self.depolarizing > 0.0 || self.bit_flip > 0.0 || self.phase_flip > 0.0 || self.loss > 0.0
    }

    /// Rewrites `circuit` into the noisy trajectory selected by `seed`.
    ///
    /// After every unitary operation, each touched qubit is tested
    /// against each enabled channel with an independent keyed draw;
    /// firing channels append their error gate immediately after the
    /// operation. Non-unitary operations (measure/reset) pass through
    /// without added noise — their collapse is already stochastic.
    ///
    /// The rewrite is a pure function of `(circuit, seed)`: draws are
    /// keyed by the *original* operation index, so trajectories are
    /// stable under anything downstream (fusion, reordering) and two
    /// calls always agree bit-for-bit.
    pub fn apply(&self, circuit: &Circuit, seed: u64) -> Circuit {
        let mut out = Circuit::with_name(circuit.num_qubits(), circuit.name().to_string());
        for (op_index, op) in circuit.iter().enumerate() {
            out.push(op.clone());
            if !op.gate().is_unitary() {
                continue;
            }
            for &qubit in op.qubits() {
                let site = ((op_index as u64) << 32) | qubit as u64;
                let draw = |channel: u64| unit_draw(seed, SALT_NOISE, site, channel);
                if self.depolarizing > 0.0 {
                    let u = draw(0);
                    if u < self.depolarizing {
                        // One draw picks both "fires" and which Pauli:
                        // split [0, p) into three equal thirds.
                        let third = u / self.depolarizing * 3.0;
                        let pauli = if third < 1.0 {
                            Gate::X
                        } else if third < 2.0 {
                            Gate::Y
                        } else {
                            Gate::Z
                        };
                        out.apply(pauli, &[qubit]);
                    }
                }
                if self.bit_flip > 0.0 && draw(1) < self.bit_flip {
                    out.apply(Gate::X, &[qubit]);
                }
                if self.phase_flip > 0.0 && draw(2) < self.phase_flip {
                    out.apply(Gate::Z, &[qubit]);
                }
                if self.loss > 0.0 && draw(3) < self.loss {
                    out.apply(Gate::Reset, &[qubit]);
                }
            }
        }
        out
    }
}

impl std::str::FromStr for NoiseConfig {
    type Err = String;

    /// Parses a spec like `"depolarizing:0.01,loss:0.001"`.
    ///
    /// Channels: `depolarizing`, `bit_flip` (alias `bitflip`),
    /// `phase_flip` (alias `phaseflip`), `loss`. Probabilities must lie
    /// in `[0, 1]`.
    fn from_str(s: &str) -> Result<NoiseConfig, String> {
        let mut nc = NoiseConfig::default();
        for part in s.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, value) = part
                .split_once(':')
                .ok_or_else(|| format!("bad noise channel '{part}': expected name:prob"))?;
            let p: f64 = value
                .trim()
                .parse()
                .map_err(|_| format!("bad probability '{value}' for channel '{name}'"))?;
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("probability {p} for '{name}' is outside [0, 1]"));
            }
            match name.trim() {
                "depolarizing" => nc.depolarizing = p,
                "bit_flip" | "bitflip" => nc.bit_flip = p,
                "phase_flip" | "phaseflip" => nc.phase_flip = p,
                "loss" => nc.loss = p,
                other => {
                    return Err(format!(
                        "unknown noise channel '{other}' \
                         (expected depolarizing, bit_flip, phase_flip, or loss)"
                    ))
                }
            }
        }
        Ok(nc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::Benchmark;

    #[test]
    fn parses_full_spec() {
        let nc: NoiseConfig = "depolarizing:0.01,bit_flip:0.02,phase_flip:0.03,loss:0.004"
            .parse()
            .expect("parse");
        assert_eq!(nc.depolarizing, 0.01);
        assert_eq!(nc.bit_flip, 0.02);
        assert_eq!(nc.phase_flip, 0.03);
        assert_eq!(nc.loss, 0.004);
        assert!(nc.is_enabled());
    }

    #[test]
    fn empty_spec_is_disabled() {
        let nc: NoiseConfig = "".parse().expect("parse");
        assert!(!nc.is_enabled());
        assert_eq!(nc, NoiseConfig::default());
    }

    #[test]
    fn rejects_bad_specs() {
        assert!("frobnicate:0.1".parse::<NoiseConfig>().is_err());
        assert!("depolarizing".parse::<NoiseConfig>().is_err());
        assert!("depolarizing:1.5".parse::<NoiseConfig>().is_err());
        assert!("depolarizing:x".parse::<NoiseConfig>().is_err());
    }

    #[test]
    fn apply_is_deterministic_in_the_seed() {
        let c = Benchmark::Qft.generate(6);
        let nc: NoiseConfig = "depolarizing:0.2,loss:0.05".parse().expect("parse");
        assert_eq!(nc.apply(&c, 7), nc.apply(&c, 7));
        // A different seed picks a different trajectory (overwhelmingly
        // likely at these rates on ~36 sites).
        assert_ne!(nc.apply(&c, 7), nc.apply(&c, 8));
    }

    #[test]
    fn zero_noise_is_the_identity_rewrite() {
        let c = Benchmark::Iqp.generate(6);
        assert_eq!(NoiseConfig::default().apply(&c, 3), c);
    }

    #[test]
    fn inserted_gates_are_errors_on_touched_qubits() {
        let mut c = Circuit::new(3);
        c.h(0).cx(0, 1).t(2);
        let nc: NoiseConfig = "depolarizing:1.0".parse().expect("parse");
        let noisy = nc.apply(&c, 1);
        // p = 1 fires on every site: 1 + 2 + 1 error gates.
        assert_eq!(noisy.len(), c.len() + 4);
        for op in noisy.iter() {
            if matches!(op.gate(), Gate::X | Gate::Y | Gate::Z) {
                assert_eq!(op.qubits().len(), 1);
            }
        }
    }

    #[test]
    fn loss_inserts_resets() {
        let mut c = Circuit::new(1);
        c.h(0);
        let nc: NoiseConfig = "loss:1.0".parse().expect("parse");
        let noisy = nc.apply(&c, 0);
        assert_eq!(noisy.len(), 2);
        assert_eq!(noisy.ops()[1].gate(), Gate::Reset);
    }

    #[test]
    fn measure_sites_get_no_noise() {
        let mut c = Circuit::new(1);
        c.measure(0).reset(0);
        let nc: NoiseConfig = "depolarizing:1.0,loss:1.0".parse().expect("parse");
        assert_eq!(nc.apply(&c, 5), c);
    }

    #[test]
    fn depolarizing_draws_cover_all_three_paulis() {
        let mut c = Circuit::new(1);
        for _ in 0..64 {
            c.h(0);
        }
        let nc: NoiseConfig = "depolarizing:1.0".parse().expect("parse");
        let noisy = nc.apply(&c, 11);
        let mut seen = [false; 3];
        for op in noisy.iter() {
            match op.gate() {
                Gate::X => seen[0] = true,
                Gate::Y => seen[1] = true,
                Gate::Z => seen[2] = true,
                _ => {}
            }
        }
        assert_eq!(seen, [true; 3]);
    }

    #[test]
    fn error_rate_tracks_probability() {
        // At p = 0.25 over 4000 sites, the observed rate should land
        // within a few standard deviations of 1000 insertions.
        let mut c = Circuit::new(4);
        for i in 0..1000 {
            c.apply(Gate::Cx, &[i % 4, (i + 1) % 4]);
            c.h((i + 2) % 4);
            c.t((i + 3) % 4);
        }
        let nc: NoiseConfig = "bit_flip:0.25".parse().expect("parse");
        let noisy = nc.apply(&c, 21);
        let inserted = noisy.len() - c.len();
        let sites = 4 * 1000;
        let expected = sites as f64 * 0.25;
        let sd = (sites as f64 * 0.25 * 0.75).sqrt();
        assert!(
            ((inserted as f64) - expected).abs() < 5.0 * sd,
            "inserted {inserted}, expected {expected} ± {sd}"
        );
    }
}
