//! Observability overhead guard: spans-enabled vs spans-disabled
//! wall-clock on the full Q-GPU pipeline.
//!
//! The recorder's contract is "zero-cost when disabled, cheap when
//! enabled": disabled instrumentation is a branch on `None`, and enabled
//! instrumentation records spans per *gate* (not per chunk) plus O(1)
//! counter/histogram touches. This bench enforces the enabled side —
//! with the full telemetry stack on: spans, the per-stage attribution
//! registry, and the flight-recorder event ring.
//!
//! Invocation follows the workspace's criterion convention:
//!
//! - `cargo bench` (cargo passes `--bench`): interleaved A/B runs of
//!   qft_20, median per side, **asserts** the enabled median stays
//!   within 2% of the disabled median;
//! - `cargo test` (no `--bench`): one small smoke run of each side so
//!   the guard stays compiled and the obs plumbing stays exercised
//!   without burning CI minutes on wall-clock comparisons.

use std::time::Instant;

use qgpu::{FlightConfig, SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;

/// Maximum tolerated slowdown of the instrumented run (fractional).
const MAX_OVERHEAD: f64 = 0.02;

/// Interleaved samples per side under `cargo bench`; interleaving keeps
/// slow drift (thermal, cache state) out of the A/B difference.
const SAMPLES: usize = 3;

fn run_once(qubits: usize, obs: bool) -> f64 {
    let mut cfg = SimConfig::scaled_paper(qubits)
        .with_version(Version::QGpu)
        .timing_only();
    if obs {
        // Everything a telemetry-on deployment pays for: spans, the
        // labeled registry, and the flight ring (no faults fire, so the
        // ring never dumps).
        cfg = cfg.with_obs_spans().with_flight(FlightConfig::default());
    }
    let circuit = Benchmark::Qft.generate(qubits);
    let sim = Simulator::new(cfg);
    let start = Instant::now();
    let result = sim.run(&circuit);
    let elapsed = start.elapsed().as_secs_f64();
    assert_eq!(result.obs.is_some(), obs, "obs payload must match the flag");
    elapsed
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let mut measure = false;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bench" => measure = true,
            "--test" => measure = false,
            s if !s.starts_with('-') && filter.is_none() => filter = Some(s.to_string()),
            _ => {}
        }
    }
    if let Some(f) = &filter {
        if !"obs_overhead/qft".contains(f.as_str()) {
            return;
        }
    }

    if !measure {
        // Smoke: exercise both sides on a small circuit.
        run_once(12, false);
        run_once(12, true);
        println!("{:<40} ok (smoke run)", "obs_overhead/qft_12");
        return;
    }

    let qubits = 20;
    // Warm-up pair so first-touch allocation lands outside the samples.
    run_once(qubits, false);
    run_once(qubits, true);
    let mut off = Vec::with_capacity(SAMPLES);
    let mut on = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        off.push(run_once(qubits, false));
        on.push(run_once(qubits, true));
    }
    let off_median = median(&mut off);
    let on_median = median(&mut on);
    let overhead = on_median / off_median - 1.0;
    println!(
        "obs_overhead/qft_{qubits}: disabled {off_median:.3} s, enabled {on_median:.3} s, \
         overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "span recording costs {:.2}% (> {:.0}% budget) on qft_{qubits}",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
