//! Scheduling-machinery microbenchmarks: the per-gate costs the
//! orchestrator pays besides kernels and transfers.
//!
//! These quantify that planning (Case 1/2 resolution), pruning tests, and
//! dynamic chunk sizing are negligible next to amplitude processing —
//! the implicit assumption behind the paper's "compiler-assisted" and
//! "dynamic" design choices.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qgpu_circuit::access::GateAction;
use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::{Gate, Operation};
use qgpu_sched::{GatePlan, InvolvementTracker};

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");

    // GatePlan construction: Case 1 vs Case 2 at paper-like chunk counts.
    let low = GateAction::from_operation(&Operation::new(Gate::H, vec![2]));
    let high = GateAction::from_operation(&Operation::new(Gate::H, vec![30]));
    for (name, action) in [("plan_case1", &low), ("plan_case2", &high)] {
        group.bench_function(name.to_string(), |b| {
            b.iter(|| GatePlan::new(action, 21, 8192));
        });
    }

    // Pruning scan over all chunks of a 34-qubit-scale layout.
    group.bench_function("prune_scan_8192_chunks", |b| {
        let mut tracker = InvolvementTracker::new(34);
        tracker.involve_mask(0x3ff); // 10 qubits involved
        let plan = GatePlan::new(&low, 21, 8192);
        b.iter(|| plan.pruned_count(&tracker));
    });

    // Dynamic chunk-size decision.
    group.bench_function("optimal_chunk_bits", |b| {
        let mut tracker = InvolvementTracker::new(34);
        tracker.involve_mask(0xffff);
        b.iter(|| tracker.optimal_chunk_bits(21, 4096.0));
    });

    // Whole-circuit involvement replay (what the pruning pass pays once).
    for bench in [Benchmark::Hchain, Benchmark::Qft] {
        let circuit = bench.generate(22);
        group.bench_with_input(
            BenchmarkId::new("involve_replay", bench.abbrev()),
            &circuit,
            |b, circuit| {
                b.iter(|| {
                    let mut t = InvolvementTracker::new(22);
                    for op in circuit.iter() {
                        t.involve(op);
                    }
                    t.mask()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_scheduling
);
criterion_main!(benches);
