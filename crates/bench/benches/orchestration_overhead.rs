//! Orchestration overhead guard: the resilient multi-device scheduler
//! ([`qgpu_sched::devicegroup::DeviceGroup`] + pace tracking + barrier
//! bookkeeping) on a **healthy** fleet vs the plain round-robin dealer.
//!
//! The orchestrator's contract is "pay only when disrupted": with no
//! device loss, no straggler, and no memory budget, it must deal tasks
//! exactly like `RoundRobin` (epoch 0 is the identity rotation), never
//! steal (every device runs at the same pace), and add under 3% of
//! wall-clock on a 4-device qft_20 — the bookkeeping is one EMA update
//! and one pace comparison per chunk task.
//!
//! Invocation follows the workspace's criterion convention:
//!
//! - `cargo bench` (cargo passes `--bench`): paired A/B rounds of
//!   qft_20 on a 4-device fleet. Each round runs both sides
//!   back-to-back (order alternating per round, so monotone drift
//!   cancels instead of crediting whichever side runs first) and
//!   yields one orchestrated/plain ratio; the **median ratio** across
//!   rounds is asserted within 3%. Wall-clock on a shared 1-CPU
//!   container swings by >10% between rounds, but the swing hits both
//!   sides of a pair equally — pairing is what makes a 3% assert
//!   stable where independent per-side statistics are not;
//! - `cargo test` (no `--bench`): one small smoke run of each side so
//!   the guard stays compiled without burning CI minutes.

use std::time::Instant;

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_device::Platform;
use qgpu_sched::devicegroup::OrchestratorConfig;

/// Maximum tolerated slowdown of the orchestrated run (fractional).
const MAX_OVERHEAD: f64 = 0.03;

/// Devices in the modeled fleet.
const DEVICES: usize = 4;

/// Paired A/B rounds under `cargo bench`; each round contributes one
/// orchestrated/plain ratio measured back-to-back.
const ROUNDS: usize = 5;

fn run_once(qubits: usize, orchestrated: bool) -> (f64, f64) {
    let platform = Platform::scaled_paper_p100(qubits).with_devices(DEVICES);
    let mut cfg = SimConfig::new(platform)
        .with_version(Version::QGpu)
        .timing_only();
    if orchestrated {
        cfg = cfg.with_orchestration(OrchestratorConfig::default());
    }
    let circuit = Benchmark::Qft.generate(qubits);
    let sim = Simulator::new(cfg);
    let start = Instant::now();
    let result = sim.run(&circuit);
    let elapsed = start.elapsed().as_secs_f64();
    // Healthy fleet: the orchestrator must not react to anything.
    assert_eq!(result.report.devices_lost, 0);
    assert_eq!(result.report.chunks_migrated, 0);
    assert_eq!(result.report.steals, 0, "healthy runs never migrate");
    assert_eq!(result.report.pressure_downshifts, 0);
    (elapsed, result.report.total_time)
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let mut measure = false;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bench" => measure = true,
            "--test" => measure = false,
            s if !s.starts_with('-') && filter.is_none() => filter = Some(s.to_string()),
            _ => {}
        }
    }
    if let Some(f) = &filter {
        if !"orchestration_overhead/qft".contains(f.as_str()) {
            return;
        }
    }

    if !measure {
        // Smoke: exercise both sides on a small circuit and check the
        // modeled timeline is untouched by orchestration.
        let (_, plain_model) = run_once(12, false);
        let (_, orch_model) = run_once(12, true);
        assert_eq!(
            plain_model, orch_model,
            "fault-free orchestration must not change the modeled timeline"
        );
        println!("{:<40} ok (smoke run)", "orchestration_overhead/qft_12");
        return;
    }

    let qubits = 20;
    // Warm-up pair so first-touch allocation lands outside the samples.
    let (_, plain_model) = run_once(qubits, false);
    let (_, orch_model) = run_once(qubits, true);
    assert_eq!(
        plain_model, orch_model,
        "fault-free orchestration must not change the modeled timeline"
    );
    let mut ratios = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let (plain_s, orch_s) = if round % 2 == 0 {
            let p = run_once(qubits, false).0;
            let o = run_once(qubits, true).0;
            (p, o)
        } else {
            let o = run_once(qubits, true).0;
            let p = run_once(qubits, false).0;
            (p, o)
        };
        ratios.push(orch_s / plain_s);
    }
    let overhead = median(&mut ratios) - 1.0;
    println!(
        "orchestration_overhead/qft_{qubits} ({DEVICES} devices): median paired \
         orchestrated/plain ratio over {ROUNDS} rounds, overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "orchestration costs {:.2}% (> {:.0}% budget) on qft_{qubits}",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
