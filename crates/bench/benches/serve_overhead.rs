//! Serving overhead guard: submitting jobs through the `qgpu-serve`
//! stack (admission control, fair scheduler, dispatch channel, worker
//! thread, cancellation token plumbing, reaper tick) vs invoking the
//! engine directly, at **zero** injected faults.
//!
//! The server's contract is "the machinery around the engine is free
//! when nothing goes wrong": per-job serving cost is a queue hop and a
//! token poll per gate boundary, and the batch of J jobs must complete
//! within 3% of J back-to-back direct engine invocations.
//!
//! Invocation follows the workspace's criterion convention:
//!
//! - `cargo bench` (cargo passes `--bench`): interleaved A/B samples of
//!   a J-job batch on qft_16, median per side, **asserts** the served
//!   median stays within 3% of the direct median;
//! - `cargo test` (no `--bench`): one small smoke batch of each side.

use std::time::Instant;

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_serve::{JobSpec, JobStatus, ServeConfig, Server, ShutdownMode};

/// Maximum tolerated slowdown of the served batch (fractional).
const MAX_OVERHEAD: f64 = 0.03;

/// Interleaved samples per side under `cargo bench`.
const SAMPLES: usize = 3;

/// Jobs per batch: enough to amortize server startup into noise while
/// keeping a sample affordable.
const JOBS: usize = 6;

fn cfg(qubits: usize) -> SimConfig {
    SimConfig::scaled_paper(qubits)
        .with_version(Version::QGpu)
        .timing_only()
}

/// J sequential direct engine invocations (the floor being compared
/// against: same circuit, same config, no serving machinery).
fn run_direct(qubits: usize, jobs: usize) -> f64 {
    let circuit = Benchmark::Qft.generate(qubits);
    let start = Instant::now();
    for _ in 0..jobs {
        let sim = Simulator::new(cfg(qubits));
        let result = sim.run(&circuit);
        assert_eq!(result.report.chunk_retries, 0);
    }
    start.elapsed().as_secs_f64()
}

/// The same J jobs through a 1-worker/1-device server: identical
/// sequential engine work, so any wall-clock delta is pure serving
/// overhead (submit, WFQ, channel hop, token polls, reaper).
fn run_served(qubits: usize, jobs: usize) -> f64 {
    let circuit = Benchmark::Qft.generate(qubits);
    let server = Server::new(ServeConfig::default().with_workers(1).with_devices(1));
    let start = Instant::now();
    let handles: Vec<_> = (0..jobs)
        .map(|_| {
            server
                .submit(JobSpec::new(circuit.clone(), cfg(qubits)))
                .expect("no budget or cap configured")
        })
        .collect();
    for h in &handles {
        let status = h.wait_timeout(std::time::Duration::from_secs(600));
        assert_eq!(status, Some(JobStatus::Completed));
    }
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown(ShutdownMode::Drain);
    elapsed
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let mut measure = false;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bench" => measure = true,
            "--test" => measure = false,
            s if !s.starts_with('-') && filter.is_none() => filter = Some(s.to_string()),
            _ => {}
        }
    }
    if let Some(f) = &filter {
        if !"serve_overhead/qft".contains(f.as_str()) {
            return;
        }
    }

    if !measure {
        // Smoke: exercise both sides on a small batch.
        run_direct(10, 2);
        run_served(10, 2);
        println!("{:<40} ok (smoke run)", "serve_overhead/qft_10");
        return;
    }

    let qubits = 16;
    // Warm-up pair so first-touch allocation and thread spawn land
    // outside the samples.
    run_direct(qubits, JOBS);
    run_served(qubits, JOBS);
    let mut direct = Vec::with_capacity(SAMPLES);
    let mut served = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        direct.push(run_direct(qubits, JOBS));
        served.push(run_served(qubits, JOBS));
    }
    let direct_median = median(&mut direct);
    let served_median = median(&mut served);
    let overhead = served_median / direct_median - 1.0;
    println!(
        "serve_overhead/qft_{qubits}: direct {direct_median:.3} s, served {served_median:.3} s \
         ({JOBS} jobs), overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "fault-free serving costs {:.2}% (> {:.0}% budget) on qft_{qubits} x{JOBS}",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
