//! Reordering-pass benchmarks (paper §IV-C, Algorithms 2 and 3).
//!
//! The reorder passes run once per circuit at compile time; these benches
//! confirm the compiler-pass cost is negligible next to simulation, even
//! for the deep circuits of Table III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qgpu_circuit::generators::{google_deep_circuit, Benchmark};
use qgpu_sched::reorder::{forward_looking_order, greedy_order};

fn bench_reorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("reorder");
    for b in [Benchmark::Gs, Benchmark::Qft, Benchmark::Hchain] {
        let circuit = b.generate(22);
        group.bench_with_input(
            BenchmarkId::new("greedy", b.abbrev()),
            &circuit,
            |bench, circuit| bench.iter(|| greedy_order(circuit)),
        );
        group.bench_with_input(
            BenchmarkId::new("forward_looking", b.abbrev()),
            &circuit,
            |bench, circuit| bench.iter(|| forward_looking_order(circuit)),
        );
    }
    // Deep circuit (Table III scale): thousands of gates.
    let deep = google_deep_circuit(16);
    group.bench_function("forward_looking/grqc_16", |bench| {
        bench.iter(|| forward_looking_order(&deep))
    });
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_reorder
);
criterion_main!(benches);
