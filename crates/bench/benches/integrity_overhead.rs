//! ABFT overhead guard: per-chunk invariant verification
//! (`--verify-invariants`) at **zero** injected faults vs the plain
//! pipeline.
//!
//! The invariant layer's contract mirrors the CRC layer's: pay only
//! for what you enable, and what you enable must be cheap. In unarmed
//! verify mode the real work added is one compensated norm+peak
//! reduction per touched chunk per non-diagonal gate (diagonal runs
//! pass through and widen later tolerances instead), and that must
//! stay under 3% of wall-clock on qft_20 (the experiment plan's
//! budget, recorded in EXPERIMENTS.md).
//!
//! Invocation follows the workspace's criterion convention:
//!
//! - `cargo bench` (cargo passes `--bench`): paired A/B rounds of
//!   qft_20. Each round runs both sides back-to-back (order
//!   alternating per round, so monotone drift cancels instead of
//!   crediting whichever side runs first) and yields one
//!   verified/plain ratio; the **median ratio** across rounds is
//!   asserted within 3%. Wall-clock on a shared container swings by
//!   more than 10% between rounds, but the swing hits both sides of
//!   a pair equally — pairing is what makes a 3% assert stable where
//!   independent per-side statistics are not;
//! - `cargo test` (no `--bench`): one small smoke run of each side so
//!   the guard stays compiled without burning CI minutes.

use std::time::Instant;

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;

/// Maximum tolerated slowdown of the invariant-verified run (fractional).
const MAX_OVERHEAD: f64 = 0.03;

/// Paired A/B rounds under `cargo bench`; each round contributes one
/// verified/plain ratio measured back-to-back.
const ROUNDS: usize = 5;

fn run_once(qubits: usize, verified: bool) -> f64 {
    let mut cfg = SimConfig::scaled_paper(qubits)
        .with_version(Version::QGpu)
        .timing_only();
    if verified {
        cfg = cfg.with_verify_invariants();
    }
    let circuit = Benchmark::Qft.generate(qubits);
    let sim = Simulator::new(cfg);
    let start = Instant::now();
    let result = sim.run(&circuit);
    let elapsed = start.elapsed().as_secs_f64();
    if verified {
        // Zero faults injected: verification must run and stay silent.
        let s = result.integrity.expect("verification attaches a summary");
        assert!(s.checks > 0, "invariant checks must actually run");
        assert_eq!(s.violations, 0, "false positive on a fault-free run");
    } else {
        assert!(result.integrity.is_none());
    }
    elapsed
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let mut measure = false;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bench" => measure = true,
            "--test" => measure = false,
            s if !s.starts_with('-') && filter.is_none() => filter = Some(s.to_string()),
            _ => {}
        }
    }
    if let Some(f) = &filter {
        if !"integrity_overhead/qft".contains(f.as_str()) {
            return;
        }
    }

    if !measure {
        // Smoke: exercise both sides on a small circuit.
        run_once(12, false);
        run_once(12, true);
        println!("{:<40} ok (smoke run)", "integrity_overhead/qft_12");
        return;
    }

    let qubits = 20;
    // Warm-up pair so first-touch allocation lands outside the samples.
    run_once(qubits, false);
    run_once(qubits, true);
    let mut ratios = Vec::with_capacity(ROUNDS);
    for round in 0..ROUNDS {
        let (plain_s, verified_s) = if round % 2 == 0 {
            let p = run_once(qubits, false);
            let v = run_once(qubits, true);
            (p, v)
        } else {
            let v = run_once(qubits, true);
            let p = run_once(qubits, false);
            (p, v)
        };
        ratios.push(verified_s / plain_s);
    }
    let overhead = median(&mut ratios) - 1.0;
    println!(
        "integrity_overhead/qft_{qubits}: median verified/plain ratio over \
         {ROUNDS} paired rounds, overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "invariant verification costs {:.2}% (> {:.0}% budget) on qft_{qubits}",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
