//! Compression microbenchmarks (paper §IV-D, Figure 11).
//!
//! Measures the GFC codec's real compress/decompress throughput and the
//! ratio sensitivity to the segment count — the ablation behind the
//! "match the GPU parallelism" segment choice — plus the per-codec
//! `codec/*` group comparing every [`qgpu_compress::CodecKind`] on
//! pruning-heavy inputs (the ratios print once per buffer, so `cargo
//! bench` output carries the ratio × throughput comparison).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qgpu_bench::{bench_state, noise_amplitudes};
use qgpu_circuit::generators::Benchmark;
use qgpu_compress::{codec_for_kind, CodecKind, GfcCodec};
use qgpu_math::Complex64;

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("gfc");
    let n = 1usize << 16; // amplitudes
    group.throughput(Throughput::Bytes((n * 16) as u64));

    // Compressible input: a qaoa state (repeated discrete values).
    let qaoa = bench_state(Benchmark::Qaoa, 16);
    // Incompressible input: white noise.
    let noise = noise_amplitudes(n, 99);

    for (name, amps) in [("qaoa_state", qaoa.amps()), ("noise", noise.as_slice())] {
        group.bench_function(format!("compress/{name}"), |b| {
            let codec = GfcCodec::new(32);
            b.iter(|| codec.compress_amplitudes(amps));
        });
        group.bench_function(format!("roundtrip/{name}"), |b| {
            let codec = GfcCodec::new(32);
            b.iter(|| {
                let compressed = codec.compress_amplitudes(amps);
                codec.decompress_amplitudes(&compressed)
            });
        });
    }

    // Ablation: segment count vs. (modeled warp parallelism) ratio.
    for segments in [1usize, 4, 16, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("segments", segments),
            &segments,
            |b, &segments| {
                let codec = GfcCodec::new(segments);
                b.iter(|| codec.compress_amplitudes(qaoa.amps()));
            },
        );
    }
    group.finish();
}

/// Every codec on the pruning-heavy inputs where the cascade must beat
/// plain GFC on ratio × throughput: an IQP state (uniform magnitudes,
/// heavily repeated values) and a post-prune QFT layout (dense head,
/// zeroed tail — what chunk pruning leaves resident).
fn bench_codecs(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec");
    let n = 1usize << 16; // amplitudes
    group.throughput(Throughput::Bytes((n * 16) as u64));

    let iqp = bench_state(Benchmark::Iqp, 16);
    let mut pruned = bench_state(Benchmark::Qft, 16).amps().to_vec();
    for a in pruned.iter_mut().skip(n / 8) {
        *a = Complex64::new(0.0, 0.0);
    }

    for (name, amps) in [("iqp", iqp.amps()), ("post_prune_qft", pruned.as_slice())] {
        for kind in CodecKind::ALL {
            let codec = codec_for_kind(kind, 32);
            let bytes = codec.encode_amplitudes(amps).total_bytes();
            eprintln!(
                "codec/{}/{name}: ratio {:.2}x",
                kind.name(),
                (n * 16) as f64 / bytes.max(1) as f64
            );
            group.bench_function(format!("compress/{}/{name}", kind.name()), |b| {
                b.iter(|| codec.encode_amplitudes(amps).total_bytes());
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_compression, bench_codecs
);
criterion_main!(benches);
