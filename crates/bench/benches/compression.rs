//! GFC compression microbenchmarks (paper §IV-D, Figure 11).
//!
//! Measures the codec's real compress/decompress throughput and the ratio
//! sensitivity to the segment count — the ablation behind the "match the
//! GPU parallelism" segment choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qgpu_bench::{bench_state, noise_amplitudes};
use qgpu_circuit::generators::Benchmark;
use qgpu_compress::GfcCodec;

fn bench_compression(c: &mut Criterion) {
    let mut group = c.benchmark_group("gfc");
    let n = 1usize << 16; // amplitudes
    group.throughput(Throughput::Bytes((n * 16) as u64));

    // Compressible input: a qaoa state (repeated discrete values).
    let qaoa = bench_state(Benchmark::Qaoa, 16);
    // Incompressible input: white noise.
    let noise = noise_amplitudes(n, 99);

    for (name, amps) in [("qaoa_state", qaoa.amps()), ("noise", noise.as_slice())] {
        group.bench_function(format!("compress/{name}"), |b| {
            let codec = GfcCodec::new(32);
            b.iter(|| codec.compress_amplitudes(amps));
        });
        group.bench_function(format!("roundtrip/{name}"), |b| {
            let codec = GfcCodec::new(32);
            b.iter(|| {
                let compressed = codec.compress_amplitudes(amps);
                codec.decompress_amplitudes(&compressed)
            });
        });
    }

    // Ablation: segment count vs. (modeled warp parallelism) ratio.
    for segments in [1usize, 4, 16, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("segments", segments),
            &segments,
            |b, &segments| {
                let codec = GfcCodec::new(segments);
                b.iter(|| codec.compress_amplitudes(qaoa.amps()));
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_compression
);
criterion_main!(benches);
