//! End-to-end version benchmarks: real wall-clock of the full simulator
//! (functional amplitudes + timing model) for each execution version.
//!
//! These complement the *modeled* times of Figure 12 with the actual cost
//! of running the reproduction itself.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;

fn bench_versions(c: &mut Criterion) {
    let mut group = c.benchmark_group("versions");
    group.sample_size(10);
    let qubits = 12;
    for b in [Benchmark::Gs, Benchmark::Iqp, Benchmark::Qft] {
        let circuit = b.generate(qubits);
        for v in Version::ALL {
            group.bench_with_input(BenchmarkId::new(b.abbrev(), v.label()), &v, |bench, &v| {
                let sim = Simulator::new(
                    SimConfig::scaled_paper(qubits)
                        .with_version(v)
                        .timing_only(),
                );
                bench.iter(|| sim.run(&circuit));
            });
        }
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_versions
);
criterion_main!(benches);
