//! Gate-kernel microbenchmarks: the functional substrate's throughput.
//!
//! Measures the real CPU kernels (dense 1-qubit, controlled, diagonal,
//! 2-qubit dense, multithreaded variants) on a 2^18-amplitude state —
//! the numbers behind the host-model calibration in `qgpu-device`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use qgpu_bench::noise_amplitudes;
use qgpu_circuit::access::GateAction;
use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::{Gate, Operation};
use qgpu_statevec::{kernels, parallel, StateVector};

const QUBITS: usize = 18;

fn action(g: Gate, qs: &[usize]) -> GateAction {
    GateAction::from_operation(&Operation::new(g, qs.to_vec()))
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels");
    let bytes = (1u64 << QUBITS) * 16;
    group.throughput(Throughput::Bytes(bytes));

    let cases = [
        ("h_q0", action(Gate::H, &[0])),
        ("h_q17", action(Gate::H, &[QUBITS - 1])),
        ("cx", action(Gate::Cx, &[3, 11])),
        ("rz_diagonal", action(Gate::Rz(0.7), &[5])),
        ("cp_diagonal", action(Gate::Cp(0.4), &[2, 14])),
        ("swap_dense2q", action(Gate::Swap, &[1, 16])),
        ("ccx", action(Gate::Ccx, &[0, 9, 17])),
    ];
    for (name, act) in &cases {
        group.bench_function(*name, |b| {
            let mut amps = noise_amplitudes(1 << QUBITS, 42);
            b.iter(|| kernels::apply_action(&mut amps, 0, act));
        });
    }

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("h_parallel", threads),
            &threads,
            |b, &threads| {
                let act = action(Gate::H, &[7]);
                let mut amps = noise_amplitudes(1 << QUBITS, 42);
                b.iter(|| parallel::apply_action_parallel(&mut amps, &act, threads));
            },
        );
    }
    group.finish();
}

/// Whole-circuit execution: unfused gate-by-gate vs the fusion pass —
/// exact replay, collapsed kernels, and collapsed + 4 worker threads — on
/// the two most fusion-friendly paper benchmarks at 20 qubits. The
/// acceptance target is fused+parallel ≥ 2× over the unfused seed path on
/// `qft_20` (see EXPERIMENTS.md for recorded numbers).
fn bench_fused(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/fused");
    group.sample_size(10);
    const N: usize = 20;
    for (name, b) in [("qft_20", Benchmark::Qft), ("iqp_20", Benchmark::Iqp)] {
        let circ = b.generate(N);
        group.bench_with_input(BenchmarkId::new("unfused", name), &circ, |bch, circ| {
            bch.iter(|| {
                let mut s = StateVector::new_zero(N);
                s.run(circ);
                s.amp(0)
            })
        });
        group.bench_with_input(BenchmarkId::new("fused_exact", name), &circ, |bch, circ| {
            bch.iter(|| {
                let mut s = StateVector::new_zero(N);
                s.run_fused(circ, 1);
                s.amp(0)
            })
        });
        group.bench_with_input(BenchmarkId::new("fused", name), &circ, |bch, circ| {
            bch.iter(|| {
                let mut s = StateVector::new_zero(N);
                s.run_fused_collapsed(circ, 1);
                s.amp(0)
            })
        });
        group.bench_with_input(
            BenchmarkId::new("fused_parallel4", name),
            &circ,
            |bch, circ| {
                bch.iter(|| {
                    let mut s = StateVector::new_zero(N);
                    s.run_fused_collapsed(circ, 4);
                    s.amp(0)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
        .sample_size(20);
    targets = bench_kernels, bench_fused
);
criterion_main!(benches);
