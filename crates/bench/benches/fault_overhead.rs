//! Resilience overhead guard: integrity checking (per-chunk CRC32
//! sealing + arrival verification and retry plumbing) at **zero**
//! injected faults vs the plain pipeline.
//!
//! The resilient pipeline's contract is "pay only for what you enable":
//! with fault injection off and integrity checks on, the real work added
//! is the encode-time CRC sealing (fused with the codec's own amplitude
//! walk, zstd-style) plus per-transfer retry plumbing, and that must stay
//! under 3% of wall-clock on qft_20 (the experiment plan's budget,
//! recorded in EXPERIMENTS.md).
//!
//! Invocation follows the workspace's criterion convention:
//!
//! - `cargo bench` (cargo passes `--bench`): interleaved A/B runs of
//!   qft_20, median per side, **asserts** the checked median stays
//!   within 3% of the plain median;
//! - `cargo test` (no `--bench`): one small smoke run of each side so
//!   the guard stays compiled without burning CI minutes.

use std::time::Instant;

use qgpu::{SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;

/// Maximum tolerated slowdown of the integrity-checked run (fractional).
const MAX_OVERHEAD: f64 = 0.03;

/// Interleaved samples per side under `cargo bench`; interleaving keeps
/// slow drift (thermal, cache state) out of the A/B difference.
const SAMPLES: usize = 3;

fn run_once(qubits: usize, checked: bool) -> f64 {
    let mut cfg = SimConfig::scaled_paper(qubits)
        .with_version(Version::QGpu)
        .timing_only();
    if checked {
        cfg = cfg.with_integrity_checks();
    }
    let circuit = Benchmark::Qft.generate(qubits);
    let sim = Simulator::new(cfg);
    let start = Instant::now();
    let result = sim.run(&circuit);
    let elapsed = start.elapsed().as_secs_f64();
    // Zero faults injected: the checked run must never retry or degrade,
    // and the modeled timeline must be identical to the plain run's.
    assert_eq!(result.report.chunk_retries, 0);
    assert_eq!(result.report.codec_fallbacks, 0);
    elapsed
}

fn median(samples: &mut [f64]) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("times are finite"));
    samples[samples.len() / 2]
}

fn main() {
    let mut measure = false;
    let mut filter: Option<String> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--bench" => measure = true,
            "--test" => measure = false,
            s if !s.starts_with('-') && filter.is_none() => filter = Some(s.to_string()),
            _ => {}
        }
    }
    if let Some(f) = &filter {
        if !"fault_overhead/qft".contains(f.as_str()) {
            return;
        }
    }

    if !measure {
        // Smoke: exercise both sides on a small circuit.
        run_once(12, false);
        run_once(12, true);
        println!("{:<40} ok (smoke run)", "fault_overhead/qft_12");
        return;
    }

    let qubits = 20;
    // Warm-up pair so first-touch allocation lands outside the samples.
    run_once(qubits, false);
    run_once(qubits, true);
    let mut plain = Vec::with_capacity(SAMPLES);
    let mut checked = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        plain.push(run_once(qubits, false));
        checked.push(run_once(qubits, true));
    }
    let plain_median = median(&mut plain);
    let checked_median = median(&mut checked);
    let overhead = checked_median / plain_median - 1.0;
    println!(
        "fault_overhead/qft_{qubits}: plain {plain_median:.3} s, checked {checked_median:.3} s, \
         overhead {:.2}%",
        overhead * 100.0
    );
    assert!(
        overhead < MAX_OVERHEAD,
        "integrity checking costs {:.2}% (> {:.0}% budget) on qft_{qubits}",
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );
}
