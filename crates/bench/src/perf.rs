//! The `repro perf` runner: perf-trajectory BENCH files and the
//! regression gate.
//!
//! `repro perf` executes a pinned scenario matrix — every execution
//! version × {qft, iqp, bv, rqc} × the requested qubit sizes × noise
//! off/on — with the engine's per-stage attribution middleware enabled,
//! and writes a schema-versioned `BENCH_<label>.json`:
//!
//! ```text
//! { "schema": "qgpu-bench/v1",
//!   "meta": { git_sha, label, seed, config_hash, crate_version, host },
//!   "scenarios": [ { id, circuit, qubits, version, noise,
//!                    wall_s, modeled_s, stage_sum_s,
//!                    stages: { plan: s, kernel: s, ... },
//!                    percentiles: { gate_ns: { p50, p90, p99, p999 } },
//!                    counters: { ... } }, ... ],
//!   "codecs": { "gfc": { iqp_dense_ratio, iqp_dense_gbps,
//!                        bv_pruned_ratio, bv_pruned_gbps }, ... } }
//! ```
//!
//! `stages` attributes the measured wall clock per pipeline stage from
//! the registry's `stage.time_ns` histograms; the attribution is
//! exhaustive, so `stage_sum_s` tracks `wall_s` (CI asserts within
//! 10%). `codecs` is a pinned per-codec microbenchmark (see
//! [`codec_section`]). The JSON writer is canonical, so a parsed
//! document re-renders byte-identically (pinned by a round-trip test).
//!
//! `repro perf --compare OLD.json` re-runs the matrix (or takes
//! `--current NEW.json`) and exits nonzero when any scenario's
//! end-to-end or per-stage time regresses beyond the noise tolerance:
//! `new > old * (1 + tol) + floor`. Codec ratio and throughput are
//! higher-is-better and gate in the opposite direction
//! (`new < old / (1 + tol)`); a baseline predating the `codecs` section
//! gates nothing codec-side, so old BENCH files keep working.

use std::fmt::Write as _;
use std::time::Instant;

use qgpu::{FlightConfig, SimConfig, Simulator, Version};
use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::NoiseConfig;
use qgpu_compress::{codec_for_kind, CodecKind};
use qgpu_obs::{Json, RunMeta};

/// BENCH document schema tag.
pub const SCHEMA: &str = "qgpu-bench/v1";
/// The pinned circuit set.
pub const CIRCUITS: [Benchmark; 4] = [
    Benchmark::Qft,
    Benchmark::Iqp,
    Benchmark::Bv,
    Benchmark::Rqc,
];
/// Default qubit sizes (override with `--qubits`).
pub const DEFAULT_QUBITS: [usize; 2] = [10, 12];
/// The noisy half of the matrix: channel spec, shots, stochastic seed.
pub const NOISE_SPEC: &str = "depolarizing:0.01,loss:0.02";
const SHOTS: u64 = 64;
const STOCH_SEED: u64 = 42;
/// Default relative noise tolerance for the regression gate (50%:
/// wall-clock timing on shared CI runners is loud).
pub const DEFAULT_TOL: f64 = 0.5;
/// Default absolute regression floor in milliseconds: differences
/// smaller than this are scheduler noise regardless of ratio.
pub const DEFAULT_FLOOR_MS: f64 = 5.0;

/// Parsed `repro perf` arguments.
pub struct PerfArgs {
    /// Qubit sizes to run.
    pub qubits: Vec<usize>,
    /// Output path (default `BENCH_<label>.json`).
    pub out: Option<String>,
    /// Run label for the filename and meta block.
    pub label: String,
    /// Baseline BENCH file to gate against.
    pub compare: Option<String>,
    /// Pre-recorded current BENCH file (skips the run; file-vs-file).
    pub current: Option<String>,
    /// Relative tolerance.
    pub tol: f64,
    /// Absolute floor in milliseconds.
    pub floor_ms: f64,
}

/// Parses everything after `repro perf`.
///
/// # Errors
///
/// Returns a usage message on unknown flags or malformed values.
pub fn parse_args(args: &[String]) -> Result<PerfArgs, String> {
    let mut p = PerfArgs {
        qubits: Vec::new(),
        out: None,
        label: "local".to_string(),
        compare: None,
        current: None,
        tol: DEFAULT_TOL,
        floor_ms: DEFAULT_FLOOR_MS,
    };
    let mut it = args.iter();
    let take = |it: &mut std::slice::Iter<String>, flag: &str| -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or(format!("missing value after {flag}"))
    };
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--qubits" | "-q" => {
                for part in take(&mut it, "--qubits")?.split(',') {
                    p.qubits
                        .push(part.parse().map_err(|_| format!("bad qubit count '{part}'"))?);
                }
            }
            "--out" => p.out = Some(take(&mut it, "--out")?),
            "--label" => p.label = take(&mut it, "--label")?,
            "--compare" => p.compare = Some(take(&mut it, "--compare")?),
            "--current" => p.current = Some(take(&mut it, "--current")?),
            "--tol" => {
                p.tol = take(&mut it, "--tol")?
                    .parse()
                    .map_err(|_| "bad tolerance")?
            }
            "--floor-ms" => {
                p.floor_ms = take(&mut it, "--floor-ms")?
                    .parse()
                    .map_err(|_| "bad floor")?
            }
            other => {
                return Err(format!(
                    "unknown argument '{other}'\nusage: repro perf [--qubits N[,N…]] [--out path] \
                     [--label name] [--compare OLD.json [--current NEW.json]] [--tol F] [--floor-ms F]"
                ))
            }
        }
    }
    if p.qubits.is_empty() {
        p.qubits = DEFAULT_QUBITS.to_vec();
    }
    if p.current.is_some() && p.compare.is_none() {
        return Err("--current only makes sense with --compare".into());
    }
    Ok(p)
}

fn version_tag(v: Version) -> &'static str {
    match v {
        Version::Baseline => "baseline",
        Version::Naive => "naive",
        Version::Overlap => "overlap",
        Version::Pruning => "pruning",
        Version::Reorder => "reorder",
        Version::QGpu => "qgpu",
    }
}

/// Runs one scenario and returns its BENCH object.
pub fn run_scenario(b: Benchmark, qubits: usize, v: Version, noisy: bool) -> Json {
    let circuit = b.generate(qubits);
    let mut cfg = SimConfig::scaled_paper(qubits)
        .with_version(v)
        .timing_only()
        .with_obs_spans()
        // Full telemetry stack enabled, as a deployment would run it —
        // no faults are injected, so nothing triggers a dump.
        .with_flight(FlightConfig::default());
    if noisy {
        let nc: NoiseConfig = NOISE_SPEC.parse().expect("pinned noise spec parses");
        cfg = cfg
            .with_noise(nc)
            .with_shots(SHOTS)
            .with_stoch_seed(STOCH_SEED);
    }
    let start = Instant::now();
    let result = Simulator::new(cfg).run(&circuit);
    let wall_s = start.elapsed().as_secs_f64();
    let obs = result.obs.as_ref().expect("obs_spans enabled");

    let mut stages: Vec<(String, Json)> = Vec::new();
    let mut stage_sum_s = 0.0;
    for e in obs.registry.histograms_named("stage.time_ns") {
        let stage = e.label("stage").expect("stage label").to_string();
        let s = e.value.sum as f64 / 1e9;
        stage_sum_s += s;
        stages.push((stage, Json::Num(s)));
    }
    let gate_ns = obs
        .registry
        .histograms_named("gate.ns")
        .next()
        .map(|e| e.value.clone())
        .unwrap_or_default();

    let r = &result.report;
    Json::Obj(vec![
        (
            "id".into(),
            Json::Str(format!(
                "{}_q{}_{}_{}",
                b.abbrev(),
                qubits,
                version_tag(v),
                if noisy { "noisy" } else { "ideal" }
            )),
        ),
        ("circuit".into(), Json::Str(b.abbrev().to_string())),
        ("qubits".into(), Json::Num(qubits as f64)),
        ("version".into(), Json::Str(version_tag(v).to_string())),
        ("noise".into(), Json::Bool(noisy)),
        ("wall_s".into(), Json::Num(wall_s)),
        ("modeled_s".into(), Json::Num(r.total_time)),
        ("stage_sum_s".into(), Json::Num(stage_sum_s)),
        ("stages".into(), Json::Obj(stages)),
        (
            "percentiles".into(),
            Json::Obj(vec![(
                "gate_ns".into(),
                Json::Obj(vec![
                    ("p50".into(), Json::Num(gate_ns.p50 as f64)),
                    ("p90".into(), Json::Num(gate_ns.p90 as f64)),
                    ("p99".into(), Json::Num(gate_ns.p99 as f64)),
                    ("p999".into(), Json::Num(gate_ns.p999 as f64)),
                ]),
            )]),
        ),
        (
            "counters".into(),
            Json::Obj(vec![
                (
                    "chunks_processed".into(),
                    Json::Num(r.chunks_processed as f64),
                ),
                ("chunks_pruned".into(), Json::Num(r.chunks_pruned as f64)),
                ("bytes_h2d".into(), Json::Num(r.bytes_h2d as f64)),
                ("bytes_d2h".into(), Json::Num(r.bytes_d2h as f64)),
                ("collapses".into(), Json::Num(r.collapses as f64)),
                ("shots".into(), Json::Num(r.shots as f64)),
                ("compression_ratio".into(), Json::Num(r.compression_ratio())),
            ]),
        ),
    ])
}

/// Pinned buffer size for the per-codec microbenchmark: 2^14 amplitudes
/// (256 KiB) spans many segments while keeping the measurement fast.
const CODEC_BENCH_QUBITS: usize = 14;
/// Timed encode repetitions per (codec, buffer) pair.
const CODEC_BENCH_REPS: usize = 4;

/// Measures every codec's compression ratio and encode throughput on two
/// pinned buffers — a dense IQP state (every amplitude occupied) and a
/// pruning-heavy Bernstein–Vazirani state (amplitude concentrated on a
/// few basis states with long zero runs, the layout chunk pruning
/// leaves behind) — and returns the BENCH `codecs` object.
///
/// Ratio and GB/s are higher-is-better; [`compare_docs`] gates them in
/// that direction.
pub fn codec_section() -> Json {
    let dense = crate::bench_state(Benchmark::Iqp, CODEC_BENCH_QUBITS);
    let sparse = crate::bench_state(Benchmark::Bv, CODEC_BENCH_QUBITS);
    let buffers = [("iqp_dense", dense.amps()), ("bv_pruned", sparse.amps())];
    let mut codecs = Vec::new();
    for kind in CodecKind::ALL {
        let codec = codec_for_kind(kind, 32);
        let mut fields = Vec::new();
        for (name, amps) in buffers {
            let raw = amps.len() * 16;
            // Warm-up pass pages in the buffer before the timed loop.
            let mut bytes = codec.encode_amplitudes(amps).total_bytes();
            let start = Instant::now();
            for _ in 0..CODEC_BENCH_REPS {
                bytes = codec.encode_amplitudes(amps).total_bytes();
            }
            let elapsed = start.elapsed().as_secs_f64().max(1e-9);
            // The pipeline moves raw bytes when the encode doesn't win,
            // so the achievable ratio is floored at 1.0.
            let ratio = raw as f64 / bytes.clamp(1, raw) as f64;
            let gbps = (raw * CODEC_BENCH_REPS) as f64 / elapsed / 1e9;
            fields.push((format!("{name}_ratio"), Json::Num(ratio)));
            fields.push((format!("{name}_gbps"), Json::Num(gbps)));
        }
        codecs.push((kind.name().to_string(), Json::Obj(fields)));
    }
    Json::Obj(codecs)
}

/// Runs the full pinned matrix and returns the BENCH document.
pub fn run_matrix(qubits: &[usize], label: &str) -> Json {
    let mut scenarios = Vec::new();
    let total = Version::ALL.len() * CIRCUITS.len() * qubits.len() * 2;
    for v in Version::ALL {
        for b in CIRCUITS {
            for &q in qubits {
                for noisy in [false, true] {
                    eprintln!(
                        "[repro perf] {}/{total} {}_q{}_{}_{}",
                        scenarios.len() + 1,
                        b.abbrev(),
                        q,
                        version_tag(v),
                        if noisy { "noisy" } else { "ideal" }
                    );
                    scenarios.push(run_scenario(b, q, v, noisy));
                }
            }
        }
    }
    let config_text = format!(
        "versions={:?} circuits={:?} qubits={qubits:?} noise={NOISE_SPEC} shots={SHOTS}",
        Version::ALL.map(version_tag),
        CIRCUITS.map(Benchmark::abbrev),
    );
    let meta = RunMeta::collect(label, STOCH_SEED, &config_text, env!("CARGO_PKG_VERSION"));
    eprintln!("[repro perf] codec microbenchmark");
    Json::Obj(vec![
        ("schema".into(), Json::Str(SCHEMA.to_string())),
        ("meta".into(), meta.to_json()),
        ("scenarios".into(), Json::Arr(scenarios)),
        ("codecs".into(), codec_section()),
    ])
}

fn scenario_id(s: &Json) -> &str {
    s.get("id").and_then(Json::as_str).unwrap_or("?")
}

fn num(s: &Json, key: &str) -> f64 {
    s.get(key).and_then(Json::as_f64).unwrap_or(0.0)
}

/// Compares two BENCH documents: every scenario of `old` must still
/// exist in `new`, and neither its end-to-end `wall_s` nor any per-stage
/// time may exceed `old * (1 + tol) + floor_s`. Codec ratio/throughput
/// entries present in `old` must stay above `old / (1 + tol)`. Returns
/// one line per regression (empty = gate passes).
pub fn compare_docs(old: &Json, new: &Json, tol: f64, floor_s: f64) -> Vec<String> {
    let mut regressions = Vec::new();
    let empty: [Json; 0] = [];
    let old_scenarios = old
        .get("scenarios")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    let new_scenarios = new
        .get("scenarios")
        .and_then(Json::as_arr)
        .unwrap_or(&empty);
    for os in old_scenarios {
        let id = scenario_id(os);
        let Some(ns) = new_scenarios.iter().find(|s| scenario_id(s) == id) else {
            regressions.push(format!("{id}: scenario missing from current run"));
            continue;
        };
        let gate = |label: &str, old_v: f64, new_v: f64, out: &mut Vec<String>| {
            let limit = old_v * (1.0 + tol) + floor_s;
            if new_v > limit {
                let mut line = String::new();
                let _ = write!(
                    line,
                    "{id}: {label} regressed {:.1}ms -> {:.1}ms (limit {:.1}ms)",
                    old_v * 1e3,
                    new_v * 1e3,
                    limit * 1e3
                );
                out.push(line);
            }
        };
        gate(
            "wall_s",
            num(os, "wall_s"),
            num(ns, "wall_s"),
            &mut regressions,
        );
        if let Some(Json::Obj(old_stages)) = os.get("stages") {
            for (stage, v) in old_stages {
                let old_v = v.as_f64().unwrap_or(0.0);
                let new_v = ns
                    .get("stages")
                    .and_then(|s| s.get(stage))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                gate(&format!("stage {stage}"), old_v, new_v, &mut regressions);
            }
        }
    }
    // Codec ratio and throughput are higher-is-better, so they gate in
    // the opposite direction — and only when the baseline carries the
    // section, keeping pre-codec BENCH files comparable.
    if let Some(Json::Obj(old_codecs)) = old.get("codecs") {
        for (codec, ov) in old_codecs {
            let Json::Obj(old_fields) = ov else { continue };
            for (field, v) in old_fields {
                let old_v = v.as_f64().unwrap_or(0.0);
                let new_v = new
                    .get("codecs")
                    .and_then(|c| c.get(codec))
                    .and_then(|f| f.get(field))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0);
                let limit = old_v / (1.0 + tol);
                if new_v < limit {
                    let mut line = String::new();
                    let _ = write!(
                        line,
                        "codec {codec}: {field} regressed {old_v:.3} -> {new_v:.3} (limit {limit:.3})"
                    );
                    regressions.push(line);
                }
            }
        }
    }
    regressions
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

/// The `repro perf` entry point. Returns `Ok(true)` when the regression
/// gate (if requested) passed, `Ok(false)` when it caught a regression.
///
/// # Errors
///
/// Returns a message on argument, I/O, or JSON errors.
pub fn cli(args: &[String]) -> Result<bool, String> {
    let p = parse_args(args)?;
    let current = match &p.current {
        Some(path) => load(path)?,
        None => {
            let doc = run_matrix(&p.qubits, &p.label);
            let out = p
                .out
                .clone()
                .unwrap_or_else(|| format!("BENCH_{}.json", p.label));
            std::fs::write(&out, doc.to_string()).map_err(|e| format!("{out}: {e}"))?;
            eprintln!("[repro perf] wrote {out}");
            doc
        }
    };
    let Some(old_path) = &p.compare else {
        return Ok(true);
    };
    let old = load(old_path)?;
    let regressions = compare_docs(&old, &current, p.tol, p.floor_ms / 1e3);
    if regressions.is_empty() {
        eprintln!("[repro perf] no regressions vs {old_path}");
        return Ok(true);
    }
    for r in &regressions {
        eprintln!("[repro perf] REGRESSION {r}");
    }
    Ok(false)
}
