//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment> [--qubits N] [--json]
//! repro all [--qubits N] [--json]
//! repro perf [--qubits N[,N…]] [--out path] [--label name]
//!            [--compare OLD.json [--current NEW.json]] [--tol F] [--floor-ms F]
//! repro list
//! ```
//!
//! `--json` emits each table as a JSON object (title/headers/rows) instead
//! of markdown — for downstream plotting scripts.
//!
//! `repro perf` runs the pinned perf-trajectory matrix and writes a
//! schema-versioned `BENCH_<label>.json`; with `--compare` it exits
//! nonzero when any scenario regresses beyond the noise tolerance (see
//! [`qgpu_bench::perf`]).
//!
//! Experiments: fig2 fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig12 fig13
//! fig14 fig15 fig16 fig17 fig19 tab2 tab3. Default sizes are chosen so
//! `repro all` finishes in minutes on a laptop while preserving the
//! paper's shapes; pass `--qubits` to push larger.

use std::env;
use std::process::ExitCode;

use qgpu::experiments;
use qgpu_circuit::generators::Benchmark;

struct Args {
    experiment: String,
    qubits: Option<usize>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = env::args().skip(1);
    let experiment = args.next().ok_or_else(usage)?;
    let mut qubits = None;
    let mut json = false;
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--qubits" | "-q" => {
                let v = args.next().ok_or("missing value after --qubits")?;
                qubits = Some(
                    v.parse::<usize>()
                        .map_err(|_| format!("bad qubit count '{v}'"))?,
                );
            }
            "--json" => json = true,
            other => return Err(format!("unknown argument '{other}'\n{}", usage())),
        }
    }
    Ok(Args {
        experiment,
        qubits,
        json,
    })
}

fn usage() -> String {
    "usage: repro <experiment|all|list> [--qubits N] [--json]".to_string()
}

const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig2", "baseline execution time breakdown"),
    ("fig3", "naive version normalized time"),
    ("fig4", "naive execution breakdown"),
    ("fig6", "timeline of each optimization"),
    ("fig7", "hchain amplitude distribution"),
    ("fig8", "gs_5 reordering walk-through"),
    ("fig9", "involvement under three gate orders"),
    ("fig10", "residual distributions / compressibility"),
    (
        "fig12",
        "normalized execution time, all versions (headline)",
    ),
    ("fig13", "normalized data transfer time"),
    ("fig14", "compression/decompression overheads"),
    ("fig15", "roofline analysis"),
    ("fig16", "comparison with Qsim-Cirq and QDK"),
    ("fig17", "V100 and A100 platforms"),
    ("fig19", "multi-GPU platforms"),
    ("tab2", "operations before full involvement (34 qubits)"),
    ("tab3", "deep circuits"),
    ("scaling", "figure 12 geomeans across qubit counts"),
    ("abl-chunks", "ablation: chunk count"),
    ("abl-dynamic", "ablation: dynamic vs fixed chunk size"),
    (
        "abl-reorder",
        "ablation: greedy vs forward-looking, end to end",
    ),
    ("abl-buffer", "ablation: double-buffer split fraction"),
    ("abl-grid", "ablation: the full 2^4 optimization-flag grid"),
    ("ext-batching", "extension: gate batching over Q-GPU"),
];

fn collect(
    name: &str,
    qubits: Option<usize>,
) -> Result<(Vec<qgpu::experiments::Table>, String), String> {
    // Default sizes: simulation-bearing experiments run at 14 qubits
    // (seconds each), analysis-only ones at the paper's own sizes.
    let q_sim = qubits.unwrap_or(14);
    let mut extra = String::new();
    let tables = match name {
        "fig2" => vec![experiments::fig2::run(q_sim)],
        "fig3" => vec![experiments::fig3_4::run(q_sim).0],
        "fig4" => vec![experiments::fig3_4::run(q_sim).1],
        "fig6" => {
            extra = experiments::fig6::gantt(Benchmark::Qft, q_sim.min(10), 100);
            vec![experiments::fig6::run(Benchmark::Qft, q_sim.min(12))]
        }
        "fig7" => vec![experiments::fig7::run(
            qubits.unwrap_or(10),
            &[0, 30, 60, 90],
        )],
        "fig8" => vec![experiments::fig8::run()],
        "fig9" => vec![experiments::fig9::run(qubits.unwrap_or(22))],
        "fig10" => vec![experiments::fig10::run(qubits.unwrap_or(16))],
        "fig12" => vec![experiments::fig12::run(q_sim)],
        "fig13" => vec![experiments::fig13::run(q_sim)],
        "fig14" => vec![experiments::fig14::run(q_sim)],
        "fig15" => vec![experiments::fig15::run(q_sim)],
        "fig16" => {
            let (a, b) = experiments::fig16::run(q_sim);
            vec![a, b]
        }
        "fig17" => vec![experiments::fig17::run(q_sim)],
        "fig19" => vec![experiments::fig19::run(q_sim)],
        "tab2" => vec![experiments::tab2::run(qubits.unwrap_or(34))],
        "tab3" => vec![experiments::tab3::run(qubits.unwrap_or(12))],
        "scaling" => {
            let top = qubits.unwrap_or(14);
            let sizes: Vec<usize> = (10..=top).step_by(2).collect();
            vec![experiments::fig12::run_scaling(&sizes)]
        }
        "abl-chunks" => vec![experiments::ablations::chunk_count(q_sim)],
        "abl-dynamic" => vec![experiments::ablations::dynamic_chunk_size(q_sim)],
        "abl-reorder" => vec![experiments::ablations::reorder_strategy(q_sim)],
        "abl-buffer" => vec![experiments::ablations::buffer_split(q_sim)],
        "abl-grid" => vec![experiments::ablations::opt_grid(qubits.unwrap_or(12))],
        "ext-batching" => vec![experiments::ext_batching::run(q_sim)],
        other => return Err(format!("unknown experiment '{other}' — try 'repro list'")),
    };
    Ok((tables, extra))
}

fn run_one(name: &str, qubits: Option<usize>, json: bool) -> Result<(), String> {
    let (tables, extra) = collect(name, qubits)?;
    for t in &tables {
        if json {
            println!("{}", t.to_json());
        } else {
            println!("{t}");
        }
    }
    if !json && !extra.is_empty() {
        println!("{extra}");
    }
    Ok(())
}

fn main() -> ExitCode {
    // `repro perf` has its own argument grammar — intercept before the
    // table-experiment parser.
    let raw: Vec<String> = env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("perf") {
        return match qgpu_bench::perf::cli(&raw[1..]) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        };
    }
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    match args.experiment.as_str() {
        "list" => {
            for (name, desc) in EXPERIMENTS {
                println!("{name:8} {desc}");
            }
            ExitCode::SUCCESS
        }
        "all" => {
            for (name, _) in EXPERIMENTS {
                eprintln!("[repro] running {name} …");
                if let Err(e) = run_one(name, args.qubits, args.json) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        name => match run_one(name, args.qubits, args.json) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("{e}");
                ExitCode::FAILURE
            }
        },
    }
}
