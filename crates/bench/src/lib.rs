//! Benchmark harness for the Q-GPU reproduction.
//!
//! This crate ships:
//!
//! * the **`repro` binary** — regenerates every table and figure of the
//!   paper's evaluation (`cargo run -p qgpu-bench --bin repro -- list`);
//! * **Criterion microbenchmarks** — gate kernels, GFC compression,
//!   reorder passes, and end-to-end version comparisons
//!   (`cargo bench -p qgpu-bench`).
//!
//! The library portion hosts shared helpers for the benches and the
//! `repro perf` BENCH-file runner (see [`perf`]).

pub mod perf;

use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::Circuit;
use qgpu_math::Complex64;
use qgpu_statevec::StateVector;

/// Standard bench circuit: small enough for Criterion iteration counts.
pub fn bench_circuit(b: Benchmark, qubits: usize) -> Circuit {
    b.generate(qubits)
}

/// A deterministic non-trivial state for kernel benchmarks: the given
/// benchmark circuit fully applied.
pub fn bench_state(b: Benchmark, qubits: usize) -> StateVector {
    let c = b.generate(qubits);
    let mut s = StateVector::new_zero(qubits);
    s.run(&c);
    s
}

/// Deterministic pseudo-random amplitude buffer (for compression benches).
pub fn noise_amplitudes(len: usize, seed: u64) -> Vec<Complex64> {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state as f64 / u64::MAX as f64) - 0.5
    };
    (0..len).map(|_| Complex64::new(next(), next())).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_are_deterministic() {
        assert_eq!(noise_amplitudes(16, 3), noise_amplitudes(16, 3));
        let a = bench_state(Benchmark::Gs, 8);
        let b = bench_state(Benchmark::Gs, 8);
        assert!(a.max_deviation(&b) < 1e-15);
    }

    #[test]
    fn noise_is_nonzero() {
        let amps = noise_amplitudes(64, 7);
        assert!(amps.iter().all(|a| !a.is_zero()));
    }
}
