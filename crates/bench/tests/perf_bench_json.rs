//! The BENCH-file contracts: schema shape, exhaustive stage
//! attribution, byte-identical JSON round-trips, and the regression
//! gate's catch/pass behavior.

use qgpu::Version;
use qgpu_bench::perf;
use qgpu_circuit::generators::Benchmark;
use qgpu_obs::{Json, RunMeta};

/// A small but real BENCH document: two scenarios actually simulated.
fn small_doc() -> Json {
    let scenarios = vec![
        perf::run_scenario(Benchmark::Qft, 8, Version::QGpu, false),
        perf::run_scenario(Benchmark::Bv, 8, Version::Baseline, true),
    ];
    let meta = RunMeta::collect("test", 42, "tiny matrix", env!("CARGO_PKG_VERSION"));
    Json::Obj(vec![
        ("schema".into(), Json::Str(perf::SCHEMA.into())),
        ("meta".into(), meta.to_json()),
        ("scenarios".into(), Json::Arr(scenarios)),
    ])
}

#[test]
fn scenario_has_the_schema_fields_and_exhaustive_attribution() {
    let s = perf::run_scenario(Benchmark::Qft, 8, Version::QGpu, false);
    for key in [
        "id",
        "circuit",
        "qubits",
        "version",
        "noise",
        "wall_s",
        "modeled_s",
        "stage_sum_s",
        "stages",
        "percentiles",
        "counters",
    ] {
        assert!(s.get(key).is_some(), "scenario missing '{key}'");
    }
    assert_eq!(
        s.get("id").and_then(Json::as_str),
        Some("qft_q8_qgpu_ideal")
    );
    // Attribution is exhaustive: the per-stage sums reconstruct the
    // measured wall clock (the release-mode CI smoke holds ±10%; keep a
    // little slack for unoptimized builds).
    let wall = s.get("wall_s").and_then(Json::as_f64).unwrap();
    let sum = s.get("stage_sum_s").and_then(Json::as_f64).unwrap();
    assert!(wall > 0.0 && sum > 0.0);
    let ratio = sum / wall;
    assert!((0.8..1.2).contains(&ratio), "stage_sum/wall = {ratio}");
    // Kernel time exists and the gate-latency percentiles are ordered.
    assert!(s.get("stages").unwrap().get("kernel").is_some());
    let p = s.get("percentiles").unwrap().get("gate_ns").unwrap();
    let (p50, p999) = (
        p.get("p50").and_then(Json::as_f64).unwrap(),
        p.get("p999").and_then(Json::as_f64).unwrap(),
    );
    assert!(p50 > 0.0 && p50 <= p999);
}

#[test]
fn bench_document_round_trips_byte_identically() {
    let doc = small_doc();
    let rendered = doc.to_string();
    let reparsed = Json::parse(&rendered).expect("BENCH JSON parses back");
    assert_eq!(
        reparsed.to_string(),
        rendered,
        "round-trip must be byte-identical"
    );
    assert_eq!(reparsed, doc);
}

/// Builds a synthetic BENCH doc with one scenario of the given timings.
fn doc_with(wall_s: f64, kernel_s: f64) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(perf::SCHEMA.into())),
        (
            "scenarios".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("id".into(), Json::Str("qft_q8_qgpu_ideal".into())),
                ("wall_s".into(), Json::Num(wall_s)),
                (
                    "stages".into(),
                    Json::Obj(vec![("kernel".into(), Json::Num(kernel_s))]),
                ),
            ])]),
        ),
    ])
}

#[test]
fn gate_catches_a_2x_regression_and_passes_identical_runs() {
    let old = doc_with(0.100, 0.080);
    let doubled = doc_with(0.200, 0.160);
    // Identical runs pass.
    assert!(perf::compare_docs(&old, &old, perf::DEFAULT_TOL, 0.005).is_empty());
    // A 2x end-to-end + per-stage regression trips both checks at the
    // default 50% tolerance.
    let regressions = perf::compare_docs(&old, &doubled, perf::DEFAULT_TOL, 0.005);
    assert_eq!(regressions.len(), 2, "{regressions:?}");
    assert!(regressions[0].contains("wall_s"));
    assert!(regressions[1].contains("stage kernel"));
    // The reverse direction (got faster) is not a regression.
    assert!(perf::compare_docs(&doubled, &old, perf::DEFAULT_TOL, 0.005).is_empty());
    // A vanished scenario is flagged.
    let empty = Json::Obj(vec![
        ("schema".into(), Json::Str(perf::SCHEMA.into())),
        ("scenarios".into(), Json::Arr(vec![])),
    ]);
    let missing = perf::compare_docs(&old, &empty, perf::DEFAULT_TOL, 0.005);
    assert_eq!(missing.len(), 1);
    assert!(missing[0].contains("missing"));
}

#[test]
fn sub_floor_noise_does_not_trip_the_gate() {
    // 2x relative but far under the absolute floor: scheduler noise.
    let old = doc_with(0.0005, 0.0004);
    let new = doc_with(0.0010, 0.0008);
    assert!(perf::compare_docs(&old, &new, perf::DEFAULT_TOL, 0.005).is_empty());
}
