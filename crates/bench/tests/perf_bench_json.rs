//! The BENCH-file contracts: schema shape, exhaustive stage
//! attribution, byte-identical JSON round-trips, and the regression
//! gate's catch/pass behavior.

use qgpu::Version;
use qgpu_bench::perf;
use qgpu_circuit::generators::Benchmark;
use qgpu_obs::{Json, RunMeta};

/// A small but real BENCH document: two scenarios actually simulated.
fn small_doc() -> Json {
    let scenarios = vec![
        perf::run_scenario(Benchmark::Qft, 8, Version::QGpu, false),
        perf::run_scenario(Benchmark::Bv, 8, Version::Baseline, true),
    ];
    let meta = RunMeta::collect("test", 42, "tiny matrix", env!("CARGO_PKG_VERSION"));
    Json::Obj(vec![
        ("schema".into(), Json::Str(perf::SCHEMA.into())),
        ("meta".into(), meta.to_json()),
        ("scenarios".into(), Json::Arr(scenarios)),
    ])
}

#[test]
fn scenario_has_the_schema_fields_and_exhaustive_attribution() {
    let s = perf::run_scenario(Benchmark::Qft, 8, Version::QGpu, false);
    for key in [
        "id",
        "circuit",
        "qubits",
        "version",
        "noise",
        "wall_s",
        "modeled_s",
        "stage_sum_s",
        "stages",
        "percentiles",
        "counters",
    ] {
        assert!(s.get(key).is_some(), "scenario missing '{key}'");
    }
    assert_eq!(
        s.get("id").and_then(Json::as_str),
        Some("qft_q8_qgpu_ideal")
    );
    // Attribution is exhaustive: the per-stage sums reconstruct the
    // measured wall clock (the release-mode CI smoke holds ±10%; keep a
    // little slack for unoptimized builds).
    let wall = s.get("wall_s").and_then(Json::as_f64).unwrap();
    let sum = s.get("stage_sum_s").and_then(Json::as_f64).unwrap();
    assert!(wall > 0.0 && sum > 0.0);
    let ratio = sum / wall;
    assert!((0.8..1.2).contains(&ratio), "stage_sum/wall = {ratio}");
    // Kernel time exists and the gate-latency percentiles are ordered.
    assert!(s.get("stages").unwrap().get("kernel").is_some());
    let p = s.get("percentiles").unwrap().get("gate_ns").unwrap();
    let (p50, p999) = (
        p.get("p50").and_then(Json::as_f64).unwrap(),
        p.get("p999").and_then(Json::as_f64).unwrap(),
    );
    assert!(p50 > 0.0 && p50 <= p999);
}

#[test]
fn bench_document_round_trips_byte_identically() {
    let doc = small_doc();
    let rendered = doc.to_string();
    let reparsed = Json::parse(&rendered).expect("BENCH JSON parses back");
    assert_eq!(
        reparsed.to_string(),
        rendered,
        "round-trip must be byte-identical"
    );
    assert_eq!(reparsed, doc);
}

/// Builds a synthetic BENCH doc with one scenario of the given timings.
fn doc_with(wall_s: f64, kernel_s: f64) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(perf::SCHEMA.into())),
        (
            "scenarios".into(),
            Json::Arr(vec![Json::Obj(vec![
                ("id".into(), Json::Str("qft_q8_qgpu_ideal".into())),
                ("wall_s".into(), Json::Num(wall_s)),
                (
                    "stages".into(),
                    Json::Obj(vec![("kernel".into(), Json::Num(kernel_s))]),
                ),
            ])]),
        ),
    ])
}

#[test]
fn gate_catches_a_2x_regression_and_passes_identical_runs() {
    let old = doc_with(0.100, 0.080);
    let doubled = doc_with(0.200, 0.160);
    // Identical runs pass.
    assert!(perf::compare_docs(&old, &old, perf::DEFAULT_TOL, 0.005).is_empty());
    // A 2x end-to-end + per-stage regression trips both checks at the
    // default 50% tolerance.
    let regressions = perf::compare_docs(&old, &doubled, perf::DEFAULT_TOL, 0.005);
    assert_eq!(regressions.len(), 2, "{regressions:?}");
    assert!(regressions[0].contains("wall_s"));
    assert!(regressions[1].contains("stage kernel"));
    // The reverse direction (got faster) is not a regression.
    assert!(perf::compare_docs(&doubled, &old, perf::DEFAULT_TOL, 0.005).is_empty());
    // A vanished scenario is flagged.
    let empty = Json::Obj(vec![
        ("schema".into(), Json::Str(perf::SCHEMA.into())),
        ("scenarios".into(), Json::Arr(vec![])),
    ]);
    let missing = perf::compare_docs(&old, &empty, perf::DEFAULT_TOL, 0.005);
    assert_eq!(missing.len(), 1);
    assert!(missing[0].contains("missing"));
}

#[test]
fn codec_section_measures_every_codec_on_both_buffers() {
    let c = perf::codec_section();
    for codec in ["gfc", "zero-run", "alp", "cascade"] {
        let e = c
            .get(codec)
            .unwrap_or_else(|| panic!("codecs missing '{codec}'"));
        for field in [
            "iqp_dense_ratio",
            "iqp_dense_gbps",
            "bv_pruned_ratio",
            "bv_pruned_gbps",
        ] {
            let v = e.get(field).and_then(Json::as_f64).unwrap();
            assert!(v > 0.0, "{codec}.{field} = {v}");
        }
        // The raw fallback floors every ratio at 1.0.
        let r = e.get("bv_pruned_ratio").and_then(Json::as_f64).unwrap();
        assert!(r >= 1.0, "{codec}: bv_pruned_ratio = {r}");
    }
    // The pruning-heavy buffer is where the cascade must pay off: at
    // least match GFC's ratio there (it may pick GFC itself).
    let ratio = |codec: &str| {
        c.get(codec)
            .unwrap()
            .get("bv_pruned_ratio")
            .and_then(Json::as_f64)
            .unwrap()
    };
    assert!(ratio("cascade") >= ratio("gfc"));
}

/// Builds a synthetic BENCH doc whose only content is one gfc codec entry.
fn codec_doc(ratio: f64, gbps: f64) -> Json {
    Json::Obj(vec![
        ("schema".into(), Json::Str(perf::SCHEMA.into())),
        ("scenarios".into(), Json::Arr(vec![])),
        (
            "codecs".into(),
            Json::Obj(vec![(
                "gfc".into(),
                Json::Obj(vec![
                    ("iqp_dense_ratio".into(), Json::Num(ratio)),
                    ("iqp_dense_gbps".into(), Json::Num(gbps)),
                ]),
            )]),
        ),
    ])
}

#[test]
fn codec_gate_is_higher_is_better_and_backward_compatible() {
    let old = codec_doc(2.0, 8.0);
    // Identical and improved runs pass.
    assert!(perf::compare_docs(&old, &old, perf::DEFAULT_TOL, 0.005).is_empty());
    assert!(perf::compare_docs(&old, &codec_doc(3.0, 12.0), perf::DEFAULT_TOL, 0.005).is_empty());
    // Halving either metric is beyond the 50% tolerance (limit = old/1.5).
    let slow = perf::compare_docs(&old, &codec_doc(2.0, 4.0), perf::DEFAULT_TOL, 0.005);
    assert_eq!(slow.len(), 1, "{slow:?}");
    assert!(slow[0].contains("iqp_dense_gbps"));
    let weak = perf::compare_docs(&old, &codec_doc(1.0, 8.0), perf::DEFAULT_TOL, 0.005);
    assert_eq!(weak.len(), 1, "{weak:?}");
    assert!(weak[0].contains("iqp_dense_ratio"));
    // A baseline predating the codecs section gates nothing codec-side;
    // a current run that lost the section regresses every field to 0.
    let pre_codec = Json::Obj(vec![
        ("schema".into(), Json::Str(perf::SCHEMA.into())),
        ("scenarios".into(), Json::Arr(vec![])),
    ]);
    assert!(perf::compare_docs(&pre_codec, &old, perf::DEFAULT_TOL, 0.005).is_empty());
    let gone = perf::compare_docs(&old, &pre_codec, perf::DEFAULT_TOL, 0.005);
    assert_eq!(gone.len(), 2, "{gone:?}");
}

#[test]
fn sub_floor_noise_does_not_trip_the_gate() {
    // 2x relative but far under the absolute floor: scheduler noise.
    let old = doc_with(0.0005, 0.0004);
    let new = doc_with(0.0010, 0.0008);
    assert!(perf::compare_docs(&old, &new, perf::DEFAULT_TOL, 0.005).is_empty());
}
