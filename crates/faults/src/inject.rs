//! The deterministic, seeded fault injector.
//!
//! Every decision is a pure function of `(seed, site, index, attempt)`:
//! the injector carries no mutable state, so concurrent workers can share
//! one instance, and a run with a given seed injects *exactly* the same
//! faults regardless of thread count, pipeline interleaving, or how many
//! times a site re-asks (retries bump `attempt` explicitly). That
//! determinism is what lets the fault-injection tests assert bit-exact
//! recovery instead of "it usually works".

use serde::{Deserialize, Serialize};

/// Where in the pipeline a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A chunk transfer (H2D or D2H) delivers corrupted bytes; detected
    /// by the CRC verification on arrival.
    TransferCorrupt,
    /// The GFC encoder fails on a chunk; the pipeline falls back to raw
    /// (uncompressed) transfer.
    CodecFail,
    /// The involvement mask for a gate reads back corrupted; the pruning
    /// decision is untrustworthy and the pipeline falls back to
    /// full-chunk execution for that gate.
    MaskCorrupt,
    /// A worker thread dies mid-dispatch; the executor reports
    /// [`crate::SimError::WorkerLost`] and the caller re-runs serially.
    WorkerDeath,
    /// A pipeline stage runs pathologically slow (modeled-time multiplier,
    /// standing in for thermal throttling or a contended link).
    StageSlowdown,
    /// A modeled device drops out of the fleet mid-run (ECC storm, driver
    /// wedge, preemption); the orchestrator must re-shard its partitions
    /// onto survivors and replay from the last barrier.
    DeviceLost,
    /// A host-device link degrades for one transfer occurrence (PCIe
    /// retraining, oversubscribed switch); the transfer completes but at
    /// [`FaultConfig::link_degrade_factor`] times the nominal cost.
    LinkDegraded,
    /// A bit flips inside a kernel's *output amplitudes* — silent data
    /// corruption the transfer CRCs cannot see, because the corrupted
    /// value is what gets checksummed. Only the ABFT invariant checks
    /// (`qgpu-faults::invariant`) can catch it.
    KernelFlip,
}

impl FaultSite {
    fn salt(self) -> u64 {
        match self {
            FaultSite::TransferCorrupt => 0x7472_616e_7366_6572, // "transfer"
            FaultSite::CodecFail => 0x6370_6f64_6563_0000,       // "codec"
            FaultSite::MaskCorrupt => 0x6d61_736b_0000_0000,     // "mask"
            FaultSite::WorkerDeath => 0x776f_726b_6572_0000,     // "worker"
            FaultSite::StageSlowdown => 0x736c_6f77_0000_0000,   // "slow"
            FaultSite::DeviceLost => 0x6465_7669_6365_0000,      // "device"
            FaultSite::LinkDegraded => 0x6c69_6e6b_0000_0000,    // "link"
            FaultSite::KernelFlip => 0x6b66_6c69_7000_0000,      // "kflip"
        }
    }
}

/// Per-stage fault probabilities plus the seed. All probabilities default
/// to zero — a default config injects nothing and the pipeline only pays
/// for the integrity checks it would run anyway.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability a chunk transfer delivers corrupted bytes.
    pub p_transfer_corrupt: f64,
    /// Probability a GFC encode fails on a chunk.
    pub p_codec_fail: f64,
    /// Probability a gate's involvement mask reads back corrupted.
    pub p_mask_corrupt: f64,
    /// Probability a worker dispatch loses a thread.
    pub p_worker_death: f64,
    /// Probability a stage runs slowed by [`FaultConfig::slowdown_factor`].
    pub p_stage_slowdown: f64,
    /// Modeled-time multiplier applied when a slowdown fires.
    pub slowdown_factor: f64,
    /// Inject an unrecoverable [`crate::SimError::Fatal`] at this
    /// program-op index (`usize::MAX` = never) — the deterministic hook
    /// the checkpoint-resume tests kill the run with.
    pub fail_at_gate: usize,
    /// Probability a device drops out of the fleet at a checkpoint
    /// barrier (drawn per `(device, barrier)` occurrence).
    pub p_device_lost: f64,
    /// Deterministically lose [`FaultConfig::device_lost_id`] at this
    /// program-op index (`usize::MAX` = never) — the hook the re-shard
    /// tests and the CI smoke job kill a device with.
    pub device_lost_at: usize,
    /// Which device [`FaultConfig::device_lost_at`] takes down.
    pub device_lost_id: usize,
    /// Probability a transfer occurrence runs over a degraded link.
    pub p_link_degraded: f64,
    /// Modeled-time multiplier on a transfer when the link degrades.
    pub link_degrade_factor: f64,
    /// Pin one device as a persistent straggler: every kernel it runs is
    /// stretched by [`FaultConfig::slowdown_factor`] (`usize::MAX` =
    /// none). This reuses the slowdown injector's factor so straggler
    /// mitigation is exercised by the same knob the stage-slowdown
    /// tests already calibrate.
    pub straggler_device: usize,
    /// Probability a kernel occurrence flips a bit in its output
    /// amplitudes (drawn per `(op, attempt)`, so re-execution converges
    /// like real transient SDC).
    pub p_kernel_flip: f64,
    /// First program-op index of a deterministic kernel-flip window
    /// (`usize::MAX` = never) — the hook the detection tests and the CI
    /// smoke job corrupt a kernel with.
    pub kernel_flip_at: usize,
    /// How many consecutive unitary ops starting at
    /// [`FaultConfig::kernel_flip_at`] get flipped (minimum 1). Several
    /// flips in a row are what drive one device's health score into
    /// quarantine.
    pub kernel_flip_count: u32,
    /// How many re-execution attempts the deterministic flip persists
    /// for (minimum 1). `1` models a transient — the same-device retry
    /// already comes back clean; `2` models a sticky lane fault that
    /// forces escalation to a different device.
    pub kernel_flip_attempts: u32,
    /// Which bit of the amplitude's real-component f64 to flip
    /// (default 62, the exponent MSB — loud). Lower bits probe the
    /// detection-coverage floor.
    pub kernel_flip_bit: u32,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            p_transfer_corrupt: 0.0,
            p_codec_fail: 0.0,
            p_mask_corrupt: 0.0,
            p_worker_death: 0.0,
            p_stage_slowdown: 0.0,
            slowdown_factor: 4.0,
            fail_at_gate: usize::MAX,
            p_device_lost: 0.0,
            device_lost_at: usize::MAX,
            device_lost_id: 0,
            p_link_degraded: 0.0,
            link_degrade_factor: 4.0,
            straggler_device: usize::MAX,
            p_kernel_flip: 0.0,
            kernel_flip_at: usize::MAX,
            kernel_flip_count: 1,
            kernel_flip_attempts: 1,
            kernel_flip_bit: 62,
        }
    }
}

impl FaultConfig {
    /// True when any fault can fire under this config.
    pub fn any_enabled(&self) -> bool {
        self.p_transfer_corrupt > 0.0
            || self.p_codec_fail > 0.0
            || self.p_mask_corrupt > 0.0
            || self.p_worker_death > 0.0
            || self.p_stage_slowdown > 0.0
            || self.fail_at_gate != usize::MAX
            || self.device_faults_enabled()
            || self.kernel_faults_enabled()
    }

    /// True when a kernel bit-flip can fire — the engines arm the
    /// integrity middleware (snapshot + re-execution) whenever this
    /// holds, even if `--verify-invariants` was not asked for.
    pub fn kernel_faults_enabled(&self) -> bool {
        self.p_kernel_flip > 0.0 || self.kernel_flip_at != usize::MAX
    }

    /// True when any fleet-level fault can fire — device loss, link
    /// degradation, or a pinned straggler. The engines use this to bring
    /// the orchestration layer up even without an explicit
    /// orchestrator config.
    pub fn device_faults_enabled(&self) -> bool {
        self.p_device_lost > 0.0
            || self.device_lost_at != usize::MAX
            || self.p_link_degraded > 0.0
            || self.straggler_device != usize::MAX
    }
}

/// The injector: a [`FaultConfig`] with decision methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

// All draws go through the workspace-wide splitmix64 primitive: one
// keyed-hash discipline shared with noise insertion, measurement
// collapse, and shot sampling (`qgpu_math::rng`), byte-identical to
// the local implementation this crate used before the hoist.
use qgpu_math::rng::unit_draw;

impl FaultInjector {
    /// Wraps a config into an injector.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector { cfg }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decides whether a fault fires at `site` for occurrence `index`
    /// (first attempt).
    pub fn fires(&self, site: FaultSite, index: u64) -> bool {
        self.fires_attempt(site, index, 0)
    }

    /// Decides whether a fault fires at `site` for occurrence `index`,
    /// `attempt` retries in. Each attempt draws independently, so a
    /// corrupted transfer's retry succeeds with probability `1 - p` —
    /// retries converge exactly as they would on real hardware.
    pub fn fires_attempt(&self, site: FaultSite, index: u64, attempt: u32) -> bool {
        let p = match site {
            FaultSite::TransferCorrupt => self.cfg.p_transfer_corrupt,
            FaultSite::CodecFail => self.cfg.p_codec_fail,
            FaultSite::MaskCorrupt => self.cfg.p_mask_corrupt,
            FaultSite::WorkerDeath => self.cfg.p_worker_death,
            FaultSite::StageSlowdown => self.cfg.p_stage_slowdown,
            FaultSite::DeviceLost => self.cfg.p_device_lost,
            FaultSite::LinkDegraded => self.cfg.p_link_degraded,
            FaultSite::KernelFlip => self.cfg.p_kernel_flip,
        };
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_draw(self.cfg.seed, site.salt(), index, attempt as u64) < p
    }

    /// The slowdown multiplier for a stage occurrence: the configured
    /// factor when [`FaultSite::StageSlowdown`] fires, 1.0 otherwise.
    pub fn slowdown(&self, index: u64) -> f64 {
        if self.fires(FaultSite::StageSlowdown, index) {
            self.cfg.slowdown_factor
        } else {
            1.0
        }
    }

    /// True when the deterministic fatal fault strikes this program op.
    pub fn fatal_at(&self, gate: usize) -> bool {
        self.cfg.fail_at_gate == gate
    }

    /// The device deterministically lost at this program op, if any.
    pub fn device_lost_at_op(&self, op: usize) -> Option<usize> {
        if self.cfg.device_lost_at == op {
            Some(self.cfg.device_lost_id)
        } else {
            None
        }
    }

    /// Decides whether `device` drops out at checkpoint barrier
    /// `barrier`. The index folds both so every `(device, barrier)` pair
    /// draws independently and identically across fleet sizes.
    pub fn device_lost_fires(&self, device: usize, barrier: u64) -> bool {
        self.fires(
            FaultSite::DeviceLost,
            barrier.wrapping_mul(0x1_0000).wrapping_add(device as u64),
        )
    }

    /// The link-time multiplier for transfer occurrence `index`: the
    /// configured degrade factor when [`FaultSite::LinkDegraded`] fires,
    /// 1.0 otherwise.
    pub fn link_stretch(&self, index: u64) -> f64 {
        if self.fires(FaultSite::LinkDegraded, index) {
            self.cfg.link_degrade_factor
        } else {
            1.0
        }
    }

    /// Decides whether kernel occurrence `op` flips an output bit on
    /// re-execution attempt `attempt` (0 = first run).
    ///
    /// The deterministic window (`kernel_flip_at` .. `+ kernel_flip_count`)
    /// persists for the first `kernel_flip_attempts` attempts, then
    /// clears — so a transient (1 attempt) is repaired by the
    /// same-device retry and a sticky fault (≥ 2) forces the
    /// cross-device escalation. The probabilistic site redraws per
    /// `(op, attempt)` like every other injector decision.
    pub fn kernel_flip_fires(&self, op: usize, attempt: u32) -> bool {
        if self.cfg.kernel_flip_at != usize::MAX {
            let lo = self.cfg.kernel_flip_at;
            let hi = lo.saturating_add(self.cfg.kernel_flip_count.max(1) as usize);
            if (lo..hi).contains(&op) && attempt < self.cfg.kernel_flip_attempts.max(1) {
                return true;
            }
        }
        self.fires_attempt(FaultSite::KernelFlip, op as u64, attempt)
    }

    /// Which bit of the amplitude's real-component f64 a firing kernel
    /// flip corrupts (clamped to the 0..=63 f64 bit range).
    pub fn kernel_flip_bit(&self) -> u32 {
        self.cfg.kernel_flip_bit.min(63)
    }

    /// The kernel-time multiplier for work placed on `device`: the
    /// slowdown factor when it is the pinned straggler, 1.0 otherwise.
    pub fn straggler_stretch(&self, device: usize) -> f64 {
        if self.cfg.straggler_device == device {
            self.cfg.slowdown_factor
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(p: f64, seed: u64) -> FaultInjector {
        FaultInjector::new(FaultConfig {
            seed,
            p_transfer_corrupt: p,
            p_codec_fail: p,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn default_config_injects_nothing() {
        let inj = FaultInjector::new(FaultConfig::default());
        assert!(!FaultConfig::default().any_enabled());
        for i in 0..1000 {
            assert!(!inj.fires(FaultSite::TransferCorrupt, i));
            assert!(!inj.fires(FaultSite::WorkerDeath, i));
        }
        assert_eq!(inj.slowdown(3), 1.0);
        assert!(!inj.fatal_at(0));
    }

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let inj = injector(0.3, 42);
        let forward: Vec<bool> = (0..200)
            .map(|i| inj.fires(FaultSite::TransferCorrupt, i))
            .collect();
        let backward: Vec<bool> = (0..200)
            .rev()
            .map(|i| inj.fires(FaultSite::TransferCorrupt, i))
            .collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
    }

    #[test]
    fn sites_draw_independently() {
        let inj = injector(0.5, 9);
        let transfer: Vec<bool> = (0..256)
            .map(|i| inj.fires(FaultSite::TransferCorrupt, i))
            .collect();
        let codec: Vec<bool> = (0..256)
            .map(|i| inj.fires(FaultSite::CodecFail, i))
            .collect();
        assert_ne!(transfer, codec, "sites must not share a decision stream");
    }

    #[test]
    fn rate_approximates_probability() {
        let inj = injector(0.1, 1234);
        let hits = (0..100_000)
            .filter(|&i| inj.fires(FaultSite::TransferCorrupt, i))
            .count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn attempts_redraw() {
        // With p = 0.5, some index that fires at attempt 0 must clear at
        // a later attempt — retries converge.
        let inj = injector(0.5, 7);
        let idx = (0..1000)
            .find(|&i| inj.fires(FaultSite::TransferCorrupt, i))
            .expect("some fault at p=0.5");
        assert!(
            (1..64).any(|a| !inj.fires_attempt(FaultSite::TransferCorrupt, idx, a)),
            "an attempt must eventually succeed"
        );
    }

    #[test]
    fn extreme_probabilities_clamp() {
        let always = FaultInjector::new(FaultConfig {
            p_worker_death: 1.0,
            ..FaultConfig::default()
        });
        let never = FaultInjector::new(FaultConfig {
            p_worker_death: 0.0,
            ..FaultConfig::default()
        });
        for i in 0..100 {
            assert!(always.fires(FaultSite::WorkerDeath, i));
            assert!(!never.fires(FaultSite::WorkerDeath, i));
        }
    }

    #[test]
    fn fatal_gate_matches_exactly() {
        let inj = FaultInjector::new(FaultConfig {
            fail_at_gate: 17,
            ..FaultConfig::default()
        });
        assert!(inj.fatal_at(17));
        assert!(!inj.fatal_at(16));
        assert!(!inj.fatal_at(18));
        assert!(inj.config().any_enabled());
    }

    #[test]
    fn device_faults_default_off() {
        let cfg = FaultConfig::default();
        assert!(!cfg.device_faults_enabled());
        let inj = FaultInjector::new(cfg);
        for d in 0..4 {
            for b in 0..64 {
                assert!(!inj.device_lost_fires(d, b));
            }
            assert_eq!(inj.straggler_stretch(d), 1.0);
        }
        assert_eq!(inj.link_stretch(0), 1.0);
        assert_eq!(inj.device_lost_at_op(0), None);
    }

    #[test]
    fn deterministic_device_loss_hits_one_op() {
        let cfg = FaultConfig {
            device_lost_at: 9,
            device_lost_id: 2,
            ..FaultConfig::default()
        };
        assert!(cfg.any_enabled() && cfg.device_faults_enabled());
        let inj = FaultInjector::new(cfg);
        assert_eq!(inj.device_lost_at_op(9), Some(2));
        assert_eq!(inj.device_lost_at_op(8), None);
        assert_eq!(inj.device_lost_at_op(10), None);
    }

    #[test]
    fn device_loss_draws_per_device_and_barrier() {
        let inj = FaultInjector::new(FaultConfig {
            seed: 11,
            p_device_lost: 0.5,
            ..FaultConfig::default()
        });
        let a: Vec<bool> = (0..128).map(|b| inj.device_lost_fires(0, b)).collect();
        let b: Vec<bool> = (0..128).map(|b| inj.device_lost_fires(1, b)).collect();
        assert_ne!(a, b, "devices must not share a decision stream");
        let again: Vec<bool> = (0..128).map(|b| inj.device_lost_fires(0, b)).collect();
        assert_eq!(a, again);
    }

    #[test]
    fn link_and_straggler_stretch_by_factor() {
        let inj = FaultInjector::new(FaultConfig {
            p_link_degraded: 1.0,
            link_degrade_factor: 6.0,
            straggler_device: 1,
            slowdown_factor: 3.0,
            ..FaultConfig::default()
        });
        assert_eq!(inj.link_stretch(5), 6.0);
        assert_eq!(inj.straggler_stretch(1), 3.0);
        assert_eq!(inj.straggler_stretch(0), 1.0);
    }

    #[test]
    fn kernel_flip_defaults_off() {
        let cfg = FaultConfig::default();
        assert!(!cfg.kernel_faults_enabled());
        let inj = FaultInjector::new(cfg);
        for op in 0..256 {
            assert!(!inj.kernel_flip_fires(op, 0));
        }
    }

    #[test]
    fn deterministic_kernel_flip_covers_window_then_clears() {
        let cfg = FaultConfig {
            kernel_flip_at: 5,
            kernel_flip_count: 3,
            kernel_flip_attempts: 1,
            ..FaultConfig::default()
        };
        assert!(cfg.kernel_faults_enabled() && cfg.any_enabled());
        let inj = FaultInjector::new(cfg);
        assert!(!inj.kernel_flip_fires(4, 0));
        for op in 5..8 {
            assert!(inj.kernel_flip_fires(op, 0), "op {op} in window");
            assert!(!inj.kernel_flip_fires(op, 1), "retry runs clean");
        }
        assert!(!inj.kernel_flip_fires(8, 0));
    }

    #[test]
    fn sticky_kernel_flip_persists_across_attempts() {
        let inj = FaultInjector::new(FaultConfig {
            kernel_flip_at: 2,
            kernel_flip_attempts: 2,
            ..FaultConfig::default()
        });
        assert!(inj.kernel_flip_fires(2, 0));
        assert!(inj.kernel_flip_fires(2, 1), "sticky fault survives retry");
        assert!(!inj.kernel_flip_fires(2, 2), "escalated re-run is clean");
    }

    #[test]
    fn probabilistic_kernel_flip_redraws_per_attempt() {
        let cfg = FaultConfig {
            seed: 13,
            p_kernel_flip: 0.5,
            ..FaultConfig::default()
        };
        assert!(cfg.kernel_faults_enabled());
        let inj = FaultInjector::new(cfg);
        let op = (0..1000)
            .find(|&op| inj.kernel_flip_fires(op, 0))
            .expect("some flip at p=0.5");
        assert!(
            (1..64).any(|a| !inj.kernel_flip_fires(op, a)),
            "a re-execution must eventually run clean"
        );
    }

    #[test]
    fn kernel_flip_bit_defaults_to_exponent_and_clamps() {
        let inj = FaultInjector::new(FaultConfig::default());
        assert_eq!(inj.kernel_flip_bit(), 62);
        let wild = FaultInjector::new(FaultConfig {
            kernel_flip_bit: 900,
            ..FaultConfig::default()
        });
        assert_eq!(wild.kernel_flip_bit(), 63);
    }

    #[test]
    fn slowdown_scales_by_factor() {
        let inj = FaultInjector::new(FaultConfig {
            p_stage_slowdown: 1.0,
            slowdown_factor: 3.5,
            ..FaultConfig::default()
        });
        assert_eq!(inj.slowdown(0), 3.5);
    }
}
