//! The deterministic, seeded fault injector.
//!
//! Every decision is a pure function of `(seed, site, index, attempt)`:
//! the injector carries no mutable state, so concurrent workers can share
//! one instance, and a run with a given seed injects *exactly* the same
//! faults regardless of thread count, pipeline interleaving, or how many
//! times a site re-asks (retries bump `attempt` explicitly). That
//! determinism is what lets the fault-injection tests assert bit-exact
//! recovery instead of "it usually works".

use serde::{Deserialize, Serialize};

/// Where in the pipeline a fault can strike.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// A chunk transfer (H2D or D2H) delivers corrupted bytes; detected
    /// by the CRC verification on arrival.
    TransferCorrupt,
    /// The GFC encoder fails on a chunk; the pipeline falls back to raw
    /// (uncompressed) transfer.
    CodecFail,
    /// The involvement mask for a gate reads back corrupted; the pruning
    /// decision is untrustworthy and the pipeline falls back to
    /// full-chunk execution for that gate.
    MaskCorrupt,
    /// A worker thread dies mid-dispatch; the executor reports
    /// [`crate::SimError::WorkerLost`] and the caller re-runs serially.
    WorkerDeath,
    /// A pipeline stage runs pathologically slow (modeled-time multiplier,
    /// standing in for thermal throttling or a contended link).
    StageSlowdown,
}

impl FaultSite {
    fn salt(self) -> u64 {
        match self {
            FaultSite::TransferCorrupt => 0x7472_616e_7366_6572, // "transfer"
            FaultSite::CodecFail => 0x6370_6f64_6563_0000,       // "codec"
            FaultSite::MaskCorrupt => 0x6d61_736b_0000_0000,     // "mask"
            FaultSite::WorkerDeath => 0x776f_726b_6572_0000,     // "worker"
            FaultSite::StageSlowdown => 0x736c_6f77_0000_0000,   // "slow"
        }
    }
}

/// Per-stage fault probabilities plus the seed. All probabilities default
/// to zero — a default config injects nothing and the pipeline only pays
/// for the integrity checks it would run anyway.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for every injection decision.
    pub seed: u64,
    /// Probability a chunk transfer delivers corrupted bytes.
    pub p_transfer_corrupt: f64,
    /// Probability a GFC encode fails on a chunk.
    pub p_codec_fail: f64,
    /// Probability a gate's involvement mask reads back corrupted.
    pub p_mask_corrupt: f64,
    /// Probability a worker dispatch loses a thread.
    pub p_worker_death: f64,
    /// Probability a stage runs slowed by [`FaultConfig::slowdown_factor`].
    pub p_stage_slowdown: f64,
    /// Modeled-time multiplier applied when a slowdown fires.
    pub slowdown_factor: f64,
    /// Inject an unrecoverable [`crate::SimError::Fatal`] at this
    /// program-op index (`usize::MAX` = never) — the deterministic hook
    /// the checkpoint-resume tests kill the run with.
    pub fail_at_gate: usize,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0,
            p_transfer_corrupt: 0.0,
            p_codec_fail: 0.0,
            p_mask_corrupt: 0.0,
            p_worker_death: 0.0,
            p_stage_slowdown: 0.0,
            slowdown_factor: 4.0,
            fail_at_gate: usize::MAX,
        }
    }
}

impl FaultConfig {
    /// True when any fault can fire under this config.
    pub fn any_enabled(&self) -> bool {
        self.p_transfer_corrupt > 0.0
            || self.p_codec_fail > 0.0
            || self.p_mask_corrupt > 0.0
            || self.p_worker_death > 0.0
            || self.p_stage_slowdown > 0.0
            || self.fail_at_gate != usize::MAX
    }
}

/// The injector: a [`FaultConfig`] with decision methods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultInjector {
    cfg: FaultConfig,
}

/// `splitmix64` — a statistically solid 64-bit mixer; decisions take the
/// top 53 bits as a uniform draw in `[0, 1)`.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn unit_draw(seed: u64, salt: u64, index: u64, attempt: u64) -> f64 {
    let h = mix(mix(mix(seed ^ salt).wrapping_add(index)).wrapping_add(attempt));
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultInjector {
    /// Wraps a config into an injector.
    pub fn new(cfg: FaultConfig) -> Self {
        FaultInjector { cfg }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Decides whether a fault fires at `site` for occurrence `index`
    /// (first attempt).
    pub fn fires(&self, site: FaultSite, index: u64) -> bool {
        self.fires_attempt(site, index, 0)
    }

    /// Decides whether a fault fires at `site` for occurrence `index`,
    /// `attempt` retries in. Each attempt draws independently, so a
    /// corrupted transfer's retry succeeds with probability `1 - p` —
    /// retries converge exactly as they would on real hardware.
    pub fn fires_attempt(&self, site: FaultSite, index: u64, attempt: u32) -> bool {
        let p = match site {
            FaultSite::TransferCorrupt => self.cfg.p_transfer_corrupt,
            FaultSite::CodecFail => self.cfg.p_codec_fail,
            FaultSite::MaskCorrupt => self.cfg.p_mask_corrupt,
            FaultSite::WorkerDeath => self.cfg.p_worker_death,
            FaultSite::StageSlowdown => self.cfg.p_stage_slowdown,
        };
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        unit_draw(self.cfg.seed, site.salt(), index, attempt as u64) < p
    }

    /// The slowdown multiplier for a stage occurrence: the configured
    /// factor when [`FaultSite::StageSlowdown`] fires, 1.0 otherwise.
    pub fn slowdown(&self, index: u64) -> f64 {
        if self.fires(FaultSite::StageSlowdown, index) {
            self.cfg.slowdown_factor
        } else {
            1.0
        }
    }

    /// True when the deterministic fatal fault strikes this program op.
    pub fn fatal_at(&self, gate: usize) -> bool {
        self.cfg.fail_at_gate == gate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn injector(p: f64, seed: u64) -> FaultInjector {
        FaultInjector::new(FaultConfig {
            seed,
            p_transfer_corrupt: p,
            p_codec_fail: p,
            ..FaultConfig::default()
        })
    }

    #[test]
    fn default_config_injects_nothing() {
        let inj = FaultInjector::new(FaultConfig::default());
        assert!(!FaultConfig::default().any_enabled());
        for i in 0..1000 {
            assert!(!inj.fires(FaultSite::TransferCorrupt, i));
            assert!(!inj.fires(FaultSite::WorkerDeath, i));
        }
        assert_eq!(inj.slowdown(3), 1.0);
        assert!(!inj.fatal_at(0));
    }

    #[test]
    fn decisions_are_deterministic_and_order_free() {
        let inj = injector(0.3, 42);
        let forward: Vec<bool> = (0..200)
            .map(|i| inj.fires(FaultSite::TransferCorrupt, i))
            .collect();
        let backward: Vec<bool> = (0..200)
            .rev()
            .map(|i| inj.fires(FaultSite::TransferCorrupt, i))
            .collect();
        let backward_reversed: Vec<bool> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward_reversed);
    }

    #[test]
    fn sites_draw_independently() {
        let inj = injector(0.5, 9);
        let transfer: Vec<bool> = (0..256)
            .map(|i| inj.fires(FaultSite::TransferCorrupt, i))
            .collect();
        let codec: Vec<bool> = (0..256)
            .map(|i| inj.fires(FaultSite::CodecFail, i))
            .collect();
        assert_ne!(transfer, codec, "sites must not share a decision stream");
    }

    #[test]
    fn rate_approximates_probability() {
        let inj = injector(0.1, 1234);
        let hits = (0..100_000)
            .filter(|&i| inj.fires(FaultSite::TransferCorrupt, i))
            .count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn attempts_redraw() {
        // With p = 0.5, some index that fires at attempt 0 must clear at
        // a later attempt — retries converge.
        let inj = injector(0.5, 7);
        let idx = (0..1000)
            .find(|&i| inj.fires(FaultSite::TransferCorrupt, i))
            .expect("some fault at p=0.5");
        assert!(
            (1..64).any(|a| !inj.fires_attempt(FaultSite::TransferCorrupt, idx, a)),
            "an attempt must eventually succeed"
        );
    }

    #[test]
    fn extreme_probabilities_clamp() {
        let always = FaultInjector::new(FaultConfig {
            p_worker_death: 1.0,
            ..FaultConfig::default()
        });
        let never = FaultInjector::new(FaultConfig {
            p_worker_death: 0.0,
            ..FaultConfig::default()
        });
        for i in 0..100 {
            assert!(always.fires(FaultSite::WorkerDeath, i));
            assert!(!never.fires(FaultSite::WorkerDeath, i));
        }
    }

    #[test]
    fn fatal_gate_matches_exactly() {
        let inj = FaultInjector::new(FaultConfig {
            fail_at_gate: 17,
            ..FaultConfig::default()
        });
        assert!(inj.fatal_at(17));
        assert!(!inj.fatal_at(16));
        assert!(!inj.fatal_at(18));
        assert!(inj.config().any_enabled());
    }

    #[test]
    fn slowdown_scales_by_factor() {
        let inj = FaultInjector::new(FaultConfig {
            p_stage_slowdown: 1.0,
            slowdown_factor: 3.5,
            ..FaultConfig::default()
        });
        assert_eq!(inj.slowdown(0), 3.5);
    }
}
