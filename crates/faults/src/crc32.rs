//! CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`) plus a
//! hardware-accelerated in-flight checksum.
//!
//! Two tiers, two jobs:
//!
//! * [`crc32`] / [`Crc32`] — the **persistent** checksum carried by
//!   checkpoint segments and codec verification tags. Slicing-by-8 table
//!   walk (~3–6 GB/s), identical values on every architecture, and
//!   dependency-free, which matters in this vendored-only workspace.
//! * [`fast_checksum`] — the **ephemeral** tag sealed onto each chunk at
//!   encode or first-upload time, travelling with the data across the
//!   modeled PCIe link. On x86-64 with SSE4.2 it runs three interleaved
//!   hardware `crc32` (Castagnoli) streams — one instruction per cycle
//!   once the 3-cycle latency is hidden, ~20 GB/s — because the resilient
//!   pipeline seals millions of (mostly tiny) chunks per run and that
//!   pass must stay invisible next to the update/compress work. Values
//!   are only compared within one process and are never persisted.

/// Slicing-by-8 lookup tables for the reflected IEEE polynomial, built at
/// compile time. `TABLES[0]` is the classic byte-at-a-time table;
/// `TABLES[k][b]` advances the contribution of byte `b` through `k` more
/// zero bytes, letting `update` fold eight input bytes per step.
const TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// One-shot CRC32 of a byte slice.
///
/// # Examples
///
/// ```
/// // The catalogue test vector for IEEE CRC32.
/// assert_eq!(qgpu_faults::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(bytes);
    h.finish()
}

/// Incremental CRC32 hasher for streamed data (checkpoint files are
/// written segment by segment; the total-file checksum folds every
/// segment in without a second pass).
///
/// # Examples
///
/// ```
/// use qgpu_faults::{crc32, Crc32};
///
/// let mut h = Crc32::new();
/// h.update(b"1234");
/// h.update(b"56789");
/// assert_eq!(h.finish(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// A fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds more bytes into the checksum (slicing-by-8: eight input
    /// bytes per table step, bitwise identical to byte-at-a-time).
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let lo = u32::from_le_bytes([c[0], c[1], c[2], c[3]]) ^ crc;
            let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = TABLES[0][((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
        }
        self.state = crc;
    }

    /// The final checksum (the hasher can keep accepting updates; this
    /// just reads the current value).
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

/// Fast one-shot checksum for **in-flight** transfer tags.
///
/// On x86-64 with SSE4.2 this runs three interleaved hardware CRC32-C
/// streams mixed into one 32-bit tag; elsewhere it falls back to the
/// portable [`crc32`]. The two paths produce *different* values for the
/// same input, so this checksum is only meaningful within one process —
/// it is never persisted (checkpoints and codec tags use [`crc32`],
/// which is stable everywhere).
///
/// Any single-bit flip lands in exactly one lane and changes that lane's
/// CRC, so the mixed tag detects it; multi-bit damage is caught with the
/// usual ~2⁻³² escape probability.
#[inline]
pub fn fast_checksum(bytes: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: feature presence just checked.
            return unsafe { crc32c_3way(bytes) };
        }
    }
    crc32(bytes)
}

/// Three independent hardware CRC32-C streams over interleaved 8-byte
/// words. Independence hides the instruction's 3-cycle latency (one
/// retire per cycle, ~24 bytes/cycle-triplet); the lanes are rotated
/// before mixing so identical lane contents cannot cancel.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
unsafe fn crc32c_3way(bytes: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let word = |c: &[u8]| u64::from_le_bytes(c.try_into().expect("8-byte window"));
    let mut a: u64 = 0xFFFF_FFFF;
    let mut b: u64 = 0xFFFF_FFFF;
    let mut c: u64 = 0xFFFF_FFFF;
    let mut triplets = bytes.chunks_exact(24);
    for t in &mut triplets {
        a = _mm_crc32_u64(a, word(&t[0..8]));
        b = _mm_crc32_u64(b, word(&t[8..16]));
        c = _mm_crc32_u64(c, word(&t[16..24]));
    }
    let mut crc = (a as u32).rotate_left(9) ^ (b as u32).rotate_left(18) ^ c as u32;
    for &x in triplets.remainder() {
        crc = _mm_crc32_u8(crc, x);
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        for split in [0usize, 1, 17, 5000, 9999, 10_000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let data = vec![0xA5u8; 4096];
        let base = crc32(&data);
        for pos in [0usize, 1, 2048, 4095] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[pos] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {pos}:{bit} undetected");
            }
        }
    }

    #[test]
    fn fast_checksum_is_deterministic_and_length_sensitive() {
        // Exercise every remainder class around the 24-byte triplet.
        for len in [0usize, 1, 7, 8, 23, 24, 25, 48, 4096, 4099] {
            let data: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
            assert_eq!(fast_checksum(&data), fast_checksum(&data), "len {len}");
        }
        assert_ne!(fast_checksum(&[0u8; 24]), fast_checksum(&[0u8; 48]));
    }

    #[test]
    fn fast_checksum_detects_single_bit_flips() {
        let data: Vec<u8> = (0..4096).map(|i| (i * 131 + 17) as u8).collect();
        let base = fast_checksum(&data);
        for pos in [0usize, 7, 8, 23, 24, 2048, 4095] {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[pos] ^= 1 << bit;
                assert_ne!(
                    fast_checksum(&corrupted),
                    base,
                    "flip at {pos}:{bit} undetected"
                );
            }
        }
    }
}
