//! Bounded retry with exponential backoff.

use serde::{Deserialize, Serialize};

use crate::SimError;

/// Retry policy for integrity failures: up to `max_retries` re-attempts,
/// waiting `base_backoff_s * multiplier^attempt` (capped) before each.
///
/// Backoff is expressed in *modeled* seconds: the engine charges each
/// wait to the device timeline, so injected faults visibly cost modeled
/// time and show up in the trace — a retry storm is diagnosable from the
/// same Perfetto view as any other stall.
///
/// # Examples
///
/// ```
/// use qgpu_faults::RetryPolicy;
///
/// let p = RetryPolicy::default();
/// assert_eq!(p.backoff_s(1), 2.0 * p.backoff_s(0));
/// assert!(p.backoff_s(30) <= p.max_backoff_s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Re-attempts after the first failure before giving up.
    pub max_retries: u32,
    /// Wait before the first retry, in modeled seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied per further attempt.
    pub multiplier: f64,
    /// Ceiling on any single wait.
    pub max_backoff_s: f64,
}

impl Default for RetryPolicy {
    /// 4 retries starting at 50 µs, doubling, capped at 10 ms — sized to
    /// a PCIe re-transfer (~1 ms for a 2 MB chunk at 12 GB/s): the first
    /// backoff is cheap against the transfer it guards, and four doublings
    /// outlast any plausible transient.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_s: 50e-6,
            multiplier: 2.0,
            max_backoff_s: 10e-3,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `attempt` (0-based), in modeled seconds.
    ///
    /// Safe at any attempt count: the geometric growth is evaluated in
    /// `f64` for the full exponent (no truncated-exponent wraparound),
    /// and an overflowed (non-finite) product clamps to
    /// `max_backoff_s` instead of propagating `inf`/`NaN` into the
    /// timeline.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let raw = self.base_backoff_s * self.multiplier.powf(f64::from(attempt));
        if raw.is_finite() {
            raw.min(self.max_backoff_s)
        } else {
            self.max_backoff_s
        }
    }

    /// Total modeled wait if every retry is consumed. Once the per-try
    /// wait reaches the cap the remaining terms are all `max_backoff_s`,
    /// so the sum closes in constant extra work even for huge
    /// `max_retries`.
    pub fn worst_case_backoff_s(&self) -> f64 {
        let mut total = 0.0;
        for a in 0..self.max_retries {
            let b = self.backoff_s(a);
            if b >= self.max_backoff_s {
                return total + f64::from(self.max_retries - a) * self.max_backoff_s;
            }
            total += b;
        }
        total
    }

    /// Drives `op` under this policy: the closure receives the 0-based
    /// attempt number; *recoverable* failures (see
    /// [`SimError::is_recoverable`]) are retried up to `max_retries`
    /// times. On exhaustion — or on the first non-recoverable failure —
    /// the **last underlying error** is returned verbatim, never a
    /// generic retry-failure wrapper, so callers keep the variant and
    /// its payload for diagnosis.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T, SimError>) -> Result<T, SimError> {
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_recoverable() && attempt < self.max_retries => attempt += 1,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            max_backoff_s: 8e-3,
        };
        assert_eq!(p.backoff_s(0), 1e-3);
        assert_eq!(p.backoff_s(1), 2e-3);
        assert_eq!(p.backoff_s(2), 4e-3);
        assert_eq!(p.backoff_s(3), 8e-3);
        assert_eq!(p.backoff_s(4), 8e-3, "cap holds");
        assert_eq!(p.backoff_s(63), 8e-3, "huge attempts stay finite");
    }

    #[test]
    fn backoff_cannot_overflow_at_extreme_attempt_counts() {
        // Regression: the geometric term must clamp to the cap instead
        // of overflowing to inf (or wrapping through a truncated
        // exponent) at high attempt counts.
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff_s: 1.0,
            multiplier: 10.0,
            max_backoff_s: 30.0,
        };
        for attempt in [64, 1_000, 1_000_000, u32::MAX] {
            let b = p.backoff_s(attempt);
            assert!(b.is_finite(), "attempt {attempt} must stay finite");
            assert_eq!(b, 30.0, "attempt {attempt} clamps to the cap");
        }
        // Even a multiplier whose square alone overflows f64.
        let huge = RetryPolicy {
            multiplier: 1e308,
            ..p
        };
        assert_eq!(huge.backoff_s(2), 30.0);
        assert_eq!(huge.backoff_s(u32::MAX), 30.0);
    }

    #[test]
    fn worst_case_sums_every_attempt() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_s: 1.0,
            multiplier: 2.0,
            max_backoff_s: 100.0,
        };
        assert_eq!(p.worst_case_backoff_s(), 1.0 + 2.0 + 4.0);
    }

    #[test]
    fn worst_case_is_cheap_and_finite_even_for_huge_retry_budgets() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            max_backoff_s: 1.0,
        };
        let w = p.worst_case_backoff_s();
        assert!(w.is_finite());
        assert!(w >= f64::from(u32::MAX - 64));
    }

    #[test]
    fn exhaustion_returns_the_last_underlying_error() {
        // Regression: exhausting the retry budget must surface the final
        // attempt's actual error, not a generic failure.
        let p = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let result: Result<(), _> = p.run(|attempt| {
            Err(match attempt {
                0 => SimError::WorkerLost { dispatch: "first" },
                1 => SimError::WorkerLost { dispatch: "second" },
                _ => SimError::ChunkCorrupt {
                    chunk: 42,
                    attempts: attempt + 1,
                },
            })
        });
        match result {
            Err(SimError::ChunkCorrupt {
                chunk: 42,
                attempts: 3,
            }) => {}
            other => panic!("expected the final ChunkCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn run_retries_recoverable_then_succeeds() {
        let p = RetryPolicy::default();
        let got = p
            .run(|attempt| {
                if attempt < 2 {
                    Err(SimError::WorkerLost { dispatch: "w" })
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(got, 2);
    }

    #[test]
    fn run_does_not_retry_unrecoverable_errors() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let result: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(SimError::Fatal {
                gate: 7,
                reason: "injected".into(),
            })
        });
        assert_eq!(calls, 1, "a fatal error must not consume retries");
        assert!(matches!(result, Err(SimError::Fatal { gate: 7, .. })));
    }
}
