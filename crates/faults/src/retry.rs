//! Bounded retry with exponential backoff.

use serde::{Deserialize, Serialize};

use qgpu_math::rng::unit_draw;

use crate::SimError;

/// Salt for the jitter draw — its own decision stream, independent of
/// every fault-injection site ("jitter" in ASCII).
const SALT_RETRY_JITTER: u64 = 0x6a69_7474_6572_0000;

/// Retry policy for integrity failures: up to `max_retries` re-attempts,
/// waiting `base_backoff_s * multiplier^attempt` (capped) before each.
///
/// Backoff is expressed in *modeled* seconds: the engine charges each
/// wait to the device timeline, so injected faults visibly cost modeled
/// time and show up in the trace — a retry storm is diagnosable from the
/// same Perfetto view as any other stall.
///
/// # Examples
///
/// ```
/// use qgpu_faults::RetryPolicy;
///
/// let p = RetryPolicy::default();
/// assert_eq!(p.backoff_s(1), 2.0 * p.backoff_s(0));
/// assert!(p.backoff_s(30) <= p.max_backoff_s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Re-attempts after the first failure before giving up.
    pub max_retries: u32,
    /// Wait before the first retry, in modeled seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied per further attempt.
    pub multiplier: f64,
    /// Ceiling on any single wait.
    pub max_backoff_s: f64,
}

impl Default for RetryPolicy {
    /// 4 retries starting at 50 µs, doubling, capped at 10 ms — sized to
    /// a PCIe re-transfer (~1 ms for a 2 MB chunk at 12 GB/s): the first
    /// backoff is cheap against the transfer it guards, and four doublings
    /// outlast any plausible transient.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_s: 50e-6,
            multiplier: 2.0,
            max_backoff_s: 10e-3,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `attempt` (0-based), in modeled seconds.
    ///
    /// Safe at any attempt count: the geometric growth is evaluated in
    /// `f64` for the full exponent (no truncated-exponent wraparound),
    /// and an overflowed (non-finite) product clamps to
    /// `max_backoff_s` instead of propagating `inf`/`NaN` into the
    /// timeline.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let raw = self.base_backoff_s * self.multiplier.powf(f64::from(attempt));
        if raw.is_finite() {
            raw.min(self.max_backoff_s)
        } else {
            self.max_backoff_s
        }
    }

    /// The wait before retry `attempt` with deterministic, seeded
    /// jitter: the nominal [`RetryPolicy::backoff_s`] scaled by a
    /// pure-splitmix64 draw of `(seed, attempt)` into `[0.75, 1.25)`.
    ///
    /// Ungittered exponential backoff resynchronizes: when one glitch
    /// trips N devices at once, every retry wave lands at the same
    /// modeled instant and hammers the shared link again. A ±25% spread
    /// keyed by the caller's seed breaks the phase lock while keeping
    /// replay bit-exact — the same `(seed, attempt)` always waits the
    /// same time. Callers decorrelate concurrent sites by folding a
    /// site index (device, transfer occurrence) into `seed`.
    ///
    /// ```
    /// use qgpu_faults::RetryPolicy;
    ///
    /// let p = RetryPolicy::default();
    /// let j = p.jittered_backoff_s(7, 0);
    /// assert_eq!(j, p.jittered_backoff_s(7, 0)); // replayable
    /// assert!(j >= 0.75 * p.backoff_s(0) && j < 1.25 * p.backoff_s(0));
    /// ```
    pub fn jittered_backoff_s(&self, seed: u64, attempt: u32) -> f64 {
        let u = unit_draw(seed, SALT_RETRY_JITTER, u64::from(attempt), 0);
        (self.backoff_s(attempt) * (0.75 + 0.5 * u)).min(self.max_backoff_s)
    }

    /// Total modeled wait if every retry is consumed. Once the per-try
    /// wait reaches the cap the remaining terms are all `max_backoff_s`,
    /// so the sum closes in constant extra work even for huge
    /// `max_retries`.
    pub fn worst_case_backoff_s(&self) -> f64 {
        let mut total = 0.0;
        for a in 0..self.max_retries {
            let b = self.backoff_s(a);
            if b >= self.max_backoff_s {
                return total + f64::from(self.max_retries - a) * self.max_backoff_s;
            }
            total += b;
        }
        total
    }

    /// Drives `op` under this policy: the closure receives the 0-based
    /// attempt number; *recoverable* failures (see
    /// [`SimError::is_recoverable`]) are retried up to `max_retries`
    /// times. On exhaustion — or on the first non-recoverable failure —
    /// the **last underlying error** is returned verbatim, never a
    /// generic retry-failure wrapper, so callers keep the variant and
    /// its payload for diagnosis.
    pub fn run<T>(&self, mut op: impl FnMut(u32) -> Result<T, SimError>) -> Result<T, SimError> {
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if e.is_recoverable() && attempt < self.max_retries => attempt += 1,
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            max_backoff_s: 8e-3,
        };
        assert_eq!(p.backoff_s(0), 1e-3);
        assert_eq!(p.backoff_s(1), 2e-3);
        assert_eq!(p.backoff_s(2), 4e-3);
        assert_eq!(p.backoff_s(3), 8e-3);
        assert_eq!(p.backoff_s(4), 8e-3, "cap holds");
        assert_eq!(p.backoff_s(63), 8e-3, "huge attempts stay finite");
    }

    #[test]
    fn backoff_cannot_overflow_at_extreme_attempt_counts() {
        // Regression: the geometric term must clamp to the cap instead
        // of overflowing to inf (or wrapping through a truncated
        // exponent) at high attempt counts.
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff_s: 1.0,
            multiplier: 10.0,
            max_backoff_s: 30.0,
        };
        for attempt in [64, 1_000, 1_000_000, u32::MAX] {
            let b = p.backoff_s(attempt);
            assert!(b.is_finite(), "attempt {attempt} must stay finite");
            assert_eq!(b, 30.0, "attempt {attempt} clamps to the cap");
        }
        // Even a multiplier whose square alone overflows f64.
        let huge = RetryPolicy {
            multiplier: 1e308,
            ..p
        };
        assert_eq!(huge.backoff_s(2), 30.0);
        assert_eq!(huge.backoff_s(u32::MAX), 30.0);
    }

    #[test]
    fn worst_case_sums_every_attempt() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_s: 1.0,
            multiplier: 2.0,
            max_backoff_s: 100.0,
        };
        assert_eq!(p.worst_case_backoff_s(), 1.0 + 2.0 + 4.0);
    }

    #[test]
    fn worst_case_is_cheap_and_finite_even_for_huge_retry_budgets() {
        let p = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            max_backoff_s: 1.0,
        };
        let w = p.worst_case_backoff_s();
        assert!(w.is_finite());
        assert!(w >= f64::from(u32::MAX - 64));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_decorrelated() {
        let p = RetryPolicy::default();
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            for attempt in 0..8 {
                let a = p.jittered_backoff_s(seed, attempt);
                let b = p.jittered_backoff_s(seed, attempt);
                assert_eq!(a.to_bits(), b.to_bits(), "replay must be bit-exact");
                let nominal = p.backoff_s(attempt);
                assert!(
                    a >= 0.75 * nominal && a <= 1.25 * nominal,
                    "{a} vs {nominal}"
                );
                assert!(a <= p.max_backoff_s, "jitter must respect the cap");
            }
        }
        // Two sites (different seeds) must not wait in lockstep.
        let waves_a: Vec<u64> = (0..16)
            .map(|a| p.jittered_backoff_s(1, a).to_bits())
            .collect();
        let waves_b: Vec<u64> = (0..16)
            .map(|a| p.jittered_backoff_s(2, a).to_bits())
            .collect();
        assert_ne!(waves_a, waves_b, "seeds must decorrelate retry waves");
        // And successive attempts of one site are not a constant scale
        // of the nominal curve (the jitter actually varies).
        let f0 = p.jittered_backoff_s(5, 0) / p.backoff_s(0);
        assert!(
            (1..8).any(|a| (p.jittered_backoff_s(5, a) / p.backoff_s(a) - f0).abs() > 1e-3),
            "jitter factor must vary across attempts"
        );
    }

    #[test]
    fn exhaustion_returns_the_last_underlying_error() {
        // Regression: exhausting the retry budget must surface the final
        // attempt's actual error, not a generic failure.
        let p = RetryPolicy {
            max_retries: 2,
            ..RetryPolicy::default()
        };
        let result: Result<(), _> = p.run(|attempt| {
            Err(match attempt {
                0 => SimError::WorkerLost { dispatch: "first" },
                1 => SimError::WorkerLost { dispatch: "second" },
                _ => SimError::ChunkCorrupt {
                    chunk: 42,
                    attempts: attempt + 1,
                },
            })
        });
        match result {
            Err(SimError::ChunkCorrupt {
                chunk: 42,
                attempts: 3,
            }) => {}
            other => panic!("expected the final ChunkCorrupt, got {other:?}"),
        }
    }

    #[test]
    fn run_retries_recoverable_then_succeeds() {
        let p = RetryPolicy::default();
        let got = p
            .run(|attempt| {
                if attempt < 2 {
                    Err(SimError::WorkerLost { dispatch: "w" })
                } else {
                    Ok(attempt)
                }
            })
            .unwrap();
        assert_eq!(got, 2);
    }

    #[test]
    fn run_does_not_retry_unrecoverable_errors() {
        let p = RetryPolicy::default();
        let mut calls = 0;
        let result: Result<(), _> = p.run(|_| {
            calls += 1;
            Err(SimError::Fatal {
                gate: 7,
                reason: "injected".into(),
            })
        });
        assert_eq!(calls, 1, "a fatal error must not consume retries");
        assert!(matches!(result, Err(SimError::Fatal { gate: 7, .. })));
    }
}
