//! Bounded retry with exponential backoff.

use serde::{Deserialize, Serialize};

/// Retry policy for integrity failures: up to `max_retries` re-attempts,
/// waiting `base_backoff_s * multiplier^attempt` (capped) before each.
///
/// Backoff is expressed in *modeled* seconds: the engine charges each
/// wait to the device timeline, so injected faults visibly cost modeled
/// time and show up in the trace — a retry storm is diagnosable from the
/// same Perfetto view as any other stall.
///
/// # Examples
///
/// ```
/// use qgpu_faults::RetryPolicy;
///
/// let p = RetryPolicy::default();
/// assert_eq!(p.backoff_s(1), 2.0 * p.backoff_s(0));
/// assert!(p.backoff_s(30) <= p.max_backoff_s);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Re-attempts after the first failure before giving up.
    pub max_retries: u32,
    /// Wait before the first retry, in modeled seconds.
    pub base_backoff_s: f64,
    /// Multiplier applied per further attempt.
    pub multiplier: f64,
    /// Ceiling on any single wait.
    pub max_backoff_s: f64,
}

impl Default for RetryPolicy {
    /// 4 retries starting at 50 µs, doubling, capped at 10 ms — sized to
    /// a PCIe re-transfer (~1 ms for a 2 MB chunk at 12 GB/s): the first
    /// backoff is cheap against the transfer it guards, and four doublings
    /// outlast any plausible transient.
    fn default() -> Self {
        RetryPolicy {
            max_retries: 4,
            base_backoff_s: 50e-6,
            multiplier: 2.0,
            max_backoff_s: 10e-3,
        }
    }
}

impl RetryPolicy {
    /// The wait before retry `attempt` (0-based), in modeled seconds.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let raw = self.base_backoff_s * self.multiplier.powi(attempt.min(63) as i32);
        raw.min(self.max_backoff_s)
    }

    /// Total modeled wait if every retry is consumed.
    pub fn worst_case_backoff_s(&self) -> f64 {
        (0..self.max_retries).map(|a| self.backoff_s(a)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_then_caps() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff_s: 1e-3,
            multiplier: 2.0,
            max_backoff_s: 8e-3,
        };
        assert_eq!(p.backoff_s(0), 1e-3);
        assert_eq!(p.backoff_s(1), 2e-3);
        assert_eq!(p.backoff_s(2), 4e-3);
        assert_eq!(p.backoff_s(3), 8e-3);
        assert_eq!(p.backoff_s(4), 8e-3, "cap holds");
        assert_eq!(p.backoff_s(63), 8e-3, "huge attempts stay finite");
    }

    #[test]
    fn worst_case_sums_every_attempt() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff_s: 1.0,
            multiplier: 2.0,
            max_backoff_s: 100.0,
        };
        assert_eq!(p.worst_case_backoff_s(), 1.0 + 2.0 + 4.0);
    }
}
