//! The workspace-wide typed error hierarchy.

use std::fmt;
use std::io;

/// Everything that can go wrong in a simulation run.
///
/// The pipeline's contract is that any fault the injector can produce —
/// and the real-world failures it stands in for — surfaces as one of
/// these variants instead of a panic, so callers decide between retry,
/// degradation, checkpoint-resume, or reporting the failure upward.
#[derive(Debug)]
pub enum SimError {
    /// A chunk arrived with a CRC mismatch and exhausted its retries.
    ChunkCorrupt {
        /// The chunk index within the state partition.
        chunk: usize,
        /// Retry attempts performed before giving up.
        attempts: u32,
    },
    /// The GFC codec failed on a chunk and no fallback was possible.
    Codec {
        /// The chunk index, when known (`usize::MAX` for non-chunk data).
        chunk: usize,
        /// The codec's diagnosis.
        reason: String,
    },
    /// A worker thread died (panicked) while applying a dispatch.
    WorkerLost {
        /// What the pool was doing (e.g. `"apply_local_run"`).
        dispatch: &'static str,
    },
    /// A pipeline stage exceeded its modeled deadline.
    StageTimeout {
        /// Stage label (e.g. `"h2d"`, `"compress"`).
        stage: &'static str,
        /// The index of the chunk being processed.
        chunk: usize,
    },
    /// The injector (or environment) declared a fatal, unrecoverable
    /// fault; the run should be resumed from its last checkpoint.
    Fatal {
        /// The program-op index the fault struck at.
        gate: usize,
        /// Description of the fault.
        reason: String,
    },
    /// A device was lost and no survivors remain to re-shard onto; the
    /// run cannot continue and should be resumed on a fresh fleet.
    AllDevicesLost {
        /// The last device to drop out.
        device: usize,
    },
    /// Checkpoint save/load failed.
    Checkpoint(String),
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The run was cooperatively cancelled at a gate boundary (the
    /// caller tripped a [`crate::CancelToken`]).
    JobAborted {
        /// The program-op index the run stopped at.
        op: usize,
    },
    /// The run's wall-clock deadline passed; the reaper tripped its
    /// token and the pipeline stopped at the next gate boundary.
    DeadlineExceeded {
        /// The program-op index the run stopped at.
        op: usize,
    },
    /// An ABFT invariant check caught silent data corruption in kernel
    /// output and bounded re-execution could not restore it — the
    /// hardware is lying persistently. Recoverable at the job level: a
    /// re-run placed on a different device can succeed.
    InvariantViolation {
        /// The program-op index whose kernel output violated the invariant.
        gate: usize,
        /// The chunk index the violation was localized to.
        chunk: usize,
    },
}

impl SimError {
    /// Whether a retry with the same physics seed (and a fresh machine)
    /// can plausibly succeed: transient machine faults are recoverable,
    /// caller decisions (cancellation, deadline) and data-level failures
    /// are not. Job-level re-execution policies key off this.
    pub fn is_recoverable(&self) -> bool {
        matches!(
            self,
            SimError::ChunkCorrupt { .. }
                | SimError::WorkerLost { .. }
                | SimError::StageTimeout { .. }
                | SimError::AllDevicesLost { .. }
                | SimError::InvariantViolation { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ChunkCorrupt { chunk, attempts } => write!(
                f,
                "chunk {chunk} failed integrity verification after {attempts} attempts"
            ),
            SimError::Codec { chunk, reason } if *chunk == usize::MAX => {
                write!(f, "codec failure: {reason}")
            }
            SimError::Codec { chunk, reason } => {
                write!(f, "codec failure on chunk {chunk}: {reason}")
            }
            SimError::WorkerLost { dispatch } => {
                write!(f, "worker thread lost during {dispatch}")
            }
            SimError::StageTimeout { stage, chunk } => {
                write!(f, "stage '{stage}' timed out on chunk {chunk}")
            }
            SimError::Fatal { gate, reason } => {
                write!(f, "fatal fault at gate {gate}: {reason}")
            }
            SimError::AllDevicesLost { device } => {
                write!(f, "device {device} lost with no survivors to re-shard onto")
            }
            SimError::Checkpoint(m) => write!(f, "checkpoint error: {m}"),
            SimError::Io(e) => write!(f, "i/o error: {e}"),
            SimError::JobAborted { op } => {
                write!(f, "job cancelled at gate boundary {op}")
            }
            SimError::DeadlineExceeded { op } => {
                write!(f, "deadline exceeded; run stopped at gate boundary {op}")
            }
            SimError::InvariantViolation { gate, chunk } => write!(
                f,
                "invariant violation at gate {gate} chunk {chunk} persisted through re-execution"
            ),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SimError {
    fn from(e: io::Error) -> Self {
        SimError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SimError::ChunkCorrupt {
            chunk: 12,
            attempts: 4,
        };
        assert!(e.to_string().contains("chunk 12"));
        assert!(e.to_string().contains("4 attempts"));
        let e = SimError::Codec {
            chunk: usize::MAX,
            reason: "payload truncated".into(),
        };
        assert!(!e.to_string().contains("chunk"), "{e}");
        let e = SimError::WorkerLost {
            dispatch: "apply_local_run",
        };
        assert!(e.to_string().contains("apply_local_run"));
    }

    #[test]
    fn recoverability_separates_machine_faults_from_decisions() {
        assert!(SimError::WorkerLost { dispatch: "x" }.is_recoverable());
        assert!(SimError::ChunkCorrupt {
            chunk: 0,
            attempts: 5
        }
        .is_recoverable());
        assert!(SimError::AllDevicesLost { device: 1 }.is_recoverable());
        assert!(
            SimError::InvariantViolation { gate: 4, chunk: 2 }.is_recoverable(),
            "a different device can re-run the job successfully"
        );
        assert!(!SimError::JobAborted { op: 3 }.is_recoverable());
        assert!(!SimError::DeadlineExceeded { op: 3 }.is_recoverable());
        assert!(!SimError::Fatal {
            gate: 0,
            reason: "x".into()
        }
        .is_recoverable());
    }

    #[test]
    fn abort_variants_display_the_op() {
        assert!(SimError::JobAborted { op: 17 }.to_string().contains("17"));
        assert!(SimError::DeadlineExceeded { op: 9 }
            .to_string()
            .contains("deadline"));
        let e = SimError::InvariantViolation { gate: 11, chunk: 5 };
        assert!(e.to_string().contains("gate 11"));
        assert!(e.to_string().contains("chunk 5"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: SimError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, SimError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }
}
