//! Cooperative cancellation for in-flight runs.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! caller (or a serving layer's reaper) and the pipeline. The pipeline
//! polls it at every gate boundary — the only point where stopping is
//! clean: no chunk is mid-transfer, the functional state is consistent,
//! and partial stage timings can still be flushed. Tripping is
//! one-shot: the *first* reason wins, so a deadline that fires while a
//! user cancellation is in flight reports exactly one terminal cause.
//!
//! For deterministic tests the token can also be armed to trip at a
//! specific op index ([`CancelToken::cancelled_at`]) — the cooperative
//! analogue of `FaultConfig::fail_at_gate`.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use crate::SimError;

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;
const EVICTED: u8 = 3;

/// Why a token tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The caller asked for the run to stop.
    Cancelled,
    /// The run's wall-clock deadline passed.
    Deadline,
    /// The run's device was lost under it; the job should be re-run
    /// elsewhere (this reason maps to a *recoverable* error).
    Evicted,
}

struct Inner {
    reason: AtomicU8,
    /// Gate-boundary index at which the token trips itself
    /// (`u64::MAX` = never); used for deterministic mid-run
    /// cancellation in tests.
    trip_at_op: AtomicU64,
}

/// A shared, one-shot cancellation token polled at gate boundaries.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A live token that never trips on its own.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                reason: AtomicU8::new(LIVE),
                trip_at_op: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// A token that cancels itself at gate boundary `op` — deterministic
    /// mid-run cancellation for tests and chaos harnesses.
    pub fn cancelled_at(op: u64) -> Self {
        let t = CancelToken::new();
        t.inner.trip_at_op.store(op, Ordering::Relaxed);
        t
    }

    fn trip(&self, reason: u8) -> bool {
        self.inner
            .reason
            .compare_exchange(LIVE, reason, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Requests cancellation. Returns `true` if this call tripped the
    /// token (false if it was already tripped for any reason).
    pub fn cancel(&self) -> bool {
        self.trip(CANCELLED)
    }

    /// Marks the deadline as passed.
    pub fn expire(&self) -> bool {
        self.trip(DEADLINE)
    }

    /// Marks the run as evicted (device lost under it).
    pub fn evict(&self) -> bool {
        self.trip(EVICTED)
    }

    /// The trip reason, if any.
    pub fn reason(&self) -> Option<CancelReason> {
        match self.inner.reason.load(Ordering::Acquire) {
            CANCELLED => Some(CancelReason::Cancelled),
            DEADLINE => Some(CancelReason::Deadline),
            EVICTED => Some(CancelReason::Evicted),
            _ => None,
        }
    }

    /// Whether the token has tripped for any reason.
    pub fn is_tripped(&self) -> bool {
        self.reason().is_some()
    }

    /// The pipeline's gate-boundary poll: returns the error to abort
    /// with, or `None` to keep running. A token armed via
    /// [`CancelToken::cancelled_at`] trips itself here once `op`
    /// reaches its threshold.
    pub fn poll_abort(&self, op: usize) -> Option<SimError> {
        if op as u64 >= self.inner.trip_at_op.load(Ordering::Relaxed) {
            self.trip(CANCELLED);
        }
        match self.reason()? {
            CancelReason::Cancelled => Some(SimError::JobAborted { op }),
            CancelReason::Deadline => Some(SimError::DeadlineExceeded { op }),
            CancelReason::Evicted => Some(SimError::WorkerLost {
                dispatch: "device-evicted",
            }),
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("reason", &self.reason())
            .finish()
    }
}

/// Tokens compare by identity: two handles are equal iff they control
/// the same run. (Keeps `SimConfig`'s derived `PartialEq` meaningful.)
impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_reason_wins() {
        let t = CancelToken::new();
        assert!(!t.is_tripped());
        assert!(t.expire());
        assert!(!t.cancel(), "second trip is a no-op");
        assert_eq!(t.reason(), Some(CancelReason::Deadline));
        assert!(matches!(
            t.poll_abort(5),
            Some(SimError::DeadlineExceeded { op: 5 })
        ));
    }

    #[test]
    fn clones_share_the_trip() {
        let t = CancelToken::new();
        let u = t.clone();
        assert_eq!(t, u);
        assert_ne!(t, CancelToken::new());
        u.cancel();
        assert!(matches!(
            t.poll_abort(0),
            Some(SimError::JobAborted { op: 0 })
        ));
    }

    #[test]
    fn armed_token_trips_at_its_op() {
        let t = CancelToken::cancelled_at(3);
        assert!(t.poll_abort(0).is_none());
        assert!(t.poll_abort(2).is_none());
        assert!(matches!(
            t.poll_abort(3),
            Some(SimError::JobAborted { op: 3 })
        ));
        assert!(t.is_tripped());
    }

    #[test]
    fn eviction_maps_to_a_recoverable_error() {
        let t = CancelToken::new();
        t.evict();
        let err = t.poll_abort(1).unwrap();
        assert!(err.is_recoverable());
    }
}
