//! Fault model for the Q-GPU pipeline.
//!
//! A 34-qubit run streams millions of chunks through transfer, prune and
//! GFC compress/decompress stages for hours; assuming a perfect machine
//! for that long is wishful thinking. This crate supplies the pieces the
//! rest of the workspace uses to *survive* an imperfect one:
//!
//! * [`SimError`] — the workspace-wide typed error hierarchy. Every path
//!   a fault can reach propagates one of these instead of panicking.
//! * [`crc32()`] — the CRC32 (IEEE 802.3) checksum that chunk transfers
//!   and checkpoint segments carry for integrity verification.
//! * [`FaultInjector`] — a deterministic, seeded injector with per-stage
//!   probabilities (transfer corruption, codec failure, stage slowdown,
//!   worker death). Decisions are pure functions of `(seed, site,
//!   index)`, so a run with a given seed injects *exactly* the same
//!   faults no matter the thread count or pipeline interleaving — which
//!   is what makes fault-injection tests reproducible.
//! * [`RetryPolicy`] — bounded retry with exponential backoff (plus
//!   deterministic seeded jitter), expressed in modeled seconds so the
//!   device timeline can charge retries visibly.
//! * [`invariant`] — ABFT invariant taxonomy, tolerance policy, and the
//!   [`IntegritySummary`] tally behind the silent-data-corruption
//!   defense: CRCs only guard *transfers*, so kernel-output corruption
//!   needs algebraic checks (norm/magnitude/zero-block preservation).
//! * [`CancelToken`] — a shared, one-shot cancellation token the
//!   pipeline polls at gate boundaries, so callers (and serving-layer
//!   reapers) can stop a run cleanly mid-circuit.
//!
//! # Examples
//!
//! ```
//! use qgpu_faults::{FaultConfig, FaultInjector, FaultSite, RetryPolicy};
//!
//! let inj = FaultInjector::new(FaultConfig {
//!     seed: 7,
//!     p_transfer_corrupt: 0.5,
//!     ..FaultConfig::default()
//! });
//! // Deterministic: the same (site, index) always decides the same way.
//! let a = inj.fires(FaultSite::TransferCorrupt, 42);
//! let b = inj.fires(FaultSite::TransferCorrupt, 42);
//! assert_eq!(a, b);
//!
//! let policy = RetryPolicy::default();
//! assert!(policy.backoff_s(2) > policy.backoff_s(1));
//! ```

pub mod cancel;
pub mod crc32;
pub mod error;
pub mod inject;
pub mod invariant;
pub mod retry;

pub use cancel::{CancelReason, CancelToken};
pub use crc32::{crc32, fast_checksum, Crc32};
pub use error::SimError;
pub use inject::{FaultConfig, FaultInjector, FaultSite};
pub use invariant::{IntegritySummary, InvariantKind, Tolerance};
pub use retry::RetryPolicy;
