//! ABFT invariants for chunked state-vector simulation.
//!
//! State-vector simulation has unusually strong algebraic invariants,
//! which makes silent data corruption (a bit flip inside a kernel, a
//! miscompiled SIMD lane, a flaky device) *detectable online* at a
//! fraction of the cost of full duplication:
//!
//! - every unitary gate preserves the 2-norm of the state, and a gate
//!   whose mixing qubits are chunk-local preserves the 2-norm of **each
//!   chunk independently** ([`InvariantKind::ChunkNorm`]);
//! - a high-mixing gate moves amplitude only *within* its chunk group,
//!   so the summed norm over the group is preserved
//!   ([`InvariantKind::GroupNorm`]);
//! - a diagonal kernel multiplies every amplitude by a unit phase, so
//!   per-amplitude magnitudes — and hence the per-chunk peak |a|² —
//!   are preserved exactly up to rounding ([`InvariantKind::Magnitude`]);
//! - a chunk the involvement tracker prunes must hold exactly zero
//!   amplitude ([`InvariantKind::ZeroBlock`]);
//! - the whole state must have norm 1 before any Measure/Sample
//!   consumes it ([`InvariantKind::WholeState`]).
//!
//! This module holds the *policy* — the invariant taxonomy, the
//! tolerance model scaled by precision and work size, and the
//! serializable [`IntegritySummary`] a run reports — while the engine
//! crate owns the mechanism (the `IntegrityMw` pipeline middleware that
//! maintains per-chunk norm tables and drives repair).

use serde::{Deserialize, Serialize};

/// Which algebraic invariant a check exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InvariantKind {
    /// A chunk-local unitary preserved the chunk's squared 2-norm.
    ChunkNorm,
    /// A high-mixing unitary preserved the summed norm of its chunk group.
    GroupNorm,
    /// A diagonal kernel preserved the chunk's peak per-amplitude |a|².
    Magnitude,
    /// A pruned chunk stayed exactly zero.
    ZeroBlock,
    /// The whole state has unit norm at a Measure/Sample boundary.
    WholeState,
}

impl InvariantKind {
    /// Stable label used in metrics, flight events, and logs.
    pub fn label(self) -> &'static str {
        match self {
            InvariantKind::ChunkNorm => "chunk_norm",
            InvariantKind::GroupNorm => "group_norm",
            InvariantKind::Magnitude => "magnitude",
            InvariantKind::ZeroBlock => "zero_block",
            InvariantKind::WholeState => "whole_state",
        }
    }
}

/// Tolerance policy for one invariant comparison.
///
/// Scaled by precision (`f64::EPSILON`) and by how much rounding the
/// guarded computation can legitimately accumulate — the number of
/// fused member gates replayed and the log of the reduction size — so
/// the checks hold under any legal thread/device/chunk-size reorder
/// while still catching any exponent-bit flip and most mantissa flips
/// in non-negligible amplitudes.
///
/// # Examples
///
/// ```
/// use qgpu_faults::invariant::Tolerance;
///
/// let tol = Tolerance::per_gate(1 << 16, 1);
/// assert!(tol.within(1.0, 1.0 + 1e-14));
/// assert!(!tol.within(1.0, 1.25)); // a flipped exponent bit is loud
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Allowed relative deviation, in units of the larger magnitude.
    pub rel: f64,
    /// Absolute floor below which values count as zero.
    pub abs: f64,
}

impl Tolerance {
    /// Tolerance for a per-gate chunk/group norm comparison over `work`
    /// amplitudes, where the kernel replays `member_gates` fused gates.
    ///
    /// Each member gate perturbs an amplitude by a few ulps; the
    /// compensated norm reduction adds ~1 ulp more. The budget is a
    /// generous constant times that bound, far above legitimate
    /// rounding and far below any detectable corruption.
    pub fn per_gate(work: usize, member_gates: usize) -> Tolerance {
        let bits = (work.max(2) as f64).log2();
        let gates = member_gates.max(1) as f64;
        let rel = 64.0 * f64::EPSILON * gates * bits;
        Tolerance {
            rel,
            // Absolute floor: a "preserved" norm this small is zero for
            // all purposes (a dense chunk of pure rounding dust).
            abs: f64::EPSILON * f64::EPSILON,
        }
    }

    /// Tolerance for the whole-state norm gate over `total_amps`
    /// amplitudes after `gates` checked gates: rounding drift grows at
    /// most linearly in gate count, so the budget does too.
    pub fn whole_state(total_amps: usize, gates: u64) -> Tolerance {
        let bits = (total_amps.max(2) as f64).log2();
        let rel = 32.0 * f64::EPSILON * bits * (gates.saturating_add(1)) as f64;
        Tolerance {
            rel,
            abs: f64::EPSILON * f64::EPSILON,
        }
    }

    /// Whether `after` is an acceptable post-kernel value for a
    /// quantity whose exact mathematics preserves `before`.
    pub fn within(&self, before: f64, after: f64) -> bool {
        let scale = before.abs().max(after.abs());
        if scale <= self.abs {
            return true;
        }
        (after - before).abs() <= self.rel * scale
    }
}

/// Serializable tally of one run's integrity activity, attached to the
/// engine's `RunResult` so callers (the serve layer, the load driver,
/// tests) can audit what the defense layer saw and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegritySummary {
    /// Invariant comparisons performed.
    pub checks: u64,
    /// Comparisons that failed (before any repair).
    pub violations: u64,
    /// Gates re-executed on the same device after a first violation.
    pub reexec_same_device: u64,
    /// Gates escalated to re-execution on a different device
    /// (dual-run vote) after a repeated violation.
    pub reexec_cross_device: u64,
    /// Violated gates whose re-execution restored the invariant.
    pub repairs: u64,
    /// Kernel bit-flips the injector actually fired (ground truth the
    /// detection tests compare `violations` against).
    pub flips_injected: u64,
    /// Devices the engine-side health board quarantined during the run.
    pub quarantines: u64,
}

impl IntegritySummary {
    /// True when no invariant ever tripped.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }

    /// True when every violation was repaired in place — the run's
    /// output is trustworthy despite injected or real corruption.
    pub fn fully_repaired(&self) -> bool {
        self.violations == 0 || self.repairs > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_distinct() {
        let kinds = [
            InvariantKind::ChunkNorm,
            InvariantKind::GroupNorm,
            InvariantKind::Magnitude,
            InvariantKind::ZeroBlock,
            InvariantKind::WholeState,
        ];
        let labels: Vec<&str> = kinds.iter().map(|k| k.label()).collect();
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
        assert_eq!(InvariantKind::ChunkNorm.label(), "chunk_norm");
    }

    #[test]
    fn per_gate_tolerance_admits_rounding_rejects_corruption() {
        let tol = Tolerance::per_gate(1 << 19, 4);
        // Legitimate rounding: a few hundred ulps of drift.
        assert!(tol.within(0.25, 0.25 * (1.0 + 1e-12)));
        // Corruption: an exponent-bit flip doubles (or worse) a
        // dominant amplitude's contribution.
        assert!(!tol.within(0.25, 0.5));
        assert!(!tol.within(0.25, 0.0));
        // Zero-norm chunks stay acceptable as exactly zero.
        assert!(tol.within(0.0, 0.0));
    }

    #[test]
    fn tolerance_scales_with_gate_count_and_work() {
        let small = Tolerance::per_gate(1 << 10, 1);
        let fused = Tolerance::per_gate(1 << 10, 8);
        let big = Tolerance::per_gate(1 << 24, 1);
        assert!(fused.rel > small.rel, "fused kernels earn more budget");
        assert!(big.rel > small.rel, "bigger reductions earn more budget");
        let early = Tolerance::whole_state(1 << 20, 1);
        let late = Tolerance::whole_state(1 << 20, 10_000);
        assert!(late.rel > early.rel, "drift budget grows with gate count");
        // Even a 10k-gate whole-state budget stays far below an
        // exponent flip's signature.
        assert!(!late.within(1.0, 1.0 + 1e-3));
    }

    #[test]
    fn tiny_scales_count_as_zero() {
        let tol = Tolerance::per_gate(4096, 1);
        // Both sides beneath the absolute floor: equal as zero, even
        // though their relative difference is huge.
        assert!(tol.within(1e-300, 3e-300));
        assert!(!tol.within(1e-300, 1e-3));
    }

    #[test]
    fn summary_classifies_runs() {
        let mut s = IntegritySummary::default();
        assert!(s.clean() && s.fully_repaired());
        s.checks = 100;
        s.violations = 2;
        assert!(!s.clean() && !s.fully_repaired());
        s.repairs = 2;
        s.reexec_same_device = 1;
        s.reexec_cross_device = 1;
        assert!(s.fully_repaired());
        let copy = s;
        assert_eq!(copy, s, "summary is a plain copyable tally");
    }
}
