//! Platform descriptions: a host, one or more GPUs, and their links.

use serde::{Deserialize, Serialize};

use crate::specs::{GpuSpec, HostSpec, LinkSpec};

/// A heterogeneous node: the execution platform of one experiment.
///
/// Presets mirror the paper's test machines; [`Platform::scaled_paper_p100`]
/// shrinks the GPU memory so that laptop-size state vectors reproduce the
/// paper's GPU-memory-to-state ratio (496 of 8192 chunks resident — the
/// P100 at 34 qubits, §III-B).
///
/// # Examples
///
/// ```
/// use qgpu_device::Platform;
///
/// let p = Platform::paper_p100();
/// assert_eq!(p.num_gpus(), 1);
/// assert!(p.gpu(0).mem_bytes >= 16 << 30);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// Platform label used in reports.
    pub name: String,
    /// The host CPU.
    pub host: HostSpec,
    /// The GPUs (at least one).
    pub gpus: Vec<GpuSpec>,
    /// CPU↔GPU link per GPU (same length as `gpus`).
    pub links: Vec<LinkSpec>,
    /// Optional GPU↔GPU peer link (e.g. NVLink). Streaming execution
    /// moves chunks through host memory, so this is informational: the
    /// paper's §V-E finds cross-GPU movement "limited and does not
    /// dominate the execution time".
    pub peer_link: Option<LinkSpec>,
}

impl Platform {
    /// Builds a single-GPU platform.
    pub fn single(name: impl Into<String>, host: HostSpec, gpu: GpuSpec, link: LinkSpec) -> Self {
        Platform {
            name: name.into(),
            host,
            gpus: vec![gpu],
            links: vec![link],
            peer_link: None,
        }
    }

    /// The paper's main platform: dual Xeon 4114 + P100 over PCIe 3.0.
    pub fn paper_p100() -> Self {
        Platform::single(
            "P100/PCIe3",
            HostSpec::dual_xeon_4114(),
            GpuSpec::p100(),
            LinkSpec::pcie3_x16(),
        )
    }

    /// §V-D platform: 8-core Xeon 6133 + 32 GB V100.
    pub fn paper_v100() -> Self {
        Platform::single(
            "V100/PCIe3",
            HostSpec::xeon_6133_8c(),
            GpuSpec::v100_32gb(),
            LinkSpec::pcie3_x16(),
        )
    }

    /// §V-D platform: 12 vCPU + 40 GB A100.
    pub fn paper_a100() -> Self {
        Platform::single(
            "A100/PCIe4",
            HostSpec::vcpu_12(),
            GpuSpec::a100_40gb(),
            LinkSpec::pcie4_x16(),
        )
    }

    /// §V-E server-1: 32-core host + 4 × P4 over PCIe 3.0.
    pub fn quad_p4_pcie() -> Self {
        Platform {
            name: "4xP4/PCIe3".into(),
            host: HostSpec::multi_gpu_host(),
            gpus: vec![GpuSpec::p4(); 4],
            links: vec![LinkSpec::pcie3_x16(); 4],
            peer_link: None,
        }
    }

    /// §V-E server-2: 32-core host + 4 × V100 with NVLink between the
    /// GPUs. The CPU↔GPU links are still PCIe — NVLink connects peers —
    /// which is why the paper finds "the majority of the data movement is
    /// between CPU and GPUs" and both servers speed up almost identically.
    pub fn quad_v100_nvlink() -> Self {
        Platform {
            name: "4xV100/NVLink".into(),
            host: HostSpec::multi_gpu_host(),
            gpus: vec![GpuSpec::v100_16gb(); 4],
            links: vec![LinkSpec::pcie3_x16(); 4],
            peer_link: Some(LinkSpec::nvlink2()),
        }
    }

    /// The reference size all miniaturized platforms scale from — the
    /// largest circuit the paper runs (34 qubits).
    pub const PAPER_QUBITS: usize = 34;

    /// The paper's P100 platform miniaturized to `num_qubits`: GPU memory
    /// holds the paper's 34-qubit residency ratio (`496/8192` of the
    /// state, §III-B) and all fixed latencies shrink with the state.
    pub fn scaled_paper_p100(num_qubits: usize) -> Self {
        let mut p = Platform::paper_p100().miniaturize(num_qubits, 496.0 / 8192.0);
        p.name = format!("P100-scaled/{num_qubits}q");
        p
    }

    /// Miniaturizes the platform for a `num_qubits`-qubit experiment:
    ///
    /// * every GPU's memory is set to `mem_fraction` of the state vector;
    /// * every fixed per-operation latency (link latency, kernel launch,
    ///   per-gate synchronization) shrinks by `2^(34 - num_qubits)`.
    ///
    /// Scaling the latencies together with the state keeps the model in
    /// the same bandwidth-dominated regime as the paper's 32 MB chunks;
    /// without it, microsecond overheads would swamp microsecond-scale
    /// miniature transfers and distort every ratio.
    pub fn miniaturize(mut self, num_qubits: usize, mem_fraction: f64) -> Self {
        self = self.with_gpu_mem_fraction(num_qubits, mem_fraction);
        let shrink = if num_qubits < Self::PAPER_QUBITS {
            (1u64 << (Self::PAPER_QUBITS - num_qubits)) as f64
        } else {
            1.0
        };
        self.host.sync_latency /= shrink;
        for g in &mut self.gpus {
            g.kernel_launch /= shrink;
        }
        for l in &mut self.links {
            l.latency /= shrink;
        }
        self
    }

    /// A platform variant with every GPU's memory set to hold the given
    /// fraction of a `num_qubits`-qubit state vector.
    pub fn with_gpu_mem_fraction(mut self, num_qubits: usize, fraction: f64) -> Self {
        let state_bytes = (1u64 << num_qubits) as f64 * 16.0;
        let mem = ((state_bytes * fraction) as u64).max(1 << 12);
        for g in &mut self.gpus {
            g.mem_bytes = mem;
        }
        self
    }

    /// A fleet of `n` identical devices: GPU 0 and its link replicated.
    /// The orchestration layer's fleet-size experiments and the CLI's
    /// `--devices` flag build their topologies this way.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    ///
    /// # Examples
    ///
    /// ```
    /// use qgpu_device::Platform;
    ///
    /// let fleet = Platform::paper_p100().with_devices(4);
    /// assert_eq!(fleet.num_gpus(), 4);
    /// assert_eq!(fleet.gpu(3), fleet.gpu(0));
    /// ```
    pub fn with_devices(mut self, n: usize) -> Self {
        assert!(n > 0, "a platform needs at least one device");
        self.gpus = vec![self.gpus[0].clone(); n];
        self.links = vec![self.links[0].clone(); n];
        if n > 1 {
            self.name = format!("{} x{n}", self.name);
        }
        self
    }

    /// Number of GPUs.
    pub fn num_gpus(&self) -> usize {
        self.gpus.len()
    }

    /// GPU `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn gpu(&self, i: usize) -> &GpuSpec {
        &self.gpus[i]
    }

    /// Link serving GPU `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn link(&self, i: usize) -> &LinkSpec {
        &self.links[i]
    }

    /// How many chunks of `chunk_bytes` fit in GPU `i`'s memory.
    pub fn gpu_chunk_capacity(&self, i: usize, chunk_bytes: u64) -> usize {
        if chunk_bytes == 0 {
            return 0;
        }
        (self.gpus[i].mem_bytes / chunk_bytes) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for p in [
            Platform::paper_p100(),
            Platform::paper_v100(),
            Platform::paper_a100(),
            Platform::quad_p4_pcie(),
            Platform::quad_v100_nvlink(),
        ] {
            assert_eq!(p.gpus.len(), p.links.len(), "{}", p.name);
            assert!(p.num_gpus() >= 1);
        }
    }

    #[test]
    fn scaled_platform_preserves_residency_ratio() {
        let p = Platform::scaled_paper_p100(20);
        let state_bytes = (1u64 << 20) * 16;
        let ratio = p.gpu(0).mem_bytes as f64 / state_bytes as f64;
        assert!((ratio - 496.0 / 8192.0).abs() < 0.01, "ratio = {ratio}");
    }

    #[test]
    fn chunk_capacity() {
        let p = Platform::paper_p100();
        // 16 GB GPU, 1 MB chunks.
        assert_eq!(p.gpu_chunk_capacity(0, 1 << 20), 16 * 1024);
        assert_eq!(p.gpu_chunk_capacity(0, 0), 0);
    }

    #[test]
    fn mem_fraction_override() {
        let p = Platform::paper_p100().with_gpu_mem_fraction(20, 0.25);
        assert_eq!(p.gpu(0).mem_bytes, (1 << 20) * 16 / 4);
    }

    #[test]
    fn multi_gpu_counts() {
        assert_eq!(Platform::quad_p4_pcie().num_gpus(), 4);
        assert_eq!(Platform::quad_v100_nvlink().num_gpus(), 4);
    }

    #[test]
    fn with_devices_replicates_device_zero() {
        let p = Platform::scaled_paper_p100(12).with_devices(3);
        assert_eq!(p.num_gpus(), 3);
        assert_eq!(p.gpus.len(), p.links.len());
        assert_eq!(p.gpu(2), p.gpu(0));
        assert_eq!(p.link(2), p.link(0));
        // Single-device "fleet" keeps the original name.
        let one = Platform::paper_p100().with_devices(1);
        assert_eq!(one.name, Platform::paper_p100().name);
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn with_devices_rejects_zero() {
        let _ = Platform::paper_p100().with_devices(0);
    }
}
