//! Roofline analysis (paper §V-B, Figure 15).
//!
//! The roofline model bounds achievable FLOP/s by
//! `min(peak_flops, arithmetic_intensity × memory_bandwidth)`. State-vector
//! simulation sits far left of the ridge point (≈ 0.9 FLOP/byte for a
//! dense single-qubit gate), which is why the paper finds QCS memory-bound
//! on every GPU.

use serde::{Deserialize, Serialize};

use crate::specs::GpuSpec;

/// A point on the roofline plot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Arithmetic intensity in FLOP/byte.
    pub intensity: f64,
    /// Achieved FLOP/s.
    pub achieved_flops: f64,
}

impl RooflinePoint {
    /// Creates a point from raw totals.
    ///
    /// # Panics
    ///
    /// Panics if `seconds <= 0`.
    pub fn new(flops: f64, bytes: u64, seconds: f64) -> Self {
        assert!(seconds > 0.0, "execution time must be positive");
        RooflinePoint {
            intensity: if bytes == 0 {
                0.0
            } else {
                flops / bytes as f64
            },
            achieved_flops: flops / seconds,
        }
    }

    /// Fraction of the device's attainable performance this point reaches.
    pub fn efficiency(&self, gpu: &GpuSpec) -> f64 {
        let bound = attainable_flops(gpu, self.intensity);
        if bound == 0.0 {
            0.0
        } else {
            self.achieved_flops / bound
        }
    }
}

/// The attainable FLOP/s at a given arithmetic intensity.
///
/// # Examples
///
/// ```
/// use qgpu_device::{GpuSpec, roofline};
///
/// let p100 = GpuSpec::p100();
/// // At QCS-like intensity (~0.9 FLOP/byte) the bound is bandwidth-set.
/// let bound = roofline::attainable_flops(&p100, 0.9);
/// assert!(bound < p100.peak_flops);
/// ```
pub fn attainable_flops(gpu: &GpuSpec, intensity: f64) -> f64 {
    (intensity * gpu.mem_bw).min(gpu.peak_flops)
}

/// The ridge point: the intensity above which the device becomes
/// compute-bound.
pub fn ridge_intensity(gpu: &GpuSpec) -> f64 {
    gpu.peak_flops / gpu.mem_bw
}

/// Returns `true` if a workload of this intensity is memory-bound on the
/// device.
pub fn is_memory_bound(gpu: &GpuSpec, intensity: f64) -> bool {
    intensity < ridge_intensity(gpu)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qcs_is_memory_bound_on_hpc_gpus() {
        for gpu in [GpuSpec::p100(), GpuSpec::v100_16gb(), GpuSpec::a100_40gb()] {
            assert!(is_memory_bound(&gpu, 0.9), "{}", gpu.name);
        }
        // The P4's FP64 rate is a token 1/32 of FP32, so state updates are
        // (barely) compute-bound there — a real property of that card.
        assert!(!is_memory_bound(&GpuSpec::p4(), 0.9));
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let gpu = GpuSpec::p100();
        let ridge = ridge_intensity(&gpu);
        assert!(attainable_flops(&gpu, ridge * 2.0) == gpu.peak_flops);
        assert!(attainable_flops(&gpu, ridge / 2.0) < gpu.peak_flops);
    }

    #[test]
    fn point_efficiency_bounded() {
        let gpu = GpuSpec::p100();
        let p = RooflinePoint::new(1e9, 2_000_000_000, 1.0);
        let e = p.efficiency(&gpu);
        assert!(e > 0.0 && e <= 1.0);
    }

    #[test]
    fn zero_bytes_zero_intensity() {
        let p = RooflinePoint::new(10.0, 0, 1.0);
        assert_eq!(p.intensity, 0.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_time_panics() {
        let _ = RooflinePoint::new(1.0, 1, 0.0);
    }
}
