//! Discrete-event timing model of heterogeneous CPU + GPU nodes.
//!
//! # Why this crate exists
//!
//! The Q-GPU paper runs on real NVIDIA GPUs. This reproduction targets a
//! CPU-only machine, so the *hardware* is substituted by a model (see
//! `DESIGN.md`): every optimization in the paper changes **where bytes
//! move and which engines overlap**, and those effects are captured
//! exactly by a timeline with explicit engines:
//!
//! * the host CPU ([`Engine::Host`]),
//! * per-GPU compute ([`Engine::GpuCompute`]),
//! * per-GPU copy engines in each direction ([`Engine::H2d`],
//!   [`Engine::D2h`]) — the two CUDA streams of the paper's §IV-A.
//!
//! The functional simulation (crate `qgpu-statevec`) computes the *real*
//! amplitudes; the orchestrator (crate `qgpu`) walks the same chunk
//! schedule and charges each operation to this model. Absolute times are
//! calibrated from public spec sheets ([`specs`]), so the *shape* of the
//! paper's figures (who wins, crossovers) is reproduced, not the exact
//! seconds.
//!
//! # Examples
//!
//! ```
//! use qgpu_device::timeline::{Engine, TaskKind, Timeline};
//!
//! let mut tl = Timeline::new();
//! // An H2D copy followed by a dependent kernel on GPU 0.
//! let copy = tl.schedule(Engine::H2d(0), 0.0, 1e-3, TaskKind::H2dCopy, 1 << 20);
//! let kernel = tl.schedule(Engine::GpuCompute(0), copy.end, 5e-4, TaskKind::Kernel, 1 << 20);
//! assert_eq!(kernel.start, copy.end);
//! assert_eq!(tl.makespan(), copy.end + 5e-4);
//! ```

pub mod gantt;
pub mod report;
pub mod roofline;
pub mod specs;
pub mod timeline;
pub mod topology;

pub use report::ExecutionReport;
pub use specs::{CodecClass, GpuSpec, HostSpec, LinkSpec};
pub use timeline::{Engine, Span, TaskKind, Timeline};
pub use topology::Platform;
