//! Hardware specifications and calibration constants.
//!
//! Peak numbers come from vendor spec sheets; *effective* throughputs are
//! derated by an efficiency factor because state-vector update is a
//! strided streaming workload that never reaches peak bandwidth. The
//! derating constants were calibrated once against the relative numbers
//! the paper itself reports (see `EXPERIMENTS.md`):
//!
//! * baseline GPU ≈ 9–10× faster than CPU when the state fits on the GPU
//!   (paper §III-C reports 9.67× at 29 qubits);
//! * Qiskit-Aer's chunked CPU path is ≈ 2–2.5× slower than the plain
//!   OpenMP loop (implied by Figure 12: Q-GPU is 3.55× over the baseline
//!   but only 1.49× over CPU-OpenMP);
//! * PCIe 3.0 ×16 sustains ≈ 12 GB/s per direction.

use serde::{Deserialize, Serialize};

/// Which compression kernel family a modeled bandwidth applies to.
///
/// The engine maps its configured codec onto one of these classes so the
/// `Timeline` charges Compress/Decompress spans at that codec's modeled
/// throughput instead of pretending everything runs at GFC speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CodecClass {
    /// GFC warp-parallel residual coder (the paper's kernel).
    Gfc,
    /// Run-length zero/constant shortcut — a read-bound scan.
    ZeroRun,
    /// ALP-style adaptive decimal coder — exponent probing + bit packing.
    Alp,
    /// Sampling cascade — probes candidates, then runs the winner.
    Cascade,
}

/// A GPU device model.
///
/// # Examples
///
/// ```
/// use qgpu_device::GpuSpec;
///
/// let p100 = GpuSpec::p100();
/// assert_eq!(p100.mem_bytes, 16 << 30);
/// assert!(p100.update_bw() > 100e9);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuSpec {
    /// Marketing name, e.g. `"P100"`.
    pub name: String,
    /// Device memory capacity in bytes.
    pub mem_bytes: u64,
    /// Peak FP64 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Peak memory bandwidth in bytes/s.
    pub mem_bw: f64,
    /// Fraction of peak bandwidth achieved by gate-update kernels.
    pub kernel_efficiency: f64,
    /// Fraction of peak bandwidth achieved by the GFC compression kernel.
    /// The GFC paper reports 75 GB/s on a GTX 480 (177 GB/s peak), i.e.
    /// ≈ 42% of peak; the kernel is bandwidth-bound, so the fraction
    /// carries over to newer parts.
    pub compress_efficiency: f64,
    /// Fraction of peak bandwidth achieved by the zero/constant run-length
    /// scan: reads every byte once and writes almost nothing, so it runs
    /// much closer to peak than GFC's residual + prefix packing.
    /// Every stock spec uses 0.80.
    #[serde(default)]
    pub zero_run_efficiency: f64,
    /// Fraction of peak bandwidth achieved by the ALP kernel: exponent
    /// probing plus frame-of-reference bit packing costs noticeably more
    /// than GFC per byte.
    /// Every stock spec uses 0.30.
    #[serde(default)]
    pub alp_efficiency: f64,
    /// Fraction of peak bandwidth achieved by the cascade on a dense
    /// chunk: slightly below GFC because the sample probe is paid before
    /// the winning kernel runs (sparse chunks win back far more through
    /// the bytes they no longer move).
    /// Every stock spec uses 0.40.
    #[serde(default)]
    pub cascade_efficiency: f64,
    /// Per-kernel launch overhead in seconds (CUDA launch + driver
    /// queueing).
    pub kernel_launch: f64,
}

impl GpuSpec {
    /// Effective state-update throughput (bytes of amplitudes processed
    /// per second).
    pub fn update_bw(&self) -> f64 {
        self.mem_bw * self.kernel_efficiency
    }

    /// Effective GFC compression/decompression throughput in bytes/s.
    /// Identical to `codec_bw(CodecClass::Gfc)`.
    pub fn compress_bw(&self) -> f64 {
        self.mem_bw * self.compress_efficiency
    }

    /// Effective compression/decompression throughput of the given codec
    /// class in bytes/s — what the `Timeline` charges Compress and
    /// Decompress spans when a run selects a non-default codec.
    pub fn codec_bw(&self, class: CodecClass) -> f64 {
        let efficiency = match class {
            CodecClass::Gfc => self.compress_efficiency,
            CodecClass::ZeroRun => self.zero_run_efficiency,
            CodecClass::Alp => self.alp_efficiency,
            CodecClass::Cascade => self.cascade_efficiency,
        };
        self.mem_bw * efficiency
    }

    /// NVIDIA Tesla P100 (16 GB HBM2) — the paper's main platform.
    pub fn p100() -> Self {
        GpuSpec {
            name: "P100".into(),
            mem_bytes: 16 << 30,
            peak_flops: 4.7e12,
            mem_bw: 732e9,
            kernel_efficiency: 0.40,
            compress_efficiency: 0.42,
            zero_run_efficiency: 0.80,
            alp_efficiency: 0.30,
            cascade_efficiency: 0.40,
            kernel_launch: 8e-6,
        }
    }

    /// NVIDIA Tesla V100 (16 GB HBM2).
    pub fn v100_16gb() -> Self {
        GpuSpec {
            name: "V100-16GB".into(),
            mem_bytes: 16 << 30,
            peak_flops: 7.0e12,
            mem_bw: 900e9,
            kernel_efficiency: 0.40,
            compress_efficiency: 0.42,
            zero_run_efficiency: 0.80,
            alp_efficiency: 0.30,
            cascade_efficiency: 0.40,
            kernel_launch: 8e-6,
        }
    }

    /// NVIDIA Tesla V100 (32 GB HBM2) — the paper's §V-D platform.
    pub fn v100_32gb() -> Self {
        let mut g = Self::v100_16gb();
        g.name = "V100-32GB".into();
        g.mem_bytes = 32 << 30;
        g
    }

    /// NVIDIA A100 (40 GB HBM2e) — the paper's §V-D platform.
    pub fn a100_40gb() -> Self {
        GpuSpec {
            name: "A100-40GB".into(),
            mem_bytes: 40 << 30,
            peak_flops: 9.7e12,
            mem_bw: 1555e9,
            kernel_efficiency: 0.40,
            compress_efficiency: 0.42,
            zero_run_efficiency: 0.80,
            alp_efficiency: 0.30,
            cascade_efficiency: 0.40,
            kernel_launch: 8e-6,
        }
    }

    /// NVIDIA Tesla P4 (8 GB GDDR5) — the paper's multi-GPU server-1.
    /// FP64 on the P4 is a token rate (1/32 of FP32).
    pub fn p4() -> Self {
        GpuSpec {
            name: "P4".into(),
            mem_bytes: 8 << 30,
            peak_flops: 0.17e12,
            mem_bw: 192e9,
            kernel_efficiency: 0.40,
            compress_efficiency: 0.42,
            zero_run_efficiency: 0.80,
            alp_efficiency: 0.30,
            cascade_efficiency: 0.40,
            kernel_launch: 8e-6,
        }
    }

    /// Returns a copy with device memory overridden — used to scale
    /// experiments down to laptop-size state vectors while preserving the
    /// paper's GPU-memory-to-state ratios.
    pub fn with_mem_bytes(mut self, mem_bytes: u64) -> Self {
        self.mem_bytes = mem_bytes;
        self
    }
}

/// A host CPU model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Marketing name.
    pub name: String,
    /// Physical core count (all used by the OpenMP-style engines).
    pub cores: u32,
    /// Peak FP64 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Effective state-update throughput of the plain multithreaded loop,
    /// in bytes/s.
    pub update_bw: f64,
    /// Extra slowdown of Qiskit-Aer's *chunked* CPU path relative to the
    /// plain loop (gather/scatter across chunk boundaries, per-chunk
    /// bookkeeping, GPU-scheduler synchronization).
    pub chunk_penalty: f64,
    /// Per-gate synchronization latency between the CPU scheduler and the
    /// device queue, in seconds.
    pub sync_latency: f64,
    /// Aggregate host-DRAM bandwidth available to device DMA, per
    /// direction, in bytes/s. Every CPU↔GPU transfer is staged through
    /// host memory, so the *sum* of concurrent link transfers cannot
    /// exceed this — the effect that makes a 4×NVLink node no faster at
    /// streaming than 4×PCIe (paper §V-E: "the majority of the data
    /// movement is between CPU and GPUs").
    pub copy_bw: f64,
}

impl HostSpec {
    /// Effective throughput of the chunked (Qiskit-Aer-style) CPU path.
    pub fn chunked_update_bw(&self) -> f64 {
        self.update_bw / self.chunk_penalty
    }

    /// Dual Intel Xeon Silver 4114 (2 × 10 cores) — the paper's host.
    pub fn dual_xeon_4114() -> Self {
        HostSpec {
            name: "2x Xeon Silver 4114".into(),
            cores: 20,
            peak_flops: 0.7e12,
            update_bw: 26e9,
            chunk_penalty: 2.5,
            sync_latency: 30e-6,
            copy_bw: 50e9,
        }
    }

    /// 8-core Intel Xeon Gold 6133 — the V100 server's host (§V-D).
    pub fn xeon_6133_8c() -> Self {
        HostSpec {
            name: "8c Xeon Gold 6133".into(),
            cores: 8,
            peak_flops: 0.4e12,
            update_bw: 14e9,
            chunk_penalty: 2.5,
            sync_latency: 30e-6,
            copy_bw: 40e9,
        }
    }

    /// 12-vCPU host — the A100 server's host (§V-D).
    pub fn vcpu_12() -> Self {
        HostSpec {
            name: "12 vCPU".into(),
            cores: 12,
            peak_flops: 0.5e12,
            update_bw: 18e9,
            chunk_penalty: 2.5,
            sync_latency: 30e-6,
            copy_bw: 45e9,
        }
    }

    /// 32-core host of the multi-GPU servers (§V-E).
    pub fn multi_gpu_host() -> Self {
        HostSpec {
            name: "32c multi-GPU host".into(),
            cores: 32,
            peak_flops: 1.0e12,
            update_bw: 34e9,
            chunk_penalty: 2.5,
            sync_latency: 30e-6,
            copy_bw: 55e9,
        }
    }
}

/// A CPU↔GPU (or GPU↔GPU) interconnect model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Marketing name.
    pub name: String,
    /// Sustained bandwidth per direction, bytes/s.
    pub bw_per_direction: f64,
    /// Per-transfer latency in seconds.
    pub latency: f64,
}

impl LinkSpec {
    /// Time to move `bytes` over the link (one transfer operation).
    pub fn transfer_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.bw_per_direction
    }

    /// PCIe 3.0 ×16 (≈ 13.5 GB/s sustained per direction with pinned
    /// memory).
    pub fn pcie3_x16() -> Self {
        LinkSpec {
            name: "PCIe3 x16".into(),
            bw_per_direction: 13.5e9,
            latency: 10e-6,
        }
    }

    /// PCIe 4.0 ×16 (≈ 24 GB/s sustained per direction).
    pub fn pcie4_x16() -> Self {
        LinkSpec {
            name: "PCIe4 x16".into(),
            bw_per_direction: 24e9,
            latency: 8e-6,
        }
    }

    /// NVLink 2.0 (≈ 45 GB/s sustained per direction per brick pair).
    pub fn nvlink2() -> Self {
        LinkSpec {
            name: "NVLink2".into(),
            bw_per_direction: 45e9,
            latency: 5e-6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_bandwidths_are_derated() {
        let g = GpuSpec::p100();
        assert!(g.update_bw() < g.mem_bw);
        assert!(g.compress_bw() < g.mem_bw);
    }

    #[test]
    fn codec_bw_classes_bracket_gfc() {
        let g = GpuSpec::p100();
        // The Gfc class must be *exactly* the legacy compress_bw — the
        // golden timelines depend on it.
        assert_eq!(g.codec_bw(CodecClass::Gfc), g.compress_bw());
        assert!(g.codec_bw(CodecClass::ZeroRun) > g.compress_bw());
        assert!(g.codec_bw(CodecClass::Alp) < g.compress_bw());
        assert!(g.codec_bw(CodecClass::Cascade) < g.codec_bw(CodecClass::ZeroRun));
    }

    #[test]
    fn gpu_cpu_ratio_matches_paper_ballpark() {
        // Paper §III-C: GPU ~9.67x faster than CPU when state fits.
        let ratio = GpuSpec::p100().update_bw() / HostSpec::dual_xeon_4114().update_bw;
        assert!(
            (5.0..20.0).contains(&ratio),
            "P100/CPU throughput ratio {ratio:.1} out of plausible band"
        );
    }

    #[test]
    fn chunked_path_is_slower() {
        let h = HostSpec::dual_xeon_4114();
        assert!(h.chunked_update_bw() < h.update_bw);
    }

    #[test]
    fn transfer_time_includes_latency() {
        let l = LinkSpec::pcie3_x16();
        assert!(l.transfer_time(0) > 0.0);
        let t = l.transfer_time(13_500_000_000);
        assert!((t - 1.0).abs() < 1e-3);
    }

    #[test]
    fn nvlink_faster_than_pcie() {
        assert!(LinkSpec::nvlink2().bw_per_direction > LinkSpec::pcie3_x16().bw_per_direction);
    }

    #[test]
    fn mem_override() {
        let g = GpuSpec::p100().with_mem_bytes(1 << 20);
        assert_eq!(g.mem_bytes, 1 << 20);
        assert_eq!(g.name, "P100");
    }

    #[test]
    fn device_memory_ordering() {
        // A100 > V100-32 > P100 = V100-16 > P4.
        assert!(GpuSpec::a100_40gb().mem_bytes > GpuSpec::v100_32gb().mem_bytes);
        assert!(GpuSpec::v100_32gb().mem_bytes > GpuSpec::p100().mem_bytes);
        assert!(GpuSpec::p100().mem_bytes > GpuSpec::p4().mem_bytes);
    }
}
