//! The discrete-event timeline: engines, spans, and busy accounting.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// An execution engine that serializes its own tasks but runs concurrently
/// with every other engine — exactly the CUDA execution model the paper
/// exploits (compute overlapping both copy directions, §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Engine {
    /// The host CPU (all cores together; the functional engines already
    /// model intra-host parallelism through their effective bandwidth).
    Host,
    /// GPU `i`'s compute queue.
    GpuCompute(usize),
    /// GPU `i`'s host-to-device copy engine.
    H2d(usize),
    /// GPU `i`'s device-to-host copy engine.
    D2h(usize),
    /// The host's outbound DMA staging path, shared by every GPU's H2D
    /// traffic: aggregate outbound bandwidth is bounded by host DRAM.
    HostDmaOut,
    /// The host's inbound DMA staging path, shared by every GPU's D2H
    /// traffic.
    HostDmaIn,
}

/// What a task is doing — used for the per-category breakdowns of the
/// paper's Figures 2, 4 and 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TaskKind {
    /// State update on the host.
    HostUpdate,
    /// State update kernel on a GPU.
    Kernel,
    /// Host-to-device chunk copy.
    H2dCopy,
    /// Device-to-host chunk copy.
    D2hCopy,
    /// GFC compression kernel.
    Compress,
    /// GFC decompression kernel.
    Decompress,
    /// Scheduler/driver synchronization overhead.
    Sync,
    /// Host-DRAM DMA staging reservation (rate limiting only; the bytes
    /// are counted by the matching copy task).
    HostDma,
    /// Retry backoff wait after an integrity failure (the resilient
    /// pipeline's exponential-backoff pauses; bytes = 0).
    Backoff,
}

impl TaskKind {
    /// All task kinds (for report iteration).
    pub const ALL: [TaskKind; 9] = [
        TaskKind::HostUpdate,
        TaskKind::Kernel,
        TaskKind::H2dCopy,
        TaskKind::D2hCopy,
        TaskKind::Compress,
        TaskKind::Decompress,
        TaskKind::Sync,
        TaskKind::HostDma,
        TaskKind::Backoff,
    ];
}

/// A scheduled interval on an engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Span {
    /// Start time in seconds.
    pub start: f64,
    /// End time in seconds.
    pub end: f64,
}

impl Span {
    /// Span duration.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }
}

/// One recorded event (only kept when tracing is enabled).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Engine the task ran on.
    pub engine: Engine,
    /// Category.
    pub kind: TaskKind,
    /// Interval.
    pub span: Span,
    /// Bytes involved (0 for sync tasks).
    pub bytes: u64,
}

#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
struct EngineState {
    available: f64,
    busy: f64,
}

/// A deterministic discrete-event timeline.
///
/// Tasks are scheduled in program order: each engine starts a task at
/// `max(engine_available, ready)`; dependencies are expressed by passing a
/// predecessor's [`Span::end`] as `ready`.
///
/// # Examples
///
/// ```
/// use qgpu_device::timeline::{Engine, TaskKind, Timeline};
///
/// let mut tl = Timeline::new();
/// let a = tl.schedule(Engine::Host, 0.0, 2.0, TaskKind::HostUpdate, 100);
/// // Independent engine: overlaps with the host task.
/// let b = tl.schedule(Engine::H2d(0), 0.0, 1.5, TaskKind::H2dCopy, 100);
/// assert_eq!(a.start, 0.0);
/// assert_eq!(b.start, 0.0);
/// assert_eq!(tl.makespan(), 2.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    engines: BTreeMap<Engine, EngineState>,
    kind_busy: BTreeMap<TaskKind, f64>,
    kind_bytes: BTreeMap<TaskKind, u64>,
    makespan: f64,
    trace: Option<Vec<TraceEvent>>,
    trace_cap: usize,
    // Engine-level accounting that scheduling alone cannot express; the
    // engines feed these so `ExecutionReport::from_timeline` is complete
    // without caller-side patching.
    flops_gpu: f64,
    chunks_pruned: u64,
    chunks_processed: u64,
    fused_kernels: u64,
    gates_fused: u64,
    bytes_before_compress: u64,
    bytes_after_compress: u64,
    chunk_retries: u64,
    codec_fallbacks: u64,
    prune_fallbacks: u64,
    worker_restarts: u64,
    devices_lost: u64,
    chunks_migrated: u64,
    steals: u64,
    pressure_downshifts: u64,
    link_degradations: u64,
    peak_resident_bytes: u64,
    shots: u64,
    collapses: u64,
    noise_ops: u64,
    measure_time: f64,
    sample_time: f64,
}

impl Timeline {
    /// Creates an empty timeline with tracing disabled.
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Creates a timeline that records up to `cap` trace events
    /// (for the paper's Figure 6 timeline plots).
    pub fn with_trace(cap: usize) -> Self {
        Timeline {
            trace: Some(Vec::new()),
            trace_cap: cap,
            ..Timeline::default()
        }
    }

    /// Schedules a task and returns its span.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative or not finite.
    pub fn schedule(
        &mut self,
        engine: Engine,
        ready: f64,
        duration: f64,
        kind: TaskKind,
        bytes: u64,
    ) -> Span {
        assert!(
            duration.is_finite() && duration >= 0.0,
            "bad task duration {duration}"
        );
        let state = self.engines.entry(engine).or_default();
        let start = state.available.max(ready);
        let end = start + duration;
        state.available = end;
        state.busy += duration;
        *self.kind_busy.entry(kind).or_default() += duration;
        *self.kind_bytes.entry(kind).or_default() += bytes;
        self.makespan = self.makespan.max(end);
        if let Some(trace) = &mut self.trace {
            if trace.len() < self.trace_cap {
                trace.push(TraceEvent {
                    engine,
                    kind,
                    span: Span { start, end },
                    bytes,
                });
            }
        }
        Span { start, end }
    }

    /// The time the engine becomes free (0 if never used).
    pub fn engine_available(&self, engine: Engine) -> f64 {
        self.engines.get(&engine).map_or(0.0, |s| s.available)
    }

    /// Total busy time of an engine.
    pub fn engine_busy(&self, engine: Engine) -> f64 {
        self.engines.get(&engine).map_or(0.0, |s| s.busy)
    }

    /// Total busy time across all engines of one task category.
    pub fn kind_busy(&self, kind: TaskKind) -> f64 {
        self.kind_busy.get(&kind).copied().unwrap_or(0.0)
    }

    /// Total bytes accounted to one task category.
    pub fn kind_bytes(&self, kind: TaskKind) -> u64 {
        self.kind_bytes.get(&kind).copied().unwrap_or(0)
    }

    /// End of the last scheduled task — the modeled wall-clock time.
    pub fn makespan(&self) -> f64 {
        self.makespan
    }

    /// Recorded events (empty when tracing is disabled).
    pub fn trace(&self) -> &[TraceEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// Credits floating-point operations to the GPUs.
    pub fn add_flops(&mut self, flops: f64) {
        self.flops_gpu += flops;
    }

    /// Counts chunk updates skipped by zero-amplitude pruning.
    pub fn count_pruned(&mut self, n: u64) {
        self.chunks_pruned += n;
    }

    /// Counts chunk updates performed.
    pub fn count_processed(&mut self, n: u64) {
        self.chunks_processed += n;
    }

    /// Counts one kernel launch that executed a multi-gate fused run.
    pub fn count_fused_kernel(&mut self) {
        self.fused_kernels += 1;
    }

    /// Records how many source gates the fusion pass eliminated.
    pub fn set_gates_fused(&mut self, n: u64) {
        self.gates_fused = n;
    }

    /// Accounts one compressor invocation: `raw` bytes in, `compressed`
    /// bytes out.
    pub fn record_compression(&mut self, raw: u64, compressed: u64) {
        self.bytes_before_compress += raw;
        self.bytes_after_compress += compressed;
    }

    /// Counts one chunk-transfer retry after an integrity failure.
    pub fn count_chunk_retry(&mut self) {
        self.chunk_retries += 1;
    }

    /// Counts one codec-failure fallback to raw transfer.
    pub fn count_codec_fallback(&mut self) {
        self.codec_fallbacks += 1;
    }

    /// Counts one corrupted-mask fallback from pruning to full-chunk
    /// execution (per gate).
    pub fn count_prune_fallback(&mut self) {
        self.prune_fallbacks += 1;
    }

    /// Counts one worker-death recovery (serial re-execution).
    pub fn count_worker_restart(&mut self) {
        self.worker_restarts += 1;
    }

    /// Counts one device dropping out of the fleet.
    pub fn count_device_lost(&mut self) {
        self.devices_lost += 1;
    }

    /// Counts `n` chunk tasks migrated off a lost device onto survivors.
    pub fn count_chunks_migrated(&mut self, n: u64) {
        self.chunks_migrated += n;
    }

    /// Counts one chunk task stolen from a straggling device.
    pub fn count_steal(&mut self) {
        self.steals += 1;
    }

    /// Counts one memory-pressure ladder escalation.
    pub fn count_pressure_downshift(&mut self) {
        self.pressure_downshifts += 1;
    }

    /// Counts one transfer that ran over a degraded link.
    pub fn count_link_degradation(&mut self) {
        self.link_degradations += 1;
    }

    /// Records an observed per-device chunk residency; the report keeps
    /// the peak for budget verification.
    pub fn observe_resident_bytes(&mut self, bytes: u64) {
        self.peak_resident_bytes = self.peak_resident_bytes.max(bytes);
    }

    /// Counts `n` worker-death recoveries at once (a dispatch reports its
    /// total).
    pub fn count_worker_restarts(&mut self, n: u64) {
        self.worker_restarts += n;
    }

    /// GPU floating-point operations credited so far.
    pub fn flops_gpu(&self) -> f64 {
        self.flops_gpu
    }

    /// Chunk updates skipped by pruning.
    pub fn chunks_pruned(&self) -> u64 {
        self.chunks_pruned
    }

    /// Chunk updates performed.
    pub fn chunks_processed(&self) -> u64 {
        self.chunks_processed
    }

    /// Kernel launches that executed a fused run.
    pub fn fused_kernels(&self) -> u64 {
        self.fused_kernels
    }

    /// Source gates eliminated by fusion.
    pub fn gates_fused(&self) -> u64 {
        self.gates_fused
    }

    /// `(raw, compressed)` byte totals over all compressor invocations.
    pub fn compression_bytes(&self) -> (u64, u64) {
        (self.bytes_before_compress, self.bytes_after_compress)
    }

    /// Chunk-transfer retries performed after integrity failures.
    pub fn chunk_retries(&self) -> u64 {
        self.chunk_retries
    }

    /// Codec-failure fallbacks to raw transfer.
    pub fn codec_fallbacks(&self) -> u64 {
        self.codec_fallbacks
    }

    /// Corrupted-mask fallbacks from pruning to full-chunk execution.
    pub fn prune_fallbacks(&self) -> u64 {
        self.prune_fallbacks
    }

    /// Worker-death recoveries (serial re-execution of a dispatch).
    pub fn worker_restarts(&self) -> u64 {
        self.worker_restarts
    }

    /// Devices lost from the fleet.
    pub fn devices_lost(&self) -> u64 {
        self.devices_lost
    }

    /// Chunk tasks migrated off lost devices.
    pub fn chunks_migrated(&self) -> u64 {
        self.chunks_migrated
    }

    /// Chunk tasks stolen from stragglers.
    pub fn steals(&self) -> u64 {
        self.steals
    }

    /// Memory-pressure ladder escalations.
    pub fn pressure_downshifts(&self) -> u64 {
        self.pressure_downshifts
    }

    /// Transfers that ran over a degraded link.
    pub fn link_degradations(&self) -> u64 {
        self.link_degradations
    }

    /// Peak observed per-device chunk residency in bytes.
    pub fn peak_resident_bytes(&self) -> u64 {
        self.peak_resident_bytes
    }

    /// Records the end-of-circuit shot count sampled from the final state.
    pub fn set_shots(&mut self, n: u64) {
        self.shots = n;
    }

    /// Counts one mid-circuit measurement/reset collapse sync point.
    pub fn count_collapse(&mut self) {
        self.collapses += 1;
    }

    /// Records how many error gates the noise rewrite inserted.
    pub fn set_noise_ops(&mut self, n: u64) {
        self.noise_ops = n;
    }

    /// End-of-circuit measurement shots sampled.
    pub fn shots(&self) -> u64 {
        self.shots
    }

    /// Mid-circuit collapse sync points executed.
    pub fn collapses(&self) -> u64 {
        self.collapses
    }

    /// Error gates inserted by the noise rewrite.
    pub fn noise_ops(&self) -> u64 {
        self.noise_ops
    }

    /// Attributes `s` seconds of already-scheduled host time to the
    /// mid-circuit collapse passes (reduce + renormalize). A side
    /// accumulator, not a new task kind: the spans themselves stay
    /// `HostUpdate`, so trace fingerprints are unchanged.
    pub fn add_measure_time(&mut self, s: f64) {
        self.measure_time += s;
    }

    /// Attributes `s` seconds of already-scheduled host time to the
    /// end-of-circuit readout sampling sweep (see [`Timeline::add_measure_time`]).
    pub fn add_sample_time(&mut self, s: f64) {
        self.sample_time += s;
    }

    /// Host seconds attributed to mid-circuit collapse passes.
    pub fn measure_time(&self) -> f64 {
        self.measure_time
    }

    /// Host seconds attributed to readout sampling.
    pub fn sample_time(&self) -> f64 {
        self.sample_time
    }

    /// Engines that have been used, with their busy time.
    pub fn engine_summary(&self) -> Vec<(Engine, f64)> {
        self.engines.iter().map(|(e, s)| (*e, s.busy)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_on_one_engine() {
        let mut tl = Timeline::new();
        let a = tl.schedule(Engine::Host, 0.0, 1.0, TaskKind::HostUpdate, 10);
        let b = tl.schedule(Engine::Host, 0.0, 2.0, TaskKind::HostUpdate, 20);
        assert_eq!(a.end, 1.0);
        assert_eq!(b.start, 1.0);
        assert_eq!(tl.makespan(), 3.0);
        assert_eq!(tl.engine_busy(Engine::Host), 3.0);
        assert_eq!(tl.kind_bytes(TaskKind::HostUpdate), 30);
    }

    #[test]
    fn parallel_engines_overlap() {
        let mut tl = Timeline::new();
        tl.schedule(Engine::H2d(0), 0.0, 5.0, TaskKind::H2dCopy, 0);
        tl.schedule(Engine::D2h(0), 0.0, 5.0, TaskKind::D2hCopy, 0);
        tl.schedule(Engine::GpuCompute(0), 0.0, 5.0, TaskKind::Kernel, 0);
        assert_eq!(tl.makespan(), 5.0);
    }

    #[test]
    fn dependency_delays_start() {
        let mut tl = Timeline::new();
        let copy = tl.schedule(Engine::H2d(0), 0.0, 3.0, TaskKind::H2dCopy, 0);
        let kernel = tl.schedule(Engine::GpuCompute(0), copy.end, 1.0, TaskKind::Kernel, 0);
        assert_eq!(kernel.start, 3.0);
        assert_eq!(tl.makespan(), 4.0);
    }

    #[test]
    fn ready_in_the_past_starts_at_available() {
        let mut tl = Timeline::new();
        tl.schedule(Engine::Host, 0.0, 4.0, TaskKind::HostUpdate, 0);
        let s = tl.schedule(Engine::Host, 1.0, 1.0, TaskKind::HostUpdate, 0);
        assert_eq!(s.start, 4.0);
    }

    #[test]
    fn pipeline_throughput() {
        // Classic 3-stage pipeline: with N items of equal stage cost t the
        // makespan approaches N*t, not 3*N*t.
        let mut tl = Timeline::new();
        let t = 1.0;
        let n = 10;
        let mut prev_kernel_end = 0.0;
        for _ in 0..n {
            let h2d = tl.schedule(Engine::H2d(0), 0.0, t, TaskKind::H2dCopy, 0);
            let k = tl.schedule(
                Engine::GpuCompute(0),
                h2d.end.max(prev_kernel_end),
                t,
                TaskKind::Kernel,
                0,
            );
            prev_kernel_end = k.end;
            tl.schedule(Engine::D2h(0), k.end, t, TaskKind::D2hCopy, 0);
        }
        let makespan = tl.makespan();
        assert!(
            makespan <= (n as f64 + 2.0) * t + 1e-9,
            "pipeline should stream: {makespan}"
        );
    }

    #[test]
    fn trace_recording_and_cap() {
        let mut tl = Timeline::with_trace(2);
        for _ in 0..5 {
            tl.schedule(Engine::Host, 0.0, 1.0, TaskKind::HostUpdate, 0);
        }
        assert_eq!(tl.trace().len(), 2);
        assert_eq!(tl.trace()[1].span.start, 1.0);
    }

    #[test]
    fn multi_gpu_engines_are_independent() {
        let mut tl = Timeline::new();
        tl.schedule(Engine::GpuCompute(0), 0.0, 2.0, TaskKind::Kernel, 0);
        tl.schedule(Engine::GpuCompute(1), 0.0, 2.0, TaskKind::Kernel, 0);
        assert_eq!(tl.makespan(), 2.0);
        assert_eq!(tl.engine_busy(Engine::GpuCompute(1)), 2.0);
    }

    #[test]
    #[should_panic(expected = "bad task duration")]
    fn negative_duration_panics() {
        let mut tl = Timeline::new();
        tl.schedule(Engine::Host, 0.0, -1.0, TaskKind::Sync, 0);
    }
}
