//! ASCII Gantt rendering of timeline traces.
//!
//! The paper's Figure 6 shows each optimization as a timeline of engine
//! activity; [`render`] draws the same picture from a recorded trace —
//! one row per engine, time flowing left to right.
//!
//! ```text
//! host  |ssssss                                            |   2.1%
//! gpu0  |    KK  KK  KK                                    |  31.5%
//! h2d0  |>>>>  >>>>  >>>>                                  |  48.0%
//! d2h0  |      <<<<  <<<<  <<<<                            |  48.0%
//! legend:  H=host update  K=kernel  >=h2d copy  <=d2h copy  ...
//! ```
//!
//! Each row ends with the engine's busy fraction of the makespan;
//! [`render_full`] appends the glyph legend.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::timeline::{Engine, TaskKind, TraceEvent};

/// The glyph for a task kind.
fn glyph(kind: TaskKind) -> char {
    match kind {
        TaskKind::HostUpdate => 'H',
        TaskKind::Kernel => 'K',
        TaskKind::H2dCopy => '>',
        TaskKind::D2hCopy => '<',
        TaskKind::Compress => 'C',
        TaskKind::Decompress => 'D',
        TaskKind::Sync => 's',
        TaskKind::HostDma => '.',
        TaskKind::Backoff => 'r',
    }
}

/// Short label for an engine row.
fn engine_label(e: Engine) -> String {
    match e {
        Engine::Host => "host".to_string(),
        Engine::GpuCompute(g) => format!("gpu{g}"),
        Engine::H2d(g) => format!("h2d{g}"),
        Engine::D2h(g) => format!("d2h{g}"),
        Engine::HostDmaOut => "dma>".to_string(),
        Engine::HostDmaIn => "dma<".to_string(),
    }
}

/// Renders a trace as an ASCII Gantt chart `columns` characters wide.
///
/// Host-DMA reservation rows are omitted (they shadow the copy rows).
/// Returns an empty string for an empty trace.
///
/// # Examples
///
/// ```
/// use qgpu_device::timeline::{Engine, TaskKind, Timeline};
/// use qgpu_device::gantt;
///
/// let mut tl = Timeline::with_trace(100);
/// tl.schedule(Engine::H2d(0), 0.0, 1.0, TaskKind::H2dCopy, 0);
/// tl.schedule(Engine::GpuCompute(0), 1.0, 1.0, TaskKind::Kernel, 0);
/// let chart = gantt::render(tl.trace(), 20);
/// assert!(chart.contains('>'));
/// assert!(chart.contains('K'));
/// ```
pub fn render(trace: &[TraceEvent], columns: usize) -> String {
    let columns = columns.max(10);
    let makespan = trace.iter().map(|e| e.span.end).fold(0.0f64, f64::max);
    if makespan <= 0.0 || trace.is_empty() {
        return String::new();
    }
    let engines: BTreeSet<Engine> = trace
        .iter()
        .map(|e| e.engine)
        .filter(|e| !matches!(e, Engine::HostDmaOut | Engine::HostDmaIn))
        .collect();
    let scale = columns as f64 / makespan;

    let mut out = String::new();
    for engine in engines {
        let mut row = vec![' '; columns];
        let mut busy = 0.0f64;
        for ev in trace.iter().filter(|e| e.engine == engine) {
            // Backoff spans occupy the engine but do no work; drawing
            // them while excluding them from the busy fraction keeps
            // reported utilization honest under injected faults.
            if ev.kind != TaskKind::Backoff {
                busy += ev.span.duration();
            }
            let lo = (ev.span.start * scale).floor() as usize;
            let hi = ((ev.span.end * scale).ceil() as usize).min(columns);
            for cell in row.iter_mut().take(hi.max(lo + 1).min(columns)).skip(lo) {
                *cell = glyph(ev.kind);
            }
        }
        let _ = writeln!(
            out,
            "{:<6}|{}| {:5.1}%",
            engine_label(engine),
            row.into_iter().collect::<String>(),
            100.0 * busy / makespan
        );
    }
    out
}

/// The glyph legend, one line, matching [`render`]'s output.
pub fn legend() -> String {
    let entries = [
        (TaskKind::HostUpdate, "host update"),
        (TaskKind::Kernel, "kernel"),
        (TaskKind::H2dCopy, "h2d copy"),
        (TaskKind::D2hCopy, "d2h copy"),
        (TaskKind::Compress, "compress"),
        (TaskKind::Decompress, "decompress"),
        (TaskKind::Sync, "sync"),
        (TaskKind::Backoff, "retry backoff"),
    ];
    let mut out = String::from("legend:");
    for (kind, name) in entries {
        let _ = write!(out, "  {}={}", glyph(kind), name);
    }
    out.push('\n');
    out
}

/// [`render`] plus the legend — the chart the CLI's `--gantt` prints.
/// Returns an empty string for an empty trace.
pub fn render_full(trace: &[TraceEvent], columns: usize) -> String {
    let chart = render(trace, columns);
    if chart.is_empty() {
        return chart;
    }
    format!("{chart}{}", legend())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::Timeline;

    fn demo_trace() -> Timeline {
        let mut tl = Timeline::with_trace(100);
        let h2d = tl.schedule(Engine::H2d(0), 0.0, 2.0, TaskKind::H2dCopy, 0);
        let k = tl.schedule(Engine::GpuCompute(0), h2d.end, 1.0, TaskKind::Kernel, 0);
        tl.schedule(Engine::D2h(0), k.end, 2.0, TaskKind::D2hCopy, 0);
        tl.schedule(Engine::Host, 0.0, 0.5, TaskKind::Sync, 0);
        tl
    }

    #[test]
    fn renders_one_row_per_engine() {
        let tl = demo_trace();
        let chart = render(tl.trace(), 40);
        assert_eq!(chart.lines().count(), 4);
        assert!(chart.contains("gpu0"));
        assert!(chart.contains("h2d0"));
        assert!(chart.contains("d2h0"));
        assert!(chart.contains("host"));
    }

    #[test]
    fn glyph_positions_respect_time_order() {
        let tl = demo_trace();
        let chart = render(tl.trace(), 50);
        let h2d_row = chart.lines().find(|l| l.starts_with("h2d0")).expect("row");
        let d2h_row = chart.lines().find(|l| l.starts_with("d2h0")).expect("row");
        let first_upload = h2d_row.find('>').expect("upload glyph");
        let first_download = d2h_row.find('<').expect("download glyph");
        assert!(first_upload < first_download, "upload precedes download");
    }

    #[test]
    fn empty_trace_renders_empty() {
        assert_eq!(render(&[], 40), "");
        assert_eq!(render_full(&[], 40), "");
    }

    #[test]
    fn rows_end_with_busy_fraction() {
        let tl = demo_trace();
        let chart = render(tl.trace(), 40);
        // Makespan 5.0: h2d busy 2.0 → 40%, host sync 0.5 → 10%.
        let h2d_row = chart.lines().find(|l| l.starts_with("h2d0")).expect("row");
        assert!(h2d_row.ends_with("40.0%"), "row: {h2d_row}");
        let host_row = chart.lines().find(|l| l.starts_with("host")).expect("row");
        assert!(host_row.ends_with("10.0%"), "row: {host_row}");
    }

    #[test]
    fn full_render_appends_legend_with_every_visible_glyph() {
        let tl = demo_trace();
        let chart = render_full(tl.trace(), 40);
        let legend_line = chart.lines().last().expect("legend");
        assert!(legend_line.starts_with("legend:"));
        for glyph in ["H=", "K=", ">=", "<=", "C=", "D=", "s="] {
            assert!(legend_line.contains(glyph), "missing {glyph}");
        }
        // Chart rows plus one legend line.
        assert_eq!(chart.lines().count(), 5);
    }

    #[test]
    fn backoff_spans_draw_but_do_not_count_as_busy() {
        let mut tl = Timeline::with_trace(10);
        tl.schedule(Engine::H2d(0), 0.0, 1.0, TaskKind::H2dCopy, 0);
        tl.schedule(Engine::H2d(0), 1.0, 2.0, TaskKind::Backoff, 0);
        tl.schedule(Engine::H2d(0), 3.0, 1.0, TaskKind::H2dCopy, 0);
        let chart = render(tl.trace(), 40);
        let row = chart.lines().find(|l| l.starts_with("h2d0")).expect("row");
        // Makespan 4.0, real copies 2.0: 50% busy, not the 100% the
        // backoff wait would inflate it to.
        assert!(row.ends_with("50.0%"), "row: {row}");
        assert!(row.contains('r'), "backoff glyph still drawn: {row}");
    }

    #[test]
    fn dma_rows_are_hidden() {
        let mut tl = Timeline::with_trace(10);
        tl.schedule(Engine::HostDmaOut, 0.0, 1.0, TaskKind::HostDma, 0);
        tl.schedule(Engine::H2d(0), 0.0, 1.0, TaskKind::H2dCopy, 0);
        let chart = render(tl.trace(), 20);
        assert!(!chart.contains("dma"));
        assert_eq!(chart.lines().count(), 1);
    }
}
