//! Execution reports: the model's answer to `nvprof`.

use serde::{Deserialize, Serialize};

use crate::timeline::{Engine, TaskKind, Timeline};

/// Aggregated metrics of one simulated execution — everything the paper's
/// evaluation plots are built from.
///
/// # Examples
///
/// ```
/// use qgpu_device::timeline::{Engine, TaskKind, Timeline};
/// use qgpu_device::ExecutionReport;
///
/// let mut tl = Timeline::new();
/// tl.schedule(Engine::Host, 0.0, 8.0, TaskKind::HostUpdate, 800);
/// tl.schedule(Engine::H2d(0), 0.0, 2.0, TaskKind::H2dCopy, 200);
/// let report = ExecutionReport::from_timeline(&tl, 1);
/// assert_eq!(report.total_time, 8.0);
/// assert!(report.host_fraction() > 0.7);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ExecutionReport {
    /// Modeled wall-clock time in seconds.
    pub total_time: f64,
    /// Host busy time (state updates).
    pub host_time: f64,
    /// Summed GPU compute busy time (kernels + (de)compression).
    pub gpu_time: f64,
    /// Summed copy-engine busy time, both directions.
    pub transfer_time: f64,
    /// Scheduler/driver synchronization time.
    pub sync_time: f64,
    /// Compression kernel time.
    pub compress_time: f64,
    /// Decompression kernel time.
    pub decompress_time: f64,
    /// Host time spent in mid-circuit collapse passes (marginal
    /// reduction + renormalization); a subset of `host_time`.
    pub measure_time: f64,
    /// Host time spent in the end-of-circuit readout sampling sweep; a
    /// subset of `host_time`.
    pub sample_time: f64,
    /// Bytes copied host → device.
    pub bytes_h2d: u64,
    /// Bytes copied device → host.
    pub bytes_d2h: u64,
    /// Amplitude bytes processed on the host.
    pub bytes_host: u64,
    /// Amplitude bytes processed on GPUs.
    pub bytes_gpu: u64,
    /// Floating-point operations executed on GPUs.
    pub flops_gpu: f64,
    /// Chunk updates skipped by zero-amplitude pruning.
    pub chunks_pruned: u64,
    /// Chunk updates performed.
    pub chunks_processed: u64,
    /// Bytes entering the compressor (0 when compression is off).
    pub bytes_before_compress: u64,
    /// Bytes leaving the compressor.
    pub bytes_after_compress: u64,
    /// Kernel launches that executed a multi-gate fused run (0 when gate
    /// fusion is off).
    pub fused_kernels: u64,
    /// Source gates eliminated by the fusion pass (gates in minus fused
    /// ops out).
    pub gates_fused: u64,
    /// Chunk transfers re-issued after a CRC mismatch (0 when the
    /// resilient pipeline is off or no fault fired).
    pub chunk_retries: u64,
    /// Chunks that fell back to raw transfer after a GFC encode failure.
    pub codec_fallbacks: u64,
    /// Gates that fell back from pruning to full-chunk execution after a
    /// corrupted involvement mask.
    pub prune_fallbacks: u64,
    /// Worker dispatches recovered by serial re-execution after a worker
    /// death.
    pub worker_restarts: u64,
    /// Modeled time spent waiting in retry backoff.
    pub backoff_time: f64,
    /// Devices lost from the fleet mid-run (0 without orchestration).
    pub devices_lost: u64,
    /// Chunk tasks migrated off lost devices onto survivors.
    pub chunks_migrated: u64,
    /// Chunk tasks stolen from straggling devices.
    pub steals: u64,
    /// Memory-pressure ladder escalations (shrink/compress/spill).
    pub pressure_downshifts: u64,
    /// Transfers that ran over a degraded link.
    pub link_degradations: u64,
    /// Peak observed per-device chunk residency in bytes (0 when the
    /// engine does not track residency).
    pub peak_resident_bytes: u64,
    /// End-of-circuit measurement shots sampled (0 when sampling is off).
    pub shots: u64,
    /// Mid-circuit measurement/reset collapse sync points executed.
    pub collapses: u64,
    /// Error gates inserted by the seeded noise rewrite (0 without noise).
    pub noise_ops: u64,
    /// Number of GPUs in the platform.
    pub num_gpus: usize,
}

impl ExecutionReport {
    /// Collects a report from a finished timeline.
    pub fn from_timeline(tl: &Timeline, num_gpus: usize) -> Self {
        let mut gpu_time = 0.0;
        for g in 0..num_gpus {
            gpu_time += tl.engine_busy(Engine::GpuCompute(g));
        }
        let mut transfer_time = 0.0;
        for g in 0..num_gpus {
            transfer_time += tl.engine_busy(Engine::H2d(g)) + tl.engine_busy(Engine::D2h(g));
        }
        let (bytes_before_compress, bytes_after_compress) = tl.compression_bytes();
        ExecutionReport {
            total_time: tl.makespan(),
            host_time: tl.kind_busy(TaskKind::HostUpdate),
            gpu_time,
            transfer_time,
            sync_time: tl.kind_busy(TaskKind::Sync),
            compress_time: tl.kind_busy(TaskKind::Compress),
            decompress_time: tl.kind_busy(TaskKind::Decompress),
            measure_time: tl.measure_time(),
            sample_time: tl.sample_time(),
            bytes_h2d: tl.kind_bytes(TaskKind::H2dCopy),
            bytes_d2h: tl.kind_bytes(TaskKind::D2hCopy),
            bytes_host: tl.kind_bytes(TaskKind::HostUpdate),
            bytes_gpu: tl.kind_bytes(TaskKind::Kernel),
            flops_gpu: tl.flops_gpu(),
            chunks_pruned: tl.chunks_pruned(),
            chunks_processed: tl.chunks_processed(),
            bytes_before_compress,
            bytes_after_compress,
            fused_kernels: tl.fused_kernels(),
            gates_fused: tl.gates_fused(),
            chunk_retries: tl.chunk_retries(),
            codec_fallbacks: tl.codec_fallbacks(),
            prune_fallbacks: tl.prune_fallbacks(),
            worker_restarts: tl.worker_restarts(),
            backoff_time: tl.kind_busy(TaskKind::Backoff),
            devices_lost: tl.devices_lost(),
            chunks_migrated: tl.chunks_migrated(),
            steals: tl.steals(),
            pressure_downshifts: tl.pressure_downshifts(),
            link_degradations: tl.link_degradations(),
            peak_resident_bytes: tl.peak_resident_bytes(),
            shots: tl.shots(),
            collapses: tl.collapses(),
            noise_ops: tl.noise_ops(),
            num_gpus,
        }
    }

    /// Total orchestration events: every time the device group reacted
    /// to fleet disruption instead of stalling (losses + migrations +
    /// steals + pressure downshifts).
    pub fn orchestration_events(&self) -> u64 {
        self.devices_lost + self.chunks_migrated + self.steals + self.pressure_downshifts
    }

    /// Total degradation events: every time the pipeline kept going in a
    /// reduced mode instead of failing (codec fallbacks + prune fallbacks
    /// + worker restarts).
    pub fn degradation_events(&self) -> u64 {
        self.codec_fallbacks + self.prune_fallbacks + self.worker_restarts
    }

    /// Fraction of total time the host spends updating amplitudes
    /// (the dominant bar of the paper's Figure 2).
    pub fn host_fraction(&self) -> f64 {
        safe_div(self.host_time, self.total_time)
    }

    /// Fraction of total time attributable to data movement, measured as
    /// copy-engine busy time relative to the makespan. With overlap this
    /// can exceed 1 when both directions run concurrently.
    pub fn transfer_fraction(&self) -> f64 {
        safe_div(self.transfer_time, self.total_time)
    }

    /// Fraction of total time GPUs spend computing.
    pub fn gpu_fraction(&self) -> f64 {
        safe_div(self.gpu_time, self.total_time)
    }

    /// Fraction of chunk updates eliminated by pruning.
    pub fn prune_fraction(&self) -> f64 {
        let total = self.chunks_pruned + self.chunks_processed;
        if total == 0 {
            0.0
        } else {
            self.chunks_pruned as f64 / total as f64
        }
    }

    /// Achieved compression ratio (1.0 when compression is off).
    pub fn compression_ratio(&self) -> f64 {
        if self.bytes_after_compress == 0 {
            1.0
        } else {
            self.bytes_before_compress as f64 / self.bytes_after_compress as f64
        }
    }

    /// Compression + decompression time as a fraction of total time
    /// (the paper's Figure 14).
    pub fn compression_overhead(&self) -> f64 {
        safe_div(self.compress_time + self.decompress_time, self.total_time)
    }

    /// Achieved GPU FLOP rate (0 when no GPU compute ran).
    pub fn achieved_gpu_flops(&self) -> f64 {
        safe_div(self.flops_gpu, self.total_time)
    }

    /// GPU arithmetic intensity in FLOP/byte, counting kernel bytes plus
    /// transferred bytes (the roofline x-axis of the paper's Figure 15).
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.bytes_gpu + self.bytes_h2d + self.bytes_d2h;
        if bytes == 0 {
            0.0
        } else {
            self.flops_gpu / bytes as f64
        }
    }

    /// Serializes the report as a deterministic JSON object.
    ///
    /// Field order is fixed and floats use Rust's shortest-roundtrip
    /// `{:?}` formatting, so two bit-identical reports always produce
    /// byte-identical JSON — the property the golden-report fixtures
    /// under `tests/fixtures/golden/` rely on.
    pub fn to_json_string(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        let mut field = |key: &str, value: String| {
            if s.len() > 2 {
                s.push_str(",\n");
            }
            s.push_str("  \"");
            s.push_str(key);
            s.push_str("\": ");
            s.push_str(&value);
        };
        field("total_time", format!("{:?}", self.total_time));
        field("host_time", format!("{:?}", self.host_time));
        field("gpu_time", format!("{:?}", self.gpu_time));
        field("transfer_time", format!("{:?}", self.transfer_time));
        field("sync_time", format!("{:?}", self.sync_time));
        field("compress_time", format!("{:?}", self.compress_time));
        field("decompress_time", format!("{:?}", self.decompress_time));
        field("measure_time", format!("{:?}", self.measure_time));
        field("sample_time", format!("{:?}", self.sample_time));
        field("bytes_h2d", self.bytes_h2d.to_string());
        field("bytes_d2h", self.bytes_d2h.to_string());
        field("bytes_host", self.bytes_host.to_string());
        field("bytes_gpu", self.bytes_gpu.to_string());
        field("flops_gpu", format!("{:?}", self.flops_gpu));
        field("chunks_pruned", self.chunks_pruned.to_string());
        field("chunks_processed", self.chunks_processed.to_string());
        field(
            "bytes_before_compress",
            self.bytes_before_compress.to_string(),
        );
        field(
            "bytes_after_compress",
            self.bytes_after_compress.to_string(),
        );
        field("fused_kernels", self.fused_kernels.to_string());
        field("gates_fused", self.gates_fused.to_string());
        field("chunk_retries", self.chunk_retries.to_string());
        field("codec_fallbacks", self.codec_fallbacks.to_string());
        field("prune_fallbacks", self.prune_fallbacks.to_string());
        field("worker_restarts", self.worker_restarts.to_string());
        field("backoff_time", format!("{:?}", self.backoff_time));
        field("devices_lost", self.devices_lost.to_string());
        field("chunks_migrated", self.chunks_migrated.to_string());
        field("steals", self.steals.to_string());
        field("pressure_downshifts", self.pressure_downshifts.to_string());
        field("link_degradations", self.link_degradations.to_string());
        field("peak_resident_bytes", self.peak_resident_bytes.to_string());
        field("shots", self.shots.to_string());
        field("collapses", self.collapses.to_string());
        field("noise_ops", self.noise_ops.to_string());
        field("num_gpus", self.num_gpus.to_string());
        s.push_str("\n}\n");
        s
    }
}

fn safe_div(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_timeline() -> Timeline {
        let mut tl = Timeline::new();
        tl.schedule(Engine::Host, 0.0, 6.0, TaskKind::HostUpdate, 600);
        tl.schedule(Engine::H2d(0), 0.0, 1.0, TaskKind::H2dCopy, 100);
        tl.schedule(Engine::GpuCompute(0), 1.0, 0.5, TaskKind::Kernel, 100);
        tl.schedule(Engine::D2h(0), 1.5, 1.0, TaskKind::D2hCopy, 100);
        tl.schedule(Engine::Host, 0.0, 0.5, TaskKind::Sync, 0);
        tl
    }

    #[test]
    fn report_collects_categories() {
        let r = ExecutionReport::from_timeline(&sample_timeline(), 1);
        assert_eq!(r.total_time, 6.5);
        assert_eq!(r.host_time, 6.0);
        assert_eq!(r.gpu_time, 0.5);
        assert_eq!(r.transfer_time, 2.0);
        assert_eq!(r.sync_time, 0.5);
        assert_eq!(r.bytes_h2d, 100);
        assert_eq!(r.bytes_d2h, 100);
    }

    #[test]
    fn fractions() {
        let r = ExecutionReport::from_timeline(&sample_timeline(), 1);
        assert!((r.host_fraction() - 6.0 / 6.5).abs() < 1e-12);
        assert!((r.transfer_fraction() - 2.0 / 6.5).abs() < 1e-12);
    }

    #[test]
    fn orchestration_counters_flow_into_the_report() {
        let mut tl = sample_timeline();
        tl.count_device_lost();
        tl.count_chunks_migrated(5);
        tl.count_steal();
        tl.count_steal();
        tl.count_pressure_downshift();
        tl.count_link_degradation();
        tl.observe_resident_bytes(1024);
        tl.observe_resident_bytes(512); // peak keeps the max
        let r = ExecutionReport::from_timeline(&tl, 1);
        assert_eq!(r.devices_lost, 1);
        assert_eq!(r.chunks_migrated, 5);
        assert_eq!(r.steals, 2);
        assert_eq!(r.pressure_downshifts, 1);
        assert_eq!(r.link_degradations, 1);
        assert_eq!(r.peak_resident_bytes, 1024);
        assert_eq!(r.orchestration_events(), 9);
    }

    #[test]
    fn timeline_counters_flow_into_the_report() {
        let mut tl = sample_timeline();
        tl.add_flops(1.5e9);
        tl.count_pruned(12);
        tl.count_processed(20);
        tl.count_fused_kernel();
        tl.count_fused_kernel();
        tl.set_gates_fused(7);
        tl.record_compression(4096, 1024);
        tl.record_compression(4096, 2048);
        let r = ExecutionReport::from_timeline(&tl, 1);
        assert_eq!(r.flops_gpu, 1.5e9);
        assert_eq!(r.chunks_pruned, 12);
        assert_eq!(r.chunks_processed, 20);
        assert_eq!(r.fused_kernels, 2);
        assert_eq!(r.gates_fused, 7);
        assert_eq!(r.bytes_before_compress, 8192);
        assert_eq!(r.bytes_after_compress, 3072);
        assert!((r.prune_fraction() - 12.0 / 32.0).abs() < 1e-12);
        assert!((r.compression_ratio() - 8.0 / 3.0).abs() < 1e-12);
        assert!(r.achieved_gpu_flops() > 0.0);
    }

    #[test]
    fn stochastic_counters_flow_into_the_report() {
        let mut tl = sample_timeline();
        tl.set_shots(256);
        tl.count_collapse();
        tl.count_collapse();
        tl.set_noise_ops(17);
        tl.add_measure_time(0.25);
        tl.add_measure_time(0.25);
        tl.add_sample_time(0.125);
        let r = ExecutionReport::from_timeline(&tl, 1);
        assert_eq!(r.shots, 256);
        assert_eq!(r.collapses, 2);
        assert_eq!(r.noise_ops, 17);
        assert_eq!(r.measure_time, 0.5);
        assert_eq!(r.sample_time, 0.125);
        let json = r.to_json_string();
        assert!(json.contains("\"shots\": 256"));
        assert!(json.contains("\"collapses\": 2"));
        assert!(json.contains("\"noise_ops\": 17"));
        assert!(json.contains("\"measure_time\": 0.5"));
        assert!(json.contains("\"sample_time\": 0.125"));
    }

    #[test]
    fn report_without_compression_keeps_ratio_one() {
        // The timeline schedules (de)compression *kernels* but the
        // compressor never ran: byte accounting must stay zero rather
        // than misreading kernel bytes as compressor traffic.
        let mut tl = Timeline::new();
        tl.schedule(Engine::GpuCompute(0), 0.0, 1.0, TaskKind::Compress, 512);
        tl.schedule(Engine::GpuCompute(0), 1.0, 1.0, TaskKind::Decompress, 512);
        let r = ExecutionReport::from_timeline(&tl, 1);
        assert_eq!(r.bytes_before_compress, 0);
        assert_eq!(r.bytes_after_compress, 0);
        assert_eq!(r.compression_ratio(), 1.0);
        assert_eq!(r.compress_time, 1.0);
        assert_eq!(r.decompress_time, 1.0);
    }

    fn multi_gpu_timeline(num_gpus: usize) -> Timeline {
        let mut tl = Timeline::new();
        // Host update overlapping per-GPU pipelines of different lengths.
        tl.schedule(Engine::Host, 0.0, 4.0, TaskKind::HostUpdate, 400);
        for g in 0..num_gpus {
            let t = 1.0 + g as f64;
            let h2d = tl.schedule(Engine::H2d(g), 0.0, t, TaskKind::H2dCopy, 100);
            let k = tl.schedule(Engine::GpuCompute(g), h2d.end, t, TaskKind::Kernel, 100);
            tl.schedule(Engine::D2h(g), k.end, t, TaskKind::D2hCopy, 100);
        }
        tl
    }

    #[test]
    fn multi_gpu_fractions_sum_engines_across_devices() {
        let num_gpus = 3;
        let tl = multi_gpu_timeline(num_gpus);
        let r = ExecutionReport::from_timeline(&tl, num_gpus);
        // GPU 2's pipeline (3 s per stage) ends last: makespan 9 s.
        assert_eq!(r.total_time, 9.0);
        // gpu_time sums compute across devices: 1 + 2 + 3.
        assert_eq!(r.gpu_time, 6.0);
        // transfer_time sums both copy engines of every device.
        assert_eq!(r.transfer_time, 12.0);
        assert!((r.gpu_fraction() - 6.0 / 9.0).abs() < 1e-12);
        assert!((r.host_fraction() - 4.0 / 9.0).abs() < 1e-12);
        // Copy engines overlap each other, so the fraction may pass 1 —
        // here 12/9.
        assert!((r.transfer_fraction() - 12.0 / 9.0).abs() < 1e-12);
        assert_eq!(r.num_gpus, num_gpus);
    }

    #[test]
    fn undercounting_num_gpus_drops_unseen_engines() {
        // Guard on the `num_gpus` contract: engines above the count are
        // not summed (the caller owns the platform size).
        let tl = multi_gpu_timeline(3);
        let r = ExecutionReport::from_timeline(&tl, 2);
        assert_eq!(r.gpu_time, 3.0);
        assert_eq!(r.transfer_time, 6.0);
    }

    #[test]
    fn prune_fraction() {
        let r = ExecutionReport {
            chunks_pruned: 30,
            chunks_processed: 70,
            ..ExecutionReport::default()
        };
        assert!((r.prune_fraction() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn compression_ratio_defaults_to_one() {
        let r = ExecutionReport::default();
        assert_eq!(r.compression_ratio(), 1.0);
    }

    #[test]
    fn json_string_is_deterministic_and_roundtrips_floats() {
        let mut tl = sample_timeline();
        tl.add_flops(1.5e9);
        tl.record_compression(4096, 1024);
        let r = ExecutionReport::from_timeline(&tl, 1);
        let a = r.to_json_string();
        let b = r.clone().to_json_string();
        assert_eq!(a, b, "same report must serialize byte-identically");
        // Shortest-roundtrip float formatting: parsing the emitted text
        // must recover the exact bit pattern.
        assert!(a.contains("\"total_time\": 6.5"));
        assert!(a.contains("\"flops_gpu\": 1500000000.0"));
        assert!(a.contains("\"bytes_after_compress\": 1024"));
        assert!(a.starts_with("{\n"));
        assert!(a.ends_with("\n}\n"));
    }

    #[test]
    fn empty_report_is_safe() {
        let r = ExecutionReport::default();
        assert_eq!(r.host_fraction(), 0.0);
        assert_eq!(r.arithmetic_intensity(), 0.0);
        assert_eq!(r.achieved_gpu_flops(), 0.0);
    }
}
