//! Property tests for the ABFT invariant layer (silent-data-corruption
//! defense). Two contracts:
//!
//! 1. **No false positives** — with `--verify-invariants` on and no
//!    faults injected, every version × thread count × device count ×
//!    chunk size completes with zero violations, on ideal and noisy
//!    circuits alike. A checker that cries wolf would burn the repair
//!    budget on healthy silicon.
//! 2. **Detection + audited repair** — a single injected kernel
//!    bit-flip (at the default high-magnitude bit) is always caught by
//!    the chunk-norm invariant and repaired by bounded re-execution,
//!    leaving the final state and shot samples bit-identical to a
//!    fault-free run of the same seeds.

use proptest::prelude::*;
use qgpu::config::{SimConfig, Version};
use qgpu::Simulator;
use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::NoiseConfig;
use qgpu_device::Platform;

const QUBITS: usize = 9;

/// Base config over one or four modeled GPUs, with the physics seed and
/// execution-shape knobs under test.
fn base_cfg(version: Version, threads: usize, quad: bool, chunk_log2: u32, seed: u64) -> SimConfig {
    let mut cfg = if quad {
        SimConfig::new(Platform::quad_p4_pcie().miniaturize(QUBITS, 0.05))
    } else {
        SimConfig::scaled_paper(QUBITS)
    };
    cfg = cfg
        .with_version(version)
        .with_threads(threads)
        .with_chunk_count_log2(chunk_log2);
    cfg.stoch_seed = seed;
    cfg.shots = 8;
    cfg
}

fn assert_bitwise_eq(a: &qgpu_statevec::StateVector, b: &qgpu_statevec::StateVector) {
    assert_eq!(a.len(), b.len());
    for i in 0..a.len() {
        let (x, y) = (a.amp(i), b.amp(i));
        assert!(
            x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
            "amplitude {i} differs: {x:?} vs {y:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn invariant_checks_never_false_positive(
        vi in 0usize..6,
        shape in 0u8..8,
        chunk_log2 in 3u32..7,
        bench in prop_oneof![
            Just(Benchmark::Qft),
            Just(Benchmark::Iqp),
            Just(Benchmark::Hchain),
        ],
        seed in 0u64..1024,
    ) {
        let version = Version::ALL[vi];
        // Three packed execution-shape bits (the vendored proptest caps
        // a strategy tuple at six elements).
        let threads = if shape & 1 == 0 { 1 } else { 4 };
        let quad = shape & 2 != 0;
        let noisy = shape & 4 != 0;
        let mut cfg = base_cfg(version, threads, quad, chunk_log2, seed);
        if noisy {
            cfg = cfg.with_noise(NoiseConfig {
                depolarizing: 0.02,
                bit_flip: 0.01,
                phase_flip: 0.01,
                loss: 0.005,
            });
        }
        let r = Simulator::new(cfg.with_verify_invariants())
            .try_run(&bench.generate(QUBITS))
            .expect("a fault-free run must pass every invariant check");
        let s = r.integrity.expect("verification attaches a summary");
        prop_assert!(s.checks > 0, "checks must actually run");
        prop_assert_eq!(s.violations, 0, "false positive: {:?}", s);
        prop_assert_eq!(s.flips_injected, 0);
    }

    #[test]
    fn single_kernel_flip_is_detected_and_repaired_bit_exactly(
        vi in 0usize..6,
        shape in 0u8..4,
        chunk_log2 in 3u32..7,
        flip_at in 2usize..12,
        seeds in 0u64..1024u64.pow(2),
    ) {
        let version = Version::ALL[vi];
        let threads = if shape & 1 == 0 { 1 } else { 4 };
        let quad = shape & 2 != 0;
        let (seed, fault_seed) = (seeds % 1024, seeds / 1024);
        let circuit = Benchmark::Qft.generate(QUBITS);
        let clean = Simulator::new(base_cfg(version, threads, quad, chunk_log2, seed))
            .try_run(&circuit)
            .expect("fault-free reference");

        let mut cfg = base_cfg(version, threads, quad, chunk_log2, seed);
        cfg.faults.seed = fault_seed;
        cfg.faults.kernel_flip_at = flip_at;
        let r = Simulator::new(cfg)
            .try_run(&circuit)
            .expect("a single flip must be absorbed, not surfaced");
        let s = r.integrity.expect("kernel faults attach a summary");
        prop_assert!(s.flips_injected >= 1, "the flip must actually fire");
        prop_assert!(s.violations >= 1, "undetected flip: {:?}", s);
        prop_assert!(s.fully_repaired(), "unrepaired violation: {:?}", s);
        assert_bitwise_eq(
            r.state.as_ref().expect("state kept"),
            clean.state.as_ref().expect("state kept"),
        );
        prop_assert_eq!(r.samples, clean.samples);
    }
}
