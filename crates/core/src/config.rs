//! Simulation configuration: execution version and platform knobs.

use qgpu_circuit::NoiseConfig;
use qgpu_compress::CodecKind;
use qgpu_device::Platform;
use qgpu_faults::{CancelToken, FaultConfig, RetryPolicy};
use qgpu_sched::devicegroup::OrchestratorConfig;
use qgpu_sched::reorder::ReorderStrategy;
use serde::{Deserialize, Serialize};

/// The six execution versions of the paper's §V ("We test six different
/// versions of execution for all quantum circuit benchmarks").
///
/// Each version is strictly cumulative over the previous one, except that
/// `Naive` replaces the baseline's static allocation rather than adding to
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Version {
    /// Qiskit-Aer v0.7.0-style execution: static chunk allocation, CPU
    /// updates host-resident chunks, reactive synchronous exchange.
    Baseline,
    /// Dynamic allocation: every chunk streams through the GPU, with all
    /// transfers and kernels serialized (paper §III-D).
    Naive,
    /// Adds proactive, double-buffered, bidirectional transfer (§IV-A).
    Overlap,
    /// Adds zero-amplitude chunk pruning with dynamic chunk size (§IV-B).
    Pruning,
    /// Adds forward-looking gate reordering (§IV-C).
    Reorder,
    /// Adds GFC lossless compression of non-zero chunks (§IV-D) — the
    /// full Q-GPU.
    QGpu,
}

impl Version {
    /// All six versions, in the paper's presentation order.
    pub const ALL: [Version; 6] = [
        Version::Baseline,
        Version::Naive,
        Version::Overlap,
        Version::Pruning,
        Version::Reorder,
        Version::QGpu,
    ];

    /// The paper's label for the version.
    pub fn label(self) -> &'static str {
        match self {
            Version::Baseline => "Baseline",
            Version::Naive => "Naive",
            Version::Overlap => "Overlap",
            Version::Pruning => "Pruning",
            Version::Reorder => "Reorder",
            Version::QGpu => "Q-GPU",
        }
    }

    /// Chunks stream through the GPU (everything but the baseline).
    pub fn is_streaming(self) -> bool {
        self != Version::Baseline
    }

    /// Transfers overlap with kernels and each other.
    pub fn has_overlap(self) -> bool {
        matches!(
            self,
            Version::Overlap | Version::Pruning | Version::Reorder | Version::QGpu
        )
    }

    /// Zero chunks are pruned from movement and update.
    pub fn has_pruning(self) -> bool {
        matches!(self, Version::Pruning | Version::Reorder | Version::QGpu)
    }

    /// The forward-looking reorder pass runs first.
    pub fn has_reorder(self) -> bool {
        matches!(self, Version::Reorder | Version::QGpu)
    }

    /// Non-zero chunks are GFC-compressed for transfer.
    pub fn has_compression(self) -> bool {
        self == Version::QGpu
    }

    /// The version's optimization subset as explicit flags — what the
    /// pipeline assembler consumes. The six named versions are just six
    /// points in the 2^4 flag lattice (plus the baseline's static
    /// allocation, which is an execution *mode*, not a flag).
    pub fn opt_flags(self) -> OptFlags {
        OptFlags {
            overlap: self.has_overlap(),
            pruning: self.has_pruning(),
            reorder: self.has_reorder(),
            compression: self.has_compression(),
            codec: CodecKind::Gfc,
        }
    }
}

impl std::fmt::Display for Version {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// An arbitrary subset of the paper's four composable optimizations
/// (§IV-A–D), decoupled from the six named [`Version`]s.
///
/// The paper's recipe is explicitly compositional: each optimization
/// layers independently on the naive streaming loop. `OptFlags` makes
/// that composition first-class — any of the 2^4 subsets runs through
/// the same stage-graph pipeline via [`SimConfig::with_opts`].
///
/// # Examples
///
/// ```
/// use qgpu::config::OptFlags;
///
/// let f = OptFlags::parse("pruning+compression").unwrap();
/// assert!(f.pruning && f.compression && !f.overlap);
/// assert_eq!(f.label(), "pruning+compression");
/// assert_eq!(OptFlags::parse("none").unwrap(), OptFlags::default());
/// assert_eq!(OptFlags::grid().len(), 16);
///
/// let f = OptFlags::parse("compression+cascade").unwrap();
/// assert_eq!(f.codec, qgpu::CodecKind::Cascade);
/// assert_eq!(f.label(), "compression+cascade");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct OptFlags {
    /// Proactive double-buffered bidirectional transfer (§IV-A).
    pub overlap: bool,
    /// Zero-amplitude chunk pruning (§IV-B); dynamic chunk sizing rides
    /// on this flag (gated further by [`SimConfig::dynamic_chunk_size`]).
    pub pruning: bool,
    /// The forward-looking gate reorder pass (§IV-C).
    pub reorder: bool,
    /// Compression of non-zero chunks in transit (§IV-D).
    pub compression: bool,
    /// Which codec the compression flag runs (GFC is the paper's choice
    /// and the bit-exact golden default). Parsed from tokens like
    /// `"cascade"` or `"codec=cascade"`; only meaningful when
    /// [`OptFlags::compression`] is on.
    #[serde(default)]
    pub codec: CodecKind,
}

impl OptFlags {
    /// Flag names in the paper's presentation order, aligned with the
    /// bit positions [`OptFlags::from_bits`] uses.
    const NAMES: [&'static str; 4] = ["overlap", "pruning", "reorder", "compression"];

    /// All 2^4 subsets, ordered by [`OptFlags::from_bits`] index.
    pub fn grid() -> Vec<OptFlags> {
        (0..16).map(OptFlags::from_bits).collect()
    }

    /// The subset encoded by the low four bits of `bits`
    /// (bit 0 = overlap, 1 = pruning, 2 = reorder, 3 = compression).
    pub fn from_bits(bits: u8) -> OptFlags {
        OptFlags {
            overlap: bits & 1 != 0,
            pruning: bits & 2 != 0,
            reorder: bits & 4 != 0,
            compression: bits & 8 != 0,
            codec: CodecKind::Gfc,
        }
    }

    /// Parses a `+`- or `,`-separated flag list (e.g.
    /// `"pruning+compression"`); `"none"` or the empty string is the
    /// empty subset, `"all"` the full recipe. Codec names (`gfc`,
    /// `zero-run`, `alp`, `cascade`, optionally prefixed `codec=`) select
    /// the compression codec.
    pub fn parse(s: &str) -> Result<OptFlags, String> {
        let mut f = OptFlags::default();
        let trimmed = s.trim().to_ascii_lowercase();
        if trimmed.is_empty() || trimmed == "none" {
            return Ok(f);
        }
        if trimmed == "all" {
            return Ok(OptFlags::from_bits(0b1111));
        }
        for tok in trimmed.split(['+', ',']) {
            let tok = tok.trim();
            match tok {
                "overlap" => f.overlap = true,
                "pruning" => f.pruning = true,
                "reorder" => f.reorder = true,
                "compression" | "compress" => f.compression = true,
                other => {
                    let name = other.strip_prefix("codec=").unwrap_or(other);
                    match name.parse::<CodecKind>() {
                        Ok(codec) => f.codec = codec,
                        Err(_) => {
                            return Err(format!(
                                "unknown optimization '{other}' (want overlap, pruning, \
                                 reorder, compression, a codec name \
                                 (gfc|zero-run|alp|cascade), none, or all)"
                            ))
                        }
                    }
                }
            }
        }
        Ok(f)
    }

    /// Canonical `+`-joined label (`"none"` for the empty subset) —
    /// inverse of [`OptFlags::parse`]. A non-default codec appends its
    /// name; the GFC default stays invisible so historical labels (and
    /// the golden fixtures keyed on them) are unchanged.
    pub fn label(&self) -> String {
        let set = [self.overlap, self.pruning, self.reorder, self.compression];
        let mut names: Vec<&str> = Self::NAMES
            .iter()
            .zip(set)
            .filter_map(|(&n, on)| on.then_some(n))
            .collect();
        if self.codec != CodecKind::Gfc {
            names.push(self.codec.name());
        }
        if names.is_empty() {
            "none".to_string()
        } else {
            names.join("+")
        }
    }
}

impl std::fmt::Display for OptFlags {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Flight-recorder configuration: a bounded ring of structured engine
/// events (retries, fallbacks, device loss, governor downshifts,
/// collapse outcomes) kept for post-mortems.
///
/// The dump policy is trigger-based by default: the ring is written to
/// `path` only when a fault-class event or a [`qgpu_faults::SimError`]
/// occurs during the run. `dump_always` (the CLI's `--flight-out`)
/// writes it unconditionally at the end of the run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightConfig {
    /// Ring capacity in events; old events fall off the front.
    pub events: usize,
    /// Dump destination; `None` uses [`FlightConfig::DEFAULT_PATH`].
    pub path: Option<String>,
    /// Dump even when nothing triggered (on-demand capture).
    pub dump_always: bool,
}

impl FlightConfig {
    /// Where a triggered dump lands when no path is configured.
    pub const DEFAULT_PATH: &'static str = "qgpu-flight.json";

    /// The dump destination.
    pub fn dump_path(&self) -> &str {
        self.path.as_deref().unwrap_or(Self::DEFAULT_PATH)
    }
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            events: qgpu_obs::DEFAULT_FLIGHT_EVENTS,
            path: None,
            dump_always: false,
        }
    }
}

/// Everything a [`crate::Simulator`] needs besides the circuit.
///
/// # Examples
///
/// ```
/// use qgpu::{SimConfig, Version};
///
/// let cfg = SimConfig::scaled_paper(12)
///     .with_version(Version::Pruning)
///     .with_chunk_count_log2(5);
/// assert_eq!(cfg.version, Version::Pruning);
/// assert_eq!(cfg.chunk_bits_for(12), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// The modeled hardware platform.
    pub platform: Platform,
    /// Which execution version to run.
    pub version: Version,
    /// `log2` of the number of chunks the state is split into (the paper
    /// uses 8192 = 2^13 chunks at 34 qubits; scaled runs default to 2^8 —
    /// deep enough that the double-buffer window spans several chunk
    /// tasks while chunks stay large enough for GFC's warp-lane
    /// prediction).
    pub chunk_count_log2: u32,
    /// GFC segment count per chunk (warps in the paper's Figure 11).
    pub compress_segments: usize,
    /// Keep the final state in the result (disable to save memory in
    /// timing sweeps).
    pub collect_state: bool,
    /// Record up to this many timeline events (0 disables tracing).
    pub trace_events: usize,
    /// Let pruning versions shrink the chunk size dynamically
    /// (Algorithm 1's `getChunkSize`); disable to ablate the paper's
    /// dynamic-chunk-size design choice.
    pub dynamic_chunk_size: bool,
    /// Which reordering pass versions with reordering run (the paper
    /// ships forward-looking; greedy is the ablation of §IV-C).
    pub reorder_strategy: ReorderStrategy,
    /// Fraction of GPU memory used as the in-flight transfer window (the
    /// paper splits memory into two halves, i.e. 0.5).
    pub buffer_split: f64,
    /// Extension beyond the paper: apply runs of consecutive chunk-local
    /// gates in a single chunk visit (one H2D/D2H round trip per batch
    /// instead of per gate) — the "cache blocking" idea of Doi et al.,
    /// which the paper's baseline lineage cites. Off by default to match
    /// the paper's per-gate streaming.
    pub batch_local_gates: bool,
    /// Longest run of chunk-local gates merged into one chunk visit when
    /// [`SimConfig::batch_local_gates`] is on (default 64).
    ///
    /// This bounds the *involvement-staleness* of the pruning decision: a
    /// batch evaluates prune-or-keep once, against the involvement mask
    /// snapshotted at its first gate, so a chunk's zero/non-zero status
    /// can be up to `max_batch - 1` gates stale by the batch's end. That
    /// is conservative, never wrong — chunk-local gates cannot move
    /// amplitude across chunk boundaries, so a chunk provably zero before
    /// the batch stays zero through it — but a larger cap defers pruning
    /// of chunks that *become* provably zero mid-batch, trading missed
    /// prune opportunities for fewer H2D/D2H round trips.
    pub max_batch: usize,
    /// Worker threads for the functional update (the
    /// [`qgpu_statevec::ChunkExecutor`] pool). Results are bitwise
    /// identical at every thread count; 1 keeps the seed's serial path.
    pub threads: usize,
    /// Collapse runs of adjacent compatible gates (same-qubit 1q runs,
    /// diagonal runs) into single fused kernels before execution, so each
    /// chunk is visited once per fused run instead of once per gate. The
    /// functional state is replayed exactly (bitwise identical to the
    /// unfused run); the timing model launches one fused kernel per chunk
    /// visit. Off by default to match the paper's per-gate execution.
    pub gate_fusion: bool,
    /// Record measured wall-clock spans and metrics while running (the
    /// `qgpu-obs` recorder). The run result then carries an
    /// [`crate::result::ObsData`] with per-stage spans, counters and
    /// histograms — the measured half of the two-track trace and the
    /// drift report. Off by default: disabled instrumentation is a
    /// branch on `None`.
    pub obs_spans: bool,
    /// Seeded fault-injection probabilities (all zero by default — no
    /// faults). Nonzero rates exercise the resilient pipeline: CRC-checked
    /// transfers with bounded retry, codec-failure fallback to raw
    /// transfer, corrupted-mask fallback to full-chunk execution, worker
    /// death recovery, and a deterministic fatal fault for
    /// checkpoint-resume testing.
    pub faults: FaultConfig,
    /// Retry/backoff policy for integrity failures; backoff is charged to
    /// the modeled timeline as [`qgpu_device::timeline::TaskKind::Backoff`]
    /// spans.
    pub retry: RetryPolicy,
    /// Compute per-chunk CRC32 integrity tags on every streamed transfer
    /// even when no faults are injected — the always-on cost the
    /// `fault_overhead` bench bounds. Implied whenever any fault rate is
    /// nonzero.
    pub integrity_checks: bool,
    /// Run the ABFT invariant checks on every kernel's output — per-chunk
    /// 2-norm preservation, magnitude preservation for diagonal kernels,
    /// zero-block checks for pruned chunks, and a whole-state norm gate
    /// before Measure/Sample. This is the silent-data-corruption defense:
    /// CRCs ([`SimConfig::integrity_checks`]) only guard *transfers*, so
    /// a bit flip inside a kernel sails through them; the algebraic
    /// invariants catch it. Implied whenever a kernel-flip fault is
    /// injected (detection must be armed to prove itself).
    pub verify_invariants: bool,
    /// Write a checkpoint every N program ops (0 disables). Requires
    /// [`SimConfig::checkpoint_path`].
    pub checkpoint_every: u64,
    /// Where periodic checkpoints are written (format v2, carrying the
    /// op index for [`crate::Simulator::try_run_from`] resume).
    pub checkpoint_path: Option<String>,
    /// Resilient multi-device orchestration: device-loss re-sharding,
    /// straggler work-stealing, and the memory-pressure governor.
    /// `None` keeps the plain round-robin dealer; the engines also bring
    /// the orchestrator up with defaults whenever a fleet-level fault
    /// (device loss, link degradation, straggler) is injected.
    pub orchestration: Option<OrchestratorConfig>,
    /// An explicit optimization subset overriding [`SimConfig::version`]'s
    /// flag set: the streaming pipeline runs with exactly these flags,
    /// enabling combinations no named version covers (e.g.
    /// pruning+compression without reorder). `None` (the default) derives
    /// the flags from the version, including the baseline's static
    /// allocation mode.
    pub opts: Option<OptFlags>,
    /// Per-gate noise channels. When set (and enabled), the engine
    /// rewrites the circuit into the seeded noisy trajectory *before*
    /// any reordering or fusion, so every execution version runs the
    /// identical noisy circuit.
    pub noise: Option<NoiseConfig>,
    /// End-of-circuit measurement shots. Nonzero makes the engine sample
    /// seeded shot counts from the final state into
    /// [`crate::result::RunResult::samples`].
    pub shots: u64,
    /// Seed for every stochastic execution decision — noise-channel
    /// draws, mid-circuit collapse outcomes, and shot sampling. Distinct
    /// from the fault seed: faults perturb the *machine*, this seed
    /// perturbs the *physics*. Same seed ⇒ bit-identical stochastic runs
    /// on every version, thread count, and device count.
    pub stoch_seed: u64,
    /// Flight-recorder configuration (`None` disables it). When set, the
    /// engine keeps a bounded ring of structured fault/lifecycle events
    /// and dumps it to JSON on any `SimError`, raw-codec fallback, worker
    /// loss or governor downshift — or unconditionally with
    /// [`FlightConfig::dump_always`]. Independent of
    /// [`SimConfig::obs_spans`]: a flight-only run records no spans.
    pub flight: Option<FlightConfig>,
    /// Cooperative cancellation token, polled at every gate boundary.
    /// When it trips, the run stops cleanly — chunks released, partial
    /// stage timings flushed — and returns
    /// [`qgpu_faults::SimError::JobAborted`] /
    /// [`qgpu_faults::SimError::DeadlineExceeded`] per the trip reason.
    /// `None` (the default) polls nothing.
    pub cancel: Option<CancelToken>,
}

impl SimConfig {
    /// A config over an explicit platform with paper-like defaults.
    pub fn new(platform: Platform) -> Self {
        SimConfig {
            platform,
            version: Version::QGpu,
            chunk_count_log2: 8,
            compress_segments: 32,
            collect_state: true,
            trace_events: 0,
            dynamic_chunk_size: true,
            reorder_strategy: ReorderStrategy::ForwardLooking,
            buffer_split: 0.5,
            batch_local_gates: false,
            max_batch: 64,
            threads: 1,
            gate_fusion: false,
            obs_spans: false,
            faults: FaultConfig::default(),
            retry: RetryPolicy::default(),
            integrity_checks: false,
            verify_invariants: false,
            checkpoint_every: 0,
            checkpoint_path: None,
            orchestration: None,
            opts: None,
            noise: None,
            shots: 0,
            stoch_seed: 0,
            flight: None,
            cancel: None,
        }
    }

    /// The standard experiment config: the paper's P100 platform with GPU
    /// memory scaled to a `num_qubits`-qubit run (preserving the paper's
    /// 34-qubit residency ratio — see `qgpu_device::Platform`).
    pub fn scaled_paper(num_qubits: usize) -> Self {
        SimConfig::new(Platform::scaled_paper_p100(num_qubits))
    }

    /// Sets the version.
    pub fn with_version(mut self, version: Version) -> Self {
        self.version = version;
        self
    }

    /// Sets the chunk-count exponent.
    pub fn with_chunk_count_log2(mut self, log2: u32) -> Self {
        self.chunk_count_log2 = log2;
        self
    }

    /// Disables state collection.
    pub fn timing_only(mut self) -> Self {
        self.collect_state = false;
        self
    }

    /// Enables timeline tracing with the given event cap.
    pub fn with_trace(mut self, events: usize) -> Self {
        self.trace_events = events;
        self
    }

    /// Disables dynamic chunk sizing (ablation).
    pub fn fixed_chunk_size(mut self) -> Self {
        self.dynamic_chunk_size = false;
        self
    }

    /// Overrides the reordering pass (ablation).
    pub fn with_reorder_strategy(mut self, strategy: ReorderStrategy) -> Self {
        self.reorder_strategy = strategy;
        self
    }

    /// Overrides the double-buffer split fraction (ablation).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < split < 1`.
    pub fn with_buffer_split(mut self, split: f64) -> Self {
        assert!(split > 0.0 && split < 1.0, "buffer split must be in (0,1)");
        self.buffer_split = split;
        self
    }

    /// Enables the gate-batching extension (see
    /// [`SimConfig::batch_local_gates`]).
    pub fn with_gate_batching(mut self) -> Self {
        self.batch_local_gates = true;
        self
    }

    /// Caps the gate-batching run length (see [`SimConfig::max_batch`]).
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn with_max_batch(mut self, max_batch: usize) -> Self {
        assert!(max_batch > 0, "batches hold at least one gate");
        self.max_batch = max_batch;
        self
    }

    /// Runs the streaming pipeline with an explicit optimization subset
    /// (see [`SimConfig::opts`]), overriding the version-derived flags.
    pub fn with_opts(mut self, opts: OptFlags) -> Self {
        self.opts = Some(opts);
        self
    }

    /// Selects the transfer-compression codec (the CLI's `--codec`),
    /// carried on the [`OptFlags`] so explicit subsets and the ablation
    /// grid cover it. No-op on a Baseline config without explicit opts:
    /// static allocation never compresses, and forcing `opts` there would
    /// silently switch the run to the streaming mode.
    pub fn with_codec(mut self, codec: CodecKind) -> Self {
        if self.opts.is_none() && self.version == Version::Baseline {
            return self;
        }
        let mut flags = self.opts.unwrap_or_else(|| self.version.opt_flags());
        flags.codec = codec;
        self.opts = Some(flags);
        self
    }

    /// The codec this run compresses with — the explicit [`OptFlags`]
    /// choice, or GFC (the paper's codec) when none is set.
    pub fn codec(&self) -> CodecKind {
        self.opts.map(|o| o.codec).unwrap_or_default()
    }

    /// Sets the functional-update worker-thread count (see
    /// [`SimConfig::threads`]).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Enables gate fusion (see [`SimConfig::gate_fusion`]).
    pub fn with_gate_fusion(mut self) -> Self {
        self.gate_fusion = true;
        self
    }

    /// Enables wall-clock span and metrics recording (see
    /// [`SimConfig::obs_spans`]).
    pub fn with_obs_spans(mut self) -> Self {
        self.obs_spans = true;
        self
    }

    /// Sets the fault-injection configuration (see [`SimConfig::faults`]).
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Overrides the retry/backoff policy (see [`SimConfig::retry`]).
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Enables CRC integrity tags on every transfer even with zero fault
    /// rates (see [`SimConfig::integrity_checks`]).
    pub fn with_integrity_checks(mut self) -> Self {
        self.integrity_checks = true;
        self
    }

    /// Enables the ABFT invariant checks on kernel output (see
    /// [`SimConfig::verify_invariants`]).
    pub fn with_verify_invariants(mut self) -> Self {
        self.verify_invariants = true;
        self
    }

    /// Enables periodic checkpointing: a v2 checkpoint is written to
    /// `path` every `every` program ops.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn with_checkpointing(mut self, every: u64, path: impl Into<String>) -> Self {
        assert!(every > 0, "checkpoint interval must be positive");
        self.checkpoint_every = every;
        self.checkpoint_path = Some(path.into());
        self
    }

    /// Enables multi-device orchestration (see
    /// [`SimConfig::orchestration`]). The orchestrator seed is taken
    /// from the fault seed so one knob reproduces a whole disrupted run.
    pub fn with_orchestration(mut self, orch: OrchestratorConfig) -> Self {
        self.orchestration = Some(orch);
        self
    }

    /// Enables the memory-pressure governor with a per-device residency
    /// budget of `bytes`, bringing orchestration up with defaults if it
    /// is not already configured.
    ///
    /// # Panics
    ///
    /// Panics if `bytes == 0`.
    pub fn with_mem_budget(mut self, bytes: u64) -> Self {
        assert!(bytes > 0, "memory budget must be positive");
        let mut orch = self.orchestration.unwrap_or_default();
        orch.mem_budget_bytes = Some(bytes);
        self.orchestration = Some(orch);
        self
    }

    /// Sets the per-gate noise channels (see [`SimConfig::noise`]).
    pub fn with_noise(mut self, noise: NoiseConfig) -> Self {
        self.noise = Some(noise);
        self
    }

    /// Sets the end-of-circuit shot count (see [`SimConfig::shots`]).
    pub fn with_shots(mut self, shots: u64) -> Self {
        self.shots = shots;
        self
    }

    /// Sets the stochastic-execution seed (see [`SimConfig::stoch_seed`]).
    pub fn with_stoch_seed(mut self, seed: u64) -> Self {
        self.stoch_seed = seed;
        self
    }

    /// Attaches the flight recorder (see [`SimConfig::flight`]).
    pub fn with_flight(mut self, flight: FlightConfig) -> Self {
        self.flight = Some(flight);
        self
    }

    /// Attaches a cooperative cancellation token (see
    /// [`SimConfig::cancel`]).
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// The noise channels to apply, if any are enabled.
    pub fn effective_noise(&self) -> Option<NoiseConfig> {
        self.noise.filter(NoiseConfig::is_enabled)
    }

    /// True when the resilient pipeline (CRC tags, retry modeling,
    /// degradation fallbacks) is active.
    pub fn resilience_active(&self) -> bool {
        self.integrity_checks || self.faults.any_enabled()
    }

    /// True when the ABFT invariant middleware should run: explicitly
    /// requested, or implied by an injected kernel-flip fault (the
    /// checks must be armed for injected corruption to be detected and
    /// repaired rather than silently shipped).
    pub fn integrity_active(&self) -> bool {
        self.verify_invariants || self.faults.kernel_faults_enabled()
    }

    /// True when the device-group orchestrator should run: explicitly
    /// configured, or any fleet-level fault is injected. A kernel-flip
    /// campaign on a multi-device fleet also counts — the health board's
    /// quarantine verdicts drain through the orchestrator's re-shard
    /// path, which must be up for a quarantined device to actually stop
    /// receiving work.
    pub fn orchestration_active(&self) -> bool {
        self.orchestration.is_some() || self.implied_orchestration()
    }

    /// Injected faults that imply orchestration without explicit config.
    fn implied_orchestration(&self) -> bool {
        self.faults.device_faults_enabled()
            || (self.faults.kernel_faults_enabled() && self.platform.num_gpus() > 1)
    }

    /// The orchestrator configuration to run with (explicit config, or
    /// defaults seeded from the fault seed when only fleet faults are
    /// set). `None` when orchestration is inactive.
    pub fn effective_orchestration(&self) -> Option<OrchestratorConfig> {
        if let Some(orch) = self.orchestration {
            Some(orch)
        } else if self.implied_orchestration() {
            Some(OrchestratorConfig {
                seed: self.faults.seed,
                ..OrchestratorConfig::default()
            })
        } else {
            None
        }
    }

    /// The chunk size in qubits for an `n`-qubit circuit (the *static*
    /// size; pruning versions shrink it dynamically below this cap).
    pub fn chunk_bits_for(&self, n: usize) -> u32 {
        (n as u32).saturating_sub(self.chunk_count_log2).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_feature_lattice() {
        use Version::*;
        assert!(!Baseline.is_streaming());
        assert!(Naive.is_streaming() && !Naive.has_overlap());
        assert!(Overlap.has_overlap() && !Overlap.has_pruning());
        assert!(Pruning.has_pruning() && !Pruning.has_reorder());
        assert!(Reorder.has_reorder() && !Reorder.has_compression());
        assert!(QGpu.has_compression() && QGpu.has_pruning() && QGpu.has_overlap());
    }

    #[test]
    fn chunk_bits_clamped() {
        let cfg = SimConfig::scaled_paper(4).with_chunk_count_log2(7);
        assert_eq!(cfg.chunk_bits_for(4), 1);
        assert_eq!(cfg.chunk_bits_for(20), 13);
    }

    #[test]
    fn opt_flags_roundtrip_and_match_versions() {
        for bits in 0..16u8 {
            let f = OptFlags::from_bits(bits);
            assert_eq!(OptFlags::parse(&f.label()).unwrap(), f);
        }
        assert_eq!(Version::Naive.opt_flags(), OptFlags::default());
        assert_eq!(Version::QGpu.opt_flags(), OptFlags::from_bits(0b1111));
        assert_eq!(
            Version::Pruning.opt_flags(),
            OptFlags {
                overlap: true,
                pruning: true,
                reorder: false,
                compression: false,
                codec: CodecKind::Gfc,
            }
        );
        assert!(OptFlags::parse("sharding").is_err());
        assert_eq!(OptFlags::parse("all").unwrap(), OptFlags::from_bits(0b1111));
    }

    #[test]
    fn codec_selection_rides_on_opt_flags() {
        for (token, kind) in [
            ("gfc", CodecKind::Gfc),
            ("zero-run", CodecKind::ZeroRun),
            ("alp", CodecKind::Alp),
            ("cascade", CodecKind::Cascade),
        ] {
            let f = OptFlags::parse(&format!("compression+{token}")).unwrap();
            assert_eq!(f.codec, kind);
            assert_eq!(OptFlags::parse(&f.label()).unwrap(), f);
            let g = OptFlags::parse(&format!("compression+codec={token}")).unwrap();
            assert_eq!(g.codec, kind);
        }
        // Default stays invisible in labels (golden fixtures key on them).
        assert_eq!(
            OptFlags::parse("all").unwrap().label(),
            OptFlags::from_bits(0b1111).label()
        );

        let cfg = SimConfig::scaled_paper(8).with_codec(CodecKind::Cascade);
        assert_eq!(cfg.codec(), CodecKind::Cascade);
        assert!(cfg.opts.unwrap().compression);

        // Baseline without explicit opts must not be flipped to streaming.
        let base = SimConfig::scaled_paper(8)
            .with_version(Version::Baseline)
            .with_codec(CodecKind::Cascade);
        assert_eq!(base.opts, None);
        assert_eq!(base.codec(), CodecKind::Gfc);
    }

    #[test]
    fn opts_and_max_batch_defaults() {
        let cfg = SimConfig::scaled_paper(8);
        assert_eq!(cfg.opts, None);
        assert_eq!(cfg.max_batch, 64);
        let cfg = cfg
            .with_opts(OptFlags::parse("pruning+compression").unwrap())
            .with_max_batch(8);
        assert_eq!(cfg.max_batch, 8);
        assert!(cfg.opts.unwrap().pruning && cfg.opts.unwrap().compression);
    }

    #[test]
    fn labels_are_paper_names() {
        let labels: Vec<&str> = Version::ALL.iter().map(|v| v.label()).collect();
        assert_eq!(
            labels,
            vec!["Baseline", "Naive", "Overlap", "Pruning", "Reorder", "Q-GPU"]
        );
    }
}
