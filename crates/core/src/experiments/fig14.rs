//! Figure 14: compression and decompression overheads.
//!
//! The paper measures 3.31% (compression) and 2.84% (decompression) of
//! execution time on average.

use qgpu_circuit::generators::Benchmark;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, pct, Table};

/// Runs the overhead measurement for the full Q-GPU version.
pub fn run(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Figure 14: compression/decompression overhead ({qubits} qubits)"),
        ["circuit", "compress", "decompress", "compression ratio"],
    );
    let mut sums = [0.0f64; 2];
    for b in Benchmark::ALL {
        let circuit = b.generate(qubits);
        let r = Simulator::new(
            SimConfig::scaled_paper(qubits)
                .with_version(Version::QGpu)
                .timing_only(),
        )
        .run(&circuit);
        let total = r.report.total_time;
        let comp = r.report.compress_time / total;
        let decomp = r.report.decompress_time / total;
        sums[0] += comp;
        sums[1] += decomp;
        table.row([
            b.abbrev().to_string(),
            pct(comp),
            pct(decomp),
            f2(r.report.compression_ratio()),
        ]);
    }
    let n = Benchmark::ALL.len() as f64;
    table.row([
        "average".to_string(),
        pct(sums[0] / n),
        pct(sums[1] / n),
        String::new(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overheads_are_small() {
        let t = run(11);
        let avg = t.rows.last().expect("average row");
        let comp: f64 = avg[1].trim_end_matches('%').parse().expect("number");
        let decomp: f64 = avg[2].trim_end_matches('%').parse().expect("number");
        assert!(comp < 20.0, "compress {comp}% (paper: 3.31%)");
        assert!(decomp < 20.0, "decompress {decomp}% (paper: 2.84%)");
    }

    #[test]
    fn qaoa_compresses_better_than_iqp() {
        // 13 qubits so chunks are large enough for GFC's warp-lane
        // prediction to have history (the paper's Figure 10 pair).
        let t = run(14);
        let ratio = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).expect("row")[3]
                .parse()
                .expect("number")
        };
        assert!(
            ratio("qaoa") > ratio("iqp"),
            "paper: qaoa smooth ({}), iqp dispersed ({})",
            ratio("qaoa"),
            ratio("iqp")
        );
    }
}
