//! Figure 15: roofline analysis of QCS on a V100.
//!
//! The paper plots qft and iqp at several sizes under Baseline, Naive and
//! Q-GPU: all points sit under the bandwidth roof (memory-bound); the
//! baseline's FLOP rate collapses once the state exceeds GPU memory,
//! Naive recovers FLOPs but loses intensity, Q-GPU recovers both.

use qgpu_circuit::generators::Benchmark;
use qgpu_device::roofline::{attainable_flops, RooflinePoint};
use qgpu_device::{GpuSpec, Platform};

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::Table;

/// Runs the roofline measurement for qft and iqp.
pub fn run(qubits: usize) -> Table {
    let gpu = GpuSpec::v100_16gb();
    let mut table = Table::new(
        &format!(
            "Figure 15: roofline on V100 ({qubits} qubits; ridge at {:.2} flop/byte)",
            qgpu_device::roofline::ridge_intensity(&gpu)
        ),
        [
            "circuit",
            "version",
            "intensity (flop/B)",
            "achieved GFLOPS",
            "roof GFLOPS",
            "memory bound",
        ],
    );
    for b in [Benchmark::Qft, Benchmark::Iqp] {
        let circuit = b.generate(qubits);
        for v in [Version::Baseline, Version::Naive, Version::QGpu] {
            let platform = Platform::single(
                "V100-scaled",
                qgpu_device::HostSpec::xeon_6133_8c(),
                gpu.clone(),
                qgpu_device::LinkSpec::pcie3_x16(),
            )
            .miniaturize(qubits, 496.0 / 8192.0);
            let r = Simulator::new(SimConfig::new(platform).with_version(v).timing_only())
                .run(&circuit);
            let bytes = r.report.bytes_gpu + r.report.bytes_h2d + r.report.bytes_d2h;
            let point = RooflinePoint::new(r.report.flops_gpu.max(1.0), bytes, r.report.total_time);
            let roof = attainable_flops(&gpu, point.intensity);
            table.row([
                b.abbrev().to_string(),
                v.label().to_string(),
                format!("{:.3}", point.intensity),
                format!("{:.2}", point.achieved_flops / 1e9),
                format!("{:.2}", roof / 1e9),
                qgpu_device::roofline::is_memory_bound(&gpu, point.intensity).to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_points_under_the_roof() {
        let t = run(11);
        for row in &t.rows {
            let achieved: f64 = row[3].parse().expect("number");
            let roof: f64 = row[4].parse().expect("number");
            assert!(
                achieved <= roof * 1.001,
                "{} {}: achieved {achieved} exceeds roof {roof}",
                row[0],
                row[1]
            );
        }
    }

    #[test]
    fn baseline_flops_collapse_and_qgpu_recovers() {
        let t = run(11);
        let gflops = |circuit: &str, version: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == circuit && r[1] == version)
                .expect("row")[3]
                .parse()
                .expect("number")
        };
        assert!(
            gflops("qft", "Q-GPU") > gflops("qft", "Baseline"),
            "Q-GPU must recover FLOPs over the capacity-exceeded baseline"
        );
    }
}
