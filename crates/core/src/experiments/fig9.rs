//! Figure 9: qubit involvement during simulation under three gate orders.
//!
//! The paper plots the involvement curve of gs_22, qft_22 and qaoa_22
//! under the original, greedy, and forward-looking orders; the "speed" of
//! reaching full involvement indicates the pruning potential. The table
//! samples each curve at fixed fractions of the circuit.

use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::involvement::{involvement_counts, involvement_integral};
use qgpu_sched::reorder::ReorderStrategy;

use crate::experiments::Table;

/// The circuits the paper shows.
pub const CIRCUITS: [Benchmark; 3] = [Benchmark::Gs, Benchmark::Qft, Benchmark::Qaoa];

/// Runs the involvement-curve comparison.
pub fn run(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Figure 9: involvement during simulation ({qubits} qubits)"),
        [
            "circuit",
            "order",
            "25% ops",
            "50% ops",
            "75% ops",
            "100% ops",
            "full at op",
            "integral",
        ],
    );
    for b in CIRCUITS {
        let c = b.generate(qubits);
        for strategy in ReorderStrategy::ALL {
            let reordered = strategy.reorder(&c);
            let counts = involvement_counts(&reordered);
            let sample = |frac: f64| -> u32 {
                let idx = ((counts.len() as f64 * frac).ceil() as usize).clamp(1, counts.len());
                counts[idx - 1]
            };
            let full_at = counts
                .iter()
                .position(|&x| x as usize == qubits)
                .map(|p| (p + 1).to_string())
                .unwrap_or_else(|| "never".to_string());
            table.row([
                b.abbrev().to_string(),
                strategy.label().to_string(),
                sample(0.25).to_string(),
                sample(0.5).to_string(),
                sample(0.75).to_string(),
                sample(1.0).to_string(),
                full_at,
                format!("{:.3}", involvement_integral(&reordered)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gs_benefits_from_forward_looking() {
        let t = run(12);
        let full_at = |circuit: &str, order: &str| -> usize {
            t.rows
                .iter()
                .find(|r| r[0] == circuit && r[1] == order)
                .expect("row")[6]
                .parse()
                .expect("number")
        };
        assert!(
            full_at("gs", "forward-looking") > full_at("gs", "original"),
            "forward-looking must delay gs involvement"
        );
    }

    #[test]
    fn qaoa_is_mostly_unchanged() {
        let t = run(12);
        let full_at = |order: &str| -> usize {
            t.rows
                .iter()
                .find(|r| r[0] == "qaoa" && r[1] == order)
                .expect("row")[6]
                .parse()
                .expect("number")
        };
        let orig = full_at("original");
        let fl = full_at("forward-looking");
        // Some movement is possible, but qaoa stays early-involving.
        assert!(fl < 4 * orig, "qaoa moved too much: {orig} -> {fl}");
    }

    #[test]
    fn nine_rows() {
        assert_eq!(run(10).rows.len(), 9);
    }
}
