//! Figure 7: state amplitude distribution of hchain_10 as gates apply.
//!
//! The paper plots the raw amplitudes after 0, 30, 60 and 90 operations,
//! showing zeros disappearing as involvement spreads. The table reports
//! the zero fraction and amplitude magnitude statistics at the same
//! checkpoints.

use qgpu_circuit::generators::Benchmark;
use qgpu_math::stats::OnlineStats;
use qgpu_statevec::StateVector;

use crate::experiments::{pct, Table};

/// Runs the distribution snapshots.
pub fn run(qubits: usize, checkpoints: &[usize]) -> Table {
    let circuit = Benchmark::Hchain.generate(qubits);
    let mut table = Table::new(
        &format!("Figure 7: hchain_{qubits} amplitude distribution"),
        ["after ops", "zero amplitudes", "mean |a|", "max |a|"],
    );
    let mut state = StateVector::new_zero(qubits);
    let mut applied = 0usize;
    for &cp in checkpoints {
        let cp = cp.min(circuit.len());
        for op in &circuit.ops()[applied..cp] {
            state.apply(op);
        }
        applied = cp;
        let stats: OnlineStats = state.amps().iter().map(|a| a.abs()).collect();
        table.row([
            cp.to_string(),
            pct(state.zero_count() as f64 / state.len() as f64),
            format!("{:.5}", stats.mean()),
            format!("{:.5}", stats.max()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_shrink_as_gates_apply() {
        let t = run(10, &[0, 30, 60, 90]);
        let zero =
            |i: usize| -> f64 { t.cell(i, 1).trim_end_matches('%').parse().expect("number") };
        assert!(zero(0) > 99.0, "initial state is almost all zeros");
        assert!(
            zero(3) < zero(0),
            "zeros must shrink: {} -> {}",
            zero(0),
            zero(3)
        );
    }

    #[test]
    fn checkpoints_clamp_to_circuit_length() {
        let t = run(6, &[0, 100_000]);
        assert_eq!(t.rows.len(), 2);
    }
}
