//! Figure 8: the gs_5 reordering walk-through.
//!
//! Reproduces the paper's worked example: the number of involved qubits
//! after each step of gs_5 under the original order, greedy reordering
//! and forward-looking reordering.

use qgpu_circuit::involvement::involvement_counts;
use qgpu_circuit::Circuit;
use qgpu_sched::reorder::ReorderStrategy;

use crate::experiments::Table;

/// The paper's Figure 8(a) circuit.
pub fn gs5() -> Circuit {
    let mut c = Circuit::with_name(5, "gs_5");
    c.h(0).h(1).h(2).h(3).h(4);
    c.cx(0, 1).cx(0, 2).cx(1, 3).cx(2, 4);
    c
}

/// Runs the walk-through.
pub fn run() -> Table {
    let c = gs5();
    let mut table = Table::new(
        "Figure 8: involved qubits per step on gs_5",
        ["order", "involvement trajectory", "full at step"],
    );
    for strategy in ReorderStrategy::ALL {
        let reordered = strategy.reorder(&c);
        let counts = involvement_counts(&reordered);
        let full_at = counts
            .iter()
            .position(|&x| x == 5)
            .map(|p| p + 1)
            .unwrap_or(counts.len());
        let traj = counts
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("→");
        table.row([strategy.label().to_string(), traj, full_at.to_string()]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn original_order_involves_at_step_5() {
        let t = run();
        assert_eq!(t.cell(0, 2), "5");
    }

    #[test]
    fn forward_looking_delays_furthest() {
        let t = run();
        let greedy: usize = t.cell(1, 2).parse().expect("number");
        let fl: usize = t.cell(2, 2).parse().expect("number");
        assert!(fl >= greedy);
        assert_eq!(fl, 8);
    }
}
