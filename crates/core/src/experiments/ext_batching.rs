//! Extension study: gate batching ("cache blocking") on top of Q-GPU.
//!
//! The paper streams chunks **per gate**; its baseline lineage (Doi et
//! al., the paper's references 17 and 18) instead applies runs of
//! chunk-local gates per chunk visit. This experiment layers that idea on
//! the full Q-GPU recipe and measures what is left on the table: circuits
//! with long runs of chunk-local gates collapse their transfer volume by
//! the mean batch length.

use qgpu_circuit::generators::Benchmark;
use qgpu_math::stats::geometric_mean;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, Table};

/// Runs Q-GPU with and without gate batching.
pub fn run(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Extension: gate batching over Q-GPU ({qubits} qubits, times in ms)"),
        [
            "circuit",
            "Q-GPU",
            "Q-GPU+batching",
            "speedup",
            "bytes saved",
        ],
    );
    let mut speedups = Vec::new();
    for b in Benchmark::ALL {
        let c = b.generate(qubits);
        let run_cfg = |batching: bool| {
            let mut cfg = SimConfig::scaled_paper(qubits)
                .with_version(Version::QGpu)
                .timing_only();
            if batching {
                cfg = cfg.with_gate_batching();
            }
            Simulator::new(cfg).run(&c).report
        };
        let plain = run_cfg(false);
        let batched = run_cfg(true);
        let speedup = plain.total_time / batched.total_time;
        speedups.push(speedup);
        let bytes_plain = plain.bytes_h2d + plain.bytes_d2h;
        let bytes_batched = batched.bytes_h2d + batched.bytes_d2h;
        table.row([
            b.abbrev().to_string(),
            f2(plain.total_time * 1e3),
            f2(batched.total_time * 1e3),
            format!("{speedup:.2}x"),
            format!(
                "{:.1}%",
                100.0 * (1.0 - bytes_batched as f64 / bytes_plain.max(1) as f64)
            ),
        ]);
    }
    table.row([
        "geomean".to_string(),
        String::new(),
        String::new(),
        format!("{:.2}x", geometric_mean(speedups.iter().copied())),
        String::new(),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batching_always_helps_or_ties() {
        let t = run(11);
        for row in t.rows.iter().take(t.rows.len() - 1) {
            let speedup: f64 = row[3].trim_end_matches('x').parse().expect("number");
            assert!(speedup > 0.95, "{}: {speedup}x", row[0]);
        }
    }

    #[test]
    fn deep_local_circuits_benefit_most() {
        let t = run(11);
        let speedup = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).expect("row")[3]
                .trim_end_matches('x')
                .parse()
                .expect("number")
        };
        // qaoa's long unprunable runs of local gates batch best — batching
        // attacks exactly the transfer volume pruning cannot touch.
        assert!(
            speedup("qaoa") > 1.5,
            "qaoa batching speedup {}",
            speedup("qaoa")
        );
    }
}
