//! Figure 6: the execution timeline of each optimization.
//!
//! The paper's Figure 6 is a schematic timeline; here each version runs
//! with tracing enabled and the table reports the measures the schematic
//! illustrates — makespan, per-engine busy time, and how much of the
//! H2D/D2H traffic overlaps.

use qgpu_circuit::generators::Benchmark;
use qgpu_device::timeline::{Engine, TraceEvent};

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, Table};

/// Runs the timeline comparison on one circuit.
pub fn run(benchmark: Benchmark, qubits: usize) -> Table {
    let circuit = benchmark.generate(qubits);
    let mut table = Table::new(
        &format!(
            "Figure 6: timeline of each optimization ({} @ {qubits} qubits, times in ms)",
            benchmark.abbrev()
        ),
        [
            "version",
            "makespan",
            "host busy",
            "gpu busy",
            "h2d busy",
            "d2h busy",
            "transfer overlap",
        ],
    );
    for v in Version::ALL {
        let cfg = SimConfig::scaled_paper(qubits)
            .with_version(v)
            .timing_only()
            .with_trace(200_000);
        let r = Simulator::new(cfg).run(&circuit);
        let ms = 1e3;
        let h2d: f64 = sum_busy(&r.trace, |e| matches!(e, Engine::H2d(_)));
        let d2h: f64 = sum_busy(&r.trace, |e| matches!(e, Engine::D2h(_)));
        let overlap = transfer_overlap(&r.trace);
        table.row([
            v.label().to_string(),
            f2(r.report.total_time * ms),
            f2(r.report.host_time * ms),
            f2(r.report.gpu_time * ms),
            f2(h2d * ms),
            f2(d2h * ms),
            f2(overlap * ms),
        ]);
    }
    table
}

/// ASCII Gantt charts of each version's opening pipeline — a direct
/// visual analogue of the paper's Figure 6 schematic.
pub fn gantt(benchmark: Benchmark, qubits: usize, columns: usize) -> String {
    use std::fmt::Write as _;
    let circuit = benchmark.generate(qubits);
    let mut out = String::new();
    for v in Version::ALL {
        let cfg = SimConfig::scaled_paper(qubits)
            .with_version(v)
            .timing_only()
            .with_trace(4_000);
        let r = Simulator::new(cfg).run(&circuit);
        let _ = writeln!(out, "--- {} ---", v.label());
        out.push_str(&qgpu_device::gantt::render(&r.trace, columns));
    }
    out
}

fn sum_busy(trace: &[TraceEvent], pred: impl Fn(&Engine) -> bool) -> f64 {
    trace
        .iter()
        .filter(|e| pred(&e.engine))
        .map(|e| e.span.duration())
        .sum()
}

/// Time during which an H2D and a D2H copy run simultaneously — zero in
/// the serialized versions, substantial once proactive transfer is on.
fn transfer_overlap(trace: &[TraceEvent]) -> f64 {
    let mut h2d: Vec<(f64, f64)> = Vec::new();
    let mut d2h: Vec<(f64, f64)> = Vec::new();
    for e in trace {
        match e.engine {
            Engine::H2d(_) => h2d.push((e.span.start, e.span.end)),
            Engine::D2h(_) => d2h.push((e.span.start, e.span.end)),
            _ => {}
        }
    }
    let mut overlap = 0.0;
    let mut j = 0;
    for &(s, e) in &h2d {
        while j < d2h.len() && d2h[j].1 <= s {
            j += 1;
        }
        let mut k = j;
        while k < d2h.len() && d2h[k].0 < e {
            overlap += (e.min(d2h[k].1) - s.max(d2h[k].0)).max(0.0);
            k += 1;
        }
    }
    overlap
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overlap_version_overlaps_transfers() {
        let t = run(Benchmark::Qft, 10);
        // Row order matches Version::ALL; column 6 is transfer overlap.
        let naive_overlap: f64 = t.cell(1, 6).parse().expect("number");
        let overlap_overlap: f64 = t.cell(2, 6).parse().expect("number");
        assert!(
            naive_overlap < 1e-9,
            "naive must serialize: {naive_overlap}"
        );
        assert!(
            overlap_overlap > naive_overlap,
            "proactive transfer must overlap: {overlap_overlap}"
        );
    }

    #[test]
    fn makespans_shrink_along_the_recipe() {
        let t = run(Benchmark::Iqp, 10);
        let get = |i: usize| t.cell(i, 1).parse::<f64>().expect("number");
        // Q-GPU (row 5) beats Naive (row 1).
        assert!(get(5) < get(1));
    }
}
