//! Table III: deep circuits (paper §V-F).
//!
//! Pruning + reordering on the Google deep circuit (`grqc`) and two deep
//! random circuits; the paper reports 41.47% and ~17.7% execution time
//! reductions of Reorder over Overlap.

use qgpu_circuit::generators::{deep_random_circuit, google_deep_circuit};
use qgpu_circuit::Circuit;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, Table};

/// Runs the deep-circuit study. `qubits` sizes the random circuits; the
/// paper uses 31/32, scaled runs use smaller states.
pub fn run(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Table III: pruning + reordering on deep circuits ({qubits} qubits)"),
        [
            "circuit",
            "total ops",
            "Overlap (s)",
            "Reorder (s)",
            "reduction",
        ],
    );
    let circuits: Vec<Circuit> = vec![
        google_deep_circuit(qubits),
        deep_random_circuit(qubits.saturating_sub(1).max(2)),
        deep_random_circuit(qubits),
    ];
    for c in &circuits {
        let n = c.num_qubits();
        let time = |v: Version| {
            Simulator::new(SimConfig::scaled_paper(n).with_version(v).timing_only())
                .run(c)
                .report
                .total_time
        };
        let overlap = time(Version::Overlap);
        let reorder = time(Version::Reorder);
        table.row([
            c.name().to_string(),
            c.len().to_string(),
            f2(overlap),
            f2(reorder),
            format!("{:.2}%", 100.0 * (1.0 - reorder / overlap)),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reorder_helps_deep_circuits() {
        let t = run(10);
        for row in &t.rows {
            let reduction: f64 = row[4].trim_end_matches('%').parse().expect("number");
            assert!(
                reduction > -5.0,
                "{}: reorder should not substantially hurt ({reduction}%)",
                row[0]
            );
        }
        // At least one deep circuit must benefit noticeably.
        let best: f64 = t
            .rows
            .iter()
            .map(|r| r[4].trim_end_matches('%').parse::<f64>().expect("number"))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(best > 2.0, "best reduction {best}% (paper: 17-41%)");
    }

    #[test]
    fn grqc_is_the_deepest() {
        let t = run(9);
        let ops: Vec<usize> = t
            .rows
            .iter()
            .map(|r| r[1].parse().expect("number"))
            .collect();
        assert!(ops[0] > ops[1] && ops[0] > ops[2]);
    }
}
