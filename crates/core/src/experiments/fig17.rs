//! Figure 17: Q-GPU on NVIDIA V100 and A100 (paper §V-D).
//!
//! The paper reports 53.24% (V100) and 27.05% (A100) average reductions —
//! the A100's larger device memory leaves the baseline more GPU-resident,
//! shrinking Q-GPU's edge. The same effect appears here through the
//! platform presets.

use qgpu_circuit::generators::Benchmark;
use qgpu_device::Platform;
use qgpu_math::stats::geometric_mean;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, Table};

/// Runs the cross-GPU comparison. GPU memory is scaled to the state size
/// with each platform's characteristic residency: the V100 holds ~10% of
/// the state, while the A100 server — whose 85 GB host memory caps it to
/// much smaller state vectors (the paper notes hchain_34/qaoa_32 fail
/// there) — holds ~45%. The larger resident fraction is exactly why the
/// paper's baseline A100 "has higher GPU utilization and performs
/// better", shrinking Q-GPU's relative gain.
pub fn run(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!(
            "Figure 17: Q-GPU on V100 and A100 ({qubits} qubits, normalized to each baseline)"
        ),
        ["circuit", "V100 Q-GPU", "A100 Q-GPU"],
    );
    let platforms = [
        (Platform::paper_v100().miniaturize(qubits, 0.10), 0),
        (Platform::paper_a100().miniaturize(qubits, 0.45), 1),
    ];
    let mut reductions: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for b in Benchmark::ALL {
        let circuit = b.generate(qubits);
        let mut cells = vec![b.abbrev().to_string()];
        for (platform, idx) in &platforms {
            let time = |v: Version| {
                Simulator::new(
                    SimConfig::new(platform.clone())
                        .with_version(v)
                        .timing_only(),
                )
                .run(&circuit)
                .report
                .total_time
            };
            let norm = time(Version::QGpu) / time(Version::Baseline);
            reductions[*idx].push(norm);
            cells.push(f2(norm));
        }
        table.row(cells);
    }
    table.row([
        "geomean".to_string(),
        f2(geometric_mean(reductions[0].iter().copied())),
        f2(geometric_mean(reductions[1].iter().copied())),
    ]);
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qgpu_helps_more_on_the_memory_starved_v100() {
        let t = run(11);
        let avg = t.rows.last().expect("geomean");
        let v100: f64 = avg[1].parse().expect("number");
        let a100: f64 = avg[2].parse().expect("number");
        assert!(v100 < 1.0, "V100 Q-GPU must beat its baseline: {v100}");
        assert!(
            v100 < a100,
            "paper: bigger reduction on V100 ({v100}) than A100 ({a100})"
        );
    }
}
