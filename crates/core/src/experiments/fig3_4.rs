//! Figures 3 and 4: the naive dynamic-allocation version.
//!
//! Figure 3 normalizes the naive version's execution time to the baseline
//! (the paper: "none of the quantum circuits we studied show
//! improvements"); Figure 4 breaks its time down and finds data movement
//! dominant.

use qgpu_circuit::generators::Benchmark;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, pct, Table};

/// Runs both figures at the given size; returns (fig3, fig4).
pub fn run(qubits: usize) -> (Table, Table) {
    let mut fig3 = Table::new(
        &format!("Figure 3: naive time normalized to baseline ({qubits} qubits)"),
        ["circuit", "normalized time"],
    );
    let mut fig4 = Table::new(
        &format!("Figure 4: naive execution breakdown ({qubits} qubits)"),
        ["circuit", "data movement", "gpu", "other"],
    );
    for b in Benchmark::ALL {
        let circuit = b.generate(qubits);
        let run_v = |v: Version| {
            Simulator::new(
                SimConfig::scaled_paper(qubits)
                    .with_version(v)
                    .timing_only(),
            )
            .run(&circuit)
        };
        let baseline = run_v(Version::Baseline);
        let naive = run_v(Version::Naive);
        fig3.row([
            b.abbrev().to_string(),
            f2(naive.report.total_time / baseline.report.total_time),
        ]);
        let total = naive.report.total_time;
        let movement = naive.report.transfer_time / total;
        let gpu = naive.report.gpu_time / total;
        fig4.row([
            b.abbrev().to_string(),
            pct(movement),
            pct(gpu),
            pct((1.0 - movement - gpu).max(0.0)),
        ]);
    }
    (fig3, fig4)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_never_improves() {
        let (fig3, _) = run(10);
        for row in &fig3.rows {
            let norm: f64 = row[1].parse().expect("number");
            assert!(
                norm > 1.0,
                "{}: naive should not beat baseline ({norm})",
                row[0]
            );
        }
    }

    #[test]
    fn naive_is_movement_dominated() {
        let (_, fig4) = run(10);
        for row in &fig4.rows {
            let movement: f64 = row[1].trim_end_matches('%').parse().expect("number");
            assert!(movement > 50.0, "{}: movement = {movement}%", row[0]);
        }
    }
}
