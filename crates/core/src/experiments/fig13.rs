//! Figure 13: data transfer time normalized to the Naive version.
//!
//! The paper reports a step-wise reduction: Overlap cuts transfer time
//! ~44.56% uniformly (bidirectional engines), Pruning and Reorder cut it
//! circuit-dependently, Compression helps smooth-amplitude circuits.

use qgpu_circuit::generators::Benchmark;

use crate::config::{SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, Table};

/// Wall-clock attributable to data transfer: the interval engines are
/// collectively moving data, approximated by the slower direction's busy
/// time per GPU (directions overlap under proactive transfer).
fn transfer_wallclock(report: &qgpu_device::ExecutionReport, overlapped: bool) -> f64 {
    if overlapped {
        report.transfer_time / 2.0
    } else {
        report.transfer_time
    }
}

/// Runs the normalized-transfer-time comparison.
pub fn run(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Figure 13: data transfer time normalized to Naive ({qubits} qubits)"),
        ["circuit", "Naive", "Overlap", "Pruning", "Reorder", "Q-GPU"],
    );
    let versions = [
        Version::Naive,
        Version::Overlap,
        Version::Pruning,
        Version::Reorder,
        Version::QGpu,
    ];
    for b in Benchmark::ALL {
        let circuit = b.generate(qubits);
        let times: Vec<f64> = versions
            .iter()
            .map(|&v| {
                let r = Simulator::new(
                    SimConfig::scaled_paper(qubits)
                        .with_version(v)
                        .timing_only(),
                )
                .run(&circuit);
                transfer_wallclock(&r.report, v.has_overlap())
            })
            .collect();
        let naive = times[0];
        let mut cells = vec![b.abbrev().to_string()];
        cells.extend(times.iter().map(|&t| f2(t / naive)));
        table.row(cells);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stepwise_reduction() {
        let t = run(11);
        for row in &t.rows {
            let overlap: f64 = row[2].parse().expect("number");
            let qgpu: f64 = row[5].parse().expect("number");
            assert!(overlap < 0.75, "{}: overlap transfer {overlap}", row[0]);
            assert!(
                qgpu <= overlap + 1e-9,
                "{}: qgpu {qgpu} > overlap {overlap}",
                row[0]
            );
        }
    }

    #[test]
    fn pruning_gain_is_circuit_dependent() {
        let t = run(11);
        let get = |name: &str, col: usize| -> f64 {
            t.rows.iter().find(|r| r[0] == name).expect("row")[col]
                .parse()
                .expect("number")
        };
        // iqp prunes much more transfer than qft (paper §V-A).
        assert!(get("iqp", 3) < get("qft", 3));
    }
}
