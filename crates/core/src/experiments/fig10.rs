//! Figure 10: residual distributions (compressibility analysis).
//!
//! The paper compares the consecutive-amplitude residuals of qaoa_20
//! (concentrated near zero — highly compressible) and iqp_20 (dispersed —
//! less compressible). We additionally run the real GFC codec on the same
//! states to connect the distribution to an achieved ratio.

use qgpu_circuit::generators::Benchmark;
use qgpu_compress::residual::profile;
use qgpu_compress::GfcCodec;
use qgpu_statevec::StateVector;

use crate::experiments::{f2, pct, Table};

/// Runs the residual analysis for the paper's two example circuits.
pub fn run(qubits: usize) -> Table {
    run_for(&[Benchmark::Qaoa, Benchmark::Iqp], qubits)
}

/// Runs the residual analysis for arbitrary circuits.
pub fn run_for(benchmarks: &[Benchmark], qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Figure 10: residual distributions ({qubits} qubits, end-of-circuit state)"),
        [
            "circuit",
            "residuals ~ 0",
            "mean |residual|",
            "max |residual|",
            "GFC ratio",
        ],
    );
    let codec = GfcCodec::default();
    for &b in benchmarks {
        let c = b.generate(qubits);
        let mut state = StateVector::new_zero(qubits);
        // Fully-evolved state: iqp's dense dispersed amplitudes only
        // appear after its closing Hadamard layer.
        for op in c.iter() {
            state.apply(op);
        }
        let p = profile(state.amps());
        let compressed = codec.compress_amplitudes(state.amps());
        table.row([
            b.abbrev().to_string(),
            pct(p.near_zero_fraction),
            format!("{:.2e}", p.mean_abs),
            format!("{:.2e}", p.max_abs),
            f2(compressed.stats().ratio()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qaoa_is_more_compressible_than_iqp() {
        let t = run(12);
        let ratio = |i: usize| -> f64 { t.cell(i, 4).parse().expect("number") };
        let qaoa = ratio(0);
        let iqp = ratio(1);
        assert!(
            qaoa > iqp,
            "qaoa ratio {qaoa} should exceed iqp ratio {iqp} (paper Figure 10)"
        );
    }

    #[test]
    fn qaoa_residuals_concentrate_near_zero() {
        let t = run(12);
        let near: f64 = t.cell(0, 1).trim_end_matches('%').parse().expect("number");
        assert!(near > 10.0, "qaoa near-zero fraction = {near}%");
    }
}
