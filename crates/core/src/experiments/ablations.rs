//! Ablation studies of Q-GPU's design choices.
//!
//! The paper motivates several decisions without isolating them; these
//! experiments quantify each one:
//!
//! * [`chunk_count`] — how many chunks to split the state into (transfer
//!   granularity vs. per-task overhead vs. exchange frequency);
//! * [`dynamic_chunk_size`] — Algorithm 1's adaptive `getChunkSize`
//!   against a fixed chunk size;
//! * [`reorder_strategy`] — greedy (Algorithm 2) vs. forward-looking
//!   (Algorithm 3), end to end rather than by involvement curves;
//! * [`buffer_split`] — the §IV-A half/half split of GPU memory between
//!   the working and prefetch buffers;
//! * [`opt_grid`] — every 2^4 subset of the paper's four optimizations,
//!   run through the real composed pipeline (not a per-version model).

use qgpu_circuit::generators::Benchmark;
use qgpu_math::stats::geometric_mean;
use qgpu_sched::reorder::ReorderStrategy;

use crate::config::{OptFlags, SimConfig, Version};
use crate::engine::Simulator;
use crate::experiments::{f2, Table};

/// Sweep the chunk-count exponent for the full Q-GPU version.
pub fn chunk_count(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Ablation: chunk count, Q-GPU geomean time in ms ({qubits} qubits)"),
        ["chunks (log2)", "geomean time", "vs default"],
    );
    let exponents: Vec<u32> = (4..=(qubits as u32 - 2).min(11)).collect();
    let geomean_for = |log2: u32| -> f64 {
        geometric_mean(Benchmark::ALL.iter().map(|&b| {
            let c = b.generate(qubits);
            Simulator::new(
                SimConfig::scaled_paper(qubits)
                    .with_version(Version::QGpu)
                    .with_chunk_count_log2(log2)
                    .timing_only(),
            )
            .run(&c)
            .report
            .total_time
        }))
    };
    let default = geomean_for(SimConfig::scaled_paper(qubits).chunk_count_log2);
    for log2 in exponents {
        let t = geomean_for(log2);
        table.row([
            log2.to_string(),
            f2(t * 1e3),
            format!("{:+.1}%", 100.0 * (t - default) / default),
        ]);
    }
    table
}

/// Dynamic (Algorithm 1) vs. fixed chunk size under the Pruning version.
///
/// Run with few, large chunks (2^4), mirroring the paper's regime where a
/// 32 MB chunk spans 21 qubits and early involvement covers far fewer —
/// exactly when shrinking the chunk to the involved block pays off. With
/// many small chunks, chunk-level pruning already captures the savings
/// and the dynamic size is near-neutral (also visible in this table by
/// comparison with `chunk_count`).
pub fn dynamic_chunk_size(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!(
            "Ablation: dynamic vs fixed chunk size, Pruning version, 2^4 chunks ({qubits} qubits)"
        ),
        ["circuit", "fixed (ms)", "dynamic (ms)", "dynamic saves"],
    );
    for b in Benchmark::ALL {
        let c = b.generate(qubits);
        let time = |dynamic: bool| {
            let mut cfg = SimConfig::scaled_paper(qubits)
                .with_version(Version::Pruning)
                .with_chunk_count_log2(4)
                .timing_only();
            if !dynamic {
                cfg = cfg.fixed_chunk_size();
            }
            Simulator::new(cfg).run(&c).report.total_time
        };
        let fixed = time(false);
        let dynamic = time(true);
        table.row([
            b.abbrev().to_string(),
            f2(fixed * 1e3),
            f2(dynamic * 1e3),
            format!("{:+.1}%", 100.0 * (1.0 - dynamic / fixed)),
        ]);
    }
    table
}

/// Greedy vs. forward-looking reordering, measured end to end on the
/// Reorder version (the paper compares involvement curves only).
pub fn reorder_strategy(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Ablation: reorder strategy, Reorder version time in ms ({qubits} qubits)"),
        ["circuit", "original", "greedy", "forward-looking"],
    );
    for b in Benchmark::ALL {
        let c = b.generate(qubits);
        let time = |strategy: ReorderStrategy| {
            Simulator::new(
                SimConfig::scaled_paper(qubits)
                    .with_version(Version::Reorder)
                    .with_reorder_strategy(strategy)
                    .timing_only(),
            )
            .run(&c)
            .report
            .total_time
                * 1e3
        };
        table.row([
            b.abbrev().to_string(),
            f2(time(ReorderStrategy::Original)),
            f2(time(ReorderStrategy::Greedy)),
            f2(time(ReorderStrategy::ForwardLooking)),
        ]);
    }
    table
}

/// Sweep the double-buffer split fraction for the Overlap version.
pub fn buffer_split(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Ablation: double-buffer split, Overlap geomean time in ms ({qubits} qubits)"),
        ["window fraction", "geomean time"],
    );
    for split in [0.1, 0.25, 0.5, 0.75, 0.9] {
        let t = geometric_mean(Benchmark::ALL.iter().map(|&b| {
            let c = b.generate(qubits);
            Simulator::new(
                SimConfig::scaled_paper(qubits)
                    .with_version(Version::Overlap)
                    .with_buffer_split(split)
                    .timing_only(),
            )
            .run(&c)
            .report
            .total_time
        }));
        table.row([format!("{split}"), f2(t * 1e3)]);
    }
    table
}

/// The full 2^4 optimization grid: every subset of {overlap, pruning,
/// reorder, compression} through the composed stage pipeline. The paper
/// only reports the four cumulative points (Figure 12); the grid shows
/// the marginal value of each flag in every context — e.g. compression
/// without overlap still saves transfer time but can't hide it.
pub fn opt_grid(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Ablation: optimization grid, geomean time in ms ({qubits} qubits)"),
        ["opts", "geomean time", "vs none"],
    );
    let geomean_for = |f: OptFlags| -> f64 {
        geometric_mean(Benchmark::ALL.iter().map(|&b| {
            let c = b.generate(qubits);
            Simulator::new(SimConfig::scaled_paper(qubits).with_opts(f).timing_only())
                .run(&c)
                .report
                .total_time
        }))
    };
    let none = geomean_for(OptFlags::default());
    for f in OptFlags::grid() {
        let t = geomean_for(f);
        table.row([
            f.label(),
            f2(t * 1e3),
            format!("{:+.1}%", 100.0 * (t - none) / none),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_chunk_size_helps_late_involvers() {
        let t = dynamic_chunk_size(11);
        let saves = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).expect("row")[3]
                .trim_end_matches('%')
                .parse()
                .expect("number")
        };
        // iqp spends most of its life with few involved qubits: small
        // dynamic chunks prune far more precisely.
        assert!(saves("iqp") > 2.0, "iqp dynamic saving {}", saves("iqp"));
        // And it must never substantially hurt.
        for b in Benchmark::ALL {
            assert!(saves(b.abbrev()) > -5.0, "{b}: {}", saves(b.abbrev()));
        }
    }

    #[test]
    fn forward_looking_never_loses_to_original() {
        let t = reorder_strategy(10);
        for row in &t.rows {
            let original: f64 = row[1].parse().expect("number");
            let fl: f64 = row[3].parse().expect("number");
            assert!(
                fl <= original * 1.05,
                "{}: forward-looking {fl} vs original {original}",
                row[0]
            );
        }
    }

    #[test]
    fn starved_buffer_hurts_overlap() {
        let t = buffer_split(10);
        let time = |row: usize| -> f64 { t.cell(row, 1).parse().expect("number") };
        // 0.1 window (row 0) must be no faster than the 0.5 default (row 2).
        assert!(time(0) >= time(2) * 0.99, "{} vs {}", time(0), time(2));
    }

    #[test]
    fn chunk_count_sweep_has_rows() {
        let t = chunk_count(10);
        assert!(t.rows.len() >= 4);
    }

    #[test]
    fn opt_grid_covers_all_subsets_and_full_recipe_wins() {
        let t = opt_grid(10);
        assert_eq!(t.rows.len(), 16);
        let time = |label: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == label).expect("row")[1]
                .parse()
                .expect("number")
        };
        // The full recipe must beat the empty subset.
        assert!(time("overlap+pruning+reorder+compression") < time("none"));
    }
}
