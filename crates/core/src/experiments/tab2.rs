//! Table II: operations before all qubits are involved.
//!
//! Generation only — no simulation — so this runs at the paper's full 34
//! qubits.

use qgpu_circuit::generators::Benchmark;
use qgpu_circuit::involvement::summarize;

use crate::experiments::Table;

/// Builds Table II at the given circuit size (the paper uses 34).
pub fn run(qubits: usize) -> Table {
    let mut table = Table::new(
        &format!("Table II: operations before full involvement ({qubits} qubits)"),
        [
            "circuit",
            "total ops",
            "ops before full involvement",
            "percentage",
        ],
    );
    for b in Benchmark::ALL {
        let c = b.generate(qubits);
        let s = summarize(&c);
        table.row([
            b.abbrev().to_string(),
            s.total_ops.to_string(),
            s.ops_before_full.to_string(),
            format!("{:.2}%", s.percentage),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_at_paper_scale() {
        let t = run(34);
        assert_eq!(t.rows.len(), 9);
    }

    #[test]
    fn iqp_has_highest_percentage() {
        let t = run(34);
        let pct = |name: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == name).expect("row")[3]
                .trim_end_matches('%')
                .parse()
                .expect("number")
        };
        let iqp = pct("iqp");
        for b in Benchmark::ALL {
            if b.abbrev() != "iqp" {
                assert!(iqp >= pct(b.abbrev()), "iqp should lead, vs {b}");
            }
        }
        assert!(iqp > 60.0, "iqp = {iqp}% (paper: 90.41%)");
    }

    #[test]
    fn early_involvers_have_low_percentage() {
        let t = run(34);
        for name in ["qft", "qaoa"] {
            let p: f64 = t.rows.iter().find(|r| r[0] == name).expect("row")[3]
                .trim_end_matches('%')
                .parse()
                .expect("number");
            assert!(p < 15.0, "{name} = {p}% (paper: 7.07% / 2.51%)");
        }
    }
}
